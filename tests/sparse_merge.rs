//! Sparse delta merge acceptance suite.
//!
//! The reduction contract (see `DESIGN.md`, "Sparse delta merge"): with
//! `sparse_merge` on, the merged model is **bit-identical** to the dense
//! flat path at any thread count, in both precisions, over the flat and the
//! hierarchical (cluster) schedules — only the *simulated timing* of the
//! merge stage changes. These tests run paired dense/sparse configurations
//! over the same `(seed, config)` and compare final models and per-record
//! statistics bit-for-bit, including under fault injection (survivor-subset
//! unions) and under property-based randomization of fleet shape, precision,
//! and density threshold.

use adaptive_sgd::collective::InterNode;
use adaptive_sgd::core::metrics::RunResult;
use adaptive_sgd::core::{
    algorithms,
    trainer::{RunConfig, SampledSoftmax, Trainer},
    ClusterConfig,
};
use adaptive_sgd::data::{generate, DatasetSpec, XmlDataset};
use adaptive_sgd::gpusim::profile::heterogeneous_server;
use adaptive_sgd::gpusim::FaultPlan;
use adaptive_sgd::tensor::Precision;
use proptest::prelude::*;

const MEGAS: usize = 4;

fn dataset() -> XmlDataset {
    generate(&DatasetSpec::tiny("sparse-merge"), 17)
}

/// Base sampled-softmax config; `sparse_merge` stays off (the dense
/// reference) until a test flips it.
fn config(megas: usize) -> RunConfig {
    let mut c = RunConfig::paper_defaults(64, 8); // 512-sample mega-batches
    c.hidden = 16;
    c.base_lr = 0.2;
    c.mega_batch_limit = Some(megas);
    c.overhead_scale = 0.001;
    c.sampled_softmax = Some(SampledSoftmax::defaults(12));
    // The tiny dataset's union density exceeds the production threshold;
    // force the sparse schedule so these tests exercise it (the fallback is
    // covered by the proptest below and the trainer unit tests).
    c.sparse_max_density = 1.0;
    c
}

fn run_with(cfg: RunConfig, n_gpus: usize) -> RunResult {
    Trainer::new(
        algorithms::adaptive_sgd(),
        heterogeneous_server(n_gpus),
        cfg,
    )
    .run(&dataset())
}

/// Runs the same config dense and sparse, asserts whole-run bit-identity,
/// and returns the sparse result for further stats checks.
fn assert_sparse_equals_dense(mut cfg: RunConfig, n_gpus: usize) -> RunResult {
    cfg.trace = true;
    let mut sparse_cfg = cfg.clone();
    sparse_cfg.sparse_merge = true;
    let dense = run_with(cfg, n_gpus);
    let sparse = run_with(sparse_cfg, n_gpus);

    assert_eq!(
        dense.final_model, sparse.final_model,
        "sparse merge changed the merged model bits"
    );
    // The sparse schedule legitimately changes merge *durations* (that's the
    // point), which shifts absolute timestamps; the dispatch *trajectory* —
    // which replica runs which batch at which size — must be unchanged.
    fn trajectory(r: &RunResult) -> Vec<&str> {
        r.trace
            .lines()
            .map(|l| l.split_once("] ").map_or(l, |(_, rest)| rest))
            .collect()
    }
    assert_eq!(
        trajectory(&dense),
        trajectory(&sparse),
        "sparse merge changed the dispatch trajectory"
    );
    assert_eq!(dense.records.len(), sparse.records.len());
    for (d, s) in dense.records.iter().zip(&sparse.records) {
        assert_eq!(d.mean_loss.to_bits(), s.mean_loss.to_bits());
        assert_eq!(d.accuracy.to_bits(), s.accuracy.to_bits());
        assert_eq!(d.updates, s.updates);
        assert_eq!(d.merge_weights, s.merge_weights);
    }
    assert!(dense.sparse_merge.is_none());
    let stats = sparse
        .sparse_merge
        .as_ref()
        .expect("sparse run must report stats");
    assert_eq!(stats.merges, MEGAS as u64);
    sparse
}

fn cluster(servers: usize, per: usize) -> ClusterConfig {
    ClusterConfig {
        servers,
        devices_per_server: per,
        inter: InterNode::Ring,
    }
}

#[test]
fn flat_f32_is_bit_identical() {
    let sparse = assert_sparse_equals_dense(config(MEGAS), 3);
    let stats = sparse.sparse_merge.unwrap();
    assert_eq!(stats.fallbacks, 0, "density 1.0 must never fall back");
}

#[test]
fn flat_bf16_is_bit_identical() {
    let mut cfg = config(MEGAS);
    cfg.precision = Precision::Bf16;
    assert_sparse_equals_dense(cfg, 3);
}

#[test]
fn cluster_f32_is_bit_identical() {
    let mut cfg = config(MEGAS);
    cfg.cluster = Some(cluster(2, 2));
    assert_sparse_equals_dense(cfg, 4);
}

#[test]
fn sparse_moves_fewer_bytes_when_labels_dwarf_candidates() {
    // The tiny spec's 40 labels make every candidate union near-dense; the
    // traffic win needs the production regime, where the label space dwarfs
    // the sampled candidate sets. A 1%-scale Amazon-670k twin (≈6.7k labels)
    // is enough to see it, and the bit-identity contract must still hold.
    let ds = generate(&DatasetSpec::amazon_670k(0.01), 17);
    let mut cfg = config(2);
    cfg.sparse_max_density = adaptive_sgd::collective::DEFAULT_MAX_DENSITY;
    let mut sparse_cfg = cfg.clone();
    sparse_cfg.sparse_merge = true;
    let run = |c: RunConfig| {
        Trainer::new(algorithms::adaptive_sgd(), heterogeneous_server(3), c).run(&ds)
    };
    let dense = run(cfg);
    let sparse = run(sparse_cfg);
    assert_eq!(dense.final_model, sparse.final_model);
    let stats = sparse.sparse_merge.unwrap();
    assert_eq!(stats.fallbacks, 0, "unions must stay under the threshold");
    assert!(
        stats.sparse_bytes * 2 < stats.dense_bytes,
        "expected ≥2x byte reduction at 1% Amazon scale: sparse {} vs dense {}",
        stats.sparse_bytes,
        stats.dense_bytes
    );
}

#[test]
fn cluster_bf16_is_bit_identical() {
    let mut cfg = config(MEGAS);
    cfg.precision = Precision::Bf16;
    cfg.cluster = Some(cluster(2, 2));
    assert_sparse_equals_dense(cfg, 4);
}

#[test]
fn sparse_runs_are_bit_identical_across_thread_counts() {
    // The charged timing is thread-count independent and the arithmetic is
    // the dense reduction's: ASGD_THREADS must not leak into the result.
    let run_threads = |threads: usize| {
        adaptive_sgd::tensor::parallel::override_threads(threads);
        let mut cfg = config(MEGAS);
        cfg.sparse_merge = true;
        cfg.trace = true;
        let r = run_with(cfg, 3);
        adaptive_sgd::tensor::parallel::override_threads(0);
        r
    };
    let a = run_threads(1);
    let b = run_threads(8);
    assert_eq!(a.final_model, b.final_model);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.sparse_merge, b.sparse_merge);
}

#[test]
fn device_loss_mid_run_stays_bit_identical_to_dense() {
    // Survivor-subset unions: the sparse gather addresses only the alive
    // replicas and the union shrinks accordingly — and the merged bits must
    // still match the dense faulted run exactly.
    let mut cfg = config(MEGAS);
    cfg.fault_plan = Some(FaultPlan::new().device_loss(1, 6, 0));
    let sparse = assert_sparse_equals_dense(cfg, 4);
    assert_eq!(sparse.chaos.lost_gpus, vec![0]);
    assert!(sparse.chaos.redispatched_batches >= 1);
}

#[test]
fn server_loss_mid_run_stays_bit_identical_to_dense() {
    let mut cfg = config(MEGAS);
    cfg.cluster = Some(cluster(3, 2));
    cfg.fault_plan = Some(FaultPlan::new().server_loss(1, 4, 0));
    let sparse = assert_sparse_equals_dense(cfg, 6);
    assert_eq!(sparse.chaos.lost_gpus, vec![0, 1], "whole node must die");
}

#[test]
fn faulted_sparse_runs_are_bit_identical_across_re_runs() {
    let run_once = || {
        let mut cfg = config(MEGAS);
        cfg.sparse_merge = true;
        cfg.trace = true;
        cfg.fault_plan = Some(FaultPlan::new().device_loss(1, 6, 0));
        run_with(cfg, 4)
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.final_model, b.final_model);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.chaos, b.chaos);
    assert_eq!(a.sparse_merge, b.sparse_merge);
}

#[test]
fn merge_oom_under_sparse_merge_keeps_the_contract() {
    // The OOM serial fallback reduces the same flat buffers; the sparse
    // timing charge sits on top of either reduction path unchanged.
    let mut cfg = config(MEGAS);
    cfg.fault_plan = Some(FaultPlan::new().merge_oom(1));
    let sparse = assert_sparse_equals_dense(cfg, 3);
    assert_eq!(sparse.chaos.serial_fallback_merges, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline contract, property-tested: over random fleet sizes,
    /// precisions, density thresholds (including ones forcing the dense
    /// fallback), and flat/hierarchical schedules, the sparse run's merged
    /// model is bit-identical to the dense run's.
    #[test]
    fn sparse_matches_dense_over_random_shapes(
        n_gpus in 2usize..=4,
        bf16 in prop_oneof![Just(false), Just(true)],
        clustered in prop_oneof![Just(false), Just(true)],
        max_density in prop_oneof![Just(0.0), Just(0.5), Just(1.0)],
        seed in 0u64..4,
    ) {
        let mut cfg = config(2);
        cfg.seed = 1000 + seed;
        cfg.sparse_max_density = max_density;
        if bf16 {
            cfg.precision = Precision::Bf16;
        }
        // A cluster needs servers × per == n_gpus; 2 servers of n/2 only
        // divides evenly for even fleets.
        let n = if clustered { n_gpus & !1 } else { n_gpus }.max(2);
        if clustered {
            cfg.cluster = Some(cluster(2, n / 2));
        }
        let mut sparse_cfg = cfg.clone();
        sparse_cfg.sparse_merge = true;
        let dense = run_with(cfg, n);
        let sparse = run_with(sparse_cfg, n);
        prop_assert_eq!(&dense.final_model, &sparse.final_model);
        for (d, s) in dense.records.iter().zip(&sparse.records) {
            prop_assert_eq!(d.mean_loss.to_bits(), s.mean_loss.to_bits());
            prop_assert_eq!(d.accuracy.to_bits(), s.accuracy.to_bits());
        }
        let stats = sparse.sparse_merge.expect("stats must be reported");
        if max_density == 0.0 {
            // Impossible threshold: every merge falls back to dense bytes.
            prop_assert_eq!(stats.fallbacks, stats.merges);
            prop_assert_eq!(stats.sparse_bytes, stats.dense_bytes);
        }
    }
}
