//! Cross-crate integration: full training pipelines over the whole stack
//! (data generation → sparse kernels → model → simulated devices →
//! collectives → Adaptive SGD) on small-but-real workloads.

use adaptive_sgd::core::{
    algorithms,
    trainer::{RunConfig, Trainer},
};
use adaptive_sgd::data::{generate, DatasetSpec};
use adaptive_sgd::gpusim::profile::{heterogeneous_server, homogeneous_server};
use adaptive_sgd::model::{eval, Mlp, MlpConfig};

fn small_amazon() -> adaptive_sgd::data::XmlDataset {
    generate(&DatasetSpec::amazon_670k(0.001), 7)
}

fn config(mega_batches: usize) -> RunConfig {
    let mut c = RunConfig::paper_defaults(64, 16);
    c.hidden = 32;
    c.base_lr = 0.3;
    c.mega_batch_limit = Some(mega_batches);
    c.overhead_scale = 0.001;
    c
}

#[test]
fn adaptive_learns_above_untrained_baseline() {
    let ds = small_amazon();
    let mconfig = MlpConfig {
        num_features: ds.num_features,
        hidden: 32,
        num_classes: ds.num_labels,
    };
    let untrained = Mlp::init(&mconfig, 42);
    let base = eval::top1_accuracy(&untrained, &ds.test.features, &ds.test.labels, 256);
    let result = Trainer::new(
        algorithms::adaptive_sgd(),
        heterogeneous_server(4),
        config(8),
    )
    .run(&ds);
    assert!(
        result.best_accuracy() > base + 0.1,
        "baseline {base}, best {}",
        result.best_accuracy()
    );
}

#[test]
fn adaptive_converges_toward_equal_update_counts() {
    // The whole point of batch size scaling: the update-count spread across
    // heterogeneous GPUs shrinks as training proceeds.
    let ds = small_amazon();
    let result = Trainer::new(
        algorithms::adaptive_sgd(),
        heterogeneous_server(4),
        config(12),
    )
    .run(&ds);
    let spread =
        |updates: &[u64]| -> u64 { updates.iter().max().unwrap() - updates.iter().min().unwrap() };
    let early = spread(&result.records[0].updates);
    let late_avg: f64 = result.records[8..]
        .iter()
        .map(|r| spread(&r.updates) as f64)
        .sum::<f64>()
        / (result.records.len() - 8) as f64;
    assert!(
        late_avg <= early as f64,
        "update spread should not grow: early {early}, late avg {late_avg}"
    );
    // Batch sizes must have actually differentiated.
    let last = result.records.last().unwrap();
    let bmax = last.batch_sizes.iter().cloned().fold(0.0f64, f64::max);
    let bmin = last.batch_sizes.iter().cloned().fold(f64::MAX, f64::min);
    assert!(bmax > bmin, "batch sizes never differentiated");
}

#[test]
fn homogeneous_server_keeps_adaptive_close_to_elastic() {
    // Control experiment: with identical GPUs (jitter only), Adaptive's
    // mechanisms have little to adapt to, so both algorithms should reach
    // similar accuracy.
    let ds = small_amazon();
    let adaptive =
        Trainer::new(algorithms::adaptive_sgd(), homogeneous_server(2), config(6)).run(&ds);
    let elastic =
        Trainer::new(algorithms::elastic_sgd(), homogeneous_server(2), config(6)).run(&ds);
    let diff = (adaptive.best_accuracy() - elastic.best_accuracy()).abs();
    assert!(
        diff < 0.15,
        "adaptive {} vs elastic {} diverged on a homogeneous server",
        adaptive.best_accuracy(),
        elastic.best_accuracy()
    );
}

#[test]
fn perturbation_fires_regularly_with_initialized_models() {
    // Fig. 6b: the paper observes perturbation firing for most mega-batches
    // because replicas stay well-regularized (norm-per-param « 0.1).
    let ds = small_amazon();
    let result = Trainer::new(
        algorithms::adaptive_sgd(),
        heterogeneous_server(4),
        config(8),
    )
    .run(&ds);
    assert!(
        result.perturbation_frequency() > 0.5,
        "perturbation frequency {}",
        result.perturbation_frequency()
    );
}

#[test]
fn more_gpus_shorten_time_to_target() {
    // Scalability (Fig. 5a): 4 GPUs should reach a fixed accuracy target in
    // less simulated time than 1 GPU.
    let ds = small_amazon();
    let run = |n: usize| {
        Trainer::new(
            algorithms::adaptive_sgd(),
            heterogeneous_server(n),
            config(10),
        )
        .run(&ds)
    };
    let one = run(1);
    let four = run(4);
    let target = one.best_accuracy().min(four.best_accuracy()) * 0.8;
    let t1 = one.time_to_accuracy(target).expect("1 GPU reaches target");
    let t4 = four.time_to_accuracy(target).expect("4 GPUs reach target");
    assert!(
        t4 < t1,
        "4 GPUs ({t4}s) should beat 1 GPU ({t1}s) to accuracy {target}"
    );
}

#[test]
fn run_is_reproducible_end_to_end() {
    let ds = small_amazon();
    let run = || {
        Trainer::new(
            algorithms::adaptive_sgd(),
            heterogeneous_server(3),
            config(4),
        )
        .run(&ds)
    };
    let a = run();
    let b = run();
    assert_eq!(a.final_model, b.final_model);
    let times_a: Vec<f64> = a.records.iter().map(|r| r.sim_time).collect();
    let times_b: Vec<f64> = b.records.iter().map(|r| r.sim_time).collect();
    assert_eq!(times_a, times_b);
    let acc_a: Vec<f64> = a.records.iter().map(|r| r.accuracy).collect();
    let acc_b: Vec<f64> = b.records.iter().map(|r| r.accuracy).collect();
    assert_eq!(acc_a, acc_b);
}

#[test]
fn time_limit_stops_training() {
    let ds = small_amazon();
    let mut c = config(1000);
    c.mega_batch_limit = None;
    c.time_limit = Some(0.002);
    let result = Trainer::new(algorithms::adaptive_sgd(), heterogeneous_server(2), c).run(&ds);
    let end = result.records.last().unwrap().sim_time;
    // Stops at the first mega-batch boundary past the limit.
    assert!(end >= 0.002, "end {end}");
    assert!(
        result.records.len() < 1000,
        "time limit did not stop the run"
    );
}
