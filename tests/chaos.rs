//! Chaos suite: seeded fault injection against the full trainer stack.
//!
//! Every test drives a real training run through a [`FaultPlan`] and checks
//! the degradation contract (see `DESIGN.md`, "Fault model & degradation
//! semantics"): no sample lost or double-counted, dead replicas evicted with
//! `α_i` renormalized over survivors, arena OOM degrading to the serial
//! reduction with identical numerics, and the whole faulted run remaining a
//! deterministic function of `(run seed, fault plan)`.

use adaptive_sgd::collective::InterNode;
use adaptive_sgd::core::metrics::RunResult;
use adaptive_sgd::core::{
    algorithms,
    trainer::{RunConfig, SampledSoftmax, Trainer},
    AppliedFault, ClusterConfig, StalenessBound,
};
use adaptive_sgd::data::{generate, DatasetSpec, XmlDataset};
use adaptive_sgd::gpusim::profile::heterogeneous_server;
use adaptive_sgd::gpusim::FaultPlan;

const MEGAS: usize = 4;

fn dataset() -> XmlDataset {
    generate(&DatasetSpec::tiny("chaos"), 11)
}

fn config(megas: usize) -> RunConfig {
    let mut c = RunConfig::paper_defaults(64, 8); // 512-sample mega-batches
    c.hidden = 16;
    c.base_lr = 0.2;
    c.mega_batch_limit = Some(megas);
    c.overhead_scale = 0.001;
    c
}

fn run(n_gpus: usize, plan: Option<FaultPlan>) -> RunResult {
    let ds = dataset();
    let mut cfg = config(MEGAS);
    cfg.trace = true;
    cfg.fault_plan = plan;
    Trainer::new(
        algorithms::adaptive_sgd(),
        heterogeneous_server(n_gpus),
        cfg,
    )
    .run(&ds)
}

/// Σα must be exactly 1 over the participating replicas, except when
/// Algorithm 2's perturbation deliberately shifted the extreme weights by
/// ±δ (paper default δ = 0.1), which bounds |Σα − 1| by δ.
fn assert_weight_sum(r: &adaptive_sgd::core::MergeRecord) {
    let sum: f64 = r.merge_weights.iter().sum();
    let tol = if r.perturbed { 0.1 + 1e-9 } else { 1e-9 };
    assert!(
        (sum - 1.0).abs() <= tol,
        "Σα = {sum} (perturbed: {}) at merge {}",
        r.perturbed,
        r.merge_index
    );
}

/// Total committed samples must equal the dispatched mega-batches exactly —
/// chaos or not, every granted sample is trained on a surviving replica
/// exactly once.
fn assert_balanced_accounting(result: &RunResult, megas: usize, mega_batch_size: usize) {
    assert_eq!(
        result.chaos.samples_committed,
        (megas * mega_batch_size) as u64,
        "samples lost or double-counted"
    );
    let recorded_updates: u64 = result
        .records
        .iter()
        .map(|r| r.updates.iter().sum::<u64>())
        .sum();
    assert_eq!(
        result.chaos.batches_committed, recorded_updates,
        "committed batches disagree with the per-merge records"
    );
}

#[test]
fn replica_loss_completes_with_balanced_accounting() {
    let plan = FaultPlan::new().device_loss(1, 6, 0);
    let result = run(4, Some(plan));

    assert_eq!(result.records.len(), MEGAS, "run did not complete");
    assert_eq!(result.chaos.lost_gpus, vec![0]);
    assert!(
        result.chaos.redispatched_batches >= 1,
        "the dead replica had in-flight batches to re-dispatch"
    );
    assert_eq!(
        result.chaos.redispatched_batches,
        result.chaos.discarded_batches
    );
    assert_balanced_accounting(&result, MEGAS, 512);

    // From the loss on, the dead replica contributes no updates and no merge
    // weight; the survivors' weights renormalize to Σα = 1 (up to Algorithm
    // 2's deliberate ±δ perturbation when it fires).
    for r in &result.records[1..] {
        assert_eq!(r.updates[0], 0, "dead replica recorded updates");
        assert_eq!(r.merge_weights[0], 0.0, "dead replica kept merge weight");
        assert_weight_sum(r);
    }
    // And the loss itself is on the fault log with its re-dispatch count.
    assert!(result.chaos.faults.iter().any(|f| matches!(
        f,
        AppliedFault::DeviceLoss { mega: 1, gpu: 0, redispatched, .. } if *redispatched >= 1
    )));
}

#[test]
fn merged_models_stay_finite_under_faults() {
    let plan = FaultPlan::new()
        .speed_change(0, 2, 1, 0.3)
        .device_loss(1, 4, 2)
        .merge_oom(2);
    let result = run(4, Some(plan));
    assert!(
        result.final_model.iter().all(|w| w.is_finite()),
        "non-finite weights after faulted run"
    );
    for r in &result.records {
        assert!(r.mean_loss.is_finite());
        assert!(r.merge_weights.iter().all(|w| w.is_finite()));
        assert_weight_sum(r);
    }
}

#[test]
fn staleness_bound_holds_for_survivors_under_device_loss() {
    let cfg = config(MEGAS);
    let bound = StalenessBound::derive(&cfg.scaling_params, cfg.mega_batch_size, 4);
    let plan = FaultPlan::new().device_loss(1, 6, 3);
    let result = run(4, Some(plan));
    for r in &result.records {
        let alive: Vec<u64> = r
            .updates
            .iter()
            .enumerate()
            .filter(|&(g, _)| !result.chaos.lost_gpus.contains(&g) || r.merge_index == 0)
            .map(|(_, &u)| u)
            .collect();
        assert!(
            bound.check(&alive),
            "staleness bound violated at merge {}: {:?} vs [{}, {}]",
            r.merge_index,
            alive,
            bound.min_updates,
            bound.max_updates
        );
    }
}

#[test]
fn arena_oom_degrades_to_serial_with_identical_numerics() {
    // The serial reduction is bit-identical (results AND simulated timing)
    // to the pooled path, so a run whose only fault is a merge OOM must be
    // indistinguishable from the fault-free run everywhere except the log.
    let clean = run(4, None);
    let oom = run(4, Some(FaultPlan::new().merge_oom(1)));

    assert_eq!(oom.chaos.serial_fallback_merges, 1);
    assert!(oom.chaos.faults.iter().any(|f| matches!(
        f,
        AppliedFault::MergeOomFallback { mega: 1, requested, available }
            if requested > available
    )));
    assert_eq!(
        clean.final_model, oom.final_model,
        "serial fallback changed the numerics"
    );
    assert_eq!(clean.trace, oom.trace, "serial fallback changed the timing");
    let times = |r: &RunResult| r.records.iter().map(|x| x.sim_time).collect::<Vec<_>>();
    assert_eq!(times(&clean), times(&oom));
}

#[test]
fn empty_plan_is_bit_identical_to_no_plan() {
    // An armed-but-empty plan turns the chaos bookkeeping on without
    // injecting anything: the run itself must not change at all.
    let clean = run(3, None);
    let armed = run(3, Some(FaultPlan::new()));
    assert_eq!(clean.final_model, armed.final_model);
    assert_eq!(clean.trace, armed.trace);
    assert!(armed.chaos.is_quiet());
    assert!(clean.chaos.is_quiet());
    assert_balanced_accounting(&armed, MEGAS, 512);
    // The quiet run commits nothing to the chaos counters.
    assert_eq!(clean.chaos.samples_committed, 0);
}

#[test]
fn straggler_spike_sheds_load_until_recovery() {
    let clean = run(4, None);
    let plan = FaultPlan::new()
        .speed_change(0, 4, 0, 0.15)
        .speed_change(2, 0, 0, 1.0);
    let spiked = run(4, Some(plan));

    let sc: Vec<&AppliedFault> = spiked
        .chaos
        .faults
        .iter()
        .filter(|f| matches!(f, AppliedFault::SpeedChange { .. }))
        .collect();
    assert_eq!(sc.len(), 2, "both speed events must apply");
    // While throttled, dynamic dispatch routes work away from the victim.
    assert!(
        spiked.records[1].updates[0] < clean.records[1].updates[0],
        "throttled gpu kept its load: {} vs {}",
        spiked.records[1].updates[0],
        clean.records[1].updates[0]
    );
    assert_balanced_accounting(&spiked, MEGAS, 512);
}

#[test]
fn transient_stall_routes_batches_around_the_victim() {
    let clean = run(4, None);
    let stalled = run(4, Some(FaultPlan::new().stall(0, 2, 0, 1.0)));
    assert!(stalled.chaos.faults.iter().any(|f| matches!(
        f,
        AppliedFault::Stall { mega: 0, gpu: 0, seconds, .. } if *seconds == 1.0
    )));
    // A one-second freeze dwarfs the mega-batch: the victim does (almost)
    // nothing more in it while the others absorb its share.
    assert!(
        stalled.records[0].updates[0] < clean.records[0].updates[0],
        "stalled gpu kept dispatching: {} vs {}",
        stalled.records[0].updates[0],
        clean.records[0].updates[0]
    );
    assert_balanced_accounting(&stalled, MEGAS, 512);
}

#[test]
fn faulted_runs_are_bit_identical_across_re_runs() {
    let plan = FaultPlan::random(7, 4, MEGAS);
    let a = run(4, Some(plan.clone()));
    let b = run(4, Some(plan));
    assert_eq!(a.final_model, b.final_model);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.chaos, b.chaos);
    assert_eq!(a.chaos.render(), b.chaos.render());
    let acc = |r: &RunResult| r.records.iter().map(|x| x.accuracy).collect::<Vec<_>>();
    assert_eq!(acc(&a), acc(&b));
}

#[test]
fn random_plans_always_complete_with_balanced_accounting() {
    for seed in [1u64, 13, 99] {
        let plan = FaultPlan::random(seed, 3, MEGAS);
        let result = run(3, Some(plan.clone()));
        assert_eq!(result.records.len(), MEGAS, "seed {seed} aborted the run");
        assert_balanced_accounting(&result, MEGAS, 512);
        assert!(
            result.final_model.iter().all(|w| w.is_finite()),
            "seed {seed} produced non-finite weights"
        );
        assert!(
            !result.chaos.is_quiet(),
            "seed {seed}: a random plan must apply something"
        );
    }
}

#[test]
fn elastic_sgd_survives_device_loss_too() {
    // The degradation path is spec-independent (any MegaBatch-merging
    // trainer): Elastic SGD with plain averaging also evicts and completes.
    let ds = dataset();
    let mut cfg = config(MEGAS);
    cfg.fault_plan = Some(FaultPlan::new().device_loss(1, 5, 1));
    let result = Trainer::new(algorithms::elastic_sgd(), heterogeneous_server(3), cfg).run(&ds);
    assert_eq!(result.records.len(), MEGAS);
    assert_eq!(result.chaos.lost_gpus, vec![1]);
    for r in &result.records[1..] {
        assert_weight_sum(r);
        assert_eq!(r.merge_weights[1], 0.0);
    }
    assert_balanced_accounting(&result, MEGAS, 512);
}

#[test]
#[should_panic(expected = "fault injection requires merge-per-mega-batch")]
fn fault_plan_rejects_per_round_merging() {
    let mut cfg = config(2);
    cfg.fault_plan = Some(FaultPlan::new().merge_oom(0));
    let _ = Trainer::new(algorithms::tensorflow_sync(), heterogeneous_server(2), cfg);
}

#[test]
fn sampled_device_loss_redispatch_reproduces_candidate_sets() {
    // The sampled-softmax determinism contract under chaos: a batch's
    // candidate set is a pure function of (LSH seed, last-synced model,
    // batch labels, id-derived sample seed) — none of which change when a
    // device loss re-dispatches the batch to a survivor. If re-dispatch
    // changed even one candidate set, the survivor's replica (and the merged
    // global) would diverge between thread counts and re-runs; instead the
    // whole faulted run must be bit-identical.
    let run_sampled = |threads: usize| {
        adaptive_sgd::tensor::parallel::override_threads(threads);
        let ds = dataset();
        let mut cfg = config(MEGAS);
        cfg.trace = true;
        cfg.sampled_softmax = Some(SampledSoftmax::defaults(12));
        cfg.fault_plan = Some(FaultPlan::new().device_loss(1, 6, 0));
        let r = Trainer::new(algorithms::adaptive_sgd(), heterogeneous_server(4), cfg).run(&ds);
        adaptive_sgd::tensor::parallel::override_threads(0);
        r
    };
    let a = run_sampled(1);
    let b = run_sampled(8);
    assert!(
        a.chaos.redispatched_batches >= 1,
        "the loss must have re-dispatched in-flight sampled batches"
    );
    assert_eq!(a.chaos.lost_gpus, vec![0]);
    assert_eq!(
        a.final_model, b.final_model,
        "re-dispatched candidate sets were not reproduced"
    );
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.chaos.render(), b.chaos.render());
    assert_balanced_accounting(&a, MEGAS, 512);
}

/// A faulted run over a simulated multi-node cluster: same trainer, but the
/// fleet is `servers × per` and merges go through the two-level hierarchical
/// schedule over the slow inter-node link.
fn cluster_run(servers: usize, per: usize, plan: Option<FaultPlan>) -> RunResult {
    let ds = dataset();
    let mut cfg = config(MEGAS);
    cfg.trace = true;
    cfg.fault_plan = plan;
    cfg.cluster = Some(ClusterConfig {
        servers,
        devices_per_server: per,
        inter: InterNode::Ring,
    });
    Trainer::new(
        algorithms::adaptive_sgd(),
        heterogeneous_server(servers * per),
        cfg,
    )
    .run(&ds)
}

#[test]
fn server_loss_mid_run_evicts_every_member_and_rebalances() {
    // Losing a whole node kills all of its devices at once: every member is
    // evicted, their in-flight batches re-dispatch to the surviving nodes,
    // and Algorithm 2's α weights renormalize over the survivors — who keep
    // merging *across* the remaining inter-node links.
    let plan = FaultPlan::new().server_loss(1, 4, 0);
    let result = cluster_run(3, 2, Some(plan));

    assert_eq!(result.records.len(), MEGAS, "run did not complete");
    assert_eq!(result.chaos.lost_gpus, vec![0, 1], "whole node must die");
    assert!(result.chaos.faults.iter().any(|f| matches!(
        f,
        AppliedFault::ServerLoss { mega: 1, server: 0, lost, .. } if lost == &vec![0, 1]
    )));
    for r in &result.records[1..] {
        assert_eq!(r.updates[0] + r.updates[1], 0, "dead node kept training");
        assert_eq!(r.merge_weights[0], 0.0);
        assert_eq!(r.merge_weights[1], 0.0);
        assert_weight_sum(r);
    }
    assert_balanced_accounting(&result, MEGAS, 512);
}

#[test]
fn losing_every_server_but_one_is_refused_at_the_last_survivor() {
    // Kill both nodes of a 2×2 cluster: the second server loss must stop at
    // the last-survivor rule (the run has to finish on one device).
    let plan = FaultPlan::new().server_loss(1, 2, 0).server_loss(1, 3, 1);
    let result = cluster_run(2, 2, Some(plan));
    assert_eq!(result.records.len(), MEGAS);
    assert_eq!(
        result.chaos.lost_gpus,
        vec![0, 1, 2],
        "exactly one device must survive"
    );
    assert_balanced_accounting(&result, MEGAS, 512);
}

#[test]
fn inter_node_stall_routes_load_to_the_other_nodes() {
    let clean = cluster_run(2, 2, None);
    let stalled = cluster_run(2, 2, Some(FaultPlan::new().inter_node_stall(0, 2, 1, 0.5)));
    assert!(stalled.chaos.faults.iter().any(|f| matches!(
        f,
        AppliedFault::InterNodeStall { mega: 0, server: 1, seconds, .. } if *seconds == 0.5
    )));
    // A half-second uplink stall freezes every device on the node: dynamic
    // dispatch routes its share of mega 0 to the healthy node.
    let node1 = |r: &RunResult| r.records[0].updates[2] + r.records[0].updates[3];
    assert!(
        node1(&stalled) < node1(&clean),
        "stalled node kept its load: {} vs {}",
        node1(&stalled),
        node1(&clean)
    );
    assert_balanced_accounting(&stalled, MEGAS, 512);
}

#[test]
fn cluster_faulted_runs_are_bit_identical_across_re_runs() {
    let plan = FaultPlan::random_cluster(7, 2, 2, MEGAS);
    let a = cluster_run(2, 2, Some(plan.clone()));
    let b = cluster_run(2, 2, Some(plan));
    assert_eq!(a.final_model, b.final_model);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.chaos, b.chaos);
    assert_eq!(a.chaos.render(), b.chaos.render());
}

#[test]
fn random_cluster_plans_always_complete_with_balanced_accounting() {
    for seed in [1u64, 13, 99] {
        let plan = FaultPlan::random_cluster(seed, 3, 2, MEGAS);
        let result = cluster_run(3, 2, Some(plan));
        assert_eq!(result.records.len(), MEGAS, "seed {seed} aborted the run");
        assert_balanced_accounting(&result, MEGAS, 512);
        assert!(
            result.final_model.iter().all(|w| w.is_finite()),
            "seed {seed} produced non-finite weights"
        );
        assert!(
            !result.chaos.is_quiet(),
            "seed {seed}: a random cluster plan must apply something"
        );
    }
}

#[test]
fn losing_the_last_survivor_is_refused() {
    // A plan that tries to kill both devices: the second loss must be
    // ignored (the run has to finish), leaving exactly one survivor.
    let plan = FaultPlan::new().device_loss(1, 2, 0).device_loss(1, 3, 1);
    let result = run(2, Some(plan));
    assert_eq!(result.records.len(), MEGAS);
    assert_eq!(
        result.chaos.lost_gpus,
        vec![0],
        "second loss must be refused"
    );
    assert_balanced_accounting(&result, MEGAS, 512);
}
