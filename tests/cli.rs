//! End-to-end tests of the `asgd` command-line interface.

use std::process::Command;

fn asgd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_asgd"))
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("asgd-cli-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn no_command_prints_usage_and_fails() {
    let out = asgd().output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("USAGE"), "{stderr}");
}

#[test]
fn unknown_command_is_an_error() {
    let out = asgd().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn generate_then_stats_then_train_roundtrip() {
    let dir = temp_dir("roundtrip");
    // Generate a tiny dataset as libSVM files.
    let out = asgd()
        .args([
            "generate",
            "--dataset",
            "tiny",
            "--seed",
            "7",
            "--out",
            dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let train = dir.join("tiny.train.libsvm");
    let test = dir.join("tiny.test.libsvm");
    assert!(train.exists() && test.exists());

    // Stats on the generated file.
    let out = asgd()
        .args(["stats", "--train", train.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("dataset,features,classes"), "{stdout}");

    // Train on the files.
    let csv = dir.join("curve.csv");
    let out = asgd()
        .args([
            "train",
            "--train",
            train.to_str().unwrap(),
            "--test",
            test.to_str().unwrap(),
            "--algo",
            "adaptive",
            "--gpus",
            "2",
            "--megas",
            "3",
            "--bmax",
            "32",
            "--batches-per-mega",
            "6",
            "--hidden",
            "16",
            "--csv",
            csv.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("best top-1"), "{stdout}");
    let curve = std::fs::read_to_string(csv).unwrap();
    assert_eq!(curve.lines().count(), 4, "3 merges + header: {curve}");
}

#[test]
fn train_rejects_unknown_algorithm() {
    let out = asgd()
        .args(["train", "--dataset", "tiny", "--algo", "sgdx"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown algorithm"));
}

#[test]
fn train_slide_baseline_works() {
    let out = asgd()
        .args([
            "train",
            "--dataset",
            "tiny",
            "--algo",
            "slide",
            "--megas",
            "2",
            "--bmax",
            "32",
            "--batches-per-mega",
            "4",
            "--hidden",
            "16",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "slide failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("slide-cpu"));
}

#[test]
fn simulate_reports_gap() {
    let out = asgd()
        .args([
            "simulate",
            "--gpus",
            "4",
            "--batch",
            "32",
            "--reps",
            "20",
            "--dataset",
            "tiny",
            "--hidden",
            "16",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "simulate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("gpu0"));
    assert!(stdout.contains("gap"), "{stdout}");
}

#[test]
fn missing_flag_value_is_reported() {
    let out = asgd().args(["train", "--gpus"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs a value"));
}
