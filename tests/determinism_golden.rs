//! Golden determinism gate (tier-1): a fixed-seed run must reproduce
//! checked-in checksums of its dispatch trace and final model, byte for
//! byte, on every machine and at every `ASGD_THREADS` setting.
//!
//! The trainer's contract is that scheduling consumes only virtual device
//! clocks and seeded RNG, and that all floating-point reductions fix their
//! association order — so these values are constants of the codebase, not
//! of the host. If a change legitimately alters the numerics (new kernel
//! order, different merge arithmetic), re-derive the constants by running
//! this test and copying the printed values; an *unintentional* mismatch is
//! a determinism regression.

use adaptive_sgd::collective::InterNode;
use adaptive_sgd::core::{
    algorithms,
    trainer::{RunConfig, Trainer},
    ClusterConfig,
};
use adaptive_sgd::data::{generate, DatasetSpec};
use adaptive_sgd::gpusim::profile::heterogeneous_server;
use adaptive_sgd::stats::fnv1a;

fn golden_run() -> adaptive_sgd::core::metrics::RunResult {
    let ds = generate(&DatasetSpec::tiny("golden"), 5);
    let mut cfg = RunConfig::paper_defaults(64, 8);
    cfg.hidden = 16;
    cfg.base_lr = 0.2;
    cfg.seed = 42;
    cfg.mega_batch_limit = Some(3);
    cfg.overhead_scale = 0.001;
    cfg.trace = true;
    Trainer::new(algorithms::adaptive_sgd(), heterogeneous_server(3), cfg).run(&ds)
}

const GOLDEN_TRACE_FNV: u64 = 0x63a8_f15d_ffcb_a276;
const GOLDEN_MODEL_FNV: u64 = 0x47e2_857a_2f16_1107;

#[test]
fn fixed_seed_run_matches_checked_in_checksums() {
    let result = golden_run();
    let trace_fnv = fnv1a(result.trace.bytes());
    let model_fnv = fnv1a(result.final_model.iter().flat_map(|w| w.to_le_bytes()));
    assert!(!result.trace.is_empty(), "trace capture was disabled");
    assert!(
        trace_fnv == GOLDEN_TRACE_FNV && model_fnv == GOLDEN_MODEL_FNV,
        "golden checksums diverged:\n  trace: got {trace_fnv:#018x}, want {GOLDEN_TRACE_FNV:#018x}\n  model: got {model_fnv:#018x}, want {GOLDEN_MODEL_FNV:#018x}\n\
         If this change is *supposed* to alter the numerics or the trace \
         format, update the constants in tests/determinism_golden.rs."
    );
}

/// The same fixed-seed run over a simulated 2-server × 3-device cluster:
/// the two-level hierarchical merge (intra-node pool, inter-node ring over
/// the slow ethernet link) must be just as much a constant of the codebase
/// as the single-server path — scheduling consumes only virtual clocks, and
/// the hierarchical schedule never changes the reduction's arithmetic
/// association (see `asgd-collective::hierarchical`, "The reduction
/// contract").
fn cluster_golden_run() -> adaptive_sgd::core::metrics::RunResult {
    let ds = generate(&DatasetSpec::tiny("golden"), 5);
    let mut cfg = RunConfig::paper_defaults(64, 8);
    cfg.hidden = 16;
    cfg.base_lr = 0.2;
    cfg.seed = 42;
    cfg.mega_batch_limit = Some(3);
    cfg.overhead_scale = 0.001;
    cfg.trace = true;
    cfg.cluster = Some(ClusterConfig {
        servers: 2,
        devices_per_server: 3,
        inter: InterNode::Ring,
    });
    Trainer::new(algorithms::adaptive_sgd(), heterogeneous_server(6), cfg).run(&ds)
}

const CLUSTER_TRACE_FNV: u64 = 0x4e72_e7e3_1dd0_b96b;
const CLUSTER_MODEL_FNV: u64 = 0x0523_0ee1_1826_c900;

#[test]
fn cluster_fixed_seed_run_matches_checked_in_checksums() {
    let result = cluster_golden_run();
    let trace_fnv = fnv1a(result.trace.bytes());
    let model_fnv = fnv1a(result.final_model.iter().flat_map(|w| w.to_le_bytes()));
    assert!(!result.trace.is_empty(), "trace capture was disabled");
    assert!(
        trace_fnv == CLUSTER_TRACE_FNV && model_fnv == CLUSTER_MODEL_FNV,
        "cluster golden checksums diverged:\n  trace: got {trace_fnv:#018x}, want {CLUSTER_TRACE_FNV:#018x}\n  model: got {model_fnv:#018x}, want {CLUSTER_MODEL_FNV:#018x}\n\
         If this change is *supposed* to alter the numerics or the trace \
         format, update the constants in tests/determinism_golden.rs."
    );
}

#[test]
fn cluster_golden_run_is_thread_invariant() {
    // The in-process twin of ci.sh's 64×4 `cluster_probe` gate: the worker
    // pool size must never leak into a clustered run, however the intra-node
    // and inter-node phases interleave on the host.
    adaptive_sgd::tensor::parallel::override_threads(1);
    let a = cluster_golden_run();
    adaptive_sgd::tensor::parallel::override_threads(8);
    let b = cluster_golden_run();
    adaptive_sgd::tensor::parallel::override_threads(0);
    assert_eq!(a.trace, b.trace, "cluster trace depends on thread count");
    assert_eq!(
        a.final_model, b.final_model,
        "cluster model bits depend on thread count"
    );
}

#[test]
fn golden_run_is_stable_within_a_process() {
    // The cheaper sibling check: two in-process runs agree exactly. A
    // failure here (with the checksum test passing) means nondeterminism
    // crept in *between* runs — a stateful cache or pool leak.
    let a = golden_run();
    let b = golden_run();
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.final_model, b.final_model);
}
