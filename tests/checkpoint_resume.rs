//! Pause/resume integration: a run checkpointed at a mega-batch boundary
//! continues training from the snapshot.

use adaptive_sgd::core::checkpoint::TrainingState;
use adaptive_sgd::core::{
    algorithms,
    trainer::{RunConfig, Trainer},
};
use adaptive_sgd::data::{generate, DatasetSpec};
use adaptive_sgd::gpusim::profile::heterogeneous_server;

fn config(megas: usize) -> RunConfig {
    let mut c = RunConfig::paper_defaults(32, 8);
    c.hidden = 16;
    c.base_lr = 0.3;
    c.mega_batch_limit = Some(megas);
    c.overhead_scale = 0.001;
    c
}

#[test]
fn resume_continues_from_snapshot() {
    let ds = generate(&DatasetSpec::tiny("resume"), 11);
    let trainer = Trainer::new(
        algorithms::adaptive_sgd(),
        heterogeneous_server(2),
        config(4),
    );
    let first = trainer.run(&ds);
    let state = first.final_state.clone().expect("GPU runs produce state");
    assert_eq!(state.megas_done, 4);

    // Serialize through the binary format, as a real pause/restart would.
    let restored = TrainingState::decode(state.encode()).unwrap();
    let second = trainer.run_resumed(&ds, &restored);

    // Merge indices continue where the first run stopped.
    assert_eq!(second.records.first().unwrap().merge_index, 4);
    assert_eq!(second.records.last().unwrap().merge_index, 7);
    assert_eq!(second.final_state.unwrap().megas_done, 8);

    // The resumed run starts from the trained model, not from scratch: its
    // first-merge accuracy should be at least the cold run's first-merge
    // accuracy (it has 4 mega-batches of training behind it).
    assert!(second.records.first().unwrap().accuracy >= first.records.first().unwrap().accuracy);
}

#[test]
fn resumed_hyperparameters_carry_over() {
    let ds = generate(&DatasetSpec::tiny("resume2"), 12);
    // Strongly heterogeneous pair so batch sizes diverge quickly.
    let profiles = vec![
        adaptive_sgd::gpusim::DeviceProfile::v100("fast"),
        adaptive_sgd::gpusim::DeviceProfile::v100("slow").with_speed(0.5),
    ];
    let trainer = Trainer::new(algorithms::adaptive_sgd(), profiles, config(6));
    let first = trainer.run(&ds);
    let state = first.final_state.unwrap();
    let adapted_sizes: Vec<f64> = state.hypers.iter().map(|h| h.batch_size).collect();
    assert_ne!(adapted_sizes[0], adapted_sizes[1], "sizes never adapted");

    let second = trainer.run_resumed(&ds, &state);
    // The resumed run's first record reflects the carried-over sizes (it
    // does not reset to b_max for everyone).
    let first_record = &second.records[0];
    assert!(
        (first_record.batch_sizes[1] - adapted_sizes[1]).abs()
            <= adaptive_sgd::core::ScalingParams::paper_defaults(32).beta * 3.0,
        "resumed batch size jumped: {:?} vs snapshot {:?}",
        first_record.batch_sizes,
        adapted_sizes
    );
}

#[test]
fn resume_is_deterministic_through_recycled_arena_merges() {
    // A resumed run crosses several merge boundaries, so the scheduler's
    // merge arena gets lent/restored repeatedly with recycled buffers.
    // Resuming twice from the same snapshot must give bit-identical models
    // and accuracy curves — recycling must not leak state between merges.
    let ds = generate(&DatasetSpec::tiny("resume5"), 15);
    let trainer = Trainer::new(
        algorithms::adaptive_sgd(),
        heterogeneous_server(4),
        config(3),
    );
    let state = trainer.run(&ds).final_state.unwrap();
    let snapshot = TrainingState::decode(state.encode()).unwrap();

    let a = trainer.run_resumed(&ds, &snapshot);
    let b = trainer.run_resumed(&ds, &snapshot);
    assert!(a.records.len() >= 2, "need multiple merges to recycle");
    let bits = |m: &[f32]| m.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&a.final_model), bits(&b.final_model));
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.accuracy.to_bits(), rb.accuracy.to_bits());
        // mean_loss is accumulated in manager-reply *arrival* order, which
        // thread scheduling may permute by a ULP; it never feeds back into
        // the models, so a tolerance (not bit) comparison is correct here.
        assert!((ra.mean_loss - rb.mean_loss).abs() <= 1e-9 * ra.mean_loss.abs());
    }
}

#[test]
#[should_panic(expected = "checkpoint does not match the GPU count")]
fn resume_with_wrong_gpu_count_panics() {
    let ds = generate(&DatasetSpec::tiny("resume3"), 13);
    let two = Trainer::new(
        algorithms::adaptive_sgd(),
        heterogeneous_server(2),
        config(2),
    );
    let state = two.run(&ds).final_state.unwrap();
    let four = Trainer::new(
        algorithms::adaptive_sgd(),
        heterogeneous_server(4),
        config(2),
    );
    let _ = four.run_resumed(&ds, &state);
}

#[test]
#[should_panic(expected = "does not match the model architecture")]
fn resume_with_wrong_architecture_panics() {
    let ds = generate(&DatasetSpec::tiny("resume4"), 14);
    let trainer = Trainer::new(
        algorithms::adaptive_sgd(),
        heterogeneous_server(2),
        config(2),
    );
    let mut state = trainer.run(&ds).final_state.unwrap();
    state.global.truncate(10);
    let _ = trainer.run_resumed(&ds, &state);
}
