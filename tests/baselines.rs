//! Integration tests of the baseline algorithms against Adaptive SGD — the
//! qualitative relationships the paper's Figures 4 and 5 rest on.

use adaptive_sgd::core::slide::{SlideConfig, SlideTrainer};
use adaptive_sgd::core::{
    algorithms,
    trainer::{RunConfig, Trainer},
};
use adaptive_sgd::data::{generate, DatasetSpec, XmlDataset};
use adaptive_sgd::gpusim::profile::heterogeneous_server;

fn dataset() -> XmlDataset {
    generate(&DatasetSpec::amazon_670k(0.001), 7)
}

fn config(mega_batches: usize) -> RunConfig {
    let mut c = RunConfig::paper_defaults(64, 16);
    c.hidden = 32;
    c.base_lr = 0.3;
    c.mega_batch_limit = Some(mega_batches);
    c.overhead_scale = 0.001;
    c
}

#[test]
fn all_gpu_algorithms_complete_and_learn() {
    let ds = dataset();
    for spec in algorithms::all_gpu_algorithms() {
        let name = spec.name.clone();
        let result = Trainer::new(spec, heterogeneous_server(2), config(6)).run(&ds);
        assert_eq!(result.records.len(), 6, "{name} record count");
        assert!(
            result.best_accuracy() > 0.1,
            "{name} failed to learn: {}",
            result.best_accuracy()
        );
    }
}

#[test]
fn tensorflow_pays_more_simulated_time_per_epoch() {
    // §V-B: TensorFlow's epoch execution and per-batch mirrored aggregation
    // make it far slower in wall-clock for the same number of samples.
    let ds = dataset();
    let adaptive = Trainer::new(
        algorithms::adaptive_sgd(),
        heterogeneous_server(2),
        config(4),
    )
    .run(&ds);
    let tf = Trainer::new(
        algorithms::tensorflow_sync(),
        heterogeneous_server(2),
        config(4),
    )
    .run(&ds);
    // Same samples processed (4 mega-batches each): compare elapsed time.
    let ta = adaptive.records.last().unwrap().sim_time;
    let tt = tf.records.last().unwrap().sim_time;
    assert!(
        tt > 1.5 * ta,
        "tensorflow {tt}s should be well above adaptive {ta}s"
    );
}

#[test]
fn elastic_straggles_behind_adaptive_in_wall_clock() {
    // Static partitioning waits for the slowest GPU each mega-batch;
    // dynamic scheduling fills the gap. Same samples => less time.
    let ds = dataset();
    let adaptive = Trainer::new(
        algorithms::adaptive_sgd(),
        heterogeneous_server(4),
        config(6),
    )
    .run(&ds);
    let elastic = Trainer::new(
        algorithms::elastic_sgd(),
        heterogeneous_server(4),
        config(6),
    )
    .run(&ds);
    let ta = adaptive.records.last().unwrap().sim_time;
    let te = elastic.records.last().unwrap().sim_time;
    assert!(
        ta < te,
        "adaptive ({ta}s) should process the same mega-batches faster than elastic ({te}s)"
    );
}

#[test]
fn slide_wins_statistical_efficiency_loses_wall_clock() {
    // Fig. 5: SLIDE reaches accuracy targets in fewer epochs (more updates)
    // but needs far more simulated time than any GPU configuration.
    let ds = dataset();
    let adaptive = Trainer::new(
        algorithms::adaptive_sgd(),
        heterogeneous_server(2),
        config(8),
    )
    .run(&ds);

    let mut slide_cfg = SlideConfig::defaults(64 * 16);
    slide_cfg.hidden = 32;
    slide_cfg.k_bits = 5;
    slide_cfg.lr = 0.1;
    slide_cfg.sample_limit = Some((ds.train.len() * 10) as u64);
    let slide = SlideTrainer::new(slide_cfg).run(&ds);

    let target = adaptive.best_accuracy().min(slide.best_accuracy()) * 0.8;
    let (gpu_epochs, gpu_time) = (
        adaptive.epochs_to_accuracy(target).expect("gpu reaches"),
        adaptive.time_to_accuracy(target).expect("gpu reaches"),
    );
    let (slide_epochs, slide_time) = (
        slide.epochs_to_accuracy(target).expect("slide reaches"),
        slide.time_to_accuracy(target).expect("slide reaches"),
    );
    assert!(
        slide_epochs <= gpu_epochs,
        "slide epochs {slide_epochs} vs gpu {gpu_epochs}"
    );
    assert!(
        slide_time > gpu_time,
        "slide time {slide_time} vs gpu {gpu_time}"
    );
}

#[test]
fn crossbow_is_more_volatile_than_adaptive() {
    // The paper attributes CROSSBOW's instability to its sensitive central
    // update. Measure curve volatility (mean |Δaccuracy| between records).
    let ds = dataset();
    let volatility = |records: &[adaptive_sgd::core::MergeRecord]| -> f64 {
        let diffs: Vec<f64> = records
            .windows(2)
            .map(|w| (w[1].accuracy - w[0].accuracy).abs())
            .collect();
        diffs.iter().sum::<f64>() / diffs.len().max(1) as f64
    };
    let adaptive = Trainer::new(
        algorithms::adaptive_sgd(),
        heterogeneous_server(2),
        config(8),
    )
    .run(&ds);
    let crossbow = Trainer::new(
        algorithms::crossbow_sma(),
        heterogeneous_server(2),
        config(8),
    )
    .run(&ds);
    // Adaptive should never be dramatically *more* volatile than CROSSBOW.
    let va = volatility(&adaptive.records[2..]);
    let vc = volatility(&crossbow.records[2..]);
    assert!(va <= vc + 0.05, "adaptive volatility {va} vs crossbow {vc}");
}

#[test]
fn ablations_run_and_stay_in_reasonable_accuracy_range() {
    let ds = dataset();
    for spec in [
        algorithms::adaptive_without_scaling(),
        algorithms::adaptive_without_perturbation(),
        algorithms::adaptive_with_plain_average(),
    ] {
        let name = spec.name.clone();
        let result = Trainer::new(spec, heterogeneous_server(2), config(5)).run(&ds);
        assert!(
            result.best_accuracy() > 0.1,
            "{name}: {}",
            result.best_accuracy()
        );
    }
}

#[test]
fn no_perturbation_ablation_never_perturbs() {
    let ds = dataset();
    let result = Trainer::new(
        algorithms::adaptive_without_perturbation(),
        heterogeneous_server(4),
        config(5),
    )
    .run(&ds);
    assert_eq!(result.perturbation_frequency(), 0.0);
}
