//! Offline stand-in for the `bytes` crate.
//!
//! Provides cheaply cloneable immutable [`Bytes`] (an `Arc`-shared view), a
//! growable [`BytesMut`] builder, and the [`Buf`]/[`BufMut`] trait surface
//! the checkpoint codecs use (little-endian integer/float accessors).

use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Remaining length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view over `range` of the remaining bytes (shares storage).
    ///
    /// # Panics
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        assert!(range.start <= range.end && range.end <= self.len());
        Self {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the remaining bytes into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Self {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Sequential little-endian reads over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `dst.len()` bytes, advancing the cursor.
    ///
    /// # Panics
    /// Panics when fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Advances the cursor by `n` bytes.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "Buf: out of bytes");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "Buf: advance past end");
        self.start += n;
    }
}

/// Sequential little-endian writes into a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::with_capacity(64);
        w.put_slice(b"HDR!");
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_f32_le(1.5);
        w.put_f64_le(-2.25);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 4 + 1 + 4 + 8 + 4 + 8);
        let mut hdr = [0u8; 4];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR!");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_is_a_shared_view() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(b.len(), 5, "parent unchanged");
        assert_eq!(s.to_vec(), vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of bytes")]
    fn reading_past_end_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u32_le();
    }
}
