//! Offline stand-in for `parking_lot`: non-poisoning locks over `std::sync`.
//!
//! Matches the parking_lot calling convention (`lock()` returns the guard
//! directly, no `Result`); a poisoned std lock is treated as acquired, which
//! is exactly parking_lot's behavior of not tracking poisoning at all.

/// A mutex whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

/// A readers-writer lock whose acquisitions never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0usize);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
