//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so this vendored
//! crate provides exactly the surface the workspace uses: an explicitly
//! seeded [`rngs::StdRng`], the [`SeedableRng::seed_from_u64`] constructor,
//! and the [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the same
//! stream as upstream `StdRng` (ChaCha12), but every consumer in this
//! workspace only relies on determinism for a fixed seed, never on a
//! specific stream.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from an integer seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Values samplable uniformly from the generator's raw bits.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable uniformly (the argument type of [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draws one value of the range from `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Widening-multiply bounded draw (Lemire); the tiny modulo
                // bias of the plain approach would be harmless here, but
                // this is just as cheap.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )+};
}

int_range_impls!(usize, u64, u32, u16, u8);

macro_rules! signed_int_range_impls {
    ($($t:ty => $u:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i64).wrapping_add(hi as i64) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = ((end as i64).wrapping_sub(start as i64) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (start as i64).wrapping_add(hi as i64) as $t
            }
        }
    )+};
}

signed_int_range_impls!(i64 => u64, i32 => u32, i16 => u16, i8 => u8, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        // Uniform over [start, end); the closed upper endpoint has measure
        // zero, so sharing the half-open draw keeps the streams identical.
        let u = f64::sample_standard(rng);
        start + (end - start) * u
    }
}

impl SampleRange<f32> for core::ops::RangeInclusive<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        let u = f32::sample_standard(rng);
        start + (end - start) * u
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f32::sample_standard(rng);
        self.start + (self.end - self.start) * u
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's standard domain
    /// (`[0, 1)` for floats, full width for integers).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++ with a
    /// SplitMix64-expanded seed. Deterministic, `Clone`, `Send`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure for
            // xoshiro generators.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 2);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(3usize..=4);
            assert!(v == 3 || v == 4);
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(-1.0f64..1.0)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let v = draw(&mut rng);
        assert!((-1.0..1.0).contains(&v));
    }
}
