//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest surface this workspace uses:
//! the [`proptest!`] test macro, `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, range and tuple strategies, `prop_map`, and
//! `collection::vec`. Cases are generated from a deterministic per-test RNG
//! (seeded from the test name), so failures reproduce across runs. There is
//! no shrinking: a failing case reports its index and message only.

/// Run-time configuration of a property test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Test-runner plumbing used by the macros.
pub mod test_runner {
    use rand::{rngs::StdRng, RngCore, SeedableRng};

    /// The deterministic per-test RNG driving case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Seeds from a test name (FNV-1a), so every test has its own
        /// reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self {
                inner: StdRng::seed_from_u64(h),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    /// A failed property: carries the formatted assertion message.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Wraps an assertion message.
        pub fn fail(msg: String) -> Self {
            Self(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Generates values of `Self::Value` from a [`TestRng`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct OneOf<T> {
        branches: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Wraps a non-empty list of branches.
        pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !branches.is_empty(),
                "prop_oneof! needs at least one branch"
            );
            Self { branches }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.branches.len());
            self.branches[i].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )+};
    }

    range_strategy!(usize, u64, u32, u16, u8, i64, i32);

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for core::ops::RangeInclusive<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
    );
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Length specification of [`vec`]: a fixed size or a size range.
    #[derive(Debug, Clone)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Fixed(usize),
        /// Uniformly drawn from `[start, end)`.
        Range(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Fixed(n)
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange::Range(r.start, r.end)
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange::Range(*r.start(), *r.end() + 1)
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose elements come from `elem` and whose length
    /// follows `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = match self.size {
                SizeRange::Fixed(n) => n,
                SizeRange::Range(lo, hi) => rng.gen_range(lo..hi.max(lo + 1)),
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public surface.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!(
                            "proptest '{}' case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (with
/// formatted context) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..9, y in -1.5f32..2.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.5..2.5).contains(&y));
        }

        #[test]
        fn tuples_and_vec((a, b) in (0u64..10, 0u64..10), v in collection::vec(0usize..5, 0..7)) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(v.len() < 7);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn mapped_strategy(n in (1usize..4).prop_map(|n| n * 2)) {
            prop_assert!(n == 2 || n == 4 || n == 6, "unexpected {n}");
        }

        #[test]
        fn oneof_picks_every_branch(k in prop_oneof![Just(1usize), Just(2usize)]) {
            prop_assert!(k == 1 || k == 2);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        let sa = crate::strategy::Strategy::generate(&(0u64..1000), &mut a);
        let sb = crate::strategy::Strategy::generate(&(0u64..1000), &mut b);
        assert_eq!(sa, sb);
    }
}
