//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion surface this workspace's benches
//! use: `Criterion`, `benchmark_group`, `bench_function` /
//! `bench_with_input`, `Bencher::iter` / `iter_batched`, `Throughput`,
//! `BenchmarkId`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a simple calibrated wall-clock
//! harness: one warm-up pass sizes the per-sample iteration count, then
//! `sample_size` samples are timed and min/median/mean per-iteration times
//! are printed (plus throughput when configured).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation: converts per-iteration time into a rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Controls how `iter_batched` amortizes setup; the shim times the routine
/// per batch regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Input is cheap to set up.
    SmallInput,
    /// Input is expensive to set up.
    LargeInput,
    /// Fresh input every iteration.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` back-to-back for the harness-chosen iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

#[derive(Debug, Clone, Copy)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
}

/// The benchmark harness root.
pub struct Criterion {
    config: Config,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            config: Config {
                sample_size: 20,
                measurement_time: Duration::from_millis(600),
            },
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Sets the total time budget each benchmark's samples aim to fill.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; the shim has no CLI.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().id, self.config, None, f);
        self
    }
}

/// A named group of benchmarks sharing throughput/config settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.config.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&full, self.criterion.config, self.throughput, f);
        self
    }

    /// Runs one benchmark that borrows a shared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&full, self.criterion.config, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    config: Config,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Warm-up / calibration pass: one iteration tells us roughly how long a
    // single call takes so samples can be sized to fill the time budget.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter_ns = (bencher.elapsed.as_nanos() as u64).max(1);

    let per_sample_ns =
        (config.measurement_time.as_nanos() as u64 / config.sample_size.max(1) as u64).max(1);
    let iters = (per_sample_ns / per_iter_ns).clamp(1, 1_000_000_000);

    let mut sample_ns: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        bencher.iters = iters;
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        sample_ns.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
    }
    sample_ns.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));

    let min = sample_ns[0];
    let median = sample_ns[sample_ns.len() / 2];
    let mean = sample_ns.iter().sum::<f64>() / sample_ns.len() as f64;

    println!(
        "{id:<50} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        sample_ns.len(),
        iters,
    );
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let rate = count as f64 / (median / 1e9);
        println!("{:<50} thrpt: {:.3e} {unit}/s (median)", "", rate);
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a benchmark group function, with or without a custom config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_selftest");
        group.throughput(Throughput::Elements(64));
        group.bench_function(BenchmarkId::new("sum", 64), |b| {
            b.iter(|| (0..64u64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter_batched(
                || vec![1u64; n as usize],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    #[test]
    fn harness_runs_to_completion() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        sample_bench(&mut c);
        c.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(2));
        targets = sample_bench
    }

    #[test]
    fn group_macro_expands() {
        benches();
    }
}
