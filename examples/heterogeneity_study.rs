//! Study of the two heterogeneity sources the paper identifies (§I):
//! inter-GPU variation on an *identical* batch (Fig. 1) and the
//! nnz-driven variation across batches of the same size — then watch
//! Adaptive SGD's batch size scaling absorb both (Fig. 6a).
//!
//! ```text
//! cargo run --release --example heterogeneity_study
//! ```

use adaptive_sgd::core::{
    algorithms,
    trainer::{RunConfig, Trainer},
};
use adaptive_sgd::data::{generate, DatasetSpec};
use adaptive_sgd::gpusim::device::build_server;
use adaptive_sgd::gpusim::profile::heterogeneous_server;
use adaptive_sgd::model::{workload::epoch_kernels, MlpConfig};
use adaptive_sgd::stats::StreamingSummary;

fn main() {
    let spec = DatasetSpec::amazon_670k(0.005);
    let dataset = generate(&spec, 7);
    let mconfig = MlpConfig {
        num_features: dataset.num_features,
        hidden: 64,
        num_classes: dataset.num_labels,
    };

    // --- Part 1: identical batch, four "identical" V100s (Fig. 1) ---
    println!("== identical batch across 4 V100s (Fig. 1) ==");
    let ids: Vec<usize> = (0..256).collect();
    let nnz: usize = ids.iter().map(|&i| dataset.train.features.row_nnz(i)).sum();
    let kinds = epoch_kernels(&mconfig, ids.len(), nnz);
    let mut devices = build_server(&heterogeneous_server(4), 99);
    let mut per_gpu = Vec::new();
    for d in devices.iter_mut() {
        let mut s = StreamingSummary::new();
        for _ in 0..200 {
            s.record(d.execute_all(&kinds));
        }
        per_gpu.push(s);
    }
    let mut means = StreamingSummary::new();
    for (i, s) in per_gpu.iter().enumerate() {
        println!(
            "  gpu{i}: mean epoch {:.2} us (std {:.2})",
            s.mean() * 1e6,
            s.std_dev() * 1e6
        );
        means.record(s.mean());
    }
    println!(
        "  fastest-to-slowest gap: {:.1}% (paper: up to 32%)",
        means.relative_gap().unwrap() * 100.0
    );

    // --- Part 2: same-size batches, different nnz ---
    println!("\n== same-size batches, nnz-driven variation ==");
    let mut batch_costs = StreamingSummary::new();
    let mut d = build_server(&heterogeneous_server(1), 5).remove(0);
    for b in 0..50 {
        let ids: Vec<usize> = (b * 256..(b + 1) * 256)
            .map(|i| i % dataset.train.len())
            .collect();
        let nnz: usize = ids.iter().map(|&i| dataset.train.features.row_nnz(i)).sum();
        batch_costs.record(d.execute_all(&epoch_kernels(&mconfig, ids.len(), nnz)));
    }
    println!(
        "  256-sample batches on one GPU: mean {:.2} us, min {:.2}, max {:.2} (spread {:.1}%)",
        batch_costs.mean() * 1e6,
        batch_costs.min().unwrap() * 1e6,
        batch_costs.max().unwrap() * 1e6,
        batch_costs.relative_gap().unwrap() * 100.0
    );

    // --- Part 3: batch size scaling absorbs the heterogeneity (Fig. 6a) ---
    println!("\n== adaptive batch size evolution (Fig. 6a) ==");
    let mut config = RunConfig::paper_defaults(64, 16);
    config.hidden = 64;
    config.base_lr = 0.1;
    config.mega_batch_limit = Some(12);
    config.overhead_scale = 0.005;
    let result =
        Trainer::new(algorithms::adaptive_sgd(), heterogeneous_server(4), config).run(&dataset);
    println!("  mega-batch | per-GPU batch sizes | per-GPU updates");
    for r in &result.records {
        println!(
            "  {:>10} | {:?} | {:?}",
            r.merge_index,
            r.batch_sizes
                .iter()
                .map(|b| b.round() as i64)
                .collect::<Vec<_>>(),
            r.updates
        );
    }
    let last = result.records.last().unwrap();
    let spread = last.updates.iter().max().unwrap() - last.updates.iter().min().unwrap();
    println!("  final update-count spread across GPUs: {spread} (goal: 0)");
}
