//! Wall-clock probe of the scheduler-side merge stage: gather 4 replica
//! models, all-reduce, momentum update, redistribute. Used to compare the
//! allocation-per-merge path against the persistent-arena path.

use std::time::Instant;

use asgd_collective::{allreduce, Algorithm, CollectiveContext};
use asgd_core::merging::apply_global_update;
use asgd_gpusim::{profile, SimTime, Topology};
use asgd_model::{Mlp, MlpConfig};
use asgd_tensor::parallel::par_copy;

fn main() {
    let n = 4;
    // Amazon-670k-like shape (hot_path bench's "amazon" shape).
    let config = MlpConfig {
        num_features: 135_909,
        hidden: 128,
        num_classes: 6_701,
    };
    let mut replicas: Vec<Mlp> = (0..n).map(|g| Mlp::init(&config, 3 + g as u64)).collect();
    let mut global = replicas[0].to_flat();
    let mut prev_global = global.clone();
    let weights = vec![1.0 / n as f64; n];
    let ctx = CollectiveContext::new(Topology::pcie(n), &profile::heterogeneous_server(n));
    let arrivals = vec![SimTime::ZERO; n];
    let algo = Algorithm::MultiStreamRing { partitions: 4 };

    // Persistent arena: per-replica flat buffers recycled across merges.
    let mut bufs: Vec<Vec<f32>> = (0..n).map(|_| Vec::new()).collect();

    let iters = 20;
    let mut times = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        // Gather: managers fill the recycled arena buffers.
        for (r, buf) in replicas.iter().zip(bufs.iter_mut()) {
            r.write_flat_into(buf);
        }
        let _timing = allreduce(&mut bufs, &weights, algo, &ctx, &arrivals);
        apply_global_update(&bufs[0], &mut global, &mut prev_global, 0.9);
        // Redistribute: copy the new global into each recycled buffer, load.
        for (r, buf) in replicas.iter_mut().zip(bufs.iter_mut()) {
            par_copy(&global, buf, 1 << 14);
            r.read_flat_from(buf);
        }
        times.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "merge stage ({} params, {} replicas): median {:.2} ms  min {:.2} ms",
        config.param_len(),
        n,
        times[iters / 2],
        times[0]
    );
}
