//! Compare all five systems of the paper's evaluation — Adaptive SGD,
//! Elastic SGD, CROSSBOW-style SMA, TensorFlow-mirrored, and SLIDE (CPU) —
//! on the same dataset, same initial model, same simulated time budget
//! (the §V-A methodology).
//!
//! ```text
//! cargo run --release --example algorithm_comparison
//! ```

use adaptive_sgd::core::slide::{SlideConfig, SlideTrainer};
use adaptive_sgd::core::{
    algorithms,
    trainer::{RunConfig, Trainer},
    RunResult,
};
use adaptive_sgd::data::{generate, DatasetSpec};
use adaptive_sgd::gpusim::profile::heterogeneous_server;

fn main() {
    let spec = DatasetSpec::amazon_670k(0.005);
    println!("dataset: {}", spec.name);
    let dataset = generate(&spec, 7);

    let b_max = 64;
    let batches_per_mega = 16;
    let mega_limit = 8;

    let mut results: Vec<RunResult> = Vec::new();
    for algo in algorithms::all_gpu_algorithms() {
        let mut config = RunConfig::paper_defaults(b_max, batches_per_mega);
        config.hidden = 64;
        config.base_lr = 0.1;
        config.mega_batch_limit = Some(mega_limit);
        config.overhead_scale = 0.005;
        let name = algo.name.clone();
        println!("running {name} ...");
        results.push(Trainer::new(algo, heterogeneous_server(4), config).run(&dataset));
    }

    // SLIDE runs on the CPU for the same simulated time the GPU runs used.
    let budget = results[0].records.last().map(|r| r.sim_time).unwrap_or(1.0);
    let mut slide_cfg = SlideConfig::defaults(b_max * batches_per_mega);
    slide_cfg.hidden = 64;
    slide_cfg.k_bits = 6;
    slide_cfg.time_limit = Some(budget.max(1e-3) * 50.0);
    slide_cfg.sample_limit = Some((dataset.train.len() * 12) as u64);
    println!("running slide-cpu ...");
    results.push(SlideTrainer::new(slide_cfg).run(&dataset));

    println!(
        "\n{:<22} {:>10} {:>14} {:>10}",
        "algorithm", "best acc", "sim time (s)", "records"
    );
    for r in &results {
        let t_end = r.records.last().map(|x| x.sim_time).unwrap_or(0.0);
        println!(
            "{:<22} {:>10.4} {:>14.4} {:>10}",
            r.name,
            r.best_accuracy(),
            t_end,
            r.records.len()
        );
    }

    // Time-to-accuracy at a shared target (75% of the best observed).
    let target = results
        .iter()
        .map(|r| r.best_accuracy())
        .fold(0.0f64, f64::max)
        * 0.75;
    println!("\ntime to reach {target:.3} top-1 accuracy:");
    for r in &results {
        match r.time_to_accuracy(target) {
            Some(t) => println!("  {:<22} {:>12.4} s", r.name, t),
            None => println!("  {:<22} {:>12}", r.name, "never"),
        }
    }
}
