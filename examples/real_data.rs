//! Train on real Extreme Classification data in libSVM format.
//!
//! Pass paths to XC-format train/test files (e.g. the Amazon-670k or
//! Delicious-200k downloads from the Extreme Classification Repository):
//!
//! ```text
//! cargo run --release --example real_data -- train.txt test.txt
//! ```
//!
//! Without arguments, the example writes a small synthetic dataset to libSVM
//! files in a temp directory, reads it back, and trains on that — exercising
//! the exact ingestion path real data would take.

use adaptive_sgd::core::{
    algorithms,
    trainer::{RunConfig, Trainer},
};
use adaptive_sgd::data::{generate, DatasetSpec, XmlDataset};
use adaptive_sgd::gpusim::profile::heterogeneous_server;
use adaptive_sgd::sparse::libsvm;
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (train_path, test_path) = match args.as_slice() {
        [a, b] => (a.clone(), b.clone()),
        [] => write_demo_files(),
        _ => {
            eprintln!("usage: real_data [<train.libsvm> <test.libsvm>]");
            std::process::exit(2);
        }
    };

    println!("loading {train_path} and {test_path} ...");
    let train = libsvm::read(BufReader::new(
        File::open(&train_path).expect("open train file"),
    ))
    .expect("parse train file");
    let test = libsvm::read(BufReader::new(
        File::open(&test_path).expect("open test file"),
    ))
    .expect("parse test file");
    let dataset = XmlDataset::from_libsvm("libsvm-input", train, test);
    println!(
        "{} samples, {} features, {} labels",
        dataset.train.len(),
        dataset.num_features,
        dataset.num_labels
    );

    let mut config = RunConfig::paper_defaults(32, 8);
    config.hidden = 64;
    config.base_lr = 0.2;
    config.mega_batch_limit = Some(6);
    let result =
        Trainer::new(algorithms::adaptive_sgd(), heterogeneous_server(2), config).run(&dataset);
    for r in &result.records {
        println!(
            "mega-batch {:>2}: sim {:.4}s, epochs {:.2}, top-1 {:.4}",
            r.merge_index, r.sim_time, r.epochs, r.accuracy
        );
    }
    println!("best top-1 accuracy: {:.4}", result.best_accuracy());
}

/// Generates a synthetic dataset and round-trips it through libSVM files.
fn write_demo_files() -> (String, String) {
    let dir = std::env::temp_dir().join("asgd-real-data-demo");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let train_path = dir.join("train.libsvm");
    let test_path = dir.join("test.libsvm");
    println!("no input files given; writing a synthetic demo to {dir:?}");
    let ds = generate(&DatasetSpec::tiny("demo"), 9);
    let to_libsvm = |split: &adaptive_sgd::data::SplitData| libsvm::LibsvmDataset {
        features: split.features.clone(),
        labels: split.labels.clone(),
        num_labels: ds.num_labels,
    };
    let mut w = BufWriter::new(File::create(&train_path).expect("create train"));
    libsvm::write(&mut w, &to_libsvm(&ds.train)).expect("write train");
    let mut w = BufWriter::new(File::create(&test_path).expect("create test"));
    libsvm::write(&mut w, &to_libsvm(&ds.test)).expect("write test");
    (
        train_path.to_string_lossy().into_owned(),
        test_path.to_string_lossy().into_owned(),
    )
}
