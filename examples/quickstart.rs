//! Quickstart: train Adaptive SGD on a synthetic XML dataset over a
//! simulated 4-GPU heterogeneous server and print the accuracy curve.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use adaptive_sgd::core::{
    algorithms,
    trainer::{RunConfig, Trainer},
};
use adaptive_sgd::data::{generate, DatasetSpec, DatasetStats};
use adaptive_sgd::gpusim::profile::heterogeneous_server;

fn main() {
    // A small Amazon-670k-like dataset (0.2% linear scale keeps this example
    // under a few seconds).
    let spec = DatasetSpec::amazon_670k(0.005);
    println!("generating {} ...", spec.name);
    let dataset = generate(&spec, 7);
    let stats = DatasetStats::compute(&dataset);
    println!("{}", DatasetStats::csv_header());
    println!("{}\n", stats.csv_row());

    // Paper defaults: b_max-sized initial batches, mega-batch of 16 batches,
    // b_min = b_max/8, beta = b_min/2, lr linear scaling.
    let mut config = RunConfig::paper_defaults(64, 16);
    config.hidden = 64;
    config.base_lr = 0.1;
    config.mega_batch_limit = Some(10);
    config.overhead_scale = 0.005;
    config.seed = 42;

    let trainer = Trainer::new(algorithms::adaptive_sgd(), heterogeneous_server(4), config);
    println!(
        "training {} on a 4x V100 heterogeneous server ...",
        trainer.spec().name
    );
    let result = trainer.run(&dataset);

    println!("\nmega-batch |  sim time (s) | epochs | top-1 acc | batch sizes");
    for r in &result.records {
        println!(
            "{:>10} | {:>13.4} | {:>6.2} | {:>9.4} | {:?}",
            r.merge_index,
            r.sim_time,
            r.epochs,
            r.accuracy,
            r.batch_sizes
                .iter()
                .map(|b| b.round() as i64)
                .collect::<Vec<_>>()
        );
    }
    println!(
        "\nbest accuracy {:.4}; perturbation fired in {:.0}% of merges",
        result.best_accuracy(),
        result.perturbation_frequency() * 100.0
    );
}
