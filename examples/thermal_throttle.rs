//! Runtime heterogeneity: a GPU thermally throttles mid-training and
//! Adaptive SGD re-balances batch sizes around it — the scenario static
//! partitioning cannot handle.
//!
//! ```text
//! cargo run --release --example thermal_throttle
//! ```

use adaptive_sgd::core::{
    algorithms,
    trainer::{RunConfig, Trainer},
};
use adaptive_sgd::data::{generate, DatasetSpec};
use adaptive_sgd::gpusim::profile::homogeneous_server;

fn main() {
    let scale = 0.005;
    let dataset = generate(&DatasetSpec::amazon_670k(scale), 7);

    let mut config = RunConfig::paper_defaults(64, 16);
    config.hidden = 64;
    config.base_lr = 0.1;
    config.mega_batch_limit = Some(16);
    config.overhead_scale = scale;
    // GPU 2 drops to 45% speed at mega-batch 5 and recovers at 12.
    config.speed_events = vec![(5, 2, 0.45), (12, 2, 1.0)];

    println!("4 identical GPUs; GPU 2 throttles to 45% at mega-batch 5, recovers at 12\n");
    for (name, spec) in [
        ("adaptive-sgd", algorithms::adaptive_sgd()),
        ("elastic-sgd", algorithms::elastic_sgd()),
    ] {
        let result = Trainer::new(spec, homogeneous_server(4), config.clone()).run(&dataset);
        println!("{name}:");
        println!("  mega | sim time (s) | batch sizes           | updates");
        for r in &result.records {
            println!(
                "  {:>4} | {:>12.5} | {:<21} | {:?}",
                r.merge_index,
                r.sim_time,
                format!(
                    "{:?}",
                    r.batch_sizes
                        .iter()
                        .map(|b| b.round() as i64)
                        .collect::<Vec<_>>()
                ),
                r.updates
            );
        }
        println!(
            "  total simulated time: {:.5}s, best accuracy {:.4}\n",
            result.records.last().unwrap().sim_time,
            result.best_accuracy()
        );
    }
    println!(
        "Adaptive shrinks GPU 2's batches during the throttle window and \
         restores them after recovery;\nElastic keeps equal batches and pays \
         the straggler penalty every mega-batch."
    );
}
