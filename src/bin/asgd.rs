//! `asgd` — command-line interface to the Adaptive SGD reproduction.
//!
//! ```text
//! asgd generate --dataset amazon --scale 0.004 --out data/      # write libSVM files
//! asgd stats    --train data/train.libsvm --test data/test.libsvm
//! asgd train    --dataset amazon --algo adaptive --gpus 4 --megas 14
//! asgd train    --train data/train.libsvm --test data/test.libsvm --algo elastic
//! asgd simulate --gpus 4 --batch 256                            # Fig.1-style timing
//! ```
//!
//! Argument parsing is deliberately dependency-free: `--flag value` pairs
//! plus boolean `--flag`s, with `--help` everywhere.

use adaptive_sgd::core::slide::{SlideConfig, SlideTrainer};
use adaptive_sgd::core::{
    algorithms,
    trainer::{RunConfig, Trainer, TrainerSpec},
    RunResult,
};
use adaptive_sgd::data::{generate, DatasetSpec, DatasetStats, SplitData, XmlDataset};
use adaptive_sgd::gpusim::device::build_server;
use adaptive_sgd::gpusim::profile::heterogeneous_server;
use adaptive_sgd::model::{workload::epoch_kernels, MlpConfig};
use adaptive_sgd::sparse::libsvm;
use adaptive_sgd::stats::StreamingSummary;
use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        print_usage();
        return ExitCode::from(2);
    };
    let flags = match Flags::parse(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if flags.bool("help") {
        print_usage();
        return ExitCode::SUCCESS;
    }
    let result = match command.as_str() {
        "generate" => cmd_generate(&flags),
        "stats" => cmd_stats(&flags),
        "train" => cmd_train(&flags),
        "simulate" => cmd_simulate(&flags),
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

fn print_usage() {
    eprintln!(
        "asgd — Adaptive SGD for sparse data on (simulated) heterogeneous GPUs

USAGE: asgd <command> [--flag value]...

COMMANDS:
  generate   write a synthetic XML dataset as libSVM files
             --dataset amazon|delicious|tiny   (default amazon)
             --scale <f64>                     (default 0.004)
             --seed <u64>                      (default 42)
             --out <dir>                       (default .)
  stats      print Table-I statistics of libSVM files
             --train <path> [--test <path>]
  train      train one algorithm and print the accuracy curve
             --algo adaptive|elastic|crossbow|tensorflow|slide (default adaptive)
             --dataset amazon|delicious|tiny   (synthetic) OR
             --train <path> --test <path>      (libSVM files)
             --scale <f64>      dataset + overhead scale (default 0.004)
             --gpus <n>         (default 4)    --megas <n>   (default 14)
             --bmax <n>         (default 192)  --lr <f64>    (default 0.1)
             --batches-per-mega <n> (default 20)
             --hidden <n>       (default 128)  --seed <u64>  (default 42)
             --trace            print the dispatch timeline
             --csv <path>       write the curve as CSV
  simulate   run an identical batch across a heterogeneous server (Fig. 1)
             --gpus <n> (default 4)  --batch <n> (default 256)
             --scale <f64> (default 0.004)  --reps <n> (default 200)

ENVIRONMENT:
  ASGD_THREADS     worker-pool size (default: CPU count); output is
                   bit-identical for any value
  ASGD_PRECISION   f32|bf16 model/merge storage for train (default f32)"
    );
}

/// Minimal `--key value` / `--switch` parser.
struct Flags {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        const SWITCHES: &[&str] = &["trace", "help"];
        let mut values = HashMap::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument '{arg}'"));
            };
            if SWITCHES.contains(&name) {
                switches.push(name.to_string());
                i += 1;
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                values.insert(name.to_string(), value.clone());
                i += 2;
            }
        }
        Ok(Self { values, switches })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(|s| s.as_str())
    }

    fn bool(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse '{v}'")),
        }
    }
}

fn dataset_spec(flags: &Flags) -> Result<DatasetSpec, String> {
    let scale: f64 = flags.parsed("scale", 0.004)?;
    match flags.get("dataset").unwrap_or("amazon") {
        "amazon" => Ok(DatasetSpec::amazon_670k(scale)),
        "delicious" => Ok(DatasetSpec::delicious_200k(scale)),
        "tiny" => Ok(DatasetSpec::tiny("tiny")),
        other => Err(format!("unknown dataset '{other}'")),
    }
}

fn load_or_generate(flags: &Flags) -> Result<XmlDataset, String> {
    if let (Some(train), Some(test)) = (flags.get("train"), flags.get("test")) {
        let read = |path: &str| -> Result<libsvm::LibsvmDataset, String> {
            let f = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
            libsvm::read(BufReader::new(f)).map_err(|e| format!("{path}: {e}"))
        };
        Ok(XmlDataset::from_libsvm("libsvm", read(train)?, read(test)?))
    } else {
        let spec = dataset_spec(flags)?;
        let seed: u64 = flags.parsed("seed", 42u64)?;
        Ok(generate(&spec, seed ^ 0xD5))
    }
}

fn cmd_generate(flags: &Flags) -> Result<(), String> {
    let spec = dataset_spec(flags)?;
    let seed: u64 = flags.parsed("seed", 42u64)?;
    let out = std::path::PathBuf::from(flags.get("out").unwrap_or("."));
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;
    let ds = generate(&spec, seed ^ 0xD5);
    let write_split = |split: &SplitData, name: &str| -> Result<(), String> {
        let path = out.join(format!("{}.{name}.libsvm", spec.name.replace('@', "-")));
        let f = std::fs::File::create(&path).map_err(|e| e.to_string())?;
        let wrapped = libsvm::LibsvmDataset {
            features: split.features.clone(),
            labels: split.labels.clone(),
            num_labels: ds.num_labels,
        };
        libsvm::write(&mut BufWriter::new(f), &wrapped).map_err(|e| e.to_string())?;
        println!("wrote {path:?}");
        Ok(())
    };
    write_split(&ds.train, "train")?;
    write_split(&ds.test, "test")?;
    println!("{}", DatasetStats::csv_header());
    println!("{}", DatasetStats::compute(&ds).csv_row());
    Ok(())
}

fn cmd_stats(flags: &Flags) -> Result<(), String> {
    let train_path = flags.get("train").ok_or("--train is required")?;
    let f = std::fs::File::open(train_path).map_err(|e| format!("{train_path}: {e}"))?;
    let train = libsvm::read(BufReader::new(f)).map_err(|e| e.to_string())?;
    let test = match flags.get("test") {
        Some(p) => {
            let f = std::fs::File::open(p).map_err(|e| format!("{p}: {e}"))?;
            libsvm::read(BufReader::new(f)).map_err(|e| e.to_string())?
        }
        None => libsvm::LibsvmDataset {
            features: adaptive_sgd::sparse::CsrMatrix::zeros(0, train.features.cols()),
            labels: vec![],
            num_labels: train.num_labels,
        },
    };
    let ds = XmlDataset::from_libsvm(train_path, train, test);
    println!("{}", DatasetStats::csv_header());
    println!("{}", DatasetStats::compute(&ds).csv_row());
    Ok(())
}

fn algo_by_name(name: &str) -> Result<TrainerSpec, String> {
    match name {
        "adaptive" => Ok(algorithms::adaptive_sgd()),
        "elastic" => Ok(algorithms::elastic_sgd()),
        "crossbow" => Ok(algorithms::crossbow_sma()),
        "tensorflow" => Ok(algorithms::tensorflow_sync()),
        other => Err(format!(
            "unknown algorithm '{other}' (adaptive|elastic|crossbow|tensorflow|slide)"
        )),
    }
}

fn cmd_train(flags: &Flags) -> Result<(), String> {
    let ds = load_or_generate(flags)?;
    let gpus: usize = flags.parsed("gpus", 4usize)?;
    let megas: usize = flags.parsed("megas", 14usize)?;
    let b_max: usize = flags.parsed("bmax", 192usize)?;
    let batches: usize = flags.parsed("batches-per-mega", 20usize)?;
    let hidden: usize = flags.parsed("hidden", 128usize)?;
    let lr: f64 = flags.parsed("lr", 0.1f64)?;
    let seed: u64 = flags.parsed("seed", 42u64)?;
    let scale: f64 = flags.parsed("scale", 0.004f64)?;
    let algo_name = flags.get("algo").unwrap_or("adaptive");

    let result: RunResult = if algo_name == "slide" {
        let mut cfg = SlideConfig::defaults(b_max * batches);
        cfg.hidden = hidden;
        cfg.seed = seed;
        cfg.lr = lr * cfg.batch_size as f64 / b_max as f64;
        cfg.k_bits = ((ds.num_labels as f64 / 16.0).log2().round() as usize).clamp(3, 12);
        cfg.sample_limit = Some((b_max * batches * megas) as u64);
        SlideTrainer::new(cfg).run(&ds)
    } else {
        let spec = algo_by_name(algo_name)?;
        let mut config = RunConfig::paper_defaults(b_max, batches);
        config.hidden = hidden;
        config.base_lr = lr;
        config.seed = seed;
        config.mega_batch_limit = Some(megas);
        config.overhead_scale = scale;
        config.precision = asgd_tensor::Precision::from_env_or(config.precision);
        config.trace = flags.bool("trace");
        Trainer::new(spec, heterogeneous_server(gpus), config).run(&ds)
    };

    println!(
        "algorithm {} on {} ({} train / {} test samples, {} classes)",
        result.name,
        ds.name,
        ds.train.len(),
        ds.test.len(),
        ds.num_labels
    );
    println!("merge |  sim time (s) | epochs | top-1 | batch sizes");
    for r in &result.records {
        println!(
            "{:>5} | {:>13.6} | {:>6.2} | {:>5.3} | {:?}",
            r.merge_index,
            r.sim_time,
            r.epochs,
            r.accuracy,
            r.batch_sizes
                .iter()
                .map(|b| b.round() as i64)
                .collect::<Vec<_>>()
        );
    }
    println!(
        "best top-1 {:.4}; perturbation in {:.0}% of merges",
        result.best_accuracy(),
        result.perturbation_frequency() * 100.0
    );
    if flags.bool("trace") && !result.trace.is_empty() {
        println!("\ndispatch trace:\n{}", result.trace);
    }
    if let Some(path) = flags.get("csv") {
        std::fs::write(path, result.curve_csv()).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_simulate(flags: &Flags) -> Result<(), String> {
    let gpus: usize = flags.parsed("gpus", 4usize)?;
    let batch: usize = flags.parsed("batch", 256usize)?;
    let reps: usize = flags.parsed("reps", 200usize)?;
    let scale: f64 = flags.parsed("scale", 0.004f64)?;
    let seed: u64 = flags.parsed("seed", 42u64)?;
    let spec = dataset_spec(flags)?;
    let ds = generate(&spec, seed ^ 0xD5);
    let mconfig = MlpConfig {
        num_features: ds.num_features,
        hidden: flags.parsed("hidden", 128usize)?,
        num_classes: ds.num_labels,
    };
    let ids: Vec<usize> = (0..batch.min(ds.train.len())).collect();
    let nnz: usize = ids.iter().map(|&i| ds.train.features.row_nnz(i)).sum();
    let kinds = epoch_kernels(&mconfig, ids.len(), nnz);
    let profiles: Vec<_> = heterogeneous_server(gpus)
        .into_iter()
        .map(|p| p.with_overhead_scale(scale))
        .collect();
    let mut devices = build_server(&profiles, seed);
    println!(
        "identical batch (size {}, nnz {nnz}) x {reps} reps:",
        ids.len()
    );
    let mut means = StreamingSummary::new();
    for (i, d) in devices.iter_mut().enumerate() {
        let mut s = StreamingSummary::new();
        for _ in 0..reps {
            s.record(d.execute_all(&kinds) * 1e6);
        }
        println!(
            "  gpu{i}: mean {:.2} us (std {:.2}, min {:.2}, max {:.2})",
            s.mean(),
            s.std_dev(),
            s.min().unwrap_or(0.0),
            s.max().unwrap_or(0.0)
        );
        means.record(s.mean());
    }
    if let Some(gap) = means.relative_gap() {
        println!(
            "fastest-to-slowest gap: {:.1}% (paper Fig. 1: up to 32%)",
            gap * 100.0
        );
    }
    Ok(())
}
