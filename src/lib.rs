//! **adaptive-sgd** — a Rust reproduction of *"Adaptive Optimization for
//! Sparse Data on Heterogeneous GPUs"* (Ma, Rusu, Wu, Sim — IEEE IPDPSW
//! 2022).
//!
//! This façade crate re-exports the whole workspace under one name. The
//! pieces:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `asgd-core` | Adaptive SGD (Algorithms 1–2), the HeteroGPU trainer, baselines |
//! | [`slide`] | `asgd-slide` | shared LSH layer (SimHash tables, sampled-softmax candidate selection) |
//! | [`model`] | `asgd-model` | the 3-layer sparse-input MLP |
//! | [`data`] | `asgd-data` | synthetic XML datasets + libSVM ingestion |
//! | [`gpusim`] | `asgd-gpusim` | the simulated heterogeneous multi-GPU server |
//! | [`collective`] | `asgd-collective` | ring/tree/multi-stream all-reduce |
//! | [`sparse`] | `asgd-sparse` | CSR matrices + SpMM kernels |
//! | [`tensor`] | `asgd-tensor` | dense kernels (GEMM, softmax, …) |
//! | [`stats`] | `asgd-stats` | seeded distributions + streaming statistics |
//! | [`serve`] | `asgd-serve` | online inference with adaptive micro-batching |
//!
//! # Quickstart
//!
//! ```
//! use adaptive_sgd::core::{algorithms, trainer::{RunConfig, Trainer}};
//! use adaptive_sgd::data::{generate, DatasetSpec};
//! use adaptive_sgd::gpusim::profile::heterogeneous_server;
//!
//! // A tiny synthetic XML dataset and a 2-GPU heterogeneous server.
//! let dataset = generate(&DatasetSpec::tiny("readme"), 1);
//! let mut config = RunConfig::paper_defaults(32, 4);
//! config.hidden = 16;
//! config.mega_batch_limit = Some(3);
//!
//! let result = Trainer::new(algorithms::adaptive_sgd(), heterogeneous_server(2), config)
//!     .run(&dataset);
//! println!("best top-1 accuracy: {:.3}", result.best_accuracy());
//! ```

pub use asgd_collective as collective;
pub use asgd_core as core;
pub use asgd_data as data;
pub use asgd_gpusim as gpusim;
pub use asgd_model as model;
pub use asgd_serve as serve;
pub use asgd_slide as slide;
pub use asgd_sparse as sparse;
pub use asgd_stats as stats;
pub use asgd_tensor as tensor;
