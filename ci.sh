#!/usr/bin/env bash
# CI gate: formatting, lints, and the tier-1 verify line.
#
#   ./ci.sh          # everything
#   ./ci.sh quick    # skip the workspace test pass (tier-1 only)
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

if [[ "${1:-}" != "quick" ]]; then
    echo "== workspace tests =="
    cargo test --workspace -q
fi

echo "CI OK"
