#!/usr/bin/env bash
# CI gate: formatting, lints, and the tier-1 verify line.
#
#   ./ci.sh          # everything
#   ./ci.sh quick    # skip the workspace test pass (tier-1 only)
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

if [[ "${1:-}" != "quick" ]]; then
    echo "== workspace tests =="
    cargo test --workspace -q

    echo "== benches compile (cargo bench --no-run) =="
    cargo bench --workspace --no-run

    echo "== fig2 trace determinism =="
    # The scheduler trace must be byte-for-byte reproducible: regenerate it
    # at the default scale into a scratch dir and diff against the
    # checked-in artifact.
    tmp_out="$(mktemp -d)"
    trap 'rm -rf "$tmp_out"' EXIT
    ASGD_OUT_DIR="$tmp_out" cargo run --release -p asgd-bench --bin fig2_trace >/dev/null
    diff -u results/fig2_trace.txt "$tmp_out/fig2_trace.txt"
    echo "fig2_trace.txt reproduced byte-for-byte"

    echo "== chaos determinism across thread counts =="
    # A faulted run must be a pure function of (run seed, fault seed):
    # replay the same fault plans under different worker-pool sizes (in
    # separate processes, so each gets its own pool) and byte-diff the
    # reports. See DESIGN.md, "Fault model & degradation semantics".
    for fault_seed in 7 23; do
        ASGD_THREADS=1 ASGD_OUT_DIR="$tmp_out/chaos1" ASGD_MEGA_LIMIT=4 \
            ASGD_FAULT_SEED="$fault_seed" \
            cargo run --release -p asgd-bench --bin chaos_probe >/dev/null
        ASGD_THREADS=8 ASGD_OUT_DIR="$tmp_out/chaos8" ASGD_MEGA_LIMIT=4 \
            ASGD_FAULT_SEED="$fault_seed" \
            cargo run --release -p asgd-bench --bin chaos_probe >/dev/null
        diff -u "$tmp_out/chaos1/chaos_probe_$fault_seed.txt" \
                "$tmp_out/chaos8/chaos_probe_$fault_seed.txt"
        echo "fault seed $fault_seed: bit-identical at ASGD_THREADS=1 and =8"
    done

    echo "== chaos determinism in the bf16 merge arena =="
    # The bf16 storage tier promises the same contract as f32: half-width
    # gather/reduce/redistribute buffers, f32 accumulation, exactly one RNE
    # round point per store — still a pure function of (run seed, fault
    # seed), independent of worker count, and matching the checked-in
    # golden. See DESIGN.md, "Precision tiers & rounding contract".
    ASGD_PRECISION=bf16 ASGD_THREADS=1 ASGD_OUT_DIR="$tmp_out/chaos1" \
        ASGD_MEGA_LIMIT=4 ASGD_FAULT_SEED=7 \
        cargo run --release -p asgd-bench --bin chaos_probe >/dev/null
    ASGD_PRECISION=bf16 ASGD_THREADS=8 ASGD_OUT_DIR="$tmp_out/chaos8" \
        ASGD_MEGA_LIMIT=4 ASGD_FAULT_SEED=7 \
        cargo run --release -p asgd-bench --bin chaos_probe >/dev/null
    diff -u "$tmp_out/chaos1/chaos_probe_7_bf16.txt" \
            "$tmp_out/chaos8/chaos_probe_7_bf16.txt"
    diff -u results/chaos_probe_7_bf16.txt "$tmp_out/chaos8/chaos_probe_7_bf16.txt"
    echo "bf16 merge arena: bit-identical at ASGD_THREADS=1 and =8, matches checked-in golden"

    echo "== cluster determinism across thread counts (64x4) =="
    # A hierarchical multi-node merge must be a pure function of
    # (run seed, fault seed, cluster shape): replay the full 64-server x
    # 4-device fleet (256 replicas, whole-server losses and inter-node
    # stalls in the fault plan) under different worker-pool sizes (in
    # separate processes, so each gets its own pool) and byte-diff the
    # FNV reports (trace + final model) against each other and the
    # checked-in golden. See DESIGN.md, "Cluster topology & hierarchical
    # merge".
    cluster_env=(ASGD_MEGA_LIMIT=3 ASGD_SCALE=0.002 ASGD_HIDDEN=16
                 ASGD_BMAX=16 ASGD_BATCHES_PER_MEGA=64
                 ASGD_SERVERS=64 ASGD_DEVICES_PER_SERVER=4)
    env "${cluster_env[@]}" ASGD_THREADS=1 ASGD_OUT_DIR="$tmp_out/clu1" \
        cargo run --release -p asgd-bench --bin cluster_probe >/dev/null
    env "${cluster_env[@]}" ASGD_THREADS=8 ASGD_OUT_DIR="$tmp_out/clu8" \
        cargo run --release -p asgd-bench --bin cluster_probe >/dev/null
    diff -u "$tmp_out/clu1/cluster_probe_7_64x4.txt" \
            "$tmp_out/clu8/cluster_probe_7_64x4.txt"
    diff -u results/cluster_probe_7_64x4.txt "$tmp_out/clu8/cluster_probe_7_64x4.txt"
    echo "cluster 64x4: bit-identical at ASGD_THREADS=1 and =8, matches checked-in golden"

    echo "== cluster determinism in the bf16 merge arena (4x4, two seeds) =="
    # The bf16 tier promises the same topology-invariance contract; gate a
    # smaller shape under two fault seeds so server-loss and stall paths
    # both replay through the half-width arena.
    for fault_seed in 7 23; do
        env "${cluster_env[@]}" ASGD_SERVERS=4 ASGD_PRECISION=bf16 \
            ASGD_FAULT_SEED="$fault_seed" \
            ASGD_THREADS=1 ASGD_OUT_DIR="$tmp_out/clu1" \
            cargo run --release -p asgd-bench --bin cluster_probe >/dev/null
        env "${cluster_env[@]}" ASGD_SERVERS=4 ASGD_PRECISION=bf16 \
            ASGD_FAULT_SEED="$fault_seed" \
            ASGD_THREADS=8 ASGD_OUT_DIR="$tmp_out/clu8" \
            cargo run --release -p asgd-bench --bin cluster_probe >/dev/null
        diff -u "$tmp_out/clu1/cluster_probe_${fault_seed}_4x4_bf16.txt" \
                "$tmp_out/clu8/cluster_probe_${fault_seed}_4x4_bf16.txt"
        echo "cluster 4x4 bf16 fault seed $fault_seed: bit-identical at ASGD_THREADS=1 and =8"
    done

    echo "== serve determinism across thread counts =="
    # A serving run (train → checkpoint → serve, faulted and fault-free)
    # must be a pure function of (request seed, fault seed): replay the
    # probe under different worker-pool sizes and byte-diff the latency/
    # throughput reports. See DESIGN.md, "Serving subsystem".
    serve_seed=11 fault_seed=7
    ASGD_THREADS=1 ASGD_OUT_DIR="$tmp_out/serve1" \
        ASGD_SERVE_SEED="$serve_seed" ASGD_FAULT_SEED="$fault_seed" \
        cargo run --release -p asgd-bench --bin serve_probe >/dev/null
    ASGD_THREADS=8 ASGD_OUT_DIR="$tmp_out/serve8" \
        ASGD_SERVE_SEED="$serve_seed" ASGD_FAULT_SEED="$fault_seed" \
        cargo run --release -p asgd-bench --bin serve_probe >/dev/null
    diff -u "$tmp_out/serve1/serve_probe_${serve_seed}_${fault_seed}.txt" \
            "$tmp_out/serve8/serve_probe_${serve_seed}_${fault_seed}.txt"
    diff -u results/serve_probe_${serve_seed}_${fault_seed}.txt \
            "$tmp_out/serve8/serve_probe_${serve_seed}_${fault_seed}.txt"
    echo "serve seeds $serve_seed/$fault_seed: bit-identical at ASGD_THREADS=1 and =8, matches checked-in report"

    echo "== autoscale fleet determinism across thread counts =="
    # A multi-tenant fleet run (registry dedup, prediction cache, hedged
    # requests, elastic autoscaling, faults) must be a pure function of
    # (load seed, fault seed): replay the probe under different worker-pool
    # sizes and byte-diff the reports against each other and the checked-in
    # goldens — two seed pairs in the f32 tier plus one bf16-registry case.
    # See DESIGN.md, "Serving subsystem".
    for seeds in "7 7" "23 5"; do
        read -r serve_seed fault_seed <<<"$seeds"
        ASGD_THREADS=1 ASGD_OUT_DIR="$tmp_out/fleet1" \
            ASGD_SERVE_SEED="$serve_seed" ASGD_FAULT_SEED="$fault_seed" \
            cargo run --release -p asgd-bench --bin autoscale_probe >/dev/null
        ASGD_THREADS=8 ASGD_OUT_DIR="$tmp_out/fleet8" \
            ASGD_SERVE_SEED="$serve_seed" ASGD_FAULT_SEED="$fault_seed" \
            cargo run --release -p asgd-bench --bin autoscale_probe >/dev/null
        diff -u "$tmp_out/fleet1/autoscale_probe_${serve_seed}_${fault_seed}.txt" \
                "$tmp_out/fleet8/autoscale_probe_${serve_seed}_${fault_seed}.txt"
        diff -u "results/autoscale_probe_${serve_seed}_${fault_seed}.txt" \
                "$tmp_out/fleet8/autoscale_probe_${serve_seed}_${fault_seed}.txt"
        echo "fleet seeds $serve_seed/$fault_seed: bit-identical at ASGD_THREADS=1 and =8, match checked-in golden"
    done
    ASGD_PRECISION=bf16 ASGD_THREADS=1 ASGD_OUT_DIR="$tmp_out/fleet1" \
        ASGD_SERVE_SEED=7 ASGD_FAULT_SEED=7 \
        cargo run --release -p asgd-bench --bin autoscale_probe >/dev/null
    ASGD_PRECISION=bf16 ASGD_THREADS=8 ASGD_OUT_DIR="$tmp_out/fleet8" \
        ASGD_SERVE_SEED=7 ASGD_FAULT_SEED=7 \
        cargo run --release -p asgd-bench --bin autoscale_probe >/dev/null
    diff -u "$tmp_out/fleet1/autoscale_probe_7_7_bf16.txt" \
            "$tmp_out/fleet8/autoscale_probe_7_7_bf16.txt"
    diff -u results/autoscale_probe_7_7_bf16.txt \
            "$tmp_out/fleet8/autoscale_probe_7_7_bf16.txt"
    echo "fleet bf16 registry: bit-identical at ASGD_THREADS=1 and =8, matches checked-in golden"

    echo "== autoscale acceptance =="
    # BENCH_autoscale.json carries the subsystem's headline claim as
    # deterministic booleans: elastic holds the p99 SLO static-min misses,
    # at >=1.3x less device-seconds than static-max, with the Zipf head
    # hitting the cache more than half the time. Regenerate, byte-diff
    # against the checked-in artifact, and assert the booleans.
    ASGD_OUT_DIR="$tmp_out/fleetjson" \
        cargo run --release -p asgd-bench --bin run_all BENCH_autoscale >/dev/null
    diff -u results/BENCH_autoscale.json "$tmp_out/fleetjson/BENCH_autoscale.json"
    for claim in elastic_meets_slo staticmin_misses_slo cost_ratio_ok cache_hit_ok; do
        grep -q "\"$claim\": true" "$tmp_out/fleetjson/BENCH_autoscale.json" \
            || { echo "autoscale acceptance claim $claim failed"; exit 1; }
    done
    echo "autoscale acceptance: reproduced byte-for-byte, all four claims hold"

    echo "== sparse-merge determinism across thread counts =="
    # The sparse delta merge promises the merged model is bit-identical to
    # the dense flat reduction — the probe runs both paths in one process,
    # asserts equality, and renders FNV fingerprints of both models plus the
    # sparse traffic accounting. Replay under different worker-pool sizes
    # and byte-diff against each other and the checked-in goldens (f32 and
    # the bf16 arena), faults included (survivor-subset unions). See
    # DESIGN.md, "Sparse delta merge".
    ASGD_THREADS=1 ASGD_OUT_DIR="$tmp_out/sm1" ASGD_MEGA_LIMIT=4 \
        cargo run --release -p asgd-bench --bin sparse_merge_probe >/dev/null
    ASGD_THREADS=8 ASGD_OUT_DIR="$tmp_out/sm8" ASGD_MEGA_LIMIT=4 \
        cargo run --release -p asgd-bench --bin sparse_merge_probe >/dev/null
    diff -u "$tmp_out/sm1/sparse_merge_probe_7.txt" \
            "$tmp_out/sm8/sparse_merge_probe_7.txt"
    diff -u results/sparse_merge_probe_7.txt "$tmp_out/sm8/sparse_merge_probe_7.txt"
    ASGD_PRECISION=bf16 ASGD_THREADS=1 ASGD_OUT_DIR="$tmp_out/sm1" ASGD_MEGA_LIMIT=4 \
        cargo run --release -p asgd-bench --bin sparse_merge_probe >/dev/null
    ASGD_PRECISION=bf16 ASGD_THREADS=8 ASGD_OUT_DIR="$tmp_out/sm8" ASGD_MEGA_LIMIT=4 \
        cargo run --release -p asgd-bench --bin sparse_merge_probe >/dev/null
    diff -u "$tmp_out/sm1/sparse_merge_probe_7_bf16.txt" \
            "$tmp_out/sm8/sparse_merge_probe_7_bf16.txt"
    diff -u results/sparse_merge_probe_7_bf16.txt \
            "$tmp_out/sm8/sparse_merge_probe_7_bf16.txt"
    echo "sparse merge: bit-identical at ASGD_THREADS=1 and =8 (f32 + bf16), match checked-in goldens"

    echo "== sparse-merge goldens across build profiles =="
    # Same probe, debug vs release: the delta gather/scatter and the sparse
    # timing charge must survive optimization-level changes bit-for-bit.
    ASGD_OUT_DIR="$tmp_out/sm_dbg" ASGD_MEGA_LIMIT=4 \
        cargo run -p asgd-bench --bin sparse_merge_probe >/dev/null
    diff -u results/sparse_merge_probe_7.txt "$tmp_out/sm_dbg/sparse_merge_probe_7.txt"
    echo "sparse-merge goldens: bit-identical in debug and release profiles"

    echo "== sparse-merge acceptance =="
    # BENCH_sparse_merge.json carries the subsystem's headline claims as
    # asserted facts: ≥10x simulated-byte reduction at the full Amazon-670k
    # shape (asserted inside the experiment) and bit-identity of every
    # paired dense/sparse run (f32/bf16 × flat/cluster). Regenerate,
    # byte-diff against the checked-in artifact, and count the gates.
    ASGD_OUT_DIR="$tmp_out/smjson" \
        cargo run --release -p asgd-bench --bin run_all BENCH_sparse_merge >/dev/null
    diff -u results/BENCH_sparse_merge.json "$tmp_out/smjson/BENCH_sparse_merge.json"
    [ "$(grep -c '"bits_equal_dense": true' "$tmp_out/smjson/BENCH_sparse_merge.json")" -eq 4 ] \
        || { echo "sparse-merge bit-identity gates missing"; exit 1; }
    echo "sparse-merge acceptance: reproduced byte-for-byte, all four bit-identity gates hold"

    echo "== kernel goldens across thread counts =="
    # The compute-kernel layer (blocked GEMM/SpMM micro-kernels, fused
    # epilogues, streaming top-k) promises bit-identical results for every
    # ASGD_THREADS: replay the probe under different worker-pool sizes (in
    # separate processes, so each gets its own pool) and byte-diff the
    # FNV-checksum reports against each other and the checked-in golden.
    # See DESIGN.md, "Kernel layer".
    ASGD_THREADS=1 ASGD_OUT_DIR="$tmp_out/kern1" \
        cargo run --release -p asgd-bench --bin kernel_probe >/dev/null
    ASGD_THREADS=8 ASGD_OUT_DIR="$tmp_out/kern8" \
        cargo run --release -p asgd-bench --bin kernel_probe >/dev/null
    diff -u "$tmp_out/kern1/kernel_probe.txt" "$tmp_out/kern8/kernel_probe.txt"
    diff -u results/kernel_probe.txt "$tmp_out/kern8/kernel_probe.txt"
    echo "kernel goldens: bit-identical at ASGD_THREADS=1 and =8, match checked-in report"

    echo "== sampled-softmax goldens across thread counts =="
    # The LSH-sampled training path promises bit-identical runs for every
    # ASGD_THREADS: candidate sets are a pure function of (LSH seed, synced
    # W2, batch labels), the gathered kernels follow the reduction contract,
    # and the sparse output update applies in canonical candidate order.
    # Replay the probe under different worker-pool sizes and byte-diff the
    # FNV reports (trace + final model) against each other and the
    # checked-in golden. See DESIGN.md, "Sampled softmax & sparse output
    # path".
    ASGD_THREADS=1 ASGD_OUT_DIR="$tmp_out/sampled1" ASGD_MEGA_LIMIT=4 \
        cargo run --release -p asgd-bench --bin sampled_probe >/dev/null
    ASGD_THREADS=8 ASGD_OUT_DIR="$tmp_out/sampled8" ASGD_MEGA_LIMIT=4 \
        cargo run --release -p asgd-bench --bin sampled_probe >/dev/null
    diff -u "$tmp_out/sampled1/sampled_probe.txt" "$tmp_out/sampled8/sampled_probe.txt"
    diff -u results/sampled_probe.txt "$tmp_out/sampled8/sampled_probe.txt"
    echo "sampled goldens: bit-identical at ASGD_THREADS=1 and =8, match checked-in report"

    echo "== sampled-softmax goldens across build profiles =="
    # Same probe, debug vs release: the gathered-row kernels must survive
    # optimization-level and LTO changes bit-for-bit, like the dense kernels
    # below.
    ASGD_OUT_DIR="$tmp_out/sampled_dbg" ASGD_MEGA_LIMIT=4 \
        cargo run -p asgd-bench --bin sampled_probe >/dev/null
    diff -u results/sampled_probe.txt "$tmp_out/sampled_dbg/sampled_probe.txt"
    echo "sampled goldens: bit-identical in debug and release profiles"

    echo "== kernel goldens across build profiles =="
    # The same probe, debug vs release: optimization level, inlining, and
    # (Thin)LTO must not change a single bit. This is the gate that catches
    # the nastiest class of kernel bug — LTO inlining a fused multiply-add
    # across a target-feature boundary and legalizing it into a separate
    # multiply and add (silent double rounding). See DESIGN.md, "Kernel
    # layer".
    ASGD_OUT_DIR="$tmp_out/kern_dbg" \
        cargo run -p asgd-bench --bin kernel_probe >/dev/null
    diff -u results/kernel_probe.txt "$tmp_out/kern_dbg/kernel_probe.txt"
    echo "kernel goldens: bit-identical in debug and release profiles"
fi

echo "CI OK"
