#!/usr/bin/env bash
# CI gate: formatting, lints, and the tier-1 verify line.
#
#   ./ci.sh          # everything
#   ./ci.sh quick    # skip the workspace test pass (tier-1 only)
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

if [[ "${1:-}" != "quick" ]]; then
    echo "== workspace tests =="
    cargo test --workspace -q

    echo "== benches compile (cargo bench --no-run) =="
    cargo bench --workspace --no-run

    echo "== fig2 trace determinism =="
    # The scheduler trace must be byte-for-byte reproducible: regenerate it
    # at the default scale into a scratch dir and diff against the
    # checked-in artifact.
    tmp_out="$(mktemp -d)"
    trap 'rm -rf "$tmp_out"' EXIT
    ASGD_OUT_DIR="$tmp_out" cargo run --release -p asgd-bench --bin fig2_trace >/dev/null
    diff -u results/fig2_trace.txt "$tmp_out/fig2_trace.txt"
    echo "fig2_trace.txt reproduced byte-for-byte"
fi

echo "CI OK"
