//! SLIDE-style CPU baseline: LSH-sampled softmax training.
//!
//! The paper's fourth comparator is SLIDE (Chen et al.), a CPU system that
//! avoids the full output-layer computation by hashing output neurons into
//! SimHash tables and training each sample only on the *active* neurons its
//! hidden activation retrieves (always unioned with the true labels). The
//! result is many more — much cheaper — model updates per epoch: better
//! statistical efficiency, worse hardware efficiency (Fig. 5).
//!
//! * [`lsh`] — SimHash tables over output neurons.
//! * [`trainer`] — the Hogwild-style CPU trainer with a simulated CPU cost
//!   model, producing the same [`asgd_core::RunResult`] records as the GPU
//!   algorithms so curves are directly comparable.

pub mod lsh;
pub mod trainer;

pub use lsh::LshIndex;
pub use trainer::{SlideConfig, SlideTrainer};
