//! The shared LSH layer: SimHash tables and sampled-softmax candidate
//! selection.
//!
//! Originally this crate was a standalone SLIDE-style CPU baseline (the
//! paper's fourth comparator). The LSH machinery has since been promoted to
//! a first-class subsystem of the *main* trainer: at full label scale the
//! dense output GEMM is the wall, and the trainer's `ASGD_SOFTMAX=sampled`
//! path computes only an LSH-selected candidate subset of the output layer
//! per batch. This crate is deliberately a **leaf** (no dependency on
//! `asgd-core` or `asgd-model`) so both the main trainer and the ported
//! SLIDE baseline (`asgd_core::slide`) can build on it.
//!
//! * [`lsh`] — SimHash tables over output neurons, with per-class
//!   signatures stored at rebuild so bucket neighborhoods can be queried
//!   without an activation.
//! * [`sampler`] — deterministic per-batch candidate selection (true labels
//!   ∪ seeded LSH-bucket negatives, fixed-size, order-canonical) and its
//!   determinism contract.

pub mod lsh;
pub mod sampler;

pub use lsh::LshIndex;
pub use sampler::CandidateSampler;
