//! Deterministic per-batch candidate selection for the sampled softmax.
//!
//! For each training batch the sampler produces one shared candidate label
//! set: the batch's **true labels** (always included, so every positive
//! gradient flows) plus a fixed number of **negatives** drawn from the LSH
//! buckets the positives collide with — the "classes the model currently
//! confuses with the truth", which is exactly where sampled softmax needs
//! its negative signal — padded from a seeded uniform draw over the class
//! space when the buckets run dry. The result is sorted ascending
//! (order-canonical) and fixed-size, so downstream kernels see a stable
//! shape.
//!
//! # Determinism contract
//!
//! The candidate set is a pure function of
//! `(LSH seed, W₂ bytes at the last rebuild, batch labels, sample seed)`:
//!
//! * No hidden activations are consulted — replicas diverge between merges,
//!   so any activation-dependent choice would make candidates depend on
//!   *which* device trains the batch. Bucket membership is looked up through
//!   the per-class signatures stored by [`LshIndex::rebuild`].
//! * Rebuilds must happen only at model-sync points (manager start,
//!   redistribute, blend target) from bytes that are identical on every
//!   replica — then every manager holds bit-identical tables, and a batch
//!   re-dispatched after a device loss reproduces its candidate set exactly.
//! * All randomness comes from the caller-supplied `sample_seed` through a
//!   local [SplitMix64](splitmix64) stream — nothing is drawn from shared
//!   RNG state, so dispatch order cannot leak into the selection.

use crate::lsh::LshIndex;
use asgd_tensor::Matrix;

/// One step of the SplitMix64 stream — the sampler's only RNG. Small, fast,
/// and stateless across batches: every batch reseeds from its own
/// `sample_seed`.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Selects the per-batch candidate label set for sampled-softmax training.
///
/// Owns the [`LshIndex`] plus reusable scratch, so steady-state selection
/// allocates nothing once the buffers have grown to the working size.
#[derive(Debug, Clone)]
pub struct CandidateSampler {
    lsh: LshIndex,
    /// Negatives per batch (the candidate set is `positives + neg_samples`,
    /// clamped to the class count).
    neg_samples: usize,
    /// Scratch: the final sorted candidate set.
    cand: Vec<u32>,
    /// Scratch: the bucket-union negative pool.
    pool: Vec<u32>,
}

impl CandidateSampler {
    /// Builds a sampler with `tables × k_bits` SimHash tables over
    /// `hidden`-dimensional output neurons and `neg_samples` negatives per
    /// batch. Call [`rebuild`](Self::rebuild) before the first selection.
    pub fn new(tables: usize, k_bits: usize, hidden: usize, neg_samples: usize, seed: u64) -> Self {
        CandidateSampler {
            lsh: LshIndex::new(tables, k_bits, hidden, seed),
            neg_samples,
            cand: Vec::new(),
            pool: Vec::new(),
        }
    }

    /// Re-hashes every output neuron from `w2` (`hidden × classes`). Only
    /// call this at model-sync points with bytes identical across replicas —
    /// see the module docs.
    pub fn rebuild(&mut self, w2: &Matrix) {
        self.lsh.rebuild(w2);
    }

    /// Classes currently indexed (0 before the first rebuild).
    pub fn num_classes(&self) -> usize {
        self.lsh.len()
    }

    /// Negatives requested per batch.
    pub fn neg_samples(&self) -> usize {
        self.neg_samples
    }

    /// Selects the candidate set for a batch: the union of `labels` (each
    /// row a sample's true labels) plus exactly
    /// `min(neg_samples, classes - positives)` negatives. Returns the
    /// sorted, duplicate-free candidate list, valid until the next call.
    ///
    /// # Panics
    /// Panics before the first [`rebuild`](Self::rebuild) or when a label is
    /// outside the indexed class range.
    pub fn select(&mut self, labels: &[&[u32]], sample_seed: u64) -> &[u32] {
        let classes = self.lsh.len();
        assert!(classes > 0, "select before the first rebuild");

        // Positives: sorted, de-duplicated union of the batch's labels.
        self.cand.clear();
        for row in labels {
            self.cand.extend_from_slice(row);
        }
        self.cand.sort_unstable();
        self.cand.dedup();
        let n_pos = self.cand.len();
        let want = self.neg_samples.min(classes - n_pos);

        // Negative pool: every neuron sharing an LSH bucket with a positive,
        // minus the positives themselves. Sorted + deduped, so the pool
        // order is canonical before any random draw touches it.
        self.pool.clear();
        if want > 0 {
            for i in 0..n_pos {
                self.lsh.extend_with_neighbors(self.cand[i], &mut self.pool);
            }
            self.pool.sort_unstable();
            self.pool.dedup();
            let cand = &self.cand;
            self.pool.retain(|c| cand.binary_search(c).is_err());
        }

        let mut rng = sample_seed;
        if self.pool.len() > want {
            // Seeded partial Fisher–Yates: the first `want` slots get a
            // uniform sample of the pool, in O(want).
            for i in 0..want {
                let j = i + (splitmix64(&mut rng) % (self.pool.len() - i) as u64) as usize;
                self.pool.swap(i, j);
            }
            self.pool.truncate(want);
        }
        for i in 0..self.pool.len() {
            let c = self.pool[i];
            if let Err(pos) = self.cand.binary_search(&c) {
                self.cand.insert(pos, c);
            }
        }
        // Bucket union short of the quota: pad with seeded uniform draws
        // over the class space, skipping collisions.
        while self.cand.len() < n_pos + want {
            let c = (splitmix64(&mut rng) % classes as u64) as u32;
            if let Err(pos) = self.cand.binary_search(&c) {
                self.cand.insert(pos, c);
            }
        }
        &self.cand
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w2(dim: usize, classes: usize) -> Matrix {
        Matrix::from_fn(dim, classes, |i, j| {
            ((i * 13 + j * 7) % 11) as f32 / 5.0 - 1.0
        })
    }

    fn sampler(classes: usize, neg: usize) -> CandidateSampler {
        let mut s = CandidateSampler::new(4, 5, 16, neg, 42);
        s.rebuild(&w2(16, classes));
        s
    }

    #[test]
    fn contains_all_positives_and_exact_size() {
        let mut s = sampler(200, 32);
        let labels: Vec<&[u32]> = vec![&[3, 17], &[17, 90], &[150]];
        let got = s.select(&labels, 7).to_vec();
        for p in [3u32, 17, 90, 150] {
            assert!(got.binary_search(&p).is_ok(), "positive {p} missing");
        }
        assert_eq!(got.len(), 4 + 32, "positives + neg_samples");
    }

    #[test]
    fn result_is_sorted_unique() {
        let mut s = sampler(100, 40);
        let labels: Vec<&[u32]> = vec![&[5, 5, 42], &[]];
        let got = s.select(&labels, 123).to_vec();
        for w in got.windows(2) {
            assert!(w[0] < w[1], "not strictly ascending: {got:?}");
        }
    }

    #[test]
    fn pure_function_of_seed_and_labels() {
        let labels: Vec<&[u32]> = vec![&[1, 9], &[60]];
        let a = sampler(300, 24).select(&labels, 99).to_vec();
        let b = sampler(300, 24).select(&labels, 99).to_vec();
        assert_eq!(a, b);
        // A different sample seed changes the negatives (with overwhelming
        // probability at this pool size) but never the positives.
        let c = sampler(300, 24).select(&labels, 100).to_vec();
        assert_ne!(a, c);
        for p in [1u32, 9, 60] {
            assert!(c.binary_search(&p).is_ok());
        }
    }

    #[test]
    fn selection_is_independent_of_thread_count() {
        use asgd_tensor::parallel::override_threads;
        let labels: Vec<&[u32]> = vec![&[2, 7], &[400, 911]];
        let run = |threads: usize| {
            override_threads(threads);
            // Rebuild under the thread count too: bucket fill must not
            // depend on how the signature sweep was partitioned.
            let mut s = sampler(1000, 48);
            let got = s.select(&labels, 5).to_vec();
            override_threads(0);
            got
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn neg_quota_clamps_to_class_count() {
        let mut s = sampler(10, 1000);
        let labels: Vec<&[u32]> = vec![&[0, 1]];
        let got = s.select(&labels, 3).to_vec();
        assert_eq!(got, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn label_free_batch_still_gets_negatives() {
        let mut s = sampler(50, 8);
        let labels: Vec<&[u32]> = vec![&[], &[]];
        let got = s.select(&labels, 11).to_vec();
        assert_eq!(got.len(), 8);
    }

    #[test]
    #[should_panic(expected = "before the first rebuild")]
    fn select_before_rebuild_panics() {
        let mut s = CandidateSampler::new(2, 4, 8, 4, 1);
        let labels: Vec<&[u32]> = vec![&[1]];
        let _ = s.select(&labels, 0);
    }

    #[test]
    fn steady_state_does_not_reallocate() {
        let mut s = sampler(500, 64);
        let labels: Vec<&[u32]> = vec![&[3, 8], &[200, 301]];
        let _ = s.select(&labels, 1);
        let (cap_c, cap_p) = (s.cand.capacity(), s.pool.capacity());
        for seed in 2..20 {
            let _ = s.select(&labels, seed);
        }
        assert_eq!(s.cand.capacity(), cap_c);
        assert_eq!(s.pool.capacity(), cap_p);
    }
}
