//! SimHash LSH over output-layer neurons.
//!
//! Each of `L` tables holds `K` random hyperplanes in hidden-activation
//! space. A neuron (a column of `W₂`) hashes to the K-bit sign pattern of
//! its projections; a query activation retrieves the neurons in its bucket,
//! unioned across tables. Similar (high-dot-product) vectors collide with
//! high probability — which is exactly the "retrieve the classes this
//! activation would score highly" behaviour sampled softmax needs.

use asgd_stats::dist::standard_normal;
use asgd_tensor::kernels::dot_lanes;
use asgd_tensor::parallel::par_chunks_mut;
use asgd_tensor::Matrix;
use rand::{rngs::StdRng, SeedableRng};
use std::collections::HashMap;

/// Classes below this hash serially during [`LshIndex::rebuild`] — the
/// fork/join only pays off when the signature sweep is model-scale.
const MIN_PAR_CLASSES: usize = 256;

/// One SimHash table: `K` hyperplanes + buckets.
#[derive(Debug, Clone)]
struct Table {
    /// `K × dim`, row-major hyperplane normals.
    planes: Vec<f32>,
    k: usize,
    dim: usize,
    buckets: HashMap<u32, Vec<u32>>,
}

impl Table {
    fn new(k: usize, dim: usize, rng: &mut StdRng) -> Self {
        let planes = (0..k * dim).map(|_| standard_normal(rng) as f32).collect();
        Table {
            planes,
            k,
            dim,
            buckets: HashMap::new(),
        }
    }

    /// K-bit sign signature of a contiguous vector. Every projection is a
    /// [`dot_lanes`] reduction — one fixed association for both the rebuild
    /// sweep and queries, so a vector hashes identically on every path.
    fn signature(&self, v: &[f32]) -> u32 {
        let mut sig = 0u32;
        for b in 0..self.k {
            let row = &self.planes[b * self.dim..(b + 1) * self.dim];
            if dot_lanes(row, v) >= 0.0 {
                sig |= 1 << b;
            }
        }
        sig
    }
}

/// A multi-table SimHash index over the output neurons.
///
/// Besides the bucket maps, the index stores every neuron's per-table
/// signature from the last [`rebuild`](LshIndex::rebuild) — that is what
/// lets the sampled-softmax candidate selection look up "the neurons that
/// collide with class `c`" *without* a hidden activation, keeping candidate
/// sets a pure function of (LSH seed, `W₂` bytes, batch labels).
#[derive(Debug, Clone)]
pub struct LshIndex {
    tables: Vec<Table>,
    /// `classes × tables` row-major: `sigs[j * tables + t]` is neuron `j`'s
    /// signature in table `t` (from the last rebuild).
    sigs: Vec<u32>,
    n_neurons: usize,
}

impl LshIndex {
    /// Creates an index with `l` tables of `k` bits over `dim`-dimensional
    /// neuron vectors. `k ≤ 32`.
    pub fn new(l: usize, k: usize, dim: usize, seed: u64) -> Self {
        assert!(l >= 1, "need at least one table");
        assert!((1..=32).contains(&k), "k must be in 1..=32");
        assert!(dim >= 1, "dim must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        LshIndex {
            tables: (0..l).map(|_| Table::new(k, dim, &mut rng)).collect(),
            sigs: Vec::new(),
            n_neurons: 0,
        }
    }

    /// Number of tables.
    pub fn tables(&self) -> usize {
        self.tables.len()
    }

    /// (Re)hashes every output neuron. `w2` is `dim × classes`; neuron `j`
    /// is column `j`.
    ///
    /// Signatures are computed in parallel over classes (each is a pure
    /// function of one `W₂` column), then the buckets are filled serially in
    /// ascending class order — bucket contents are identical for any
    /// `ASGD_THREADS`.
    pub fn rebuild(&mut self, w2: &Matrix) {
        let dim = w2.rows();
        let classes = w2.cols();
        assert_eq!(dim, self.tables[0].dim, "neuron dimensionality mismatch");
        self.n_neurons = classes;
        let data = w2.as_slice();
        let l = self.tables.len();
        let tables = &self.tables;
        self.sigs.clear();
        self.sigs.resize(classes * l, 0);
        par_chunks_mut(
            &mut self.sigs,
            classes,
            l,
            MIN_PAR_CLASSES,
            |first, chunk| {
                let mut col = vec![0.0f32; dim];
                for (i, sig_row) in chunk.chunks_mut(l).enumerate() {
                    let j = first + i;
                    for (r, c) in col.iter_mut().enumerate() {
                        *c = data[r * classes + j];
                    }
                    for (t, s) in tables.iter().zip(sig_row.iter_mut()) {
                        *s = t.signature(&col);
                    }
                }
            },
        );
        for t in &mut self.tables {
            t.buckets.clear();
        }
        for j in 0..classes {
            for (ti, t) in self.tables.iter_mut().enumerate() {
                let sig = self.sigs[j * l + ti];
                t.buckets.entry(sig).or_default().push(j as u32);
            }
        }
    }

    /// Returns the sorted, de-duplicated union of the query's buckets.
    pub fn query(&self, activation: &[f32]) -> Vec<u32> {
        assert_eq!(activation.len(), self.tables[0].dim, "query width");
        let mut out: Vec<u32> = Vec::new();
        for t in &self.tables {
            let sig = t.signature(activation);
            if let Some(bucket) = t.buckets.get(&sig) {
                out.extend_from_slice(bucket);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Appends every neuron sharing a bucket with `class` (in any table) to
    /// `out`, duplicates and the class itself included — callers sort/dedup
    /// once over the whole union. Activation-free: lookups go through the
    /// signatures stored at the last rebuild.
    ///
    /// # Panics
    /// Panics when `class` is outside the indexed range (or before the
    /// first rebuild).
    pub fn extend_with_neighbors(&self, class: u32, out: &mut Vec<u32>) {
        let j = class as usize;
        assert!(j < self.n_neurons, "class {class} not indexed");
        let l = self.tables.len();
        for (ti, t) in self.tables.iter().enumerate() {
            let sig = self.sigs[j * l + ti];
            if let Some(bucket) = t.buckets.get(&sig) {
                out.extend_from_slice(bucket);
            }
        }
    }

    /// Neurons currently indexed.
    pub fn len(&self) -> usize {
        self.n_neurons
    }

    /// Whether the index holds no neurons (before the first rebuild).
    pub fn is_empty(&self) -> bool {
        self.n_neurons == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// W2 whose columns form two well-separated clusters.
    fn clustered_w2(dim: usize, per_cluster: usize) -> Matrix {
        let classes = per_cluster * 2;
        Matrix::from_fn(dim, classes, |i, j| {
            let cluster = j / per_cluster;
            let base = if cluster == 0 { 1.0 } else { -1.0 };
            // Mild deterministic wiggle so columns are not identical.
            base + ((i * 7 + j * 13) % 5) as f32 * 0.02
        })
    }

    #[test]
    fn identical_vector_retrieves_itself() {
        let w2 = clustered_w2(16, 8);
        let mut idx = LshIndex::new(8, 6, 16, 1);
        idx.rebuild(&w2);
        // Query with column 3's own vector: must retrieve class 3.
        let q: Vec<f32> = (0..16).map(|i| w2.at(i, 3)).collect();
        let hits = idx.query(&q);
        assert!(hits.contains(&3), "self-retrieval failed: {hits:?}");
    }

    #[test]
    fn query_prefers_similar_cluster() {
        let w2 = clustered_w2(16, 8);
        let mut idx = LshIndex::new(6, 8, 16, 2);
        idx.rebuild(&w2);
        let q = vec![1.0f32; 16]; // aligned with cluster 0 (classes 0..8)
        let hits = idx.query(&q);
        let cluster0 = hits.iter().filter(|&&c| c < 8).count();
        let cluster1 = hits.len() - cluster0;
        assert!(
            cluster0 > cluster1,
            "expected cluster-0 dominance: {hits:?}"
        );
    }

    #[test]
    fn rebuild_replaces_old_buckets() {
        let w2a = clustered_w2(8, 4);
        let mut idx = LshIndex::new(4, 4, 8, 3);
        idx.rebuild(&w2a);
        assert_eq!(idx.len(), 8);
        let smaller = Matrix::from_fn(8, 4, |i, j| ((i + j) % 3) as f32 - 1.0);
        idx.rebuild(&smaller);
        assert_eq!(idx.len(), 4);
        let hits = idx.query(&[1.0; 8]);
        assert!(
            hits.iter().all(|&c| c < 4),
            "stale bucket entries: {hits:?}"
        );
    }

    #[test]
    fn results_are_sorted_unique() {
        let w2 = clustered_w2(8, 16);
        let mut idx = LshIndex::new(10, 3, 8, 4);
        idx.rebuild(&w2);
        let hits = idx.query(&[0.5; 8]);
        for w in hits.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let w2 = clustered_w2(8, 8);
        let build = |seed| {
            let mut idx = LshIndex::new(4, 5, 8, seed);
            idx.rebuild(&w2);
            idx.query(&[1.0; 8])
        };
        assert_eq!(build(7), build(7));
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn k_over_32_panics() {
        let _ = LshIndex::new(2, 40, 8, 0);
    }
}
