//! SIMD-lane blocked micro-kernels and the deterministic reduction contract.
//!
//! Every dense/sparse matmul in this workspace is built from the blocked
//! micro-kernels in this module, written in stable Rust. The wide-output
//! kernels pack `B` into contiguous `NB`-float column panels (a bit-for-bit
//! copy, [`with_b_panel`]) and reduce them in `MR × NR` register tiles. On
//! `x86_64` every hot inner loop is a **leaf function** compiled with
//! `#[target_feature(enable = "avx2,fma")]` (stable function
//! multiversioning, selected per call via the cached
//! `is_x86_feature_detected!`); the leaves hold their loop bodies directly
//! (256-bit `std::arch` intrinsics for the register tiles, autovectorized
//! `f32::mul_add` for the variable-width remainders) and perform the
//! *identical* per-element IEEE-754 operation sequence as the portable
//! twins — so the numeric contract below holds on every host and every
//! dispatch path.
//!
//! The leaves are deliberately `#[inline(never)]` and self-contained:
//! LLVM refuses to inline across a target-feature boundary, and — worse —
//! when a fused multiply-add (`llvm.fma`) ends up in a function *without*
//! the `fma` feature, (Thin)LTO's vector legalization **splits it into a
//! separate multiply and add**, silently double-rounding. Keeping each
//! fused loop textually inside its `#[target_feature]` leaf guarantees
//! hardware FMA codegen; portable twins instead call [`fused`], whose
//! libm `fmaf` call is opaque to the optimizer and cannot be split.
//!
//! # The lane-width-8 reduction contract
//!
//! Results are a **pure function of the inputs**: no kernel's output depends
//! on `ASGD_THREADS`, on how the worker pool partitions rows, or on which
//! micro-kernel path (full tile vs remainder) computed an element. Two rules
//! pin the floating-point association order:
//!
//! 1. **Row-streaming kernels** (`gemm` NN, `gemm_tn`, CSR `spmm`): the
//!    SIMD lanes span the *output row* (`j`), which is not a reduction axis,
//!    so each output element accumulates its `k` (or CSR-nonzero) terms one
//!    at a time, in ascending order, each term applied as a **fused
//!    multiply-add** (`acc = fma(a, b, acc)`, a single rounding per term).
//!    The portable path computes this with [`f32::mul_add`] — correctly
//!    rounded on every platform, by libm call where hardware FMA is absent —
//!    and the AVX2 path with `_mm256_fmadd_ps`; both produce the same bits.
//!    Blocking and packing change where operands live, never the
//!    association.
//! 2. **Dot-product kernels** (`gemm_nt` and [`dot_lanes`]): the reduction
//!    axis itself is vectorized, with separate multiply and add per term.
//!    Term `t` (0-based) is accumulated into lane `t % LANES`; the tail
//!    (`k % LANES` terms) lands in lanes `0..k % LANES`. The 8 lanes are
//!    then reduced by the fixed binary tree
//!    `((l0+l4) + (l2+l6)) + ((l1+l5) + (l3+l7))` — see [`lane_tree`].
//!
//! Both rules differ from the naive serial mul-then-add summation the
//! pre-blocking kernels used (each is a different but equally deterministic
//! association), which is why golden artifacts were regenerated when this
//! layer landed.
//!
//! # The unified epilogue
//!
//! All GEMM variants share one epilogue, applied **once per element after
//! the full reduction** (see [`Epilogue::apply`]):
//!
//! ```text
//! AlphaBeta: out = alpha·s            (beta == 0: c_in is ignored, may be garbage)
//!            out = alpha·s + beta·c_in  (otherwise; beta == 1 is not special-cased —
//!                                        1.0·c_in == c_in bit-for-bit)
//! Bias:      out = s + bias[j]
//! BiasRelu:  out = max(s + bias[j], 0) (computed as `if v < 0.0 { 0.0 } else { v }`,
//!                                        so -0.0 and NaN pass through unchanged)
//! ```
//!
//! This replaces the pre-scaling epilogues the scalar kernels used (`gemm`/
//! `gemm_tn` scaled the output chunk by `beta` up front and accumulated
//! `alpha`-scaled terms; `gemm_nt` evaluated `beta * c` per element) — one
//! documented rule instead of three ad-hoc ones.

// Micro-kernels take their whole addressing context (matrix pointers, leading
// dimensions, chunk offsets) as scalars — more than clippy's argument budget.
#![allow(clippy::too_many_arguments)]

use std::cell::RefCell;

thread_local! {
    /// Per-thread scratch for packed `B` panels ([`with_b_panel`]). Grows to
    /// `k × NB` floats on first use and is then reused — the training hot
    /// path stays allocation-free after warmup.
    static PANEL_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` on the `w`-wide `B` panel at column `j0`, packed contiguously
/// (panel row `kk` lives at `kk * w`). When the panel spans all of `B`
/// (`w == n`, which implies `j0 == 0`), `B` itself is already in packed
/// layout and is passed through without copying.
///
/// Packing copies element bits verbatim, so it cannot affect the reduction
/// contract. It exists purely for locality: the strided panel rows of a wide
/// `B` (consecutive `kk` rows sit `n × 4` bytes apart, which defeats the
/// hardware prefetcher) are gathered once per *chunk* and then streamed
/// sequentially by every `MR`-row group, instead of paying the strided walk
/// once per row group.
#[inline(always)]
fn with_b_panel<R>(
    b: &[f32],
    n: usize,
    k: usize,
    j0: usize,
    w: usize,
    f: impl FnOnce(&[f32]) -> R,
) -> R {
    if w == n {
        return f(b);
    }
    PANEL_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        buf.clear();
        buf.reserve(k * w);
        for kk in 0..k {
            buf.extend_from_slice(&b[kk * n + j0..kk * n + j0 + w]);
        }
        f(&buf)
    })
}

/// Runs `f` on a `w`-wide panel of the *gathered* `B` rows
/// `B[idx[0]], B[idx[1]], …` at column `j0`, packed contiguously (panel row
/// `kk` lives at `kk * w` and holds `B[idx[kk]][j0..j0 + w]`). Unlike
/// [`with_b_panel`] there is no pass-through case: gathered rows are never
/// contiguous in `B`, so the panel is always materialized. Packing copies
/// element bits verbatim, so running any panel kernel on the result is
/// bit-identical to running it on a fully materialized gather of `B`.
#[inline(always)]
fn with_gathered_b_panel<R>(
    b: &[f32],
    n: usize,
    idx: &[u32],
    j0: usize,
    w: usize,
    f: impl FnOnce(&[f32]) -> R,
) -> R {
    PANEL_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        buf.clear();
        buf.reserve(idx.len() * w);
        for &row in idx {
            let base = row as usize * n + j0;
            buf.extend_from_slice(&b[base..base + w]);
        }
        f(&buf)
    })
}

/// SIMD lane width of the kernel contract: accumulator tiles are
/// `[f32; LANES]` wide and dot-product reductions run `LANES` partial sums.
pub const LANES: usize = 8;

/// Rows per block in the row-streaming kernels: `MR` output rows share one
/// pass over the streamed `B` panel, cutting `B` traffic `MR`-fold.
pub const MR: usize = 4;

/// Column-panel width (in `f32` elements) of the row-streaming kernels: the
/// `MR × NB` accumulator panel lives on the stack (hot in L1) while `B` is
/// streamed through it in contiguous `NB`-float runs. A multiple of
/// [`LANES`]; the `w = min(NB, n - j0)` tail handles any output width.
pub const NB: usize = 256;

/// Columns (`B` rows) processed together by the `gemm_nt` dot kernel.
const NT_JB: usize = 4;

/// Largest `k` the streaming top-k kernel ([`crate::ops::gemm_bias_topk`])
/// accepts: the per-row selection list lives on the stack.
pub const TOPK_STREAM_MAX: usize = 32;

/// The shared GEMM epilogue — see the module docs for the exact formulas.
#[derive(Debug, Clone, Copy)]
pub enum Epilogue<'a> {
    /// `out = alpha·s + beta·c_in` (`beta == 0` ignores `c_in` entirely).
    AlphaBeta {
        /// Scale of the reduction result.
        alpha: f32,
        /// Scale of the prior output value.
        beta: f32,
    },
    /// `out = s + bias[j]` — fused bias add (forward logits).
    Bias(&'a [f32]),
    /// `out = relu(s + bias[j])` — fused bias + activation (forward hidden).
    BiasRelu(&'a [f32]),
}

impl Epilogue<'_> {
    /// Applies the epilogue to one element: `s` is the finished reduction,
    /// `c_in` the prior value of the output element, `j` its column.
    #[inline(always)]
    pub fn apply(&self, j: usize, s: f32, c_in: f32) -> f32 {
        match *self {
            Epilogue::AlphaBeta { alpha, beta } => {
                if beta == 0.0 {
                    alpha * s
                } else {
                    alpha * s + beta * c_in
                }
            }
            Epilogue::Bias(bias) => s + bias[j],
            Epilogue::BiasRelu(bias) => {
                let v = s + bias[j];
                if v < 0.0 {
                    0.0
                } else {
                    v
                }
            }
        }
    }
}

/// The fixed lane-reduction tree of the contract:
/// `((l0+l4) + (l2+l6)) + ((l1+l5) + (l3+l7))`.
#[inline(always)]
pub fn lane_tree(acc: [f32; LANES]) -> f32 {
    let s04 = acc[0] + acc[4];
    let s15 = acc[1] + acc[5];
    let s26 = acc[2] + acc[6];
    let s37 = acc[3] + acc[7];
    (s04 + s26) + (s15 + s37)
}

/// Lane-tree dot product: term `t` goes to lane `t % LANES`, the tail to
/// lanes `0..len % LANES`, then [`lane_tree`] folds the lanes.
///
/// # Panics
/// Panics when lengths differ.
#[inline(always)]
pub fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot_lanes length mismatch");
    let mut acc = [0.0f32; LANES];
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for (av, bv) in ac.by_ref().zip(bc.by_ref()) {
        for l in 0..LANES {
            acc[l] += av[l] * bv[l];
        }
    }
    for (l, (&av, &bv)) in ac.remainder().iter().zip(bc.remainder()).enumerate() {
        acc[l] += av * bv;
    }
    lane_tree(acc)
}

/// `dst[l] += s * src[l]`, unrolled in `LANES`-wide blocks. Element-wise
/// (one multiply + one add per element, independent across elements), so it
/// is bit-identical to the scalar loop it replaces.
///
/// # Panics
/// Panics when lengths differ.
#[inline(always)]
pub fn axpy_lanes(s: f32, src: &[f32], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "axpy_lanes length mismatch");
    let mut sc = src.chunks_exact(LANES);
    let mut dc = dst.chunks_exact_mut(LANES);
    for (sv, dv) in sc.by_ref().zip(dc.by_ref()) {
        for l in 0..LANES {
            dv[l] += s * sv[l];
        }
    }
    for (&sv, dv) in sc.remainder().iter().zip(dc.into_remainder()) {
        *dv += s * sv;
    }
}

/// Columns per register tile of the row-streaming kernels: an `MR × NR`
/// accumulator block (`MR` rows × two 8-lane vectors) fits the 16 SIMD
/// registers of AVX2 with room for the `B` loads and the `A` broadcast, so
/// the k-loop runs with **zero** accumulator memory traffic.
const NR: usize = 16;

/// Cached runtime AVX2+FMA check (atomic loads after the first call).
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn avx2_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

/// The contract's fused multiply-add, guaranteed correctly rounded on every
/// host and in every build profile: `fused(a, b, acc) = fma(a, b, acc)`
/// with a single rounding.
///
/// Portable (non-`#[target_feature]`) code must use this instead of
/// [`f32::mul_add`]: `mul_add` lowers to `llvm.fma`, and when the enclosing
/// function lacks hardware-FMA target features, LLVM's x86 vector
/// legalization (observed under ThinLTO) *splits* the vectorized intrinsic
/// into a separate multiply and add — silently double-rounding. Routing
/// through libm's `fmaf`, an extern call the optimizer cannot look through,
/// pins the single-rounding result. On targets where FMA is baseline
/// (aarch64) or statically enabled, `mul_add` compiles to the hardware
/// instruction and is used directly.
#[inline(always)]
pub fn fused(a: f32, b: f32, acc: f32) -> f32 {
    #[cfg(any(target_arch = "aarch64", target_feature = "fma"))]
    {
        a.mul_add(b, acc)
    }
    #[cfg(not(any(target_arch = "aarch64", target_feature = "fma")))]
    {
        extern "C" {
            fn fmaf(a: f32, b: f32, c: f32) -> f32;
        }
        // SAFETY: libm's `fmaf` is a pure function, total over all f32s.
        unsafe { fmaf(a, b, acc) }
    }
}

/// One `M × NR` register tile over a *packed* `B` panel
/// (`bp[kk * w + l] = B[kk][j0 + l]`): `acc[r][l] += a_rows[r][kk] ·
/// bp[kk][jt + l]`, `kk` ascending (rule 1 of the contract), epilogue
/// applied from the finished accumulators. On AVX2 hosts the reduction runs
/// in the intrinsics clone ([`nn_tile_avx2`]); both paths perform the
/// identical per-element IEEE-754 operation sequence.
#[inline(always)]
fn nn_tile<const M: usize>(
    a_rows: &[&[f32]; M],
    bp: &[f32],
    w: usize,
    n: usize,
    j0: usize,
    jt: usize,
    out: &mut [f32],
    ep: Epilogue,
) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was just verified; slice bounds are checked
        // by the callee's preconditions (jt + NR <= w == panel row length).
        unsafe { nn_tile_avx2::<M>(a_rows, bp, w, n, j0, jt, out, ep) };
        return;
    }
    let mut acc = [[0.0f32; NR]; M];
    for (kk, brow) in bp.chunks_exact(w).enumerate() {
        let bv: &[f32; NR] = brow[jt..jt + NR].try_into().unwrap();
        for (accr, arow) in acc.iter_mut().zip(a_rows) {
            let a_rk = arow[kk];
            for l in 0..NR {
                accr[l] = fused(a_rk, bv[l], accr[l]);
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let crow = &mut out[r * n + j0 + jt..r * n + j0 + jt + NR];
        for (l, cv) in crow.iter_mut().enumerate() {
            *cv = ep.apply(j0 + jt + l, accr[l], *cv);
        }
    }
}

/// AVX2+FMA intrinsics body of [`nn_tile`]: the `M × NR` accumulator block
/// is `2·M` named `__m256` values, which the register allocator keeps in
/// ymm registers across the whole k-loop (the autovectorized portable body
/// round-trips the accumulator array through the stack every iteration —
/// measured ~2x slower). Per element and per step this is exactly
/// `acc = fma(a, b, acc)` in IEEE-754 single precision — the same
/// correctly-rounded fused operation [`f32::mul_add`] performs in the
/// portable body, so both paths produce identical bits.
///
/// # Safety
/// Caller must have verified AVX2+FMA support and `jt + NR <= w` with `bp`
/// a whole number of `w`-float panel rows.
#[cfg(target_arch = "x86_64")]
#[inline(never)] // inlining past the feature boundary under LTO splits the FMAs
#[target_feature(enable = "avx2,fma")]
unsafe fn nn_tile_avx2<const M: usize>(
    a_rows: &[&[f32]; M],
    bp: &[f32],
    w: usize,
    n: usize,
    j0: usize,
    jt: usize,
    out: &mut [f32],
    ep: Epilogue,
) {
    use std::arch::x86_64::*;
    let mut acc0 = [_mm256_setzero_ps(); M];
    let mut acc1 = [_mm256_setzero_ps(); M];
    for (kk, brow) in bp.chunks_exact(w).enumerate() {
        let b0 = _mm256_loadu_ps(brow.as_ptr().add(jt));
        let b1 = _mm256_loadu_ps(brow.as_ptr().add(jt + LANES));
        for r in 0..M {
            let av = _mm256_set1_ps(a_rows[r][kk]);
            acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
            acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
        }
    }
    for r in 0..M {
        let mut tile = [0.0f32; NR];
        _mm256_storeu_ps(tile.as_mut_ptr(), acc0[r]);
        _mm256_storeu_ps(tile.as_mut_ptr().add(LANES), acc1[r]);
        let crow = &mut out[r * n + j0 + jt..r * n + j0 + jt + NR];
        for (l, cv) in crow.iter_mut().enumerate() {
            *cv = ep.apply(j0 + jt + l, tile[l], *cv);
        }
    }
}

/// The `w % NR` remainder columns of a packed panel, accumulated with the
/// same ascending-`kk` per-element order as [`nn_tile`] (variable-width, so
/// the accumulator may live on the stack — at most `NR - 1` columns).
#[inline(always)]
fn nn_tail<const M: usize>(
    a_rows: &[&[f32]; M],
    bp: &[f32],
    w: usize,
    n: usize,
    j0: usize,
    jt: usize,
    out: &mut [f32],
    ep: Epilogue,
) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2+FMA support was just verified.
        unsafe { nn_tail_avx2::<M>(a_rows, bp, w, n, j0, jt, out, ep) };
        return;
    }
    let rem = w - jt;
    let mut acc = [[0.0f32; NR]; M];
    for (kk, brow) in bp.chunks_exact(w).enumerate() {
        let bv = &brow[jt..w];
        for (accr, arow) in acc.iter_mut().zip(a_rows) {
            let a_rk = arow[kk];
            for (av, &b) in accr[..rem].iter_mut().zip(bv) {
                *av = fused(a_rk, b, *av);
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let crow = &mut out[r * n + j0 + jt..r * n + j0 + jt + rem];
        for (l, cv) in crow.iter_mut().enumerate() {
            *cv = ep.apply(j0 + jt + l, accr[l], *cv);
        }
    }
}

/// AVX2+FMA leaf of [`nn_tail`]: same loop, but compiled with hardware-FMA
/// features so the `mul_add` calls lower to `vfmadd` (vectorized where the
/// width allows) instead of libm calls. The body lives textually inside
/// this `#[target_feature]` function — see the module docs for why it must.
///
/// # Safety
/// Caller must have verified AVX2+FMA support; bounds as in [`nn_tail`].
#[cfg(target_arch = "x86_64")]
#[inline(never)]
#[target_feature(enable = "avx2,fma")]
unsafe fn nn_tail_avx2<const M: usize>(
    a_rows: &[&[f32]; M],
    bp: &[f32],
    w: usize,
    n: usize,
    j0: usize,
    jt: usize,
    out: &mut [f32],
    ep: Epilogue,
) {
    let rem = w - jt;
    let mut acc = [[0.0f32; NR]; M];
    for (kk, brow) in bp.chunks_exact(w).enumerate() {
        let bv = &brow[jt..w];
        for (accr, arow) in acc.iter_mut().zip(a_rows) {
            let a_rk = arow[kk];
            for (av, &b) in accr[..rem].iter_mut().zip(bv) {
                *av = a_rk.mul_add(b, *av);
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let crow = &mut out[r * n + j0 + jt..r * n + j0 + jt + rem];
        for (l, cv) in crow.iter_mut().enumerate() {
            *cv = ep.apply(j0 + jt + l, accr[l], *cv);
        }
    }
}

/// One strided NN panel (panel row `kk` at
/// `b[kk * n + j0]`). Bit-identical per element — only the operand address
/// differs. Used by the streaming top-k path, whose per-row selection state
/// must persist across panels and therefore keeps rows as the outer loop
/// (packing per row group would re-copy `B` with no reuse).
#[inline(always)]
fn nn_panel_strided<const M: usize>(
    a_rows: &[&[f32]; M],
    b: &[f32],
    n: usize,
    j0: usize,
    w: usize,
    acc: &mut [[f32; NB]; M],
) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2+FMA support was just verified.
        unsafe { nn_panel_strided_avx2::<M>(a_rows, b, n, j0, w, acc) };
        return;
    }
    for kk in 0..a_rows[0].len() {
        let brow = &b[kk * n + j0..kk * n + j0 + w];
        for (accr, arow) in acc.iter_mut().zip(a_rows) {
            let a_rk = arow[kk];
            for (av, &bv) in accr[..w].iter_mut().zip(brow) {
                *av = fused(a_rk, bv, *av);
            }
        }
    }
}

/// AVX2+FMA leaf of [`nn_panel_strided`] — same loop, hardware-FMA codegen
/// (see [`nn_tail_avx2`]).
///
/// # Safety
/// Caller must have verified AVX2+FMA support; bounds as in
/// [`nn_panel_strided`].
#[cfg(target_arch = "x86_64")]
#[inline(never)]
#[target_feature(enable = "avx2,fma")]
unsafe fn nn_panel_strided_avx2<const M: usize>(
    a_rows: &[&[f32]; M],
    b: &[f32],
    n: usize,
    j0: usize,
    w: usize,
    acc: &mut [[f32; NB]; M],
) {
    for kk in 0..a_rows[0].len() {
        let brow = &b[kk * n + j0..kk * n + j0 + w];
        for (accr, arow) in acc.iter_mut().zip(a_rows) {
            let a_rk = arow[kk];
            for (av, &bv) in accr[..w].iter_mut().zip(brow) {
                *av = a_rk.mul_add(bv, *av);
            }
        }
    }
}

/// `M` rows × one packed panel of `C = epilogue(A·B)`: [`nn_tile`] register
/// tiles across the panel plus one [`nn_tail`], epilogue once per element
/// after each tile's reduction finishes. `out` holds the `M` full output
/// rows contiguously.
#[inline(always)]
fn nn_rows_panel<const M: usize>(
    a: &[f32],
    k: usize,
    bp: &[f32],
    n: usize,
    j0: usize,
    w: usize,
    a_first: usize,
    out: &mut [f32],
    ep: Epilogue,
) {
    let a_rows: [&[f32]; M] = std::array::from_fn(|r| &a[(a_first + r) * k..(a_first + r + 1) * k]);
    let w_tiled = w - w % NR;
    let mut jt = 0;
    while jt < w_tiled {
        nn_tile::<M>(&a_rows, bp, w, n, j0, jt, out, ep);
        jt += NR;
    }
    if jt < w {
        nn_tail::<M>(&a_rows, bp, w, n, j0, jt, out, ep);
    }
}

/// NN GEMM body over one contiguous row chunk of `C` (as partitioned by
/// `par_chunks_mut`): `C[i] = epilogue(Σ_k A[i][k]·B[k][·])` for the rows in
/// `chunk`. Panels are the outer loop so each packed `B` panel is reused by
/// every `MR`-row group of the chunk; per-element reduction order is
/// independent of the loop nesting (each element lives in exactly one panel).
/// The glue here (panel packing, row grouping) is feature-agnostic scalar
/// code; the hot reduction loops dispatch to their AVX2+FMA leaves at the
/// tile layer, so no chunk-level multiversioned clone is needed.
pub fn gemm_nn_chunk(
    a: &[f32],
    k: usize,
    b: &[f32],
    n: usize,
    first_row: usize,
    chunk: &mut [f32],
    ep: Epilogue,
) {
    debug_assert!(n > 0 && chunk.len().is_multiple_of(n));
    let rows = chunk.len() / n;
    let mut j0 = 0;
    while j0 < n {
        let w = (n - j0).min(NB);
        with_b_panel(b, n, k, j0, w, |bp| {
            let mut i = 0;
            while i < rows {
                let block = &mut chunk[i * n..];
                let first = first_row + i;
                match rows - i {
                    1 => nn_rows_panel::<1>(a, k, bp, n, j0, w, first, &mut block[..n], ep),
                    2 => nn_rows_panel::<2>(a, k, bp, n, j0, w, first, &mut block[..2 * n], ep),
                    3 => nn_rows_panel::<3>(a, k, bp, n, j0, w, first, &mut block[..3 * n], ep),
                    _ => nn_rows_panel::<MR>(a, k, bp, n, j0, w, first, &mut block[..MR * n], ep),
                }
                i += (rows - i).min(MR);
            }
        });
        j0 += w;
    }
}

/// Gathered-row NN GEMM body over one contiguous row chunk of `C`:
/// `C[i][j] = epilogue(Σ_kk A[i][kk] · B[idx[kk]][j])` — the reduction runs
/// over the *gathered* rows of `B`, in ascending `kk` order (rule 1 of the
/// contract). `A` is `m × idx.len()`, `B` has `n` columns. Packing the
/// gathered rows into the shared panel scratch makes every downstream tile
/// identical to [`gemm_nn_chunk`] on a materialized gather of `B`, so the
/// two are bit-for-bit interchangeable. This is the backward kernel of the
/// sampled softmax (`dH = dlogitsₛ · gather(W₂ᵀ, candidates)`).
pub fn gemm_nn_gather_chunk(
    a: &[f32],
    idx: &[u32],
    b: &[f32],
    n: usize,
    first_row: usize,
    chunk: &mut [f32],
    ep: Epilogue,
) {
    debug_assert!(n > 0 && chunk.len().is_multiple_of(n));
    let k = idx.len();
    let rows = chunk.len() / n;
    let mut j0 = 0;
    while j0 < n {
        let w = (n - j0).min(NB);
        with_gathered_b_panel(b, n, idx, j0, w, |bp| {
            let mut i = 0;
            while i < rows {
                let block = &mut chunk[i * n..];
                let first = first_row + i;
                match rows - i {
                    1 => nn_rows_panel::<1>(a, k, bp, n, j0, w, first, &mut block[..n], ep),
                    2 => nn_rows_panel::<2>(a, k, bp, n, j0, w, first, &mut block[..2 * n], ep),
                    3 => nn_rows_panel::<3>(a, k, bp, n, j0, w, first, &mut block[..3 * n], ep),
                    _ => nn_rows_panel::<MR>(a, k, bp, n, j0, w, first, &mut block[..MR * n], ep),
                }
                i += (rows - i).min(MR);
            }
        });
        j0 += w;
    }
}

/// One `M × NR` register tile of `Aᵀ·B` over a packed panel: like
/// [`nn_tile`] but `A` is `k×m` and the output rows are *columns*
/// `cols0..cols0+M` of `A` (per-`kk` strided `A` access — only `M` scalars
/// per step — still ascending-`k` serial per element).
#[inline(always)]
fn tn_tile<const M: usize>(
    a: &[f32],
    m: usize,
    cols0: usize,
    bp: &[f32],
    w: usize,
    n: usize,
    j0: usize,
    jt: usize,
    out: &mut [f32],
    ep: Epilogue,
) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was just verified; bounds as in `nn_tile`.
        unsafe { tn_tile_avx2::<M>(a, m, cols0, bp, w, n, j0, jt, out, ep) };
        return;
    }
    let mut acc = [[0.0f32; NR]; M];
    for (kk, brow) in bp.chunks_exact(w).enumerate() {
        let a_k = &a[kk * m + cols0..kk * m + cols0 + M];
        let bv: &[f32; NR] = brow[jt..jt + NR].try_into().unwrap();
        for (accr, &a_rk) in acc.iter_mut().zip(a_k) {
            for l in 0..NR {
                accr[l] = fused(a_rk, bv[l], accr[l]);
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let crow = &mut out[r * n + j0 + jt..r * n + j0 + jt + NR];
        for (l, cv) in crow.iter_mut().enumerate() {
            *cv = ep.apply(j0 + jt + l, accr[l], *cv);
        }
    }
}

/// AVX2+FMA intrinsics body of [`tn_tile`] — see [`nn_tile_avx2`] for why
/// and for the bit-exactness argument (one fused multiply-add per term).
///
/// # Safety
/// Caller must have verified AVX2+FMA support and `jt + NR <= w` with `bp`
/// a whole number of `w`-float panel rows; `a` must hold `k×m` elements
/// with `cols0 + M <= m`.
#[cfg(target_arch = "x86_64")]
#[inline(never)] // inlining past the feature boundary under LTO splits the FMAs
#[target_feature(enable = "avx2,fma")]
unsafe fn tn_tile_avx2<const M: usize>(
    a: &[f32],
    m: usize,
    cols0: usize,
    bp: &[f32],
    w: usize,
    n: usize,
    j0: usize,
    jt: usize,
    out: &mut [f32],
    ep: Epilogue,
) {
    use std::arch::x86_64::*;
    let mut acc0 = [_mm256_setzero_ps(); M];
    let mut acc1 = [_mm256_setzero_ps(); M];
    for (kk, brow) in bp.chunks_exact(w).enumerate() {
        let a_k = &a[kk * m + cols0..kk * m + cols0 + M];
        let b0 = _mm256_loadu_ps(brow.as_ptr().add(jt));
        let b1 = _mm256_loadu_ps(brow.as_ptr().add(jt + LANES));
        for r in 0..M {
            let av = _mm256_set1_ps(a_k[r]);
            acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
            acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
        }
    }
    for r in 0..M {
        let mut tile = [0.0f32; NR];
        _mm256_storeu_ps(tile.as_mut_ptr(), acc0[r]);
        _mm256_storeu_ps(tile.as_mut_ptr().add(LANES), acc1[r]);
        let crow = &mut out[r * n + j0 + jt..r * n + j0 + jt + NR];
        for (l, cv) in crow.iter_mut().enumerate() {
            *cv = ep.apply(j0 + jt + l, tile[l], *cv);
        }
    }
}

/// The `w % NR` remainder columns of a TN packed panel (same per-element
/// order as [`tn_tile`]).
#[inline(always)]
fn tn_tail<const M: usize>(
    a: &[f32],
    m: usize,
    cols0: usize,
    bp: &[f32],
    w: usize,
    n: usize,
    j0: usize,
    jt: usize,
    out: &mut [f32],
    ep: Epilogue,
) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2+FMA support was just verified.
        unsafe { tn_tail_avx2::<M>(a, m, cols0, bp, w, n, j0, jt, out, ep) };
        return;
    }
    let rem = w - jt;
    let mut acc = [[0.0f32; NR]; M];
    for (kk, brow) in bp.chunks_exact(w).enumerate() {
        let a_k = &a[kk * m + cols0..kk * m + cols0 + M];
        let bv = &brow[jt..w];
        for (accr, &a_rk) in acc.iter_mut().zip(a_k) {
            for (av, &b) in accr[..rem].iter_mut().zip(bv) {
                *av = fused(a_rk, b, *av);
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let crow = &mut out[r * n + j0 + jt..r * n + j0 + jt + rem];
        for (l, cv) in crow.iter_mut().enumerate() {
            *cv = ep.apply(j0 + jt + l, accr[l], *cv);
        }
    }
}

/// AVX2+FMA leaf of [`tn_tail`] — same loop, hardware-FMA codegen (see
/// [`nn_tail_avx2`]).
///
/// # Safety
/// Caller must have verified AVX2+FMA support; bounds as in [`tn_tail`].
#[cfg(target_arch = "x86_64")]
#[inline(never)]
#[target_feature(enable = "avx2,fma")]
unsafe fn tn_tail_avx2<const M: usize>(
    a: &[f32],
    m: usize,
    cols0: usize,
    bp: &[f32],
    w: usize,
    n: usize,
    j0: usize,
    jt: usize,
    out: &mut [f32],
    ep: Epilogue,
) {
    let rem = w - jt;
    let mut acc = [[0.0f32; NR]; M];
    for (kk, brow) in bp.chunks_exact(w).enumerate() {
        let a_k = &a[kk * m + cols0..kk * m + cols0 + M];
        let bv = &brow[jt..w];
        for (accr, &a_rk) in acc.iter_mut().zip(a_k) {
            for (av, &b) in accr[..rem].iter_mut().zip(bv) {
                *av = a_rk.mul_add(b, *av);
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let crow = &mut out[r * n + j0 + jt..r * n + j0 + jt + rem];
        for (l, cv) in crow.iter_mut().enumerate() {
            *cv = ep.apply(j0 + jt + l, accr[l], *cv);
        }
    }
}

/// `M` rows × one packed panel of `C = epilogue(Aᵀ·B)` (output rows = `A`
/// columns `cols0..cols0+M`): register tiles plus tail, like
/// [`nn_rows_panel`].
#[inline(always)]
fn tn_rows_panel<const M: usize>(
    a: &[f32],
    m: usize,
    bp: &[f32],
    n: usize,
    j0: usize,
    w: usize,
    cols0: usize,
    out: &mut [f32],
    ep: Epilogue,
) {
    let w_tiled = w - w % NR;
    let mut jt = 0;
    while jt < w_tiled {
        tn_tile::<M>(a, m, cols0, bp, w, n, j0, jt, out, ep);
        jt += NR;
    }
    if jt < w {
        tn_tail::<M>(a, m, cols0, bp, w, n, j0, jt, out, ep);
    }
}

/// TN GEMM over one contiguous row chunk of `C`: `A` is `k×m`, the
/// chunk covers output rows (`A` columns) starting at `first_col`. Panels
/// outer / row groups inner, exactly like [`gemm_nn_chunk`]; dispatch to
/// the AVX2+FMA leaves happens at the tile layer.
pub fn gemm_tn_chunk(
    a: &[f32],
    kdim: usize,
    m: usize,
    b: &[f32],
    n: usize,
    first_col: usize,
    chunk: &mut [f32],
    ep: Epilogue,
) {
    debug_assert!(n > 0 && chunk.len().is_multiple_of(n));
    let rows = chunk.len() / n;
    let mut j0 = 0;
    while j0 < n {
        let w = (n - j0).min(NB);
        with_b_panel(b, n, kdim, j0, w, |bp| {
            let mut i = 0;
            while i < rows {
                let block = &mut chunk[i * n..];
                let c0 = first_col + i;
                match rows - i {
                    1 => tn_rows_panel::<1>(a, m, bp, n, j0, w, c0, &mut block[..n], ep),
                    2 => tn_rows_panel::<2>(a, m, bp, n, j0, w, c0, &mut block[..2 * n], ep),
                    3 => tn_rows_panel::<3>(a, m, bp, n, j0, w, c0, &mut block[..3 * n], ep),
                    _ => tn_rows_panel::<MR>(a, m, bp, n, j0, w, c0, &mut block[..MR * n], ep),
                }
                i += (rows - i).min(MR);
            }
        });
        j0 += w;
    }
}

/// `NT_JB` lane-tree dot products sharing one pass over `a` — each result is
/// bit-identical to [`dot_lanes`] of the same pair (same lane assignment,
/// same tree).
#[inline(always)]
fn nt_dot_block(a: &[f32], b_rows: &[&[f32]; NT_JB]) -> [f32; NT_JB] {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was just verified.
        return unsafe { nt_dot_block_avx2(a, b_rows) };
    }
    nt_dot_block_body(a, b_rows)
}

/// AVX2 leaf of [`nt_dot_block`]: rule 2 keeps separate multiply and add
/// (never contracted — no fast-math flags are set, so LLVM may not fuse),
/// the feature only widens the codegen to 256-bit lanes. Out-of-line so
/// LTO cannot blend it with feature-less callers.
///
/// # Safety
/// Caller must have verified AVX2 support.
#[cfg(target_arch = "x86_64")]
#[inline(never)]
#[target_feature(enable = "avx2")]
unsafe fn nt_dot_block_avx2(a: &[f32], b_rows: &[&[f32]; NT_JB]) -> [f32; NT_JB] {
    nt_dot_block_body(a, b_rows)
}

/// Shared body of [`nt_dot_block`] — separate multiply and add per term
/// gives the same bits at any vector width, so unlike the fused rule-1
/// loops this body may be inlined into either dispatch path.
#[inline(always)]
fn nt_dot_block_body(a: &[f32], b_rows: &[&[f32]; NT_JB]) -> [f32; NT_JB] {
    let mut acc = [[0.0f32; LANES]; NT_JB];
    let k = a.len();
    let k_tiled = k - k % LANES;
    let mut t = 0;
    while t < k_tiled {
        let av = &a[t..t + LANES];
        for (accj, brow) in acc.iter_mut().zip(b_rows) {
            let bv = &brow[t..t + LANES];
            for l in 0..LANES {
                accj[l] += av[l] * bv[l];
            }
        }
        t += LANES;
    }
    for l in 0..(k - k_tiled) {
        for (accj, brow) in acc.iter_mut().zip(b_rows) {
            accj[l] += a[k_tiled + l] * brow[k_tiled + l];
        }
    }
    std::array::from_fn(|j| lane_tree(acc[j]))
}

/// NT GEMM over one contiguous row chunk of `C`: each element is a
/// lane-tree dot of an `A` row and a `B` row (rule 2 of the contract),
/// `NT_JB` `B` rows blocked per `A`-row pass; the dot layer dispatches to
/// its AVX2 leaf.
pub fn gemm_nt_chunk(
    a: &[f32],
    k: usize,
    b: &[f32],
    n: usize,
    first_row: usize,
    chunk: &mut [f32],
    ep: Epilogue,
) {
    debug_assert!(n > 0 && chunk.len().is_multiple_of(n));
    for (i, crow) in chunk.chunks_mut(n).enumerate() {
        let arow = &a[(first_row + i) * k..(first_row + i + 1) * k];
        let n_blocked = n - n % NT_JB;
        let mut j = 0;
        while j < n_blocked {
            let b_rows: [&[f32]; NT_JB] =
                std::array::from_fn(|jj| &b[(j + jj) * k..(j + jj + 1) * k]);
            let dots = nt_dot_block(arow, &b_rows);
            for (jj, &d) in dots.iter().enumerate() {
                crow[j + jj] = ep.apply(j + jj, d, crow[j + jj]);
            }
            j += NT_JB;
        }
        for j in n_blocked..n {
            let d = dot_lanes(arow, &b[j * k..(j + 1) * k]);
            crow[j] = ep.apply(j, d, crow[j]);
        }
    }
}

/// Gathered-row NT GEMM over one contiguous row chunk of `C`:
/// `C[i][j] = epilogue(dot(A[i], B[idx[j]]))` — each element is a lane-tree
/// dot (rule 2 of the contract) of an `A` row with a *gathered* `B` row, so
/// the result is bit-identical to [`gemm_nt_chunk`] against a materialized
/// `idx.len() × k` gather of `B`. This is the forward kernel of the sampled
/// softmax (`logitsₛ = H · gather(W₂ᵀ, candidates)ᵀ`): only the candidate
/// columns of the full logit row are ever computed.
pub fn gemm_nt_gather_chunk(
    a: &[f32],
    k: usize,
    b: &[f32],
    idx: &[u32],
    first_row: usize,
    chunk: &mut [f32],
    ep: Epilogue,
) {
    let n = idx.len();
    debug_assert!(n > 0 && chunk.len().is_multiple_of(n));
    for (i, crow) in chunk.chunks_mut(n).enumerate() {
        let arow = &a[(first_row + i) * k..(first_row + i + 1) * k];
        let n_blocked = n - n % NT_JB;
        let mut j = 0;
        while j < n_blocked {
            let b_rows: [&[f32]; NT_JB] = std::array::from_fn(|jj| {
                let base = idx[j + jj] as usize * k;
                &b[base..base + k]
            });
            let dots = nt_dot_block(arow, &b_rows);
            for (jj, &d) in dots.iter().enumerate() {
                crow[j + jj] = ep.apply(j + jj, d, crow[j + jj]);
            }
            j += NT_JB;
        }
        for j in n_blocked..n {
            let base = idx[j] as usize * k;
            let d = dot_lanes(arow, &b[base..base + k]);
            crow[j] = ep.apply(j, d, crow[j]);
        }
    }
}

/// A fixed-capacity top-`k` list kept sorted by `(value desc, id asc)` — the
/// selection state of the streaming top-k kernel. Lives entirely on the
/// stack (`TOPK_STREAM_MAX` slots).
///
/// Candidates MUST be offered in ascending id order; equal-valued candidates
/// then insert after the equal entries already present, which reproduces the
/// `(value desc, id asc)` total order of the materialized sort exactly.
#[derive(Debug)]
pub struct TopList {
    vals: [f32; TOPK_STREAM_MAX],
    ids: [u32; TOPK_STREAM_MAX],
    len: usize,
    k: usize,
}

impl TopList {
    /// An empty list selecting `k` entries (`1 <= k <= TOPK_STREAM_MAX`).
    pub fn new(k: usize) -> Self {
        assert!((1..=TOPK_STREAM_MAX).contains(&k), "k out of stack range");
        Self {
            vals: [0.0; TOPK_STREAM_MAX],
            ids: [0; TOPK_STREAM_MAX],
            len: 0,
            k,
        }
    }

    /// Offers one candidate. Ids must arrive in ascending order.
    #[inline]
    pub fn offer(&mut self, v: f32, id: u32) {
        // `!(v > last)` — not `v <= last` — so a NaN candidate is rejected
        // once the list is full, matching the select+sort fallback's order.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if self.len == self.k && !(v > self.vals[self.len - 1]) {
            return;
        }
        let mut pos = self.len.min(self.k - 1);
        while pos > 0 && v > self.vals[pos - 1] {
            pos -= 1;
        }
        let last = (self.len + 1).min(self.k) - 1;
        let mut p = last;
        while p > pos {
            self.vals[p] = self.vals[p - 1];
            self.ids[p] = self.ids[p - 1];
            p -= 1;
        }
        self.vals[pos] = v;
        self.ids[pos] = id;
        self.len = (self.len + 1).min(self.k);
    }

    /// The selected ids, best first. Shorter than `k` only when fewer
    /// candidates were offered.
    pub fn ids(&self) -> &[u32] {
        &self.ids[..self.len]
    }
}

/// Streaming fused logits→top-k for `M` rows of `A`: computes each logit
/// panel (`A·B + bias`, same reduction and epilogue as the materializing
/// path) on the stack and feeds it straight into a per-row [`TopList`] —
/// the wide `m×n` logit matrix is never written to memory. Candidates are
/// offered in ascending column order (panels left to right, ascending
/// within each panel), as the `TopList` contract requires. `out` receives
/// `M` rows of `k` ids each.
#[inline(always)]
fn nn_rows_topk<const M: usize>(
    a: &[f32],
    kdim: usize,
    b: &[f32],
    n: usize,
    bias: &[f32],
    a_first: usize,
    k: usize,
    out: &mut [u32],
) {
    let a_rows: [&[f32]; M] =
        std::array::from_fn(|r| &a[(a_first + r) * kdim..(a_first + r + 1) * kdim]);
    let mut lists: [TopList; M] = std::array::from_fn(|_| TopList::new(k));
    let ep = Epilogue::Bias(bias);
    let mut j0 = 0;
    while j0 < n {
        let w = (n - j0).min(NB);
        let mut acc = [[0.0f32; NB]; M];
        nn_panel_strided::<M>(&a_rows, b, n, j0, w, &mut acc);
        for (accr, list) in acc.iter().zip(lists.iter_mut()) {
            for (l, &s) in accr[..w].iter().enumerate() {
                list.offer(ep.apply(j0 + l, s, 0.0), (j0 + l) as u32);
            }
        }
        j0 += w;
    }
    for (r, list) in lists.iter().enumerate() {
        out[r * k..r * k + list.ids().len()].copy_from_slice(list.ids());
    }
}

/// Fused logits→top-k over one contiguous row chunk: `out` holds
/// `k`-id rows for the chunk's rows. The logit reduction dispatches to its
/// AVX2+FMA leaf inside [`nn_panel_strided`]; the selection layer
/// ([`TopList`]) is feature-agnostic integer code.
pub fn gemm_bias_topk_chunk(
    a: &[f32],
    kdim: usize,
    b: &[f32],
    n: usize,
    bias: &[f32],
    first_row: usize,
    k: usize,
    out: &mut [u32],
) {
    debug_assert!(out.len().is_multiple_of(k));
    let rows = out.len() / k;
    let mut i = 0;
    while i < rows {
        let block = &mut out[i * k..];
        match rows - i {
            1 => nn_rows_topk::<1>(a, kdim, b, n, bias, first_row + i, k, &mut block[..k]),
            2 => nn_rows_topk::<2>(a, kdim, b, n, bias, first_row + i, k, &mut block[..2 * k]),
            3 => nn_rows_topk::<3>(a, kdim, b, n, bias, first_row + i, k, &mut block[..3 * k]),
            _ => nn_rows_topk::<MR>(a, kdim, b, n, bias, first_row + i, k, &mut block[..MR * k]),
        }
        i += (rows - i).min(MR);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_tree_is_the_documented_association() {
        let acc = [1.0f32, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
        let want = ((1.0 + 16.0) + (4.0 + 64.0)) + ((2.0 + 32.0) + (8.0 + 128.0));
        assert_eq!(lane_tree(acc).to_bits(), (want as f32).to_bits());
    }

    #[test]
    fn dot_lanes_matches_round_robin_reference() {
        for len in [0usize, 1, 7, 8, 9, 16, 31, 64, 100] {
            let a: Vec<f32> = (0..len).map(|i| (i % 13) as f32 / 7.0 - 0.9).collect();
            let b: Vec<f32> = (0..len).map(|i| (i % 11) as f32 / 5.0 - 1.1).collect();
            let mut acc = [0.0f32; LANES];
            for t in 0..len {
                acc[t % LANES] += a[t] * b[t];
            }
            assert_eq!(
                dot_lanes(&a, &b).to_bits(),
                lane_tree(acc).to_bits(),
                "{len}"
            );
        }
    }

    #[test]
    fn axpy_lanes_is_bit_identical_to_scalar() {
        for len in [0usize, 1, 7, 8, 9, 40, 101] {
            let src: Vec<f32> = (0..len).map(|i| (i % 17) as f32 / 3.0 - 2.0).collect();
            let mut a: Vec<f32> = (0..len).map(|i| (i % 5) as f32).collect();
            let mut b = a.clone();
            axpy_lanes(0.37, &src, &mut a);
            for (d, &s) in b.iter_mut().zip(&src) {
                *d += 0.37 * s;
            }
            assert_eq!(
                a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "{len}"
            );
        }
    }

    #[test]
    fn epilogue_beta_zero_ignores_garbage() {
        let ep = Epilogue::AlphaBeta {
            alpha: 2.0,
            beta: 0.0,
        };
        assert_eq!(ep.apply(0, 3.0, f32::NAN), 6.0);
        let ep1 = Epilogue::AlphaBeta {
            alpha: 1.0,
            beta: 1.0,
        };
        assert_eq!(ep1.apply(0, 3.0, 4.0), 7.0);
    }

    #[test]
    fn bias_relu_epilogue_clamps() {
        let bias = [0.5f32, -10.0];
        let ep = Epilogue::BiasRelu(&bias);
        assert_eq!(ep.apply(0, 1.0, 9.9), 1.5);
        assert_eq!(ep.apply(1, 1.0, 9.9), 0.0);
    }

    #[test]
    fn top_list_orders_by_value_then_id() {
        let mut l = TopList::new(3);
        // Offered in ascending id order, as the contract requires.
        for (id, v) in [(0u32, 1.0f32), (1, 5.0), (2, 5.0), (3, 0.5), (4, 7.0)] {
            l.offer(v, id);
        }
        // 7.0@4, then the 5.0 tie resolves to the lower id first.
        assert_eq!(l.ids(), &[4, 1, 2]);
    }

    #[test]
    fn top_list_handles_fewer_candidates_than_k() {
        let mut l = TopList::new(5);
        l.offer(2.0, 7);
        l.offer(3.0, 9);
        assert_eq!(l.ids(), &[9, 7]);
    }

    #[test]
    fn top_list_matches_full_sort_on_random_streams() {
        let mut state = 0x1234_5678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as f32 / 250.0 - 2.0
        };
        for k in [1usize, 2, 5, 31, 32] {
            let vals: Vec<f32> = (0..200).map(|_| next()).collect();
            let mut l = TopList::new(k);
            for (id, &v) in vals.iter().enumerate() {
                l.offer(v, id as u32);
            }
            let mut order: Vec<u32> = (0..vals.len() as u32).collect();
            order.sort_by(|&x, &y| {
                vals[y as usize]
                    .partial_cmp(&vals[x as usize])
                    .unwrap()
                    .then(x.cmp(&y))
            });
            assert_eq!(l.ids(), &order[..k], "k={k}");
        }
    }
}
