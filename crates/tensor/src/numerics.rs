//! Numerically careful element-wise kernels: ReLU, softmax, log-sum-exp.

use crate::parallel::{par_chunks_mut, MIN_PAR_ROWS};
use crate::Matrix;

/// In-place ReLU: `x = max(x, 0)`.
pub fn relu_inplace(m: &mut Matrix) {
    for v in m.as_mut_slice() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Backward mask of ReLU: zeroes `grad` wherever the *activated* value is not
/// positive (i.e. the forward output, not the pre-activation).
pub fn relu_backward_inplace(grad: &mut Matrix, activated: &Matrix) {
    assert_eq!(grad.shape(), activated.shape(), "relu backward shape");
    for (g, &a) in grad.as_mut_slice().iter_mut().zip(activated.as_slice()) {
        if a <= 0.0 {
            *g = 0.0;
        }
    }
}

/// Adds a bias row-vector to every row of `m`.
pub fn add_bias_inplace(m: &mut Matrix, bias: &[f32]) {
    assert_eq!(m.cols(), bias.len(), "bias length mismatch");
    let cols = m.cols();
    for row in m.as_mut_slice().chunks_mut(cols) {
        for (v, &b) in row.iter_mut().zip(bias) {
            *v += b;
        }
    }
}

/// Stable log-sum-exp of a slice: `max + ln Σ exp(x - max)`.
///
/// Returns `-inf` for an empty slice.
pub fn log_sum_exp(xs: &[f32]) -> f32 {
    let max = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        return max;
    }
    let sum: f32 = xs.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

/// Row-wise stable softmax in place.
///
/// Each row becomes a probability distribution; rows are independent and
/// processed in parallel for wide matrices (the XML output layer has up to
/// hundreds of thousands of columns).
pub fn softmax_rows_inplace(m: &mut Matrix) {
    let cols = m.cols();
    if cols == 0 {
        return;
    }
    let rows = m.rows();
    par_chunks_mut(m.as_mut_slice(), rows, cols, MIN_PAR_ROWS, |_, chunk| {
        for row in chunk.chunks_mut(cols) {
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            let inv = 1.0 / sum;
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
    });
}

/// Index of the maximum element of a slice (`None` when empty). Ties resolve
/// to the lowest index, matching `argmax` conventions in evaluation code.
pub fn argmax(xs: &[f32]) -> Option<usize> {
    if xs.is_empty() {
        return None;
    }
    let mut best = 0usize;
    let mut best_v = xs[0];
    for (i, &v) in xs.iter().enumerate().skip(1) {
        if v > best_v {
            best = i;
            best_v = v;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut m = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]);
        relu_inplace(&mut m);
        assert_eq!(m.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let act = Matrix::from_vec(1, 4, vec![0.0, 1.0, 0.0, 3.0]);
        let mut g = Matrix::from_vec(1, 4, vec![5.0, 5.0, 5.0, 5.0]);
        relu_backward_inplace(&mut g, &act);
        assert_eq!(g.as_slice(), &[0.0, 5.0, 0.0, 5.0]);
    }

    #[test]
    fn bias_broadcasts_over_rows() {
        let mut m = Matrix::zeros(3, 2);
        add_bias_inplace(&mut m, &[1.0, -2.0]);
        for r in 0..3 {
            assert_eq!(m.row(r), &[1.0, -2.0]);
        }
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let mut m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        softmax_rows_inplace(&mut m);
        for r in 0..2 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(m.row(r).iter().all(|&p| p > 0.0));
        }
        // Monotone: larger logit => larger probability.
        assert!(m.at(0, 2) > m.at(0, 1) && m.at(0, 1) > m.at(0, 0));
    }

    #[test]
    fn softmax_survives_large_logits() {
        let mut m = Matrix::from_vec(1, 3, vec![1000.0, 1001.0, 999.0]);
        softmax_rows_inplace(&mut m);
        let s: f32 = m.row(0).iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
        assert!(m.row(0).iter().all(|p| p.is_finite()));
    }

    #[test]
    fn log_sum_exp_matches_naive_in_safe_range() {
        let xs = [0.1f32, 0.5, -0.3, 1.2];
        let naive = xs.iter().map(|x| x.exp()).sum::<f32>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-5);
        assert_eq!(log_sum_exp(&[]), f32::NEG_INFINITY);
    }

    #[test]
    fn argmax_picks_first_of_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[-5.0]), Some(0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn softmax_always_sums_to_one(vals in proptest::collection::vec(-30.0f32..30.0, 1..64)) {
            let cols = vals.len();
            let mut m = Matrix::from_vec(1, cols, vals);
            softmax_rows_inplace(&mut m);
            let s: f32 = m.row(0).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
        }

        #[test]
        fn softmax_is_shift_invariant(vals in proptest::collection::vec(-5.0f32..5.0, 2..32), shift in -10.0f32..10.0) {
            let cols = vals.len();
            let mut a = Matrix::from_vec(1, cols, vals.clone());
            let mut b = Matrix::from_vec(1, cols, vals.iter().map(|v| v + shift).collect());
            softmax_rows_inplace(&mut a);
            softmax_rows_inplace(&mut b);
            prop_assert!(a.max_abs_diff(&b) < 1e-4);
        }

        #[test]
        fn argmax_invariant_under_softmax(vals in proptest::collection::vec(-10.0f32..10.0, 1..32)) {
            let before = argmax(&vals);
            let mut m = Matrix::from_vec(1, vals.len(), vals);
            softmax_rows_inplace(&mut m);
            prop_assert_eq!(before, argmax(m.row(0)));
        }
    }
}
