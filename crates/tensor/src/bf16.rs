//! bf16 storage tier: conversion kernels and the precision/flat-buffer types.
//!
//! bfloat16 here is a *storage* format, never an arithmetic one. Every
//! computation widens to f32, accumulates in f32, and narrows back exactly
//! once per store — the mixed-precision analogue of the reduction contract
//! in [`crate::kernels`]:
//!
//! 1. **Widening is exact.** `widen(b)` places the 16 stored bits in the
//!    upper half of an f32 (`(b as u32) << 16` bit-cast); no rounding can
//!    occur, so the order of widens never matters.
//! 2. **Accumulation is f32.** All sums, scales and momentum math run on
//!    the widened f32 values under the same rule-1/rule-2 ordering as the
//!    f32 kernels.
//! 3. **Exactly one round point per store.** `narrow(x)` rounds to
//!    nearest-even once, at the final store. No intermediate value is ever
//!    narrowed and re-widened inside a single logical operation.
//!
//! Both conversions are pure integer manipulations plus (for `narrow`) a
//! single `f32::to_bits` — no FMA, no multi-op float expression the
//! optimizer could contract — so debug and release builds, and the AVX2
//! and portable paths, produce byte-identical results. The SIMD clones
//! ([`widen_slice`]/[`narrow_slice`] leaf functions) perform the identical
//! per-element bit manipulation and are therefore bit-equal to the scalar
//! twins by construction; `tests` and the proptests in this module pin
//! that equality on the edge cases (subnormals, NaN payloads, ties).

/// Storage precision of model/merge flat buffers.
///
/// Selected per run via config (`RunConfig::precision`,
/// `ServeConfig::precision`) or the `ASGD_PRECISION` environment variable;
/// defaults to [`Precision::F32`] so every pre-existing golden stays valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full-precision f32 storage (the original code path, bit-for-bit).
    #[default]
    F32,
    /// bfloat16 storage with f32 accumulation; halves flat-buffer bytes.
    Bf16,
}

impl Precision {
    /// Bytes per stored element.
    #[inline]
    pub fn bytes(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::Bf16 => 2,
        }
    }

    /// Reads `ASGD_PRECISION` (`f32` / `bf16`, case-insensitive), falling
    /// back to `default` when unset or unrecognised.
    pub fn from_env_or(default: Precision) -> Precision {
        match std::env::var("ASGD_PRECISION") {
            Ok(v) if v.trim().eq_ignore_ascii_case("bf16") => Precision::Bf16,
            Ok(v) if v.trim().eq_ignore_ascii_case("f32") => Precision::F32,
            _ => default,
        }
    }

    /// Short lowercase name (`"f32"` / `"bf16"`), for artifact labels.
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Bf16 => "bf16",
        }
    }
}

/// A flat model/merge buffer in one of the two storage precisions.
///
/// `Default` is an empty f32 vector so `std::mem::take` keeps working for
/// the arena's lend/restore protocol; an empty buffer adopts the writer's
/// precision on first fill.
#[derive(Debug, Clone, PartialEq)]
pub enum FlatVec {
    /// f32 storage.
    F32(Vec<f32>),
    /// bf16 storage (raw bit patterns, upper 16 bits of the f32).
    Bf16(Vec<u16>),
}

impl Default for FlatVec {
    fn default() -> Self {
        FlatVec::F32(Vec::new())
    }
}

impl FlatVec {
    /// An empty buffer of the given precision (capacity 0, like `Vec::new`).
    pub fn empty(precision: Precision) -> Self {
        match precision {
            Precision::F32 => FlatVec::F32(Vec::new()),
            Precision::Bf16 => FlatVec::Bf16(Vec::new()),
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        match self {
            FlatVec::F32(v) => v.len(),
            FlatVec::Bf16(v) => v.len(),
        }
    }

    /// True when no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap capacity in elements (pointer-stability checks).
    pub fn capacity(&self) -> usize {
        match self {
            FlatVec::F32(v) => v.capacity(),
            FlatVec::Bf16(v) => v.capacity(),
        }
    }

    /// Stored bytes (`len * precision.bytes()`).
    pub fn byte_len(&self) -> usize {
        self.len() * self.precision().bytes()
    }

    /// The storage precision of this buffer.
    pub fn precision(&self) -> Precision {
        match self {
            FlatVec::F32(_) => Precision::F32,
            FlatVec::Bf16(_) => Precision::Bf16,
        }
    }

    /// Data pointer as an address, for pointer-stability assertions.
    pub fn as_ptr_addr(&self) -> usize {
        match self {
            FlatVec::F32(v) => v.as_ptr() as usize,
            FlatVec::Bf16(v) => v.as_ptr() as usize,
        }
    }

    /// Element at `i`, widened to f32 (exact for both precisions).
    pub fn get_f32(&self, i: usize) -> f32 {
        match self {
            FlatVec::F32(v) => v[i],
            FlatVec::Bf16(v) => widen(v[i]),
        }
    }

    /// Widens the whole buffer into `out` (resized to match). For f32
    /// buffers this is a plain copy.
    pub fn widen_into(&self, out: &mut Vec<f32>) {
        out.clear();
        match self {
            FlatVec::F32(v) => out.extend_from_slice(v),
            FlatVec::Bf16(v) => {
                out.resize(v.len(), 0.0);
                widen_slice(v, out);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Scalar conversions — the executable spec for both SIMD paths.
// ---------------------------------------------------------------------------

/// Widens a stored bf16 bit pattern to f32. Exact: the 16 bits become the
/// upper half of the f32, the mantissa tail is zero.
#[inline(always)]
pub fn widen(b: u16) -> f32 {
    f32::from_bits((b as u32) << 16)
}

/// Narrows an f32 to bf16 with round-to-nearest-even; NaNs are quieted
/// (quiet bit forced) so a payload can never be truncated to an infinity
/// bit pattern. This is the *only* rounding operation of the bf16 tier.
#[inline(always)]
pub fn narrow(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        // Keep the sign and the top payload bits, force the quiet bit.
        return ((bits >> 16) as u16) | 0x0040;
    }
    // Round to nearest even: add 0x7FFF plus the parity of the result LSB.
    let lsb = (bits >> 16) & 1;
    ((bits.wrapping_add(0x7FFF + lsb)) >> 16) as u16
}

// ---------------------------------------------------------------------------
// Vectorized slice conversions: AVX2 leaf functions with portable twins,
// following the kernels.rs multiversioning pattern. Both paths run the
// identical per-element integer manipulation, so they are bit-equal.
// ---------------------------------------------------------------------------

/// Cached runtime AVX2 check (the conversions need no FMA).
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn avx2_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

/// `out[i] = widen(src[i])`. Panics if lengths differ.
pub fn widen_slice(src: &[u16], out: &mut [f32]) {
    assert_eq!(src.len(), out.len(), "widen_slice length mismatch");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was just verified; lengths match.
        unsafe { widen_slice_avx2(src, out) };
        return;
    }
    widen_slice_portable(src, out);
}

/// `out[i] = narrow(src[i])`. Panics if lengths differ.
pub fn narrow_slice(src: &[f32], out: &mut [u16]) {
    assert_eq!(src.len(), out.len(), "narrow_slice length mismatch");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was just verified; lengths match.
        unsafe { narrow_slice_avx2(src, out) };
        return;
    }
    narrow_slice_portable(src, out);
}

#[inline(always)]
fn widen_slice_portable(src: &[u16], out: &mut [f32]) {
    for (o, &b) in out.iter_mut().zip(src) {
        *o = widen(b);
    }
}

#[inline(always)]
fn narrow_slice_portable(src: &[f32], out: &mut [u16]) {
    for (o, &x) in out.iter_mut().zip(src) {
        *o = narrow(x);
    }
}

/// Widens eight stored bf16 lanes to f32 — the vector twin of [`widen`]
/// (zero-extend, shift into the high halves). Callable only from
/// AVX2-enabled leaf functions.
#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn widen_lanes_avx2(half: std::arch::x86_64::__m128i) -> std::arch::x86_64::__m256 {
    use std::arch::x86_64::*;
    _mm256_castsi256_ps(_mm256_slli_epi32(_mm256_cvtepu16_epi32(half), 16))
}

/// Narrows eight f32 lanes to eight bf16 values held in 32-bit lanes
/// (each `< 2^16`) — the vector twin of [`narrow`]: the same
/// RNE-with-NaN-quieting formula on eight lanes of integer math
/// (`(bits + 0x7FFF + lsb) >> 16`, NaN lanes replaced by
/// `(bits >> 16) | quiet`). Callers pack to u16 themselves so the 16-wide
/// loops can pack two results with a single `packus`.
#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn narrow_lanes32_avx2(v: std::arch::x86_64::__m256) -> std::arch::x86_64::__m256i {
    use std::arch::x86_64::*;
    let bits = _mm256_castps_si256(v);
    // RNE: bits + 0x7FFF + ((bits >> 16) & 1).
    let lsb = _mm256_and_si256(_mm256_srli_epi32(bits, 16), _mm256_set1_epi32(1));
    let bias = _mm256_add_epi32(_mm256_set1_epi32(0x7FFF), lsb);
    let rounded = _mm256_srli_epi32(_mm256_add_epi32(bits, bias), 16);
    // NaN lanes (v != v): (bits >> 16) | quiet.
    let nan_mask = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_UNORD_Q>(v, v));
    let quieted = _mm256_or_si256(_mm256_srli_epi32(bits, 16), _mm256_set1_epi32(0x0040));
    _mm256_blendv_epi8(rounded, quieted, nan_mask)
}

/// Packs eight narrowed lanes ([`narrow_lanes32_avx2`]) into eight u16s in
/// the low 128 bits.
#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn narrow_lanes_avx2(v: std::arch::x86_64::__m256) -> std::arch::x86_64::__m128i {
    use std::arch::x86_64::*;
    let packed = _mm256_packus_epi32(narrow_lanes32_avx2(v), _mm256_setzero_si256());
    _mm256_castsi256_si128(_mm256_permute4x64_epi64::<0b00_00_10_00>(packed))
}

/// Packs two [`narrow_lanes32_avx2`] results (16 values in order `lo`,
/// `hi`) into sixteen u16s. `packus` interleaves 128-bit halves, so one
/// lane-crossing permute restores element order.
#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn pack16_avx2(
    lo: std::arch::x86_64::__m256i,
    hi: std::arch::x86_64::__m256i,
) -> std::arch::x86_64::__m256i {
    use std::arch::x86_64::*;
    _mm256_permute4x64_epi64::<0b11_01_10_00>(_mm256_packus_epi32(lo, hi))
}

/// AVX2 clone of [`widen_slice_portable`]. Pure integer ops — bit-equal to
/// the scalar path on every input.
#[cfg(target_arch = "x86_64")]
#[inline(never)] // keep the feature boundary opaque, as in kernels.rs
#[target_feature(enable = "avx2")]
unsafe fn widen_slice_avx2(src: &[u16], out: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = src.len();
    let mut i = 0;
    // 16-wide main loop: one full 32-byte load feeds two independent
    // widen/store chains (better ILP than half-register loads).
    while i + 16 <= n {
        let h = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
        let lo = _mm256_castsi256_si128(h);
        let hi = _mm256_extracti128_si256::<1>(h);
        _mm256_storeu_ps(out.as_mut_ptr().add(i), widen_lanes_avx2(lo));
        _mm256_storeu_ps(out.as_mut_ptr().add(i + 8), widen_lanes_avx2(hi));
        i += 16;
    }
    while i + 8 <= n {
        let half = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
        _mm256_storeu_ps(out.as_mut_ptr().add(i), widen_lanes_avx2(half));
        i += 8;
    }
    widen_slice_portable(&src[i..], &mut out[i..]);
}

/// AVX2 clone of [`narrow_slice_portable`].
#[cfg(target_arch = "x86_64")]
#[inline(never)]
#[target_feature(enable = "avx2")]
unsafe fn narrow_slice_avx2(src: &[f32], out: &mut [u16]) {
    use std::arch::x86_64::*;
    let n = src.len();
    let mut i = 0;
    // 16-wide main loop: two 8-lane narrows share one `packus` + permute
    // and one full 32-byte store (the 8-wide epilogue wastes half of both).
    while i + 16 <= n {
        let lo = narrow_lanes32_avx2(_mm256_loadu_ps(src.as_ptr().add(i)));
        let hi = narrow_lanes32_avx2(_mm256_loadu_ps(src.as_ptr().add(i + 8)));
        _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, pack16_avx2(lo, hi));
        i += 16;
    }
    while i + 8 <= n {
        let v = _mm256_loadu_ps(src.as_ptr().add(i));
        _mm_storeu_si128(
            out.as_mut_ptr().add(i) as *mut __m128i,
            narrow_lanes_avx2(v),
        );
        i += 8;
    }
    narrow_slice_portable(&src[i..], &mut out[i..]);
}

// ---------------------------------------------------------------------------
// Fused bf16 storage arithmetic: widen → one f32 op → narrow, one round
// point per store. Slice kernels with AVX2 leaves and portable twins; the
// f32 ops are single multiplies/adds (never an FMA-contractable pair), so
// both paths and both build profiles agree bit for bit.
// ---------------------------------------------------------------------------

/// `dst[i] = narrow(widen(dst[i]) + widen(src[i]))` — the reduction step of
/// the bf16 collective algorithms. Panics if lengths differ.
pub fn add_assign_slice(dst: &mut [u16], src: &[u16]) {
    assert_eq!(dst.len(), src.len(), "bf16 add_assign length mismatch");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was just verified; lengths match.
        unsafe { add_assign_slice_avx2(dst, src) };
        return;
    }
    add_assign_slice_portable(dst, src);
}

/// `buf[i] = narrow(widen(buf[i]) * a)` — the merge-weight pre-scale.
pub fn scale_slice(a: f32, buf: &mut [u16]) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was just verified.
        unsafe { scale_slice_avx2(a, buf) };
        return;
    }
    scale_slice_portable(a, buf);
}

/// `dst[i] += a * widen(src[i])` — weighted accumulation *reading* bf16
/// into an f32 accumulator (separate multiply and add, exactly like the f32
/// [`crate::parallel::par_weighted_axpy`]). Panics if lengths differ.
pub fn axpy_slice(a: f32, src: &[u16], dst: &mut [f32]) {
    assert_eq!(dst.len(), src.len(), "bf16 axpy length mismatch");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was just verified; lengths match.
        unsafe { axpy_slice_avx2(a, src, dst) };
        return;
    }
    axpy_slice_portable(a, src, dst);
}

#[inline(always)]
fn add_assign_slice_portable(dst: &mut [u16], src: &[u16]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = narrow(widen(*d) + widen(s));
    }
}

#[inline(always)]
fn scale_slice_portable(a: f32, buf: &mut [u16]) {
    for v in buf.iter_mut() {
        *v = narrow(widen(*v) * a);
    }
}

#[inline(always)]
fn axpy_slice_portable(a: f32, src: &[u16], dst: &mut [f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += a * widen(s);
    }
}

/// AVX2 clone of [`add_assign_slice_portable`]: exact widens, one
/// `_mm256_add_ps` (a lone `fadd`, nothing to contract), one vector narrow.
#[cfg(target_arch = "x86_64")]
#[inline(never)]
#[target_feature(enable = "avx2")]
unsafe fn add_assign_slice_avx2(dst: &mut [u16], src: &[u16]) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let mut i = 0;
    // 16-wide main loop: full 32-byte loads/stores, two independent
    // widen→add→narrow chains per iteration, one shared pack.
    while i + 16 <= n {
        let d = _mm256_loadu_si256(dst.as_ptr().add(i) as *const __m256i);
        let s = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
        let sum_lo = _mm256_add_ps(
            widen_lanes_avx2(_mm256_castsi256_si128(d)),
            widen_lanes_avx2(_mm256_castsi256_si128(s)),
        );
        let sum_hi = _mm256_add_ps(
            widen_lanes_avx2(_mm256_extracti128_si256::<1>(d)),
            widen_lanes_avx2(_mm256_extracti128_si256::<1>(s)),
        );
        let packed = pack16_avx2(narrow_lanes32_avx2(sum_lo), narrow_lanes32_avx2(sum_hi));
        _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, packed);
        i += 16;
    }
    while i + 8 <= n {
        let d = widen_lanes_avx2(_mm_loadu_si128(dst.as_ptr().add(i) as *const __m128i));
        let s = widen_lanes_avx2(_mm_loadu_si128(src.as_ptr().add(i) as *const __m128i));
        let sum = _mm256_add_ps(d, s);
        _mm_storeu_si128(
            dst.as_mut_ptr().add(i) as *mut __m128i,
            narrow_lanes_avx2(sum),
        );
        i += 8;
    }
    add_assign_slice_portable(&mut dst[i..], &src[i..]);
}

/// AVX2 clone of [`scale_slice_portable`].
#[cfg(target_arch = "x86_64")]
#[inline(never)]
#[target_feature(enable = "avx2")]
unsafe fn scale_slice_avx2(a: f32, buf: &mut [u16]) {
    use std::arch::x86_64::*;
    let n = buf.len();
    let av = _mm256_set1_ps(a);
    let mut i = 0;
    // 16-wide main loop (see `add_assign_slice_avx2`).
    while i + 16 <= n {
        let v = _mm256_loadu_si256(buf.as_ptr().add(i) as *const __m256i);
        let lo = _mm256_mul_ps(widen_lanes_avx2(_mm256_castsi256_si128(v)), av);
        let hi = _mm256_mul_ps(widen_lanes_avx2(_mm256_extracti128_si256::<1>(v)), av);
        let packed = pack16_avx2(narrow_lanes32_avx2(lo), narrow_lanes32_avx2(hi));
        _mm256_storeu_si256(buf.as_mut_ptr().add(i) as *mut __m256i, packed);
        i += 16;
    }
    while i + 8 <= n {
        let v = widen_lanes_avx2(_mm_loadu_si128(buf.as_ptr().add(i) as *const __m128i));
        let scaled = _mm256_mul_ps(v, av);
        _mm_storeu_si128(
            buf.as_mut_ptr().add(i) as *mut __m128i,
            narrow_lanes_avx2(scaled),
        );
        i += 8;
    }
    scale_slice_portable(a, &mut buf[i..]);
}

/// AVX2 clone of [`axpy_slice_portable`]: a separate `_mm256_mul_ps` and
/// `_mm256_add_ps`, two roundings, matching the portable `*d += a * s`
/// (rustc never contracts an explicit mul+add pair into an FMA).
#[cfg(target_arch = "x86_64")]
#[inline(never)]
#[target_feature(enable = "avx2")]
unsafe fn axpy_slice_avx2(a: f32, src: &[u16], dst: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let av = _mm256_set1_ps(a);
    let mut i = 0;
    while i + 8 <= n {
        let s = widen_lanes_avx2(_mm_loadu_si128(src.as_ptr().add(i) as *const __m128i));
        let d = _mm256_loadu_ps(dst.as_ptr().add(i));
        _mm256_storeu_ps(
            dst.as_mut_ptr().add(i),
            _mm256_add_ps(d, _mm256_mul_ps(av, s)),
        );
        i += 8;
    }
    axpy_slice_portable(a, &src[i..], &mut dst[i..]);
}

// ---------------------------------------------------------------------------
// The element trait the collective algorithms are generic over.
// ---------------------------------------------------------------------------

/// A storage element the all-reduce algorithms can run on: f32 (the
/// original path, bit-for-bit) or bf16 bits (`u16`, widening to f32 per
/// the rounding contract above). Slice-level ops so each precision keeps
/// its vectorized kernel; the f32 impls are the exact loop bodies the
/// pre-generic code ran.
pub trait ReduceElem: Copy + Send + Sync + std::fmt::Debug + PartialEq + 'static {
    /// Bytes per stored element — drives every byte/time accounting line.
    const BYTES: usize;
    /// `buf[i] = round(buf[i] * a)` (one round point per store).
    fn scale_slice(a: f32, buf: &mut [Self]);
    /// `dst[i] = round(dst[i] + src[i])` (one round point per store).
    fn add_slice(dst: &mut [Self], src: &[Self]);
}

impl ReduceElem for f32 {
    const BYTES: usize = 4;
    #[inline(always)]
    fn scale_slice(a: f32, buf: &mut [f32]) {
        for v in buf.iter_mut() {
            *v *= a;
        }
    }
    #[inline(always)]
    fn add_slice(dst: &mut [f32], src: &[f32]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d += s;
        }
    }
}

/// `u16` carries bf16 bit patterns (as in [`FlatVec::Bf16`]).
impl ReduceElem for u16 {
    const BYTES: usize = 2;
    #[inline(always)]
    fn scale_slice(a: f32, buf: &mut [u16]) {
        scale_slice(a, buf);
    }
    #[inline(always)]
    fn add_slice(dst: &mut [u16], src: &[u16]) {
        add_assign_slice(dst, src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Reference narrow via f64 rounding-free reconstruction: compare each
    /// candidate against the exact value and pick nearest, ties to even.
    fn narrow_spec(x: f32) -> u16 {
        if x.is_nan() {
            return ((x.to_bits() >> 16) as u16) | 0x0040;
        }
        let lo = (x.to_bits() >> 16) as u16;
        let hi = lo.wrapping_add(1);
        let (wl, wh) = (widen(lo), widen(hi));
        if wl == x {
            return lo;
        }
        // When `hi` lands on the infinity bit pattern, RNE compares against
        // the *unbounded* next value 2^128 (exact in f64), not f64 infinity.
        let wh64 = if wh.is_infinite() {
            (2.0f64).powi(128).copysign(wh as f64)
        } else {
            wh as f64
        };
        let (dl, dh) = ((x as f64 - wl as f64).abs(), (wh64 - x as f64).abs());
        if dl < dh || (dl == dh && lo & 1 == 0) {
            lo
        } else {
            hi
        }
    }

    #[test]
    fn widen_is_exact_shift() {
        for b in [0u16, 1, 0x3F80, 0x7F80, 0x8000, 0xFF80, 0xABCD] {
            assert_eq!(widen(b).to_bits(), (b as u32) << 16);
        }
        assert_eq!(widen(0x3F80), 1.0);
        assert_eq!(widen(0xBF80), -1.0);
        assert!(widen(0x7F80).is_infinite());
    }

    #[test]
    fn narrow_matches_spec_on_edges() {
        let edges: Vec<f32> = vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            f32::MIN_POSITIVE,
            f32::MIN_POSITIVE / 2.0,     // subnormal
            f32::from_bits(1),           // smallest subnormal
            f32::from_bits(0x0000_8000), // subnormal tie point
            f32::from_bits(0x3F80_8000), // tie between 1.0 and next bf16
            f32::from_bits(0x3F81_8000), // tie, odd lower candidate
            f32::MAX,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            f32::from_bits(0x7F80_0001), // signalling NaN, small payload
            f32::from_bits(0xFFC0_1234), // quiet NaN with payload
            3.402e38,                    // near-overflow rounding
        ];
        for x in edges {
            assert_eq!(
                narrow(x),
                narrow_spec(x),
                "narrow({:?} = {:#010x})",
                x,
                x.to_bits()
            );
        }
    }

    #[test]
    fn narrow_never_turns_nan_into_inf() {
        for payload in [1u32, 0x7FFF, 0x8000, 0x3FFFFF] {
            let x = f32::from_bits(0x7F80_0000 | payload);
            let b = widen(narrow(x));
            assert!(b.is_nan(), "payload {payload:#x} collapsed to {b}");
        }
    }

    #[test]
    fn simd_matches_portable_on_edge_values() {
        // Dense sweep over all u16 bit patterns (widen), plus targeted f32
        // edge patterns (narrow): ties, subnormals, NaN payloads, ±inf.
        let all: Vec<u16> = (0..=u16::MAX).collect();
        let mut wide = vec![0.0f32; all.len()];
        let mut wide_p = vec![0.0f32; all.len()];
        widen_slice(&all, &mut wide);
        widen_slice_portable(&all, &mut wide_p);
        for i in 0..all.len() {
            assert_eq!(
                wide[i].to_bits(),
                wide_p[i].to_bits(),
                "widen {:#06x}",
                all[i]
            );
        }

        let mut narrows: Vec<f32> = Vec::new();
        for hi in 0..=u16::MAX {
            narrows.push(f32::from_bits((hi as u32) << 16 | 0x8000)); // tie
            narrows.push(f32::from_bits((hi as u32) << 16 | 0x7FFF)); // below tie
        }
        let mut got = vec![0u16; narrows.len()];
        let mut want = vec![0u16; narrows.len()];
        narrow_slice(&narrows, &mut got);
        narrow_slice_portable(&narrows, &mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn flatvec_default_is_takeable_empty_f32() {
        let mut v = FlatVec::Bf16(vec![1, 2, 3]);
        let taken = std::mem::take(&mut v);
        assert_eq!(taken.len(), 3);
        assert_eq!(v, FlatVec::F32(Vec::new()));
        assert_eq!(v.byte_len(), 0);
    }

    #[test]
    fn precision_env_parse() {
        // Uses the _or fallback only (env mutation would race other tests).
        assert_eq!(Precision::default(), Precision::F32);
        assert_eq!(Precision::F32.bytes(), 4);
        assert_eq!(Precision::Bf16.bytes(), 2);
        assert_eq!(Precision::Bf16.name(), "bf16");
    }

    proptest! {
        /// Round-trip idempotence: one narrow is a fixed point — narrowing
        /// an already-narrowed value changes nothing.
        #[test]
        fn narrow_widen_roundtrip_is_idempotent(bits in 0u32..=u32::MAX) {
            let x = f32::from_bits(bits);
            let b = narrow(x);
            prop_assert_eq!(narrow(widen(b)), b);
        }

        /// The integer formula matches the comparison-based spec on random
        /// bit patterns (covers every exponent/mantissa class proptest
        /// finds, including subnormals and NaNs).
        #[test]
        fn narrow_matches_spec(bits in 0u32..=u32::MAX) {
            let x = f32::from_bits(bits);
            prop_assert_eq!(narrow(x), narrow_spec(x));
        }

        /// SIMD and portable slice paths agree bit-for-bit on arbitrary
        /// slices (length crosses the 8-lane boundary and the remainder).
        #[test]
        fn slice_paths_bit_equal(raw in proptest::collection::vec(0u32..=u32::MAX, 0..=63)) {
            let xs: Vec<f32> = raw.iter().map(|&b| f32::from_bits(b)).collect();
            let mut a = vec![0u16; xs.len()];
            let mut b = vec![0u16; xs.len()];
            narrow_slice(&xs, &mut a);
            narrow_slice_portable(&xs, &mut b);
            prop_assert_eq!(&a, &b);
            let mut wa = vec![0.0f32; xs.len()];
            let mut wb = vec![0.0f32; xs.len()];
            widen_slice(&a, &mut wa);
            widen_slice_portable(&b, &mut wb);
            let ba: Vec<u32> = wa.iter().map(|x| x.to_bits()).collect();
            let bb: Vec<u32> = wb.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(ba, bb);
        }
    }
}
