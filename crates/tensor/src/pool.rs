//! Process-wide persistent worker pool for fork/join kernels.
//!
//! The kernels in this workspace parallelize over disjoint, deterministic
//! index ranges (see [`crate::parallel::split_ranges`]). Before this pool
//! existed every kernel call spawned fresh scoped threads; now a set of
//! long-lived workers parks on a condvar and fork/join is a lock + notify.
//!
//! Design:
//!
//! - **One job at a time.** A submission mutex serializes jobs; the caller
//!   holds it for the duration of its job and participates in executing
//!   tasks, so a pool of `W` workers serves `W + 1`-way parallelism. With
//!   multiple submitter threads (e.g. several GPU managers), jobs queue on
//!   the mutex instead of oversubscribing the CPU.
//! - **Claim-based scheduling, deterministic results.** A job is `ntasks`
//!   closures-by-index; workers claim indices from a shared atomic counter.
//!   *Which* thread runs a task is nondeterministic, but tasks are disjoint
//!   and each is executed exactly once, so outputs are bit-identical for any
//!   worker count — the partitioning itself stays the caller's business.
//! - **Borrow-safe by barrier.** Task closures may borrow the caller's stack
//!   (the lifetime is erased internally): `run` does not return until every
//!   worker has finished the job, panicked or not, so no borrow outlives it.
//! - **Panic propagation.** A panicking task aborts the job's remaining
//!   tasks; the first payload is re-raised on the calling thread after the
//!   completion barrier (matching what scoped-thread joins did before).
//! - **Re-entrancy.** A task that itself calls `run` executes its inner job
//!   inline (serially): the submission mutex is not re-entrant and the outer
//!   job would deadlock waiting on this worker otherwise.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// A lifetime-erased reference to the current job's task body. Sound because
/// [`run`] never returns (not even by unwinding) before every worker is done
/// with the job — the borrow can not outlive the data it points into.
#[derive(Clone, Copy)]
struct JobTask(&'static (dyn Fn(usize) + Sync));

struct State {
    /// Incremented per job; workers use it to tell "new job" from spurious
    /// wake-ups.
    epoch: u64,
    /// The current job, if any.
    job: Option<(JobTask, usize)>,
    /// Workers still executing the current job.
    active: usize,
    /// First panic payload raised by a worker task.
    panic_payload: Option<Box<dyn std::any::Any + Send + 'static>>,
    /// Total workers spawned so far.
    workers: usize,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers: a new job is available.
    work_cv: Condvar,
    /// Signals the submitter: all workers finished the job.
    done_cv: Condvar,
    /// Next unclaimed task index of the current job.
    cursor: AtomicUsize,
}

/// The pool singleton plus the submission lock that serializes jobs.
struct Pool {
    shared: &'static Shared,
    submit: Mutex<()>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// Set while this thread is executing pool tasks (worker or
    /// participating submitter); nested `run` calls go serial.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        shared: Box::leak(Box::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                active: 0,
                panic_payload: None,
                workers: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            cursor: AtomicUsize::new(0),
        })),
        submit: Mutex::new(()),
    })
}

/// The worker loop: park until a new job epoch, drain the claim counter,
/// report completion, repeat. Workers live for the process lifetime.
fn worker_loop(shared: &'static Shared) {
    IN_POOL.with(|f| f.set(true));
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool state poisoned");
            loop {
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    // A job is always installed before the epoch is bumped;
                    // the `None` check is pure defence.
                    if let Some(job) = st.job {
                        break job;
                    }
                    continue;
                }
                st = shared.work_cv.wait(st).expect("pool state poisoned");
            }
        };
        let (task, ntasks) = job;
        run_claim_loop(shared, task, ntasks);
        let mut st = shared.state.lock().expect("pool state poisoned");
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_one();
        }
    }
}

/// Claims and executes task indices until the job is exhausted. On a panic,
/// stores the first payload and aborts the job's remaining tasks.
fn run_claim_loop(shared: &Shared, task: JobTask, ntasks: usize) {
    loop {
        let i = shared.cursor.fetch_add(1, Ordering::Relaxed);
        if i >= ntasks {
            return;
        }
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (task.0)(i))) {
            let mut st = shared.state.lock().expect("pool state poisoned");
            if st.panic_payload.is_none() {
                st.panic_payload = Some(payload);
            }
            drop(st);
            // Abort what has not started; running tasks finish on their own.
            shared.cursor.store(ntasks, Ordering::Relaxed);
        }
    }
}

/// Executes `task(0..ntasks)` across the persistent workers plus the calling
/// thread, returning after every index has been executed exactly once.
///
/// Panics from any task are re-raised here (first payload wins). Calls from
/// inside a pool task run serially inline. `want_threads` is the
/// parallelism the caller sized its tasks for; the pool lazily grows to
/// `want_threads - 1` workers.
pub(crate) fn run(ntasks: usize, want_threads: usize, task: &(dyn Fn(usize) + Sync)) {
    if ntasks == 0 {
        return;
    }
    let serial = ntasks == 1 || want_threads <= 1 || IN_POOL.with(|f| f.get());
    if serial {
        for i in 0..ntasks {
            task(i);
        }
        return;
    }

    let pool = pool();
    let guard = pool.submit.lock().expect("pool submit lock poisoned");

    // Erase the borrow; the completion barrier below keeps this sound.
    let task: &'static (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(task) };

    {
        let mut st = pool.shared.state.lock().expect("pool state poisoned");
        // Lazily grow to the requested parallelism (workers are never torn
        // down; they park on `work_cv` between jobs).
        while st.workers + 1 < want_threads {
            st.workers += 1;
            let shared = pool.shared;
            std::thread::Builder::new()
                .name(format!("asgd-pool-{}", st.workers))
                .spawn(move || worker_loop(shared))
                .expect("failed to spawn pool worker");
        }
        pool.shared.cursor.store(0, Ordering::Relaxed);
        st.job = Some((JobTask(task), ntasks));
        st.active = st.workers;
        st.epoch += 1;
    }
    pool.shared.work_cv.notify_all();

    // Participate from the calling thread.
    IN_POOL.with(|f| f.set(true));
    run_claim_loop(pool.shared, JobTask(task), ntasks);
    IN_POOL.with(|f| f.set(false));

    // Completion barrier: no return (or unwind) before all workers are done.
    let payload = {
        let mut st = pool.shared.state.lock().expect("pool state poisoned");
        while st.active > 0 {
            st = pool.shared.done_cv.wait(st).expect("pool state poisoned");
        }
        st.job = None;
        st.panic_payload.take()
    };
    drop(guard);
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_every_task_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        super::run(100, 4, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn borrows_caller_stack_mutably_through_disjoint_indices() {
        let mut data = vec![0usize; 64];
        let ptr = data.as_mut_ptr() as usize;
        super::run(64, 4, &|i| unsafe {
            *(ptr as *mut usize).add(i) = i * 3;
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn nested_runs_execute_inline() {
        let total = AtomicUsize::new(0);
        super::run(4, 4, &|_| {
            super::run(8, 4, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn panic_propagates_to_submitter() {
        let result = std::panic::catch_unwind(|| {
            super::run(16, 4, &|i| {
                if i == 7 {
                    panic!("boom from task 7");
                }
            });
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "boom from task 7");
        // The pool must stay usable after a panicked job.
        let ok = AtomicUsize::new(0);
        super::run(16, 4, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn grows_to_larger_thread_requests() {
        let hits = AtomicUsize::new(0);
        super::run(32, 2, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        super::run(32, 6, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }
}
