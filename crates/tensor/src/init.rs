//! Seeded weight initialization.
//!
//! The paper initializes every algorithm from the *same* model whose weights
//! are drawn from a normal distribution with standard deviation derived from
//! the layer's unit count (§V-A). These helpers reproduce that scheme with an
//! explicit RNG so all algorithms can share one initial model bit-for-bit.

use crate::Matrix;
use asgd_stats::Normal;
use rand::Rng;

/// Fills a matrix with `N(0, std_dev)` samples.
pub fn normal_init<R: Rng + ?Sized>(m: &mut Matrix, std_dev: f64, rng: &mut R) {
    let dist = Normal::new(0.0, std_dev).expect("invalid std_dev");
    for v in m.as_mut_slice() {
        *v = dist.sample(rng) as f32;
    }
}

/// Creates a `rows × cols` weight matrix with the paper's scheme: standard
/// deviation `1 / sqrt(fan_in)` where `fan_in = rows` (the number of units
/// feeding the layer).
pub fn layer_init<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    let std = 1.0 / (rows.max(1) as f64).sqrt();
    normal_init(&mut m, std, rng);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn init_is_deterministic_per_seed() {
        let a = layer_init(16, 8, &mut StdRng::seed_from_u64(7));
        let b = layer_init(16, 8, &mut StdRng::seed_from_u64(7));
        let c = layer_init(16, 8, &mut StdRng::seed_from_u64(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn init_std_matches_fan_in() {
        let m = layer_init(400, 50, &mut StdRng::seed_from_u64(1));
        let n = m.len() as f64;
        let mean: f64 = m.as_slice().iter().map(|&x| x as f64).sum::<f64>() / n;
        let var: f64 = m
            .as_slice()
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        let want = 1.0 / 400.0;
        assert!(mean.abs() < 0.002, "mean {mean}");
        assert!((var - want).abs() / want < 0.1, "var {var} want {want}");
    }
}
