//! Fork/join row-range parallelism over scoped crossbeam threads.
//!
//! The kernels in this workspace parallelize over *disjoint row ranges* of an
//! output buffer. Instead of pulling in a work-stealing pool, each kernel
//! call forks `num_threads` scoped threads over contiguous chunks and joins —
//! predictable, allocation-light, and deterministic in its partitioning.
//!
//! The thread count is resolved once per process: the `ASGD_THREADS`
//! environment variable wins, otherwise `std::thread::available_parallelism`.

use std::sync::OnceLock;

static THREADS: OnceLock<usize> = OnceLock::new();

/// The number of worker threads kernels will fork.
///
/// Resolved once from `ASGD_THREADS` (if set to a positive integer) or the
/// machine's available parallelism; at least 1.
pub fn num_threads() -> usize {
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("ASGD_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Splits `0..n` into at most `parts` contiguous ranges of near-equal size.
///
/// Returns an empty vector when `n == 0`. Every element of `0..n` is covered
/// exactly once and ranges are in ascending order.
pub fn split_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    let base = n / parts;
    let rem = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Runs `f(range)` over a partition of `0..n`, in parallel when `n` is large
/// enough to amortize thread spawning (`n >= min_serial`), serially otherwise.
///
/// `f` must only touch state it can access through `&self`/captured `Sync`
/// references; use [`par_chunks_mut`] when each range owns a slice of output.
pub fn par_ranges<F>(n: usize, min_serial: usize, f: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    let threads = num_threads();
    if threads == 1 || n < min_serial {
        if n > 0 {
            f(0..n);
        }
        return;
    }
    let ranges = split_ranges(n, threads);
    crossbeam::scope(|s| {
        // First range runs on the calling thread to save one spawn.
        for r in ranges.iter().skip(1).cloned() {
            let f = &f;
            s.spawn(move |_| f(r));
        }
        f(ranges[0].clone());
    })
    .expect("parallel worker panicked");
}

/// Partitions `data` (logically `rows` rows of `row_len` elements) into
/// contiguous row chunks and runs `f(first_row, chunk)` on each, in parallel
/// when `rows >= min_serial`.
///
/// # Panics
/// Panics when `data.len() != rows * row_len`.
pub fn par_chunks_mut<F>(data: &mut [f32], rows: usize, row_len: usize, min_serial: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert_eq!(data.len(), rows * row_len, "par_chunks_mut shape mismatch");
    let threads = num_threads();
    if threads == 1 || rows < min_serial {
        if rows > 0 {
            f(0, data);
        }
        return;
    }
    let ranges = split_ranges(rows, threads);
    crossbeam::scope(|s| {
        let mut rest = data;
        let mut consumed = 0usize;
        for r in &ranges {
            let (head, tail) = rest.split_at_mut((r.end - r.start) * row_len);
            rest = tail;
            let first_row = consumed;
            consumed = r.end;
            let f = &f;
            s.spawn(move |_| f(first_row, head));
        }
    })
    .expect("parallel worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn split_covers_everything_once() {
        for n in [0usize, 1, 5, 16, 17, 1000] {
            for parts in [1usize, 2, 3, 7, 64] {
                let ranges = split_ranges(n, parts);
                let mut covered = vec![false; n];
                for r in &ranges {
                    for i in r.clone() {
                        assert!(!covered[i], "double cover at {i}");
                        covered[i] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "n={n} parts={parts}");
                if n > 0 {
                    assert!(ranges.len() <= parts.max(1));
                    let max = ranges.iter().map(|r| r.len()).max().unwrap();
                    let min = ranges.iter().map(|r| r.len()).min().unwrap();
                    assert!(max - min <= 1, "unbalanced split");
                }
            }
        }
    }

    #[test]
    fn par_ranges_visits_all() {
        let hits = AtomicUsize::new(0);
        par_ranges(1000, 1, |r| {
            hits.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn par_ranges_zero_is_noop() {
        par_ranges(0, 1, |_| panic!("must not be called"));
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_rows() {
        let rows = 103;
        let row_len = 7;
        let mut data = vec![0.0f32; rows * row_len];
        par_chunks_mut(&mut data, rows, row_len, 1, |first_row, chunk| {
            for (i, row) in chunk.chunks_mut(row_len).enumerate() {
                row.fill((first_row + i) as f32);
            }
        });
        for r in 0..rows {
            for c in 0..row_len {
                assert_eq!(data[r * row_len + c], r as f32);
            }
        }
    }

    #[test]
    fn serial_fallback_matches_parallel() {
        let rows = 64;
        let row_len = 4;
        let run = |min_serial: usize| {
            let mut data = vec![0.0f32; rows * row_len];
            par_chunks_mut(&mut data, rows, row_len, min_serial, |first, chunk| {
                for (i, row) in chunk.chunks_mut(row_len).enumerate() {
                    let v = ((first + i) * 31 % 17) as f32;
                    row.fill(v);
                }
            });
            data
        };
        assert_eq!(run(usize::MAX), run(1));
    }

    #[test]
    fn num_threads_is_positive_and_stable() {
        let a = num_threads();
        let b = num_threads();
        assert!(a >= 1);
        assert_eq!(a, b);
    }
}
