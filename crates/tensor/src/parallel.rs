//! Fork/join row-range parallelism over the persistent worker pool.
//!
//! The kernels in this workspace parallelize over *disjoint row ranges* of an
//! output buffer. Each parallel call splits its index space with
//! [`split_ranges`] — deterministic, contiguous, near-equal chunks — and
//! hands one task per range to the process-wide pool ([`crate::pool`]).
//! Workers are spawned once and parked between jobs, so the per-call cost is
//! a lock and a condvar notify instead of `num_threads` thread spawns.
//!
//! Determinism: every output row is computed in full by exactly one task,
//! with the same inner loop order regardless of how ranges are partitioned
//! or which worker claims them — results are bit-identical for any thread
//! count, including 1.
//!
//! The thread count is resolved once per process: the `ASGD_THREADS`
//! environment variable wins, otherwise `std::thread::available_parallelism`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Row counts below this stay serial — the fork/join (a lock and a condvar
/// notify per call) costs more than the work. One named threshold shared by
/// every row-parallel kernel (dense GEMM, sparse SpMM, softmax); see the
/// `min_par_rows` sweep in the kernel bench for the measurement behind the
/// value.
pub const MIN_PAR_ROWS: usize = 16;

static THREADS: OnceLock<usize> = OnceLock::new();

/// In-process override used by determinism tests (see [`override_threads`]);
/// `0` means "no override".
static THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The number of worker threads kernels will fork.
///
/// Resolved once from `ASGD_THREADS` (if set to a positive integer) or the
/// machine's available parallelism; at least 1.
pub fn num_threads() -> usize {
    let forced = THREADS_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("ASGD_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Forces [`num_threads`] to `n` for the current process (`0` clears the
/// override). Test-only: lets one process compare e.g. 1-thread vs 8-thread
/// kernel results, which the env-var path (read once) cannot.
#[doc(hidden)]
pub fn override_threads(n: usize) {
    THREADS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Splits `0..n` into at most `parts` contiguous ranges of near-equal size.
///
/// Returns an empty vector when `n == 0`. Every element of `0..n` is covered
/// exactly once and ranges are in ascending order.
pub fn split_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    let base = n / parts;
    let rem = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Runs `f(range)` over a partition of `0..n`, on the worker pool when `n`
/// is large enough to amortize the fork/join (`n >= min_serial`), serially
/// otherwise.
///
/// `f` must only touch state it can access through `&self`/captured `Sync`
/// references; use [`par_chunks_mut`] when each range owns a slice of output.
pub fn par_ranges<F>(n: usize, min_serial: usize, f: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    let threads = num_threads();
    if threads == 1 || n < min_serial {
        if n > 0 {
            f(0..n);
        }
        return;
    }
    let ranges = split_ranges(n, threads);
    crate::pool::run(ranges.len(), threads, &|i| f(ranges[i].clone()));
}

/// Partitions `data` (logically `rows` rows of `row_len` elements) into
/// contiguous row chunks and runs `f(first_row, chunk)` on each, on the
/// worker pool when `rows >= min_serial`.
///
/// # Panics
/// Panics when `data.len() != rows * row_len`.
pub fn par_chunks_mut<T, F>(data: &mut [T], rows: usize, row_len: usize, min_serial: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert_eq!(data.len(), rows * row_len, "par_chunks_mut shape mismatch");
    let threads = num_threads();
    if threads == 1 || rows < min_serial {
        if rows > 0 {
            f(0, data);
        }
        return;
    }
    let ranges = split_ranges(rows, threads);
    // Tasks carve disjoint row ranges out of `data`; the raw-pointer share
    // is sound because ranges never overlap and the pool joins before
    // returning.
    let base = data.as_mut_ptr() as usize;
    crate::pool::run(ranges.len(), threads, &|i| {
        let r = &ranges[i];
        let chunk = unsafe {
            std::slice::from_raw_parts_mut(
                (base as *mut T).add(r.start * row_len),
                r.len() * row_len,
            )
        };
        f(r.start, chunk);
    });
}

/// `dst[i] += src[i]` over the worker pool — the reduction arithmetic of the
/// collective algorithms. Element-wise, so any partitioning yields the exact
/// same result; small inputs (`len < min_serial`) stay serial.
///
/// # Panics
/// Panics when lengths differ.
pub fn par_add_assign(dst: &mut [f32], src: &[f32], min_serial: usize) {
    assert_eq!(dst.len(), src.len(), "par_add_assign length mismatch");
    par_chunks_mut(dst, dst.len(), 1, min_serial, |first, chunk| {
        let src_part = &src[first..first + chunk.len()];
        for (d, &s) in chunk.iter_mut().zip(src_part) {
            *d += s;
        }
    });
}

/// `dst[i] += a * src[i]` over the worker pool — the fused scale+add of a
/// weighted model sum. Each element is produced by exactly one rounding of
/// `a * src[i]` followed by one add, matching the scale-then-add formulation
/// bit for bit, for any thread count.
///
/// # Panics
/// Panics when lengths differ.
pub fn par_weighted_axpy(a: f32, src: &[f32], dst: &mut [f32], min_serial: usize) {
    assert_eq!(dst.len(), src.len(), "par_weighted_axpy length mismatch");
    par_chunks_mut(dst, dst.len(), 1, min_serial, |first, chunk| {
        let src_part = &src[first..first + chunk.len()];
        for (d, &s) in chunk.iter_mut().zip(src_part) {
            *d += a * s;
        }
    });
}

/// `buf[i] *= a` over the worker pool — the merge-weight pre-scale of the
/// collective algorithms. Element-wise, bit-identical for any thread count.
pub fn par_scale(a: f32, buf: &mut [f32], min_serial: usize) {
    par_chunks_mut(buf, buf.len(), 1, min_serial, |_, chunk| {
        for v in chunk.iter_mut() {
            *v *= a;
        }
    });
}

/// `dst.copy_from_slice(src)` over the worker pool — model broadcast /
/// redistribution copies. Element-wise, bit-identical for any thread count.
///
/// # Panics
/// Panics when lengths differ.
pub fn par_copy(src: &[f32], dst: &mut [f32], min_serial: usize) {
    assert_eq!(dst.len(), src.len(), "par_copy length mismatch");
    par_chunks_mut(dst, dst.len(), 1, min_serial, |first, chunk| {
        chunk.copy_from_slice(&src[first..first + chunk.len()]);
    });
}

/// The fused global-model momentum update (Algorithm 2, lines 8–9) as a
/// single pool-parallel sweep: per element, `w' = m + gamma·(w − w_prev)`,
/// then `w_prev ← w`, `w ← w'`. Strictly element-wise over three equally
/// indexed slices, so any partitioning yields the exact serial result.
///
/// # Panics
/// Panics when lengths differ.
pub fn par_momentum_update(
    merged: &[f32],
    global: &mut [f32],
    prev: &mut [f32],
    gamma: f32,
    min_serial: usize,
) {
    assert_eq!(merged.len(), global.len(), "par_momentum_update length");
    assert_eq!(merged.len(), prev.len(), "par_momentum_update length");
    // `global` is chunked by the pool; `prev` is carved into the same
    // disjoint ranges through a raw base pointer (sound: ranges never
    // overlap and the pool joins before returning — same pattern as
    // `par_chunks_mut` itself).
    let prev_base = prev.as_mut_ptr() as usize;
    par_chunks_mut(global, global.len(), 1, min_serial, |first, chunk| {
        let prev_part = unsafe {
            std::slice::from_raw_parts_mut((prev_base as *mut f32).add(first), chunk.len())
        };
        let merged_part = &merged[first..first + chunk.len()];
        for ((&m, w), wp) in merged_part.iter().zip(chunk).zip(prev_part) {
            let w_new = m + gamma * (*w - *wp);
            *wp = *w;
            *w = w_new;
        }
    });
}

/// Generic twin of [`par_add_assign`] over a [`crate::bf16::ReduceElem`]:
/// `dst[i] = round(dst[i] + src[i])` with the element's one-round-per-store
/// arithmetic. For `f32` this is bit- and partition-identical to
/// [`par_add_assign`]; for bf16 bits (`u16`) each store narrows once.
///
/// # Panics
/// Panics when lengths differ.
pub fn par_add_assign_elem<E: crate::bf16::ReduceElem>(
    dst: &mut [E],
    src: &[E],
    min_serial: usize,
) {
    assert_eq!(dst.len(), src.len(), "par_add_assign_elem length mismatch");
    par_chunks_mut(dst, dst.len(), 1, min_serial, |first, chunk| {
        E::add_slice(chunk, &src[first..first + chunk.len()]);
    });
}

/// Generic twin of [`par_scale`]: `buf[i] = round(buf[i] * a)` with the
/// element's one-round-per-store arithmetic.
pub fn par_scale_elem<E: crate::bf16::ReduceElem>(a: f32, buf: &mut [E], min_serial: usize) {
    par_chunks_mut(buf, buf.len(), 1, min_serial, |_, chunk| {
        E::scale_slice(a, chunk);
    });
}

/// Generic twin of [`par_copy`] for any element type (bf16 bits included):
/// a parallel `copy_from_slice`, bit-identical for any thread count.
///
/// # Panics
/// Panics when lengths differ.
pub fn par_copy_elem<T: Copy + Send + Sync>(src: &[T], dst: &mut [T], min_serial: usize) {
    assert_eq!(dst.len(), src.len(), "par_copy_elem length mismatch");
    par_chunks_mut(dst, dst.len(), 1, min_serial, |first, chunk| {
        chunk.copy_from_slice(&src[first..first + chunk.len()]);
    });
}

/// `dst[i] += a * widen(src[i])` over the worker pool — the bf16-reading
/// twin of [`par_weighted_axpy`]: exact widen, then the same separate
/// multiply and add into the f32 accumulator.
///
/// # Panics
/// Panics when lengths differ.
pub fn par_weighted_axpy_bf16(a: f32, src: &[u16], dst: &mut [f32], min_serial: usize) {
    assert_eq!(
        dst.len(),
        src.len(),
        "par_weighted_axpy_bf16 length mismatch"
    );
    par_chunks_mut(dst, dst.len(), 1, min_serial, |first, chunk| {
        crate::bf16::axpy_slice(a, &src[first..first + chunk.len()], chunk);
    });
}

/// `dst[i] = narrow(src[i])` over the worker pool — f32 → bf16 storage
/// conversion (redistribution, checkpoint export). One round per store.
///
/// # Panics
/// Panics when lengths differ.
pub fn par_narrow(src: &[f32], dst: &mut [u16], min_serial: usize) {
    assert_eq!(dst.len(), src.len(), "par_narrow length mismatch");
    par_chunks_mut(dst, dst.len(), 1, min_serial, |first, chunk| {
        crate::bf16::narrow_slice(&src[first..first + chunk.len()], chunk);
    });
}

/// `dst[i] = widen(src[i])` over the worker pool — exact bf16 → f32
/// conversion (model import, serve-time weight streaming).
///
/// # Panics
/// Panics when lengths differ.
pub fn par_widen(src: &[u16], dst: &mut [f32], min_serial: usize) {
    assert_eq!(dst.len(), src.len(), "par_widen length mismatch");
    par_chunks_mut(dst, dst.len(), 1, min_serial, |first, chunk| {
        crate::bf16::widen_slice(&src[first..first + chunk.len()], chunk);
    });
}

/// The bf16-reading twin of [`par_momentum_update`]: `merged` holds bf16
/// bits, widened exactly per element; the global/momentum state stays f32,
/// so the update arithmetic is identical to the f32 path.
///
/// # Panics
/// Panics when lengths differ.
pub fn par_momentum_update_bf16(
    merged: &[u16],
    global: &mut [f32],
    prev: &mut [f32],
    gamma: f32,
    min_serial: usize,
) {
    assert_eq!(merged.len(), global.len(), "par_momentum_update length");
    assert_eq!(merged.len(), prev.len(), "par_momentum_update length");
    let prev_base = prev.as_mut_ptr() as usize;
    par_chunks_mut(global, global.len(), 1, min_serial, |first, chunk| {
        let prev_part = unsafe {
            std::slice::from_raw_parts_mut((prev_base as *mut f32).add(first), chunk.len())
        };
        let merged_part = &merged[first..first + chunk.len()];
        for ((&m, w), wp) in merged_part.iter().zip(chunk).zip(prev_part) {
            let w_new = crate::bf16::widen(m) + gamma * (*w - *wp);
            *wp = *w;
            *w = w_new;
        }
    });
}

/// Runs `f(0), …, f(ntasks-1)` on the worker pool, one task per index —
/// coarse-grained fork/join for jobs that are already partitioned by the
/// caller (e.g. the multi-stream ring's per-partition rings). Tasks must
/// touch disjoint state. Calls from inside a pool task run serially inline.
pub fn par_tasks<F>(ntasks: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    crate::pool::run(ntasks, num_threads().min(ntasks.max(1)), &f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn split_covers_everything_once() {
        for n in [0usize, 1, 5, 16, 17, 1000] {
            for parts in [1usize, 2, 3, 7, 64] {
                let ranges = split_ranges(n, parts);
                let mut covered = vec![false; n];
                for r in &ranges {
                    for i in r.clone() {
                        assert!(!covered[i], "double cover at {i}");
                        covered[i] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "n={n} parts={parts}");
                if n > 0 {
                    assert!(ranges.len() <= parts.max(1));
                    let max = ranges.iter().map(|r| r.len()).max().unwrap();
                    let min = ranges.iter().map(|r| r.len()).min().unwrap();
                    assert!(max - min <= 1, "unbalanced split");
                }
            }
        }
    }

    #[test]
    fn par_ranges_visits_all() {
        let hits = AtomicUsize::new(0);
        par_ranges(1000, 1, |r| {
            hits.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn par_ranges_zero_is_noop() {
        par_ranges(0, 1, |_| panic!("must not be called"));
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_rows() {
        let rows = 103;
        let row_len = 7;
        let mut data = vec![0.0f32; rows * row_len];
        par_chunks_mut(&mut data, rows, row_len, 1, |first_row, chunk| {
            for (i, row) in chunk.chunks_mut(row_len).enumerate() {
                row.fill((first_row + i) as f32);
            }
        });
        for r in 0..rows {
            for c in 0..row_len {
                assert_eq!(data[r * row_len + c], r as f32);
            }
        }
    }

    #[test]
    fn serial_fallback_matches_parallel() {
        let rows = 64;
        let row_len = 4;
        let run = |min_serial: usize| {
            let mut data = vec![0.0f32; rows * row_len];
            par_chunks_mut(&mut data, rows, row_len, min_serial, |first, chunk| {
                for (i, row) in chunk.chunks_mut(row_len).enumerate() {
                    let v = ((first + i) * 31 % 17) as f32;
                    row.fill(v);
                }
            });
            data
        };
        assert_eq!(run(usize::MAX), run(1));
    }

    #[test]
    fn par_add_assign_adds_elementwise() {
        let src: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let mut a = vec![1.0f32; 1000];
        let mut b = vec![1.0f32; 1000];
        par_add_assign(&mut a, &src, 1); // pooled
        par_add_assign(&mut b, &src, usize::MAX); // serial
        assert_eq!(a, b);
        assert_eq!(a[999], 1000.0);
    }

    #[test]
    fn par_weighted_axpy_matches_scale_then_add() {
        let src: Vec<f32> = (0..5000).map(|i| (i % 37) as f32 / 7.0 - 2.0).collect();
        let w = 0.3721f32;
        // Reference: scale a copy, then plain add — the old two-pass path.
        let mut scaled = src.clone();
        for v in scaled.iter_mut() {
            *v *= w;
        }
        let mut two_pass = vec![1.5f32; 5000];
        par_add_assign(&mut two_pass, &scaled, usize::MAX);
        let mut fused_par = vec![1.5f32; 5000];
        par_weighted_axpy(w, &src, &mut fused_par, 1);
        let mut fused_serial = vec![1.5f32; 5000];
        par_weighted_axpy(w, &src, &mut fused_serial, usize::MAX);
        assert_eq!(fused_par, fused_serial);
        assert_eq!(fused_par, two_pass);
    }

    #[test]
    fn par_scale_and_copy_match_serial() {
        let src: Vec<f32> = (0..3000).map(|i| i as f32 * 0.25 - 100.0).collect();
        let mut a = src.clone();
        let mut b = src.clone();
        par_scale(1.7, &mut a, 1);
        par_scale(1.7, &mut b, usize::MAX);
        assert_eq!(a, b);
        let mut dst_par = vec![0.0f32; 3000];
        let mut dst_ser = vec![0.0f32; 3000];
        par_copy(&a, &mut dst_par, 1);
        par_copy(&a, &mut dst_ser, usize::MAX);
        assert_eq!(dst_par, a);
        assert_eq!(dst_ser, a);
    }

    #[test]
    fn par_momentum_update_matches_serial_sweep() {
        let n = 4097;
        let merged: Vec<f32> = (0..n).map(|i| (i % 13) as f32 - 6.0).collect();
        let g0: Vec<f32> = (0..n).map(|i| (i % 7) as f32 * 0.5).collect();
        let p0: Vec<f32> = (0..n).map(|i| (i % 11) as f32 * 0.25).collect();
        let run = |min_serial: usize| {
            let mut g = g0.clone();
            let mut p = p0.clone();
            par_momentum_update(&merged, &mut g, &mut p, 0.9, min_serial);
            (g, p)
        };
        let (g_par, p_par) = run(1);
        let (g_ser, p_ser) = run(usize::MAX);
        assert_eq!(g_par, g_ser);
        assert_eq!(p_par, p_ser);
        // Spot-check the formula and the prev hand-off.
        for i in [0usize, 1000, n - 1] {
            assert_eq!(g_par[i], merged[i] + 0.9 * (g0[i] - p0[i]));
            assert_eq!(p_par[i], g0[i]);
        }
    }

    #[test]
    fn par_tasks_runs_each_index_once() {
        let hits: Vec<AtomicUsize> = (0..9).map(|_| AtomicUsize::new(0)).collect();
        par_tasks(9, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        par_tasks(0, |_| panic!("must not run"));
    }

    #[test]
    fn num_threads_is_positive_and_stable() {
        let a = num_threads();
        let b = num_threads();
        assert!(a >= 1);
        assert_eq!(a, b);
    }

    /// Serializes tests that toggle the global thread-count override so they
    /// can't clobber each other's setting mid-assertion. (Other tests are
    /// unaffected by the override: results are thread-count independent.)
    pub(crate) static OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn override_forces_thread_count() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        override_threads(5);
        assert_eq!(num_threads(), 5);
        override_threads(0);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn gemm_bit_identical_across_thread_counts() {
        use crate::{ops, Matrix};
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let a = Matrix::from_fn(120, 64, |r, c| ((r * 31 + c * 17) % 13) as f32 / 7.0 - 0.9);
        let b = Matrix::from_fn(64, 90, |r, c| ((r * 23 + c * 29) % 11) as f32 / 5.0 - 1.1);
        let run = |threads: usize| {
            override_threads(threads);
            let mut nn = Matrix::zeros(120, 90);
            ops::gemm(1.0, &a, &b, 0.0, &mut nn);
            let mut tn = Matrix::zeros(64, 64);
            ops::gemm_tn(1.0, &a, &a, 0.0, &mut tn);
            (nn, tn)
        };
        let single = run(1);
        let eight = run(8);
        override_threads(0);
        // Bit-identical, not approximately equal: every output row is
        // computed whole by one task with a fixed inner-loop order.
        assert_eq!(single, eight);
    }
}
