//! Fork/join row-range parallelism over the persistent worker pool.
//!
//! The kernels in this workspace parallelize over *disjoint row ranges* of an
//! output buffer. Each parallel call splits its index space with
//! [`split_ranges`] — deterministic, contiguous, near-equal chunks — and
//! hands one task per range to the process-wide pool ([`crate::pool`]).
//! Workers are spawned once and parked between jobs, so the per-call cost is
//! a lock and a condvar notify instead of `num_threads` thread spawns.
//!
//! Determinism: every output row is computed in full by exactly one task,
//! with the same inner loop order regardless of how ranges are partitioned
//! or which worker claims them — results are bit-identical for any thread
//! count, including 1.
//!
//! The thread count is resolved once per process: the `ASGD_THREADS`
//! environment variable wins, otherwise `std::thread::available_parallelism`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

static THREADS: OnceLock<usize> = OnceLock::new();

/// In-process override used by determinism tests (see [`override_threads`]);
/// `0` means "no override".
static THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The number of worker threads kernels will fork.
///
/// Resolved once from `ASGD_THREADS` (if set to a positive integer) or the
/// machine's available parallelism; at least 1.
pub fn num_threads() -> usize {
    let forced = THREADS_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("ASGD_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Forces [`num_threads`] to `n` for the current process (`0` clears the
/// override). Test-only: lets one process compare e.g. 1-thread vs 8-thread
/// kernel results, which the env-var path (read once) cannot.
#[doc(hidden)]
pub fn override_threads(n: usize) {
    THREADS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Splits `0..n` into at most `parts` contiguous ranges of near-equal size.
///
/// Returns an empty vector when `n == 0`. Every element of `0..n` is covered
/// exactly once and ranges are in ascending order.
pub fn split_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    let base = n / parts;
    let rem = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Runs `f(range)` over a partition of `0..n`, on the worker pool when `n`
/// is large enough to amortize the fork/join (`n >= min_serial`), serially
/// otherwise.
///
/// `f` must only touch state it can access through `&self`/captured `Sync`
/// references; use [`par_chunks_mut`] when each range owns a slice of output.
pub fn par_ranges<F>(n: usize, min_serial: usize, f: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    let threads = num_threads();
    if threads == 1 || n < min_serial {
        if n > 0 {
            f(0..n);
        }
        return;
    }
    let ranges = split_ranges(n, threads);
    crate::pool::run(ranges.len(), threads, &|i| f(ranges[i].clone()));
}

/// Partitions `data` (logically `rows` rows of `row_len` elements) into
/// contiguous row chunks and runs `f(first_row, chunk)` on each, on the
/// worker pool when `rows >= min_serial`.
///
/// # Panics
/// Panics when `data.len() != rows * row_len`.
pub fn par_chunks_mut<F>(data: &mut [f32], rows: usize, row_len: usize, min_serial: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert_eq!(data.len(), rows * row_len, "par_chunks_mut shape mismatch");
    let threads = num_threads();
    if threads == 1 || rows < min_serial {
        if rows > 0 {
            f(0, data);
        }
        return;
    }
    let ranges = split_ranges(rows, threads);
    // Tasks carve disjoint row ranges out of `data`; the raw-pointer share
    // is sound because ranges never overlap and the pool joins before
    // returning.
    let base = data.as_mut_ptr() as usize;
    crate::pool::run(ranges.len(), threads, &|i| {
        let r = &ranges[i];
        let chunk = unsafe {
            std::slice::from_raw_parts_mut(
                (base as *mut f32).add(r.start * row_len),
                r.len() * row_len,
            )
        };
        f(r.start, chunk);
    });
}

/// `dst[i] += src[i]` over the worker pool — the reduction arithmetic of the
/// collective algorithms. Element-wise, so any partitioning yields the exact
/// same result; small inputs (`len < min_serial`) stay serial.
///
/// # Panics
/// Panics when lengths differ.
pub fn par_add_assign(dst: &mut [f32], src: &[f32], min_serial: usize) {
    assert_eq!(dst.len(), src.len(), "par_add_assign length mismatch");
    par_chunks_mut(dst, dst.len(), 1, min_serial, |first, chunk| {
        let src_part = &src[first..first + chunk.len()];
        for (d, &s) in chunk.iter_mut().zip(src_part) {
            *d += s;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn split_covers_everything_once() {
        for n in [0usize, 1, 5, 16, 17, 1000] {
            for parts in [1usize, 2, 3, 7, 64] {
                let ranges = split_ranges(n, parts);
                let mut covered = vec![false; n];
                for r in &ranges {
                    for i in r.clone() {
                        assert!(!covered[i], "double cover at {i}");
                        covered[i] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "n={n} parts={parts}");
                if n > 0 {
                    assert!(ranges.len() <= parts.max(1));
                    let max = ranges.iter().map(|r| r.len()).max().unwrap();
                    let min = ranges.iter().map(|r| r.len()).min().unwrap();
                    assert!(max - min <= 1, "unbalanced split");
                }
            }
        }
    }

    #[test]
    fn par_ranges_visits_all() {
        let hits = AtomicUsize::new(0);
        par_ranges(1000, 1, |r| {
            hits.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn par_ranges_zero_is_noop() {
        par_ranges(0, 1, |_| panic!("must not be called"));
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_rows() {
        let rows = 103;
        let row_len = 7;
        let mut data = vec![0.0f32; rows * row_len];
        par_chunks_mut(&mut data, rows, row_len, 1, |first_row, chunk| {
            for (i, row) in chunk.chunks_mut(row_len).enumerate() {
                row.fill((first_row + i) as f32);
            }
        });
        for r in 0..rows {
            for c in 0..row_len {
                assert_eq!(data[r * row_len + c], r as f32);
            }
        }
    }

    #[test]
    fn serial_fallback_matches_parallel() {
        let rows = 64;
        let row_len = 4;
        let run = |min_serial: usize| {
            let mut data = vec![0.0f32; rows * row_len];
            par_chunks_mut(&mut data, rows, row_len, min_serial, |first, chunk| {
                for (i, row) in chunk.chunks_mut(row_len).enumerate() {
                    let v = ((first + i) * 31 % 17) as f32;
                    row.fill(v);
                }
            });
            data
        };
        assert_eq!(run(usize::MAX), run(1));
    }

    #[test]
    fn par_add_assign_adds_elementwise() {
        let src: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let mut a = vec![1.0f32; 1000];
        let mut b = vec![1.0f32; 1000];
        par_add_assign(&mut a, &src, 1); // pooled
        par_add_assign(&mut b, &src, usize::MAX); // serial
        assert_eq!(a, b);
        assert_eq!(a[999], 1000.0);
    }

    #[test]
    fn num_threads_is_positive_and_stable() {
        let a = num_threads();
        let b = num_threads();
        assert!(a >= 1);
        assert_eq!(a, b);
    }

    /// Serializes tests that toggle the global thread-count override so they
    /// can't clobber each other's setting mid-assertion. (Other tests are
    /// unaffected by the override: results are thread-count independent.)
    pub(crate) static OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn override_forces_thread_count() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        override_threads(5);
        assert_eq!(num_threads(), 5);
        override_threads(0);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn gemm_bit_identical_across_thread_counts() {
        use crate::{ops, Matrix};
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let a = Matrix::from_fn(120, 64, |r, c| ((r * 31 + c * 17) % 13) as f32 / 7.0 - 0.9);
        let b = Matrix::from_fn(64, 90, |r, c| ((r * 23 + c * 29) % 11) as f32 / 5.0 - 1.1);
        let run = |threads: usize| {
            override_threads(threads);
            let mut nn = Matrix::zeros(120, 90);
            ops::gemm(1.0, &a, &b, 0.0, &mut nn);
            let mut tn = Matrix::zeros(64, 64);
            ops::gemm_tn(1.0, &a, &a, 0.0, &mut tn);
            (nn, tn)
        };
        let single = run(1);
        let eight = run(8);
        override_threads(0);
        // Bit-identical, not approximately equal: every output row is
        // computed whole by one task with a fixed inner-loop order.
        assert_eq!(single, eight);
    }
}
