//! BLAS-like dense kernels: GEMM (NN/NT/TN), axpy, scaling, weighted sums.
//!
//! The GEMM variants cover exactly the products the 3-layer MLP needs:
//!
//! * forward output layer: `O = H · W₂` — [`gemm`] (NN)
//! * backward through the output layer: `dH = dO · W₂ᵀ` — [`gemm_nt`]
//! * weight gradient: `∇W₂ = Hᵀ · dO` — [`gemm_tn`]
//!
//! All three use an `i-k-j` loop order (unit-stride inner loop over the
//! output row) and parallelize over output rows via
//! [`crate::parallel::par_chunks_mut`].

use crate::parallel::par_chunks_mut;
use crate::Matrix;

/// Rows below this stay serial — thread spawn costs more than the work.
const MIN_PAR_ROWS: usize = 16;

/// `C = alpha * A·B + beta * C` (no transposes).
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gemm(alpha: f32, a: &Matrix, b: &Matrix, beta: f32, c: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "gemm inner dimension mismatch");
    assert_eq!(c.rows(), a.rows(), "gemm output rows mismatch");
    assert_eq!(c.cols(), b.cols(), "gemm output cols mismatch");
    let (m, k) = a.shape();
    let n = b.cols();
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    par_chunks_mut(c.as_mut_slice(), m, n, MIN_PAR_ROWS, |first_row, chunk| {
        for (i, crow) in chunk.chunks_mut(n).enumerate() {
            let ai = first_row + i;
            if beta == 0.0 {
                crow.fill(0.0);
            } else if beta != 1.0 {
                for x in crow.iter_mut() {
                    *x *= beta;
                }
            }
            let arow = &a_data[ai * k..(ai + 1) * k];
            for (kk, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let s = alpha * aik;
                let brow = &b_data[kk * n..(kk + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += s * bv;
                }
            }
        }
    });
}

/// `C = alpha * A·Bᵀ + beta * C`.
///
/// `A` is `m×k`, `B` is `n×k`, `C` is `m×n`. Inner loop is a dot product of
/// two contiguous rows, so no transposition is materialized.
pub fn gemm_nt(alpha: f32, a: &Matrix, b: &Matrix, beta: f32, c: &mut Matrix) {
    assert_eq!(a.cols(), b.cols(), "gemm_nt inner dimension mismatch");
    assert_eq!(c.rows(), a.rows(), "gemm_nt output rows mismatch");
    assert_eq!(c.cols(), b.rows(), "gemm_nt output cols mismatch");
    let (m, k) = a.shape();
    let n = b.rows();
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    par_chunks_mut(c.as_mut_slice(), m, n, MIN_PAR_ROWS, |first_row, chunk| {
        for (i, crow) in chunk.chunks_mut(n).enumerate() {
            let ai = first_row + i;
            let arow = &a_data[ai * k..(ai + 1) * k];
            for (j, cv) in crow.iter_mut().enumerate() {
                let brow = &b_data[j * k..(j + 1) * k];
                let mut dot = 0.0f32;
                for (&av, &bv) in arow.iter().zip(brow) {
                    dot += av * bv;
                }
                *cv = alpha * dot + if beta == 0.0 { 0.0 } else { beta * *cv };
            }
        }
    });
}

/// `C = alpha * Aᵀ·B + beta * C`.
///
/// `A` is `k×m`, `B` is `k×n`, `C` is `m×n`. Parallelized over rows of `C`
/// (columns of `A`); each worker streams over `A` and `B` once.
pub fn gemm_tn(alpha: f32, a: &Matrix, b: &Matrix, beta: f32, c: &mut Matrix) {
    assert_eq!(a.rows(), b.rows(), "gemm_tn inner dimension mismatch");
    assert_eq!(c.rows(), a.cols(), "gemm_tn output rows mismatch");
    assert_eq!(c.cols(), b.cols(), "gemm_tn output cols mismatch");
    let (k, m) = a.shape();
    let n = b.cols();
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    par_chunks_mut(c.as_mut_slice(), m, n, MIN_PAR_ROWS, |first_row, chunk| {
        let rows_here = chunk.len() / n;
        if beta == 0.0 {
            chunk.fill(0.0);
        } else if beta != 1.0 {
            for x in chunk.iter_mut() {
                *x *= beta;
            }
        }
        for kk in 0..k {
            let brow = &b_data[kk * n..(kk + 1) * n];
            let arow = &a_data[kk * m..(kk + 1) * m];
            for i in 0..rows_here {
                let aik = arow[first_row + i];
                if aik == 0.0 {
                    continue;
                }
                let s = alpha * aik;
                let crow = &mut chunk[i * n..(i + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += s * bv;
                }
            }
        }
    });
}

/// `y += a * x` over raw slices (lengths must match).
///
/// Serial on purpose: axpy is memory-bandwidth-bound, and its callers (model
/// updates) already run one-per-device on separate threads.
pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += a * xv;
    }
}

/// `y = a * x + b * y` element-wise.
pub fn axpby(a: f32, x: &[f32], b: f32, y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpby length mismatch");
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv = a * xv + b * *yv;
    }
}

/// Scales a slice in place.
pub fn scale(a: f32, x: &mut [f32]) {
    for v in x.iter_mut() {
        *v *= a;
    }
}

/// `out = Σ wᵢ · mᵢ` — the weighted model average at the heart of normalized
/// model merging (Algorithm 2, line 8).
///
/// Each replica's contribution is a pool-parallel fused scale+add
/// ([`crate::parallel::par_weighted_axpy`]); the passes run in replica order,
/// so every output element accumulates its terms in the exact serial order —
/// bit-identical for any thread count.
///
/// # Panics
/// Panics when `mats` is empty, lengths differ, or shapes mismatch.
pub fn weighted_sum(mats: &[&Matrix], weights: &[f64], out: &mut Matrix) {
    assert!(!mats.is_empty(), "weighted_sum needs at least one matrix");
    assert_eq!(
        mats.len(),
        weights.len(),
        "weights/matrices length mismatch"
    );
    for m in mats {
        assert_eq!(m.shape(), out.shape(), "weighted_sum shape mismatch");
    }
    out.fill(0.0);
    for (m, &w) in mats.iter().zip(weights) {
        crate::parallel::par_weighted_axpy(
            w as f32,
            m.as_slice(),
            out.as_mut_slice(),
            MIN_PAR_ELEMS,
        );
    }
}

/// Element counts below this stay serial in the flat merge helpers — the
/// fork/join only pays off for model-sized buffers.
const MIN_PAR_ELEMS: usize = 1 << 14;

/// Adds `delta * (cur - prev)` into `out` — the momentum term of Algorithm 2.
pub fn add_momentum(out: &mut Matrix, cur: &Matrix, prev: &Matrix, gamma: f32) {
    assert_eq!(out.shape(), cur.shape(), "momentum shape mismatch");
    assert_eq!(out.shape(), prev.shape(), "momentum shape mismatch");
    for ((o, &c), &p) in out
        .as_mut_slice()
        .iter_mut()
        .zip(cur.as_slice())
        .zip(prev.as_slice())
    {
        *o += gamma * (c - p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_gemm(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a.at(i, k) * b.at(k, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    fn test_mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            let x = (r * 31 + c * 17 + seed as usize) % 13;
            x as f32 / 7.0 - 0.9
        })
    }

    #[test]
    fn gemm_matches_naive() {
        for (m, k, n) in [(1, 1, 1), (3, 4, 5), (17, 9, 33), (64, 32, 48)] {
            let a = test_mat(m, k, 1);
            let b = test_mat(k, n, 2);
            let mut c = Matrix::zeros(m, n);
            gemm(1.0, &a, &b, 0.0, &mut c);
            assert!(c.max_abs_diff(&naive_gemm(&a, &b)) < 1e-4, "({m},{k},{n})");
        }
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = test_mat(4, 3, 1);
        let b = test_mat(3, 5, 2);
        let mut c = test_mat(4, 5, 3);
        let c0 = c.clone();
        gemm(2.0, &a, &b, 0.5, &mut c);
        let naive = naive_gemm(&a, &b);
        for i in 0..4 {
            for j in 0..5 {
                let want = 2.0 * naive.at(i, j) + 0.5 * c0.at(i, j);
                assert!((c.at(i, j) - want).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn gemm_nt_matches_explicit_transpose() {
        let a = test_mat(6, 7, 4);
        let b = test_mat(9, 7, 5);
        let mut c = Matrix::zeros(6, 9);
        gemm_nt(1.0, &a, &b, 0.0, &mut c);
        assert!(c.max_abs_diff(&naive_gemm(&a, &b.transposed())) < 1e-4);
    }

    #[test]
    fn gemm_tn_matches_explicit_transpose() {
        let a = test_mat(7, 6, 6);
        let b = test_mat(7, 9, 7);
        let mut c = Matrix::zeros(6, 9);
        gemm_tn(1.0, &a, &b, 0.0, &mut c);
        assert!(c.max_abs_diff(&naive_gemm(&a.transposed(), &b)) < 1e-4);
    }

    #[test]
    fn gemm_tn_beta_accumulates() {
        let a = test_mat(5, 4, 8);
        let b = test_mat(5, 3, 9);
        let mut c = test_mat(4, 3, 10);
        let c0 = c.clone();
        gemm_tn(1.0, &a, &b, 1.0, &mut c);
        let naive = naive_gemm(&a.transposed(), &b);
        for i in 0..4 {
            for j in 0..3 {
                assert!((c.at(i, j) - (naive.at(i, j) + c0.at(i, j))).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn large_parallel_gemm_matches_serial_result() {
        // Big enough to trigger the parallel path.
        let a = test_mat(200, 64, 11);
        let b = test_mat(64, 120, 12);
        let mut c = Matrix::zeros(200, 120);
        gemm(1.0, &a, &b, 0.0, &mut c);
        assert!(c.max_abs_diff(&naive_gemm(&a, &b)) < 1e-3);
    }

    #[test]
    fn axpy_axpby_scale() {
        let x = [1.0f32, 2.0, 3.0];
        let mut y = [10.0f32, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
        axpby(1.0, &x, 0.5, &mut y);
        assert_eq!(y, [7.0, 14.0, 21.0]);
        scale(2.0, &mut y);
        assert_eq!(y, [14.0, 28.0, 42.0]);
    }

    #[test]
    fn weighted_sum_basic() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        let mut out = Matrix::zeros(1, 2);
        weighted_sum(&[&a, &b], &[0.25, 0.75], &mut out);
        assert_eq!(out.as_slice(), &[2.5, 3.5]);
    }

    #[test]
    fn momentum_term() {
        let cur = Matrix::from_vec(1, 2, vec![2.0, 2.0]);
        let prev = Matrix::from_vec(1, 2, vec![1.0, 3.0]);
        let mut out = Matrix::from_vec(1, 2, vec![10.0, 10.0]);
        add_momentum(&mut out, &cur, &prev, 0.9);
        assert_eq!(out.as_slice(), &[10.9, 9.1]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn gemm_dim_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let mut c = Matrix::zeros(2, 2);
        gemm(1.0, &a, &b, 0.0, &mut c);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn mat_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-2.0f32..2.0, rows * cols)
            .prop_map(move |v| Matrix::from_vec(rows, cols, v))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn gemm_is_linear_in_alpha(
            a in mat_strategy(5, 4),
            b in mat_strategy(4, 6),
            alpha in -3.0f32..3.0,
        ) {
            let mut c1 = Matrix::zeros(5, 6);
            gemm(1.0, &a, &b, 0.0, &mut c1);
            let mut c2 = Matrix::zeros(5, 6);
            gemm(alpha, &a, &b, 0.0, &mut c2);
            for (x, y) in c1.as_slice().iter().zip(c2.as_slice()) {
                prop_assert!((alpha * x - y).abs() < 1e-3);
            }
        }

        #[test]
        fn nt_tn_consistency((a, b) in (mat_strategy(6, 5), mat_strategy(7, 5))) {
            // (A·Bᵀ)ᵀ == B·Aᵀ
            let mut ab = Matrix::zeros(6, 7);
            gemm_nt(1.0, &a, &b, 0.0, &mut ab);
            let mut ba = Matrix::zeros(7, 6);
            gemm_nt(1.0, &b, &a, 0.0, &mut ba);
            prop_assert!(ab.transposed().max_abs_diff(&ba) < 1e-4);
        }

        #[test]
        fn weighted_sum_of_identical_is_identity(m in mat_strategy(4, 4)) {
            // With weights summing to 1 and all replicas equal, the merge
            // must return the replica (merge idempotence).
            let mut out = Matrix::zeros(4, 4);
            weighted_sum(&[&m, &m, &m], &[0.2, 0.3, 0.5], &mut out);
            prop_assert!(out.max_abs_diff(&m) < 1e-5);
        }
    }
}
