//! BLAS-like dense kernels: GEMM (NN/NT/TN), fused epilogues, axpy, scaling.
//!
//! The GEMM variants cover exactly the products the 3-layer MLP needs:
//!
//! * forward output layer: `O = H · W₂` — [`gemm`] (NN), or fused with the
//!   bias add as [`gemm_bias`], or fused all the way into top-k selection as
//!   [`gemm_bias_topk`]
//! * backward through the output layer: `dH = dO · W₂ᵀ` — [`gemm_nt`]
//! * weight gradient: `∇W₂ = Hᵀ · dO` — [`gemm_tn`]
//!
//! All variants parallelize over output rows via
//! [`crate::parallel::par_chunks_mut`] and run the register-tiled micro-
//! kernels of [`crate::kernels`] inside each row chunk; see that module for
//! the lane-width-8 reduction contract and the shared epilogue definition.

use crate::kernels::{self, Epilogue};
use crate::parallel::{par_chunks_mut, MIN_PAR_ROWS};
use crate::Matrix;

pub use crate::kernels::TOPK_STREAM_MAX;

/// `C = alpha * A·B + beta * C` (no transposes).
///
/// Per-element reduction is ascending-`k` serial (contract rule 1); the
/// epilogue is [`Epilogue::AlphaBeta`].
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gemm(alpha: f32, a: &Matrix, b: &Matrix, beta: f32, c: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "gemm inner dimension mismatch");
    assert_eq!(c.rows(), a.rows(), "gemm output rows mismatch");
    assert_eq!(c.cols(), b.cols(), "gemm output cols mismatch");
    let (m, k) = a.shape();
    let n = b.cols();
    if m == 0 || n == 0 {
        return;
    }
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let ep = Epilogue::AlphaBeta { alpha, beta };
    par_chunks_mut(c.as_mut_slice(), m, n, MIN_PAR_ROWS, |first_row, chunk| {
        kernels::gemm_nn_chunk(a_data, k, b_data, n, first_row, chunk, ep);
    });
}

/// `C = alpha * A·Bᵀ + beta * C`.
///
/// `A` is `m×k`, `B` is `n×k`, `C` is `m×n`. Each element is a lane-tree dot
/// product of two contiguous rows (contract rule 2), so no transposition is
/// materialized.
pub fn gemm_nt(alpha: f32, a: &Matrix, b: &Matrix, beta: f32, c: &mut Matrix) {
    assert_eq!(a.cols(), b.cols(), "gemm_nt inner dimension mismatch");
    assert_eq!(c.rows(), a.rows(), "gemm_nt output rows mismatch");
    assert_eq!(c.cols(), b.rows(), "gemm_nt output cols mismatch");
    let (m, k) = a.shape();
    let n = b.rows();
    if m == 0 || n == 0 {
        return;
    }
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let ep = Epilogue::AlphaBeta { alpha, beta };
    par_chunks_mut(c.as_mut_slice(), m, n, MIN_PAR_ROWS, |first_row, chunk| {
        kernels::gemm_nt_chunk(a_data, k, b_data, n, first_row, chunk, ep);
    });
}

/// `C = alpha * Aᵀ·B + beta * C`.
///
/// `A` is `k×m`, `B` is `k×n`, `C` is `m×n`. Parallelized over rows of `C`
/// (columns of `A`); per-element reduction is ascending-`k` serial
/// (contract rule 1).
pub fn gemm_tn(alpha: f32, a: &Matrix, b: &Matrix, beta: f32, c: &mut Matrix) {
    assert_eq!(a.rows(), b.rows(), "gemm_tn inner dimension mismatch");
    assert_eq!(c.rows(), a.cols(), "gemm_tn output rows mismatch");
    assert_eq!(c.cols(), b.cols(), "gemm_tn output cols mismatch");
    let (k, m) = a.shape();
    let n = b.cols();
    if m == 0 || n == 0 {
        return;
    }
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let ep = Epilogue::AlphaBeta { alpha, beta };
    par_chunks_mut(c.as_mut_slice(), m, n, MIN_PAR_ROWS, |first_col, chunk| {
        kernels::gemm_tn_chunk(a_data, k, m, b_data, n, first_col, chunk, ep);
    });
}

/// `C = alpha * A·gather(B, idx)ᵀ + beta * C` — the sampled-softmax forward
/// kernel. `A` is `m×k`, `B` is `rows×k` row-major, and column `j` of `C`
/// is the lane-tree dot (contract rule 2) of `A[i]` with row `idx[j]` of
/// `B`: only the `idx.len()` sampled rows are touched, never the full `B`.
/// Bit-identical to [`gemm_nt`] against a materialized `idx.len()×k` gather.
///
/// # Panics
/// Panics on dimension mismatch or when an index is out of `B`'s rows.
pub fn gemm_nt_gather(alpha: f32, a: &Matrix, b: &Matrix, idx: &[u32], beta: f32, c: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "gemm_nt_gather inner dimension mismatch"
    );
    assert_eq!(c.rows(), a.rows(), "gemm_nt_gather output rows mismatch");
    assert_eq!(c.cols(), idx.len(), "gemm_nt_gather output cols mismatch");
    assert!(
        idx.iter().all(|&i| (i as usize) < b.rows()),
        "gemm_nt_gather index out of range"
    );
    let (m, k) = a.shape();
    let n = idx.len();
    if m == 0 || n == 0 {
        return;
    }
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let ep = Epilogue::AlphaBeta { alpha, beta };
    par_chunks_mut(c.as_mut_slice(), m, n, MIN_PAR_ROWS, |first_row, chunk| {
        kernels::gemm_nt_gather_chunk(a_data, k, b_data, idx, first_row, chunk, ep);
    });
}

/// [`gemm_nt_gather`] fused with a bias add: `C[i][j] = A[i]·B[idx[j]] +
/// bias[j]`. The bias is *compact* — entry `j` belongs to sampled column
/// `j`, i.e. the caller passes the gathered `b₂[idx[j]]` values, not the
/// full bias vector.
///
/// # Panics
/// Panics on dimension mismatch or when an index is out of `B`'s rows.
pub fn gemm_nt_gather_bias(a: &Matrix, b: &Matrix, idx: &[u32], bias: &[f32], c: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "gemm_nt_gather_bias inner dimension mismatch"
    );
    assert_eq!(
        c.rows(),
        a.rows(),
        "gemm_nt_gather_bias output rows mismatch"
    );
    assert_eq!(
        c.cols(),
        idx.len(),
        "gemm_nt_gather_bias output cols mismatch"
    );
    assert_eq!(
        bias.len(),
        idx.len(),
        "gemm_nt_gather_bias bias length mismatch"
    );
    assert!(
        idx.iter().all(|&i| (i as usize) < b.rows()),
        "gemm_nt_gather_bias index out of range"
    );
    let (m, k) = a.shape();
    let n = idx.len();
    if m == 0 || n == 0 {
        return;
    }
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let ep = Epilogue::Bias(bias);
    par_chunks_mut(c.as_mut_slice(), m, n, MIN_PAR_ROWS, |first_row, chunk| {
        kernels::gemm_nt_gather_chunk(a_data, k, b_data, idx, first_row, chunk, ep);
    });
}

/// `C = alpha * A·gather(B, idx) + beta * C` — the sampled-softmax backward
/// kernel. `A` is `m×idx.len()` (compact sampled dlogits), `B` is
/// `rows×n` row-major, and the reduction runs over the gathered rows
/// `B[idx[0]], B[idx[1]], …` in ascending sample order (contract rule 1).
/// Bit-identical to [`gemm`] against a materialized `idx.len()×n` gather.
///
/// # Panics
/// Panics on dimension mismatch or when an index is out of `B`'s rows.
pub fn gemm_nn_gather(alpha: f32, a: &Matrix, b: &Matrix, idx: &[u32], beta: f32, c: &mut Matrix) {
    assert_eq!(
        a.cols(),
        idx.len(),
        "gemm_nn_gather inner dimension mismatch"
    );
    assert_eq!(c.rows(), a.rows(), "gemm_nn_gather output rows mismatch");
    assert_eq!(c.cols(), b.cols(), "gemm_nn_gather output cols mismatch");
    assert!(
        idx.iter().all(|&i| (i as usize) < b.rows()),
        "gemm_nn_gather index out of range"
    );
    let m = a.rows();
    let n = b.cols();
    if m == 0 || n == 0 {
        return;
    }
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let ep = Epilogue::AlphaBeta { alpha, beta };
    par_chunks_mut(c.as_mut_slice(), m, n, MIN_PAR_ROWS, |first_row, chunk| {
        kernels::gemm_nn_gather_chunk(a_data, idx, b_data, n, first_row, chunk, ep);
    });
}

/// Fused forward logits: `C = A·B + bias` (bias broadcast over rows) — one
/// pass over the wide output row instead of GEMM + a separate bias sweep.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gemm_bias(a: &Matrix, b: &Matrix, bias: &[f32], c: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "gemm_bias inner dimension mismatch");
    assert_eq!(c.rows(), a.rows(), "gemm_bias output rows mismatch");
    assert_eq!(c.cols(), b.cols(), "gemm_bias output cols mismatch");
    assert_eq!(bias.len(), b.cols(), "gemm_bias bias length mismatch");
    let (m, k) = a.shape();
    let n = b.cols();
    if m == 0 || n == 0 {
        return;
    }
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let ep = Epilogue::Bias(bias);
    par_chunks_mut(c.as_mut_slice(), m, n, MIN_PAR_ROWS, |first_row, chunk| {
        kernels::gemm_nn_chunk(a_data, k, b_data, n, first_row, chunk, ep);
    });
}

/// Fused forward activation: `C = relu(A·B + bias)` — GEMM, bias add, and
/// ReLU in a single pass (the `H = relu(X·W₁ + b₁)` dense analogue; the
/// sparse forward uses `asgd_sparse`'s fused spmm).
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gemm_bias_relu(a: &Matrix, b: &Matrix, bias: &[f32], c: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "gemm_bias_relu inner dimension mismatch"
    );
    assert_eq!(c.rows(), a.rows(), "gemm_bias_relu output rows mismatch");
    assert_eq!(c.cols(), b.cols(), "gemm_bias_relu output cols mismatch");
    assert_eq!(bias.len(), b.cols(), "gemm_bias_relu bias length mismatch");
    let (m, k) = a.shape();
    let n = b.cols();
    if m == 0 || n == 0 {
        return;
    }
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let ep = Epilogue::BiasRelu(bias);
    par_chunks_mut(c.as_mut_slice(), m, n, MIN_PAR_ROWS, |first_row, chunk| {
        kernels::gemm_nn_chunk(a_data, k, b_data, n, first_row, chunk, ep);
    });
}

/// Fused logits→top-k: for each row of `A`, computes the logits
/// `A·B + bias` tile by tile *in registers* and streams them into a top-`k`
/// selection ordered by `(logit desc, class id asc)` — the wide `m×n` logit
/// matrix is never materialized. `out` receives `m` rows of `k` class ids,
/// best first.
///
/// Softmax is strictly monotone per row, so top-k over logits equals top-k
/// over softmax probabilities (the serving/eval contract).
///
/// # Panics
/// Panics on dimension mismatch, `out.len() != m·k`, `k == 0`,
/// `k > TOPK_STREAM_MAX`, or `k > b.cols()`.
pub fn gemm_bias_topk(a: &Matrix, b: &Matrix, bias: &[f32], k: usize, out: &mut [u32]) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "gemm_bias_topk inner dimension mismatch"
    );
    assert_eq!(bias.len(), b.cols(), "gemm_bias_topk bias length mismatch");
    let (m, kdim) = a.shape();
    let n = b.cols();
    assert!(
        (1..=TOPK_STREAM_MAX).contains(&k) && k <= n,
        "gemm_bias_topk k={k} out of range (n={n}, max {TOPK_STREAM_MAX})"
    );
    assert_eq!(out.len(), m * k, "gemm_bias_topk output length mismatch");
    if m == 0 {
        return;
    }
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    par_chunks_mut(out, m, k, MIN_PAR_ROWS, |first_row, chunk| {
        kernels::gemm_bias_topk_chunk(a_data, kdim, b_data, n, bias, first_row, k, chunk);
    });
}

/// `y += a * x` over raw slices (lengths must match).
///
/// Serial on purpose: axpy is memory-bandwidth-bound, and its callers (model
/// updates) already run one-per-device on separate threads.
pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    kernels::axpy_lanes(a, x, y);
}

/// `y = a * x + b * y` element-wise.
pub fn axpby(a: f32, x: &[f32], b: f32, y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpby length mismatch");
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv = a * xv + b * *yv;
    }
}

/// Scales a slice in place.
pub fn scale(a: f32, x: &mut [f32]) {
    for v in x.iter_mut() {
        *v *= a;
    }
}

/// `out = Σ wᵢ · mᵢ` — the weighted model average at the heart of normalized
/// model merging (Algorithm 2, line 8).
///
/// Each replica's contribution is a pool-parallel fused scale+add
/// ([`crate::parallel::par_weighted_axpy`]); the passes run in replica order,
/// so every output element accumulates its terms in the exact serial order —
/// bit-identical for any thread count.
///
/// # Panics
/// Panics when `mats` is empty, lengths differ, or shapes mismatch.
pub fn weighted_sum(mats: &[&Matrix], weights: &[f64], out: &mut Matrix) {
    assert!(!mats.is_empty(), "weighted_sum needs at least one matrix");
    assert_eq!(
        mats.len(),
        weights.len(),
        "weights/matrices length mismatch"
    );
    for m in mats {
        assert_eq!(m.shape(), out.shape(), "weighted_sum shape mismatch");
    }
    out.fill(0.0);
    for (m, &w) in mats.iter().zip(weights) {
        crate::parallel::par_weighted_axpy(
            w as f32,
            m.as_slice(),
            out.as_mut_slice(),
            MIN_PAR_ELEMS,
        );
    }
}

/// Element counts below this stay serial in the flat merge helpers — the
/// fork/join only pays off for model-sized buffers.
const MIN_PAR_ELEMS: usize = 1 << 14;

/// Adds `delta * (cur - prev)` into `out` — the momentum term of Algorithm 2.
pub fn add_momentum(out: &mut Matrix, cur: &Matrix, prev: &Matrix, gamma: f32) {
    assert_eq!(out.shape(), cur.shape(), "momentum shape mismatch");
    assert_eq!(out.shape(), prev.shape(), "momentum shape mismatch");
    for ((o, &c), &p) in out
        .as_mut_slice()
        .iter_mut()
        .zip(cur.as_slice())
        .zip(prev.as_slice())
    {
        *o += gamma * (c - p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_gemm(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a.at(i, k) * b.at(k, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    fn test_mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            let x = (r * 31 + c * 17 + seed as usize) % 13;
            x as f32 / 7.0 - 0.9
        })
    }

    #[test]
    fn gemm_matches_naive() {
        for (m, k, n) in [(1, 1, 1), (3, 4, 5), (17, 9, 33), (64, 32, 48)] {
            let a = test_mat(m, k, 1);
            let b = test_mat(k, n, 2);
            let mut c = Matrix::zeros(m, n);
            gemm(1.0, &a, &b, 0.0, &mut c);
            assert!(c.max_abs_diff(&naive_gemm(&a, &b)) < 1e-4, "({m},{k},{n})");
        }
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = test_mat(4, 3, 1);
        let b = test_mat(3, 5, 2);
        let mut c = test_mat(4, 5, 3);
        let c0 = c.clone();
        gemm(2.0, &a, &b, 0.5, &mut c);
        let naive = naive_gemm(&a, &b);
        for i in 0..4 {
            for j in 0..5 {
                let want = 2.0 * naive.at(i, j) + 0.5 * c0.at(i, j);
                assert!((c.at(i, j) - want).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn gemm_nt_matches_explicit_transpose() {
        let a = test_mat(6, 7, 4);
        let b = test_mat(9, 7, 5);
        let mut c = Matrix::zeros(6, 9);
        gemm_nt(1.0, &a, &b, 0.0, &mut c);
        assert!(c.max_abs_diff(&naive_gemm(&a, &b.transposed())) < 1e-4);
    }

    #[test]
    fn gemm_nt_beta_uses_unified_epilogue() {
        // All variants share Epilogue::AlphaBeta: alpha·s + beta·c per
        // element, applied once after the full reduction.
        let a = test_mat(5, 7, 4);
        let b = test_mat(6, 7, 5);
        let mut c = test_mat(5, 6, 6);
        let c0 = c.clone();
        gemm_nt(2.0, &a, &b, 0.5, &mut c);
        let naive = naive_gemm(&a, &b.transposed());
        for i in 0..5 {
            for j in 0..6 {
                let want = 2.0 * naive.at(i, j) + 0.5 * c0.at(i, j);
                assert!((c.at(i, j) - want).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn gemm_tn_matches_explicit_transpose() {
        let a = test_mat(7, 6, 6);
        let b = test_mat(7, 9, 7);
        let mut c = Matrix::zeros(6, 9);
        gemm_tn(1.0, &a, &b, 0.0, &mut c);
        assert!(c.max_abs_diff(&naive_gemm(&a.transposed(), &b)) < 1e-4);
    }

    #[test]
    fn gemm_tn_beta_accumulates() {
        let a = test_mat(5, 4, 8);
        let b = test_mat(5, 3, 9);
        let mut c = test_mat(4, 3, 10);
        let c0 = c.clone();
        gemm_tn(1.0, &a, &b, 1.0, &mut c);
        let naive = naive_gemm(&a.transposed(), &b);
        for i in 0..4 {
            for j in 0..3 {
                assert!((c.at(i, j) - (naive.at(i, j) + c0.at(i, j))).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn large_parallel_gemm_matches_serial_result() {
        // Big enough to trigger the parallel path.
        let a = test_mat(200, 64, 11);
        let b = test_mat(64, 120, 12);
        let mut c = Matrix::zeros(200, 120);
        gemm(1.0, &a, &b, 0.0, &mut c);
        assert!(c.max_abs_diff(&naive_gemm(&a, &b)) < 1e-3);
    }

    #[test]
    fn gemm_bias_fuses_the_bias_add() {
        let a = test_mat(9, 5, 1);
        let b = test_mat(5, 21, 2);
        let bias: Vec<f32> = (0..21).map(|j| j as f32 * 0.1 - 1.0).collect();
        let mut fused = Matrix::zeros(9, 21);
        gemm_bias(&a, &b, &bias, &mut fused);
        let mut two_pass = Matrix::zeros(9, 21);
        gemm(1.0, &a, &b, 0.0, &mut two_pass);
        for r in 0..9 {
            for (j, &bj) in bias.iter().enumerate() {
                let want = two_pass.at(r, j) + bj;
                assert_eq!(fused.at(r, j).to_bits(), want.to_bits(), "({r},{j})");
            }
        }
    }

    #[test]
    fn gemm_bias_relu_clamps_negatives() {
        let a = test_mat(7, 6, 3);
        let b = test_mat(6, 13, 4);
        let bias: Vec<f32> = (0..13).map(|j| j as f32 * 0.2 - 1.3).collect();
        let mut fused = Matrix::zeros(7, 13);
        gemm_bias_relu(&a, &b, &bias, &mut fused);
        let mut plain = Matrix::zeros(7, 13);
        gemm_bias(&a, &b, &bias, &mut plain);
        let mut saw_clamp = false;
        for r in 0..7 {
            for j in 0..13 {
                let pre = plain.at(r, j);
                let want = if pre < 0.0 { 0.0 } else { pre };
                if pre < 0.0 {
                    saw_clamp = true;
                }
                assert_eq!(fused.at(r, j).to_bits(), want.to_bits());
            }
        }
        assert!(saw_clamp, "test shape never exercised the clamp");
    }

    #[test]
    fn gemm_bias_topk_matches_materialized_sort() {
        let a = test_mat(11, 8, 5);
        let b = test_mat(8, 37, 6);
        let bias: Vec<f32> = (0..37).map(|j| (j % 5) as f32 * 0.3 - 0.6).collect();
        let mut logits = Matrix::zeros(11, 37);
        gemm_bias(&a, &b, &bias, &mut logits);
        for k in [1usize, 3, 10, 32] {
            let mut out = vec![0u32; 11 * k];
            gemm_bias_topk(&a, &b, &bias, k, &mut out);
            for r in 0..11 {
                let row = logits.row(r);
                let mut order: Vec<u32> = (0..37u32).collect();
                order.sort_by(|&x, &y| {
                    row[y as usize]
                        .partial_cmp(&row[x as usize])
                        .unwrap()
                        .then(x.cmp(&y))
                });
                assert_eq!(&out[r * k..(r + 1) * k], &order[..k], "row {r} k {k}");
            }
        }
    }

    #[test]
    fn axpy_axpby_scale() {
        let x = [1.0f32, 2.0, 3.0];
        let mut y = [10.0f32, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
        axpby(1.0, &x, 0.5, &mut y);
        assert_eq!(y, [7.0, 14.0, 21.0]);
        scale(2.0, &mut y);
        assert_eq!(y, [14.0, 28.0, 42.0]);
    }

    #[test]
    fn weighted_sum_basic() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        let mut out = Matrix::zeros(1, 2);
        weighted_sum(&[&a, &b], &[0.25, 0.75], &mut out);
        assert_eq!(out.as_slice(), &[2.5, 3.5]);
    }

    #[test]
    fn momentum_term() {
        let cur = Matrix::from_vec(1, 2, vec![2.0, 2.0]);
        let prev = Matrix::from_vec(1, 2, vec![1.0, 3.0]);
        let mut out = Matrix::from_vec(1, 2, vec![10.0, 10.0]);
        add_momentum(&mut out, &cur, &prev, 0.9);
        assert_eq!(out.as_slice(), &[10.9, 9.1]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn gemm_dim_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let mut c = Matrix::zeros(2, 2);
        gemm(1.0, &a, &b, 0.0, &mut c);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::reference;
    use proptest::prelude::*;

    fn mat_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-2.0f32..2.0, rows * cols)
            .prop_map(move |v| Matrix::from_vec(rows, cols, v))
    }

    fn bits(m: &Matrix) -> Vec<u32> {
        m.as_slice().iter().map(|x| x.to_bits()).collect()
    }

    /// Shapes that exercise every micro-kernel path: tiles, `MR` row
    /// remainders, `LANES` column remainders, single rows, sub-lane widths.
    fn edge_shape() -> impl Strategy<Value = (usize, usize, usize)> {
        (
            prop_oneof![Just(1usize), Just(3), 2usize..10],
            prop_oneof![Just(1usize), Just(7), Just(8), Just(9), 1usize..20],
            prop_oneof![
                Just(1usize),
                Just(5),
                Just(8),
                Just(16),
                Just(17),
                1usize..24
            ],
        )
    }

    fn alpha_beta() -> impl Strategy<Value = (f32, f32)> {
        (
            prop_oneof![Just(0.0f32), Just(1.0), -2.0f32..2.0],
            prop_oneof![Just(0.0f32), Just(1.0), Just(0.5)],
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn gemm_is_linear_in_alpha(
            a in mat_strategy(5, 4),
            b in mat_strategy(4, 6),
            alpha in -3.0f32..3.0,
        ) {
            let mut c1 = Matrix::zeros(5, 6);
            gemm(1.0, &a, &b, 0.0, &mut c1);
            let mut c2 = Matrix::zeros(5, 6);
            gemm(alpha, &a, &b, 0.0, &mut c2);
            for (x, y) in c1.as_slice().iter().zip(c2.as_slice()) {
                prop_assert!((alpha * x - y).abs() < 1e-3);
            }
        }

        #[test]
        fn nt_tn_consistency((a, b) in (mat_strategy(6, 5), mat_strategy(7, 5))) {
            // (A·Bᵀ)ᵀ == B·Aᵀ
            let mut ab = Matrix::zeros(6, 7);
            gemm_nt(1.0, &a, &b, 0.0, &mut ab);
            let mut ba = Matrix::zeros(7, 6);
            gemm_nt(1.0, &b, &a, 0.0, &mut ba);
            prop_assert!(ab.transposed().max_abs_diff(&ba) < 1e-4);
        }

        #[test]
        fn weighted_sum_of_identical_is_identity(m in mat_strategy(4, 4)) {
            // With weights summing to 1 and all replicas equal, the merge
            // must return the replica (merge idempotence).
            let mut out = Matrix::zeros(4, 4);
            weighted_sum(&[&m, &m, &m], &[0.2, 0.3, 0.5], &mut out);
            prop_assert!(out.max_abs_diff(&m) < 1e-5);
        }

        // ---- bit-exactness against the ordered references: the tiled
        // kernels must implement the documented reduction contract exactly,
        // on every tile/remainder path and for every epilogue case.

        #[test]
        fn gemm_bit_matches_ordered_reference(
            (m, k, n) in edge_shape(),
            (alpha, beta) in alpha_beta(),
            seed in 0u64..1000,
        ) {
            let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c * 17 + seed as usize) % 13) as f32 / 7.0 - 0.9);
            let b = Matrix::from_fn(k, n, |r, c| ((r * 23 + c * 29 + seed as usize) % 11) as f32 / 5.0 - 1.1);
            let c0 = Matrix::from_fn(m, n, |r, c| ((r * 7 + c * 3) % 5) as f32 - 2.0);
            let mut tiled = c0.clone();
            gemm(alpha, &a, &b, beta, &mut tiled);
            let mut spec = c0.clone();
            reference::gemm_ordered(alpha, &a, &b, beta, &mut spec);
            prop_assert_eq!(bits(&tiled), bits(&spec));
        }

        #[test]
        fn gemm_nt_bit_matches_ordered_reference(
            (m, k, n) in edge_shape(),
            (alpha, beta) in alpha_beta(),
            seed in 0u64..1000,
        ) {
            let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c * 17 + seed as usize) % 13) as f32 / 7.0 - 0.9);
            let b = Matrix::from_fn(n, k, |r, c| ((r * 23 + c * 29 + seed as usize) % 11) as f32 / 5.0 - 1.1);
            let c0 = Matrix::from_fn(m, n, |r, c| ((r * 7 + c * 3) % 5) as f32 - 2.0);
            let mut tiled = c0.clone();
            gemm_nt(alpha, &a, &b, beta, &mut tiled);
            let mut spec = c0.clone();
            reference::gemm_nt_ordered(alpha, &a, &b, beta, &mut spec);
            prop_assert_eq!(bits(&tiled), bits(&spec));
        }

        #[test]
        fn gemm_tn_bit_matches_ordered_reference(
            (m, k, n) in edge_shape(),
            (alpha, beta) in alpha_beta(),
            seed in 0u64..1000,
        ) {
            let a = Matrix::from_fn(k, m, |r, c| ((r * 31 + c * 17 + seed as usize) % 13) as f32 / 7.0 - 0.9);
            let b = Matrix::from_fn(k, n, |r, c| ((r * 23 + c * 29 + seed as usize) % 11) as f32 / 5.0 - 1.1);
            let c0 = Matrix::from_fn(m, n, |r, c| ((r * 7 + c * 3) % 5) as f32 - 2.0);
            let mut tiled = c0.clone();
            gemm_tn(alpha, &a, &b, beta, &mut tiled);
            let mut spec = c0.clone();
            reference::gemm_tn_ordered(alpha, &a, &b, beta, &mut spec);
            prop_assert_eq!(bits(&tiled), bits(&spec));
        }

        // ---- gathered-row kernels: bit-equality against both the ordered
        // spec and the dense kernel run on a materialized gather, so the
        // sampled softmax path can never drift from the dense reference.

        #[test]
        fn gemm_nt_gather_bit_matches_spec_and_materialized_gather(
            (m, k, rows) in edge_shape(),
            picks in proptest::collection::vec(0usize..64, 1..24),
            (alpha, beta) in alpha_beta(),
            seed in 0u64..1000,
        ) {
            let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c * 17 + seed as usize) % 13) as f32 / 7.0 - 0.9);
            let b = Matrix::from_fn(rows, k, |r, c| ((r * 23 + c * 29 + seed as usize) % 11) as f32 / 5.0 - 1.1);
            let idx: Vec<u32> = picks.iter().map(|&p| (p % rows) as u32).collect();
            let c0 = Matrix::from_fn(m, idx.len(), |r, c| ((r * 7 + c * 3) % 5) as f32 - 2.0);

            let mut gathered = c0.clone();
            gemm_nt_gather(alpha, &a, &b, &idx, beta, &mut gathered);

            let mut spec = c0.clone();
            reference::gemm_nt_gather_ordered(alpha, &a, &b, &idx, beta, &mut spec);
            prop_assert_eq!(bits(&gathered), bits(&spec));

            // Dense kernel on an explicitly materialized gather of B.
            let mat = Matrix::from_fn(idx.len(), k, |r, c| b.at(idx[r] as usize, c));
            let mut dense = c0.clone();
            gemm_nt(alpha, &a, &mat, beta, &mut dense);
            prop_assert_eq!(bits(&gathered), bits(&dense));
        }

        #[test]
        fn gemm_nn_gather_bit_matches_spec_and_materialized_gather(
            (m, n, rows) in edge_shape(),
            picks in proptest::collection::vec(0usize..64, 1..24),
            (alpha, beta) in alpha_beta(),
            seed in 0u64..1000,
        ) {
            let idx: Vec<u32> = picks.iter().map(|&p| (p % rows) as u32).collect();
            let a = Matrix::from_fn(m, idx.len(), |r, c| ((r * 31 + c * 17 + seed as usize) % 13) as f32 / 7.0 - 0.9);
            let b = Matrix::from_fn(rows, n, |r, c| ((r * 23 + c * 29 + seed as usize) % 11) as f32 / 5.0 - 1.1);
            let c0 = Matrix::from_fn(m, n, |r, c| ((r * 7 + c * 3) % 5) as f32 - 2.0);

            let mut gathered = c0.clone();
            gemm_nn_gather(alpha, &a, &b, &idx, beta, &mut gathered);

            let mut spec = c0.clone();
            reference::gemm_nn_gather_ordered(alpha, &a, &b, &idx, beta, &mut spec);
            prop_assert_eq!(bits(&gathered), bits(&spec));

            // Dense kernel on an explicitly materialized gather of B.
            let mat = Matrix::from_fn(idx.len(), n, |r, c| b.at(idx[r] as usize, c));
            let mut dense = c0.clone();
            gemm(alpha, &a, &mat, beta, &mut dense);
            prop_assert_eq!(bits(&gathered), bits(&dense));
        }

        #[test]
        fn gemm_nt_gather_bias_bit_matches_gather_plus_epilogue(
            (m, k, rows) in edge_shape(),
            picks in proptest::collection::vec(0usize..64, 1..24),
            seed in 0u64..1000,
        ) {
            let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c * 17 + seed as usize) % 13) as f32 / 7.0 - 0.9);
            let b = Matrix::from_fn(rows, k, |r, c| ((r * 23 + c * 29 + seed as usize) % 11) as f32 / 5.0 - 1.1);
            let idx: Vec<u32> = picks.iter().map(|&p| (p % rows) as u32).collect();
            let bias: Vec<f32> = (0..idx.len()).map(|j| (j % 9) as f32 * 0.25 - 1.0).collect();

            let mut plain = Matrix::zeros(m, idx.len());
            gemm_nt_gather(1.0, &a, &b, &idx, 0.0, &mut plain);
            let mut with_bias = Matrix::zeros(m, idx.len());
            gemm_nt_gather_bias(&a, &b, &idx, &bias, &mut with_bias);
            for r in 0..m {
                for (j, &bj) in bias.iter().enumerate() {
                    let want = plain.at(r, j) + bj;
                    prop_assert_eq!(with_bias.at(r, j).to_bits(), want.to_bits());
                }
            }
        }

        #[test]
        fn fused_bias_kernels_bit_match_gemm_plus_epilogue(
            (m, k, n) in edge_shape(),
            seed in 0u64..1000,
        ) {
            let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c * 17 + seed as usize) % 13) as f32 / 7.0 - 0.9);
            let b = Matrix::from_fn(k, n, |r, c| ((r * 23 + c * 29 + seed as usize) % 11) as f32 / 5.0 - 1.1);
            let bias: Vec<f32> = (0..n).map(|j| (j % 9) as f32 * 0.25 - 1.0).collect();
            let mut plain = Matrix::zeros(m, n);
            gemm(1.0, &a, &b, 0.0, &mut plain);
            let mut with_bias = Matrix::zeros(m, n);
            gemm_bias(&a, &b, &bias, &mut with_bias);
            let mut with_relu = Matrix::zeros(m, n);
            gemm_bias_relu(&a, &b, &bias, &mut with_relu);
            for r in 0..m {
                for (j, &bj) in bias.iter().enumerate() {
                    let pre = plain.at(r, j) + bj;
                    prop_assert_eq!(with_bias.at(r, j).to_bits(), pre.to_bits());
                    let clamped = if pre < 0.0 { 0.0 } else { pre };
                    prop_assert_eq!(with_relu.at(r, j).to_bits(), clamped.to_bits());
                }
            }
        }
    }
}
