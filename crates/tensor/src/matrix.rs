//! Row-major dense `f32` matrix.

/// A dense, row-major `f32` matrix.
///
/// This is the storage type for model parameters, activations, and gradients.
/// It is intentionally minimal: contiguous storage, explicit dimensions, and
/// cheap row slicing. All compute kernels live in [`crate::ops`] and
/// [`crate::numerics`].
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major vector.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} != {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let start = r * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// The backing row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The backing row-major mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its backing vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Sets every element to `v`.
    pub fn fill(&mut self, v: f32) {
        self.data.fill(v);
    }

    /// Copies `other` into `self` (dimensions must match).
    pub fn copy_from(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "copy_from shape mismatch");
        self.data.copy_from_slice(&other.data);
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns a new matrix holding rows `range` of `self`.
    pub fn rows_slice(&self, start: usize, count: usize) -> Matrix {
        assert!(start + count <= self.rows, "rows_slice out of range");
        let s = start * self.cols;
        let e = s + count * self.cols;
        Matrix::from_vec(count, self.cols, self.data[s..e].to_vec())
    }

    /// The transpose as a new matrix.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// Writes the transpose of `self` into `out` (which must already be
    /// `cols × rows`) without allocating — the workspace-friendly variant of
    /// [`Matrix::transposed`].
    ///
    /// # Panics
    /// Panics when `out` is not the transposed shape.
    pub fn transpose_into(&self, out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (self.cols, self.rows),
            "transpose_into shape mismatch"
        );
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
    }

    /// Re-shapes `self` to `rows × cols` in place, reusing the backing
    /// allocation whenever its capacity suffices. Element values after the
    /// call are unspecified (kernels that write the full output, like GEMM
    /// with `beta = 0`, don't care); only the shape is guaranteed.
    ///
    /// This is the growth primitive of the zero-allocation training
    /// workspace: after the first (largest) batch, subsequent calls never
    /// touch the allocator.
    pub fn reshape_in_place(&mut self, rows: usize, cols: usize) {
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Squared L2 (Frobenius) norm.
    pub fn norm_sq(&self) -> f64 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum()
    }

    /// L2 (Frobenius) norm.
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Largest absolute element-wise difference to `other`.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.at(1, 2), 5.0);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "matrix data length")]
    fn from_vec_length_mismatch_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 7 + c * 3) as f32);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed().at(2, 1), m.at(1, 2));
    }

    #[test]
    fn transpose_into_matches_transposed() {
        let m = Matrix::from_fn(5, 3, |r, c| (r * 11 + c * 5) as f32 - 6.0);
        let mut out = Matrix::zeros(3, 5);
        m.transpose_into(&mut out);
        assert_eq!(out, m.transposed());
    }

    #[test]
    fn reshape_in_place_reuses_allocation() {
        let mut m = Matrix::zeros(8, 4);
        let ptr = m.as_slice().as_ptr();
        m.reshape_in_place(4, 4);
        assert_eq!(m.shape(), (4, 4));
        m.reshape_in_place(8, 4);
        assert_eq!(m.shape(), (8, 4));
        // Shrink + regrow within capacity must not move the buffer.
        assert_eq!(m.as_slice().as_ptr(), ptr);
    }

    #[test]
    #[should_panic(expected = "transpose_into shape mismatch")]
    fn transpose_into_wrong_shape_panics() {
        let m = Matrix::zeros(2, 3);
        let mut out = Matrix::zeros(2, 3);
        m.transpose_into(&mut out);
    }

    #[test]
    fn rows_slice_extracts() {
        let m = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32);
        let s = m.rows_slice(1, 2);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.as_slice(), &[2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_vec(1, 4, vec![1.0, -2.0, 2.0, 0.0]);
        assert!((m.norm() - 3.0).abs() < 1e-12);
        assert!((m.norm_sq() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn zero_sized_matrices_are_fine() {
        let m = Matrix::zeros(0, 5);
        assert!(m.is_empty());
        assert_eq!(m.rows(), 0);
        let t = m.transposed();
        assert_eq!(t.shape(), (5, 0));
    }

    #[test]
    fn copy_from_and_fill() {
        let src = Matrix::from_fn(2, 2, |r, c| (r + c) as f32);
        let mut dst = Matrix::zeros(2, 2);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        dst.fill(7.0);
        assert_eq!(dst.as_slice(), &[7.0; 4]);
    }
}
