//! Dense linear algebra kernels for the Adaptive SGD reproduction.
//!
//! The deep-learning substrate of the paper runs on cuBLAS/cuSPARSE; this
//! crate is the dense half of our from-scratch replacement. It provides a
//! row-major `f32` [`Matrix`], blocked and thread-parallel [`ops::gemm`]
//! variants (NN/NT/TN), element-wise kernels, numerically stable softmax /
//! log-sum-exp, and seeded weight initialization.
//!
//! All parallelism goes through [`parallel`], which chunks row ranges over a
//! process-wide persistent worker pool — workers are spawned once and parked
//! between jobs, so a kernel's fork/join is a lock + notify, not a round of
//! thread spawns. The thread count is resolved once from `ASGD_THREADS` or
//! `std::thread::available_parallelism`.
//!
//! # Example
//!
//! ```
//! use asgd_tensor::{Matrix, ops};
//!
//! let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
//! let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
//! let mut c = Matrix::zeros(2, 2);
//! ops::gemm(1.0, &a, &b, 0.0, &mut c);
//! assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
//! ```

pub mod bf16;
pub mod init;
pub mod kernels;
pub mod matrix;
pub mod numerics;
pub mod ops;
pub mod parallel;
pub(crate) mod pool;
pub mod reference;

pub use bf16::{FlatVec, Precision};
pub use matrix::Matrix;
