//! Reference GEMM implementations: perf baselines and the executable spec.
//!
//! Two families live here, neither on any hot path:
//!
//! * `*_scalar` — the pre-blocking scalar kernels (the exact inner loops and
//!   epilogues this workspace shipped before the register-tiled micro-kernels
//!   of [`crate::kernels`]), kept under the same `par_chunks_mut` row split.
//!   They are the honest "before" rows of the kernel benchmarks: comparing
//!   against them isolates the inner-kernel change from the threading model.
//! * `*_ordered` — a naive, serial, line-by-line transcription of the
//!   lane-width-8 reduction contract documented in [`crate::kernels`]. The
//!   proptests assert the tiled kernels match these **bit for bit**
//!   (`f32::to_bits`) on every tile/remainder path: the references are the
//!   spec, the tiled kernels are the implementation.

use crate::kernels::{fused, LANES};
use crate::parallel::{par_chunks_mut, MIN_PAR_ROWS};
use crate::Matrix;

/// The unified epilogue of the contract, transcribed independently of
/// [`crate::kernels::Epilogue`]: `alpha·s` when `beta == 0`, else
/// `alpha·s + beta·c`.
#[inline]
fn epilogue_spec(alpha: f32, s: f32, beta: f32, c: f32) -> f32 {
    if beta == 0.0 {
        alpha * s
    } else {
        alpha * s + beta * c
    }
}

/// The contract's dot product, transcribed naively: term `t` accumulates
/// into lane `t % 8`, then the fixed tree
/// `((l0+l4) + (l2+l6)) + ((l1+l5) + (l3+l7))` folds the lanes.
fn dot_spec(a: &[f32], b: &[f32]) -> f32 {
    let mut lanes = [0.0f32; LANES];
    for (t, (&av, &bv)) in a.iter().zip(b).enumerate() {
        lanes[t % LANES] += av * bv;
    }
    ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6]))
        + ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]))
}

/// Spec for `gemm` (NN): per element, ascending-`k` serial reduction with
/// one *fused* multiply-add per term (`f32::mul_add` — a single rounding),
/// then the unified epilogue — contract rule 1, one element at a time.
pub fn gemm_ordered(alpha: f32, a: &Matrix, b: &Matrix, beta: f32, c: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "gemm_ordered inner dimension mismatch");
    let (m, k) = a.shape();
    let n = b.cols();
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0f32;
            for kk in 0..k {
                s = fused(a.at(i, kk), b.at(kk, j), s);
            }
            let out = epilogue_spec(alpha, s, beta, c.at(i, j));
            c.set(i, j, out);
        }
    }
}

/// Spec for `gemm_nt`: per element, the round-robin lane-tree dot of two
/// contiguous rows (contract rule 2), then the unified epilogue.
pub fn gemm_nt_ordered(alpha: f32, a: &Matrix, b: &Matrix, beta: f32, c: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "gemm_nt_ordered inner dimension mismatch"
    );
    let (m, k) = a.shape();
    let n = b.rows();
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    for i in 0..m {
        for j in 0..n {
            let s = dot_spec(&a_data[i * k..(i + 1) * k], &b_data[j * k..(j + 1) * k]);
            let out = epilogue_spec(alpha, s, beta, c.at(i, j));
            c.set(i, j, out);
        }
    }
}

/// Spec for `gemm_tn`: per element, ascending-`k` serial fused reduction
/// over the strided `A` column, then the unified epilogue.
pub fn gemm_tn_ordered(alpha: f32, a: &Matrix, b: &Matrix, beta: f32, c: &mut Matrix) {
    assert_eq!(
        a.rows(),
        b.rows(),
        "gemm_tn_ordered inner dimension mismatch"
    );
    let (k, m) = a.shape();
    let n = b.cols();
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0f32;
            for kk in 0..k {
                s = fused(a.at(kk, i), b.at(kk, j), s);
            }
            let out = epilogue_spec(alpha, s, beta, c.at(i, j));
            c.set(i, j, out);
        }
    }
}

/// Spec for `gemm_nt_gather`: per element, the round-robin lane-tree dot of
/// an `A` row with the *gathered* `B` row `idx[j]` (contract rule 2), then
/// the unified epilogue — the sampled-softmax forward, one element at a
/// time.
pub fn gemm_nt_gather_ordered(
    alpha: f32,
    a: &Matrix,
    b: &Matrix,
    idx: &[u32],
    beta: f32,
    c: &mut Matrix,
) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "gemm_nt_gather_ordered inner dimension mismatch"
    );
    let (m, k) = a.shape();
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    for i in 0..m {
        for (j, &row) in idx.iter().enumerate() {
            let base = row as usize * k;
            let s = dot_spec(&a_data[i * k..(i + 1) * k], &b_data[base..base + k]);
            let out = epilogue_spec(alpha, s, beta, c.at(i, j));
            c.set(i, j, out);
        }
    }
}

/// Spec for `gemm_nn_gather`: per element, ascending-sample serial fused
/// reduction over the gathered `B` rows `idx[0], idx[1], …` (contract
/// rule 1), then the unified epilogue — the sampled-softmax backward.
pub fn gemm_nn_gather_ordered(
    alpha: f32,
    a: &Matrix,
    b: &Matrix,
    idx: &[u32],
    beta: f32,
    c: &mut Matrix,
) {
    assert_eq!(
        a.cols(),
        idx.len(),
        "gemm_nn_gather_ordered inner dimension mismatch"
    );
    let m = a.rows();
    let n = b.cols();
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0f32;
            for (kk, &row) in idx.iter().enumerate() {
                s = fused(a.at(i, kk), b.at(row as usize, j), s);
            }
            let out = epilogue_spec(alpha, s, beta, c.at(i, j));
            c.set(i, j, out);
        }
    }
}

/// The pre-blocking scalar NN kernel: `i-k-j` loop, zero-skip on `a`, beta
/// pre-scale of the output row. Benchmark baseline only.
pub fn gemm_scalar(alpha: f32, a: &Matrix, b: &Matrix, beta: f32, c: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "gemm_scalar inner dimension mismatch");
    let (m, k) = a.shape();
    let n = b.cols();
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    par_chunks_mut(c.as_mut_slice(), m, n, MIN_PAR_ROWS, |first_row, chunk| {
        for (i, crow) in chunk.chunks_mut(n).enumerate() {
            let ai = first_row + i;
            if beta == 0.0 {
                crow.fill(0.0);
            } else if beta != 1.0 {
                for x in crow.iter_mut() {
                    *x *= beta;
                }
            }
            let arow = &a_data[ai * k..(ai + 1) * k];
            for (kk, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let s = alpha * aik;
                let brow = &b_data[kk * n..(kk + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += s * bv;
                }
            }
        }
    });
}

/// The pre-blocking scalar NT kernel: serial dot per element, per-element
/// `beta * c`. Benchmark baseline only.
pub fn gemm_nt_scalar(alpha: f32, a: &Matrix, b: &Matrix, beta: f32, c: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "gemm_nt_scalar inner dimension mismatch"
    );
    let (m, k) = a.shape();
    let n = b.rows();
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    par_chunks_mut(c.as_mut_slice(), m, n, MIN_PAR_ROWS, |first_row, chunk| {
        for (i, crow) in chunk.chunks_mut(n).enumerate() {
            let ai = first_row + i;
            let arow = &a_data[ai * k..(ai + 1) * k];
            for (j, cv) in crow.iter_mut().enumerate() {
                let brow = &b_data[j * k..(j + 1) * k];
                let mut dot = 0.0f32;
                for (&av, &bv) in arow.iter().zip(brow) {
                    dot += av * bv;
                }
                *cv = alpha * dot + if beta == 0.0 { 0.0 } else { beta * *cv };
            }
        }
    });
}

/// The pre-blocking scalar TN kernel: `kk`-outer streaming with zero-skip
/// and chunk-level beta pre-scale. Benchmark baseline only.
pub fn gemm_tn_scalar(alpha: f32, a: &Matrix, b: &Matrix, beta: f32, c: &mut Matrix) {
    assert_eq!(
        a.rows(),
        b.rows(),
        "gemm_tn_scalar inner dimension mismatch"
    );
    let (k, m) = a.shape();
    let n = b.cols();
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    par_chunks_mut(c.as_mut_slice(), m, n, MIN_PAR_ROWS, |first_row, chunk| {
        let rows_here = chunk.len() / n;
        if beta == 0.0 {
            chunk.fill(0.0);
        } else if beta != 1.0 {
            for x in chunk.iter_mut() {
                *x *= beta;
            }
        }
        for kk in 0..k {
            let brow = &b_data[kk * n..(kk + 1) * n];
            let arow = &a_data[kk * m..(kk + 1) * m];
            for i in 0..rows_here {
                let aik = arow[first_row + i];
                if aik == 0.0 {
                    continue;
                }
                let s = alpha * aik;
                let crow = &mut chunk[i * n..(i + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += s * bv;
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_mat(rows: usize, cols: usize, seed: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            ((r * 31 + c * 17 + seed) % 13) as f32 / 7.0 - 0.9
        })
    }

    #[test]
    fn scalar_baselines_agree_with_specs_numerically() {
        // Scalar baselines use different association orders than the specs,
        // so equality here is approximate — they compute the same product.
        let a = test_mat(10, 17, 1);
        let b = test_mat(17, 23, 2);
        let mut s = Matrix::zeros(10, 23);
        gemm_scalar(1.0, &a, &b, 0.0, &mut s);
        let mut o = Matrix::zeros(10, 23);
        gemm_ordered(1.0, &a, &b, 0.0, &mut o);
        assert!(s.max_abs_diff(&o) < 1e-4);

        let bt = test_mat(23, 17, 3);
        let mut snt = Matrix::zeros(10, 23);
        gemm_nt_scalar(1.0, &a, &bt, 0.0, &mut snt);
        let mut ont = Matrix::zeros(10, 23);
        gemm_nt_ordered(1.0, &a, &bt, 0.0, &mut ont);
        assert!(snt.max_abs_diff(&ont) < 1e-4);

        let at = test_mat(17, 10, 4);
        let bn = test_mat(17, 23, 5);
        let mut stn = Matrix::zeros(10, 23);
        gemm_tn_scalar(1.0, &at, &bn, 0.0, &mut stn);
        let mut otn = Matrix::zeros(10, 23);
        gemm_tn_ordered(1.0, &at, &bn, 0.0, &mut otn);
        assert!(stn.max_abs_diff(&otn) < 1e-4);
    }

    #[test]
    fn dot_spec_round_robin_assignment() {
        // 9 terms: lane 0 gets terms 0 and 8, lanes 1..8 one term each.
        let a: Vec<f32> = (1..=9).map(|i| i as f32).collect();
        let b = vec![1.0f32; 9];
        let lanes = [1.0f32 + 9.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let want = ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6]))
            + ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
        assert_eq!(dot_spec(&a, &b).to_bits(), want.to_bits());
    }
}
