//! Timing context and result types for collectives.

use asgd_gpusim::{ClusterTopology, DeviceProfile, SimTime, Topology};

/// Cluster link annotations on a [`CollectiveContext`]: which server each
/// flat device lives on, plus the shared inter-node link parameters. Only
/// *timing* consults this — the reduction arithmetic never does, which is
/// what keeps cluster runs bit-identical to single-server ones.
#[derive(Debug, Clone)]
struct ClusterLinks {
    server_of: Vec<usize>,
    inter_gbs: f64,
    inter_setup_s: f64,
}

/// Immutable description of the server (or cluster) a collective runs on.
#[derive(Debug, Clone)]
pub struct CollectiveContext {
    topology: Topology,
    profiles: Vec<DeviceProfile>,
    cluster: Option<ClusterLinks>,
}

impl CollectiveContext {
    /// Creates a single-server context; `profiles.len()` must match the
    /// topology.
    pub fn new(topology: Topology, profiles: &[DeviceProfile]) -> Self {
        assert_eq!(
            topology.n_devices(),
            profiles.len(),
            "topology/profile count mismatch"
        );
        Self {
            topology,
            profiles: profiles.to_vec(),
            cluster: None,
        }
    }

    /// Creates a cluster context: the intra-node link template stretched over
    /// the whole fleet, with cross-server transfers billed to the inter-node
    /// link. `profiles.len()` must match the fleet size; device numbering is
    /// the cluster's server-major flat ordering.
    pub fn cluster(cluster: &ClusterTopology, profiles: &[DeviceProfile]) -> Self {
        let n = cluster.n_devices();
        assert_eq!(n, profiles.len(), "cluster/profile count mismatch");
        Self {
            topology: cluster.intra().resized(n),
            profiles: profiles.to_vec(),
            cluster: Some(ClusterLinks {
                server_of: (0..n).map(|d| cluster.server_of(d)).collect(),
                inter_gbs: cluster.inter_gbs(),
                inter_setup_s: cluster.inter_setup_s(),
            }),
        }
    }

    /// The context restricted to the devices in `alive` (ascending flat ids):
    /// same link parameters, surviving profiles, and — for cluster contexts —
    /// the survivors' original server assignments, so cross-server transfers
    /// still pay the inter-node link after partial losses.
    pub fn subset(&self, alive: &[usize]) -> CollectiveContext {
        assert!(!alive.is_empty(), "subset needs at least one survivor");
        assert!(
            alive.windows(2).all(|w| w[0] < w[1]),
            "survivor ids must be strictly ascending"
        );
        assert!(
            *alive.last().unwrap() < self.n_devices(),
            "survivor id outside context"
        );
        Self {
            topology: self.topology.resized(alive.len()),
            profiles: alive.iter().map(|&d| self.profiles[d].clone()).collect(),
            cluster: self.cluster.as_ref().map(|c| ClusterLinks {
                server_of: alive.iter().map(|&d| c.server_of[d]).collect(),
                inter_gbs: c.inter_gbs,
                inter_setup_s: c.inter_setup_s,
            }),
        }
    }

    /// The interconnect.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Per-device profiles.
    pub fn profiles(&self) -> &[DeviceProfile] {
        &self.profiles
    }

    /// Number of participating devices.
    pub fn n_devices(&self) -> usize {
        self.profiles.len()
    }

    /// Whether this context carries cluster (multi-server) link annotations.
    pub fn is_cluster(&self) -> bool {
        self.cluster.is_some()
    }

    /// Server of device `d` — `0` for single-server contexts.
    pub fn server_of(&self, d: usize) -> usize {
        assert!(d < self.n_devices(), "device {d} outside context");
        self.cluster.as_ref().map_or(0, |c| c.server_of[d])
    }

    /// Seconds for one hop of `bytes` over the inter-node link. Falls back to
    /// the intra link for single-server contexts (there is no other link).
    pub fn inter_time(&self, bytes: usize) -> f64 {
        match &self.cluster {
            Some(c) => c.inter_setup_s + bytes as f64 / (c.inter_gbs * 1e9),
            None => self.topology.p2p_time(
                asgd_gpusim::DeviceId(0),
                asgd_gpusim::DeviceId(self.n_devices().saturating_sub(1)),
                bytes,
            ),
        }
    }

    /// Seconds for device `d` to add `elems` f32 pairs (the reduction
    /// compute of one chunk) — memory-bandwidth-bound.
    pub fn reduce_time(&self, d: usize, elems: usize) -> f64 {
        self.reduce_time_sized(d, elems, 4)
    }

    /// [`Self::reduce_time`] for an arbitrary element width: read two
    /// operands + write one result, `3 · elem_bytes` bytes per element (the
    /// f32 path's 12 bytes/element; bf16 storage halves it to 6 — the f32
    /// accumulation happens in registers, so it costs no extra traffic).
    pub fn reduce_time_sized(&self, d: usize, elems: usize, elem_bytes: usize) -> f64 {
        let p = &self.profiles[d];
        ((3 * elem_bytes) as f64 * elems as f64) / (p.mem_bandwidth_gbs * 1e9) / p.speed_factor
    }

    /// Seconds for a peer transfer of `elems` f32s from `src` to `dst`.
    pub fn p2p_time(&self, src: usize, dst: usize, elems: usize) -> f64 {
        self.p2p_time_sized(src, dst, elems, 4)
    }

    /// [`Self::p2p_time`] for an arbitrary element width (bf16 payloads
    /// move half the bytes of f32 ones). In a cluster context a cross-server
    /// pair pays the inter-node link instead of the intra one.
    pub fn p2p_time_sized(&self, src: usize, dst: usize, elems: usize, elem_bytes: usize) -> f64 {
        if let Some(c) = &self.cluster {
            if src != dst && c.server_of[src] != c.server_of[dst] {
                assert!(src < self.n_devices() && dst < self.n_devices());
                return c.inter_setup_s + (elem_bytes * elems) as f64 / (c.inter_gbs * 1e9);
            }
        }
        self.topology.p2p_time(
            asgd_gpusim::DeviceId(src),
            asgd_gpusim::DeviceId(dst),
            elem_bytes * elems,
        )
    }
}

/// Timing of one collective invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllReduceTiming {
    /// When the collective actually began (the latest participant arrival —
    /// the synchronization barrier the paper's straggler analysis is about).
    pub start: SimTime,
    /// When every device held the final reduced model.
    pub end: SimTime,
    /// Total bytes moved over peer links by the whole collective.
    pub bytes_moved: usize,
}

impl AllReduceTiming {
    /// Wall-clock duration past the barrier.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgd_gpusim::profile;

    #[test]
    fn reduce_time_scales_with_elements() {
        let ctx = CollectiveContext::new(Topology::pcie(2), &profile::homogeneous_server(2));
        assert!(ctx.reduce_time(0, 2000) > ctx.reduce_time(0, 1000));
    }

    #[test]
    fn slower_device_reduces_slower() {
        let profiles = profile::heterogeneous_server(4);
        let ctx = CollectiveContext::new(Topology::pcie(4), &profiles);
        // Device 3 has speed 0.76 < device 0's 1.0.
        assert!(ctx.reduce_time(3, 1 << 20) > ctx.reduce_time(0, 1 << 20));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn profile_count_must_match_topology() {
        let _ = CollectiveContext::new(Topology::pcie(4), &profile::homogeneous_server(2));
    }

    #[test]
    fn timing_duration() {
        let t = AllReduceTiming {
            start: SimTime(1.0),
            end: SimTime(3.5),
            bytes_moved: 10,
        };
        assert!((t.duration() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn cluster_context_routes_cross_server_pairs_to_inter_link() {
        let cluster = asgd_gpusim::ClusterTopology::ethernet(2, 2);
        let ctx = CollectiveContext::cluster(&cluster, &profile::homogeneous_server(4));
        assert!(ctx.is_cluster());
        assert_eq!(ctx.server_of(1), 0);
        assert_eq!(ctx.server_of(2), 1);
        let elems = 1 << 20;
        // Devices 0,1 share server 0; device 2 is on server 1.
        let intra = ctx.p2p_time(0, 1, elems);
        let inter = ctx.p2p_time(0, 2, elems);
        assert!(inter > intra);
        assert_eq!(inter, cluster.inter_time(4 * elems));
        // Single-server contexts keep the old timing exactly.
        let flat = CollectiveContext::new(Topology::pcie(4), &profile::homogeneous_server(4));
        assert!(!flat.is_cluster());
        assert_eq!(flat.server_of(3), 0);
        assert_eq!(
            flat.p2p_time(0, 2, elems),
            Topology::pcie(4).p2p_time(
                asgd_gpusim::DeviceId(0),
                asgd_gpusim::DeviceId(2),
                4 * elems
            )
        );
    }

    #[test]
    fn subset_keeps_server_assignments() {
        let cluster = asgd_gpusim::ClusterTopology::ethernet(2, 2);
        let ctx = CollectiveContext::cluster(&cluster, &profile::homogeneous_server(4));
        // Drop device 1: survivors 0 (server 0), 2 and 3 (server 1).
        let sub = ctx.subset(&[0, 2, 3]);
        assert_eq!(sub.n_devices(), 3);
        assert_eq!(sub.server_of(0), 0);
        assert_eq!(sub.server_of(1), 1);
        let elems = 1 << 20;
        // Survivor pair (0, 2) now sits at subset indices (0, 1) but still
        // spans servers, so it still pays the inter link.
        assert_eq!(sub.p2p_time(0, 1, elems), cluster.inter_time(4 * elems));
        assert_eq!(sub.p2p_time(1, 2, elems), ctx.p2p_time(2, 3, elems));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn subset_rejects_unsorted_survivors() {
        let ctx = CollectiveContext::new(Topology::pcie(2), &profile::homogeneous_server(2));
        let _ = ctx.subset(&[1, 0]);
    }
}
