//! Timing context and result types for collectives.

use asgd_gpusim::{DeviceProfile, SimTime, Topology};

/// Immutable description of the server a collective runs on.
#[derive(Debug, Clone)]
pub struct CollectiveContext {
    topology: Topology,
    profiles: Vec<DeviceProfile>,
}

impl CollectiveContext {
    /// Creates a context; `profiles.len()` must match the topology.
    pub fn new(topology: Topology, profiles: &[DeviceProfile]) -> Self {
        assert_eq!(
            topology.n_devices(),
            profiles.len(),
            "topology/profile count mismatch"
        );
        Self {
            topology,
            profiles: profiles.to_vec(),
        }
    }

    /// The interconnect.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Per-device profiles.
    pub fn profiles(&self) -> &[DeviceProfile] {
        &self.profiles
    }

    /// Number of participating devices.
    pub fn n_devices(&self) -> usize {
        self.profiles.len()
    }

    /// Seconds for device `d` to add `elems` f32 pairs (the reduction
    /// compute of one chunk) — memory-bandwidth-bound.
    pub fn reduce_time(&self, d: usize, elems: usize) -> f64 {
        self.reduce_time_sized(d, elems, 4)
    }

    /// [`Self::reduce_time`] for an arbitrary element width: read two
    /// operands + write one result, `3 · elem_bytes` bytes per element (the
    /// f32 path's 12 bytes/element; bf16 storage halves it to 6 — the f32
    /// accumulation happens in registers, so it costs no extra traffic).
    pub fn reduce_time_sized(&self, d: usize, elems: usize, elem_bytes: usize) -> f64 {
        let p = &self.profiles[d];
        ((3 * elem_bytes) as f64 * elems as f64) / (p.mem_bandwidth_gbs * 1e9) / p.speed_factor
    }

    /// Seconds for a peer transfer of `elems` f32s from `src` to `dst`.
    pub fn p2p_time(&self, src: usize, dst: usize, elems: usize) -> f64 {
        self.p2p_time_sized(src, dst, elems, 4)
    }

    /// [`Self::p2p_time`] for an arbitrary element width (bf16 payloads
    /// move half the bytes of f32 ones).
    pub fn p2p_time_sized(&self, src: usize, dst: usize, elems: usize, elem_bytes: usize) -> f64 {
        self.topology.p2p_time(
            asgd_gpusim::DeviceId(src),
            asgd_gpusim::DeviceId(dst),
            elem_bytes * elems,
        )
    }
}

/// Timing of one collective invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllReduceTiming {
    /// When the collective actually began (the latest participant arrival —
    /// the synchronization barrier the paper's straggler analysis is about).
    pub start: SimTime,
    /// When every device held the final reduced model.
    pub end: SimTime,
    /// Total bytes moved over peer links by the whole collective.
    pub bytes_moved: usize,
}

impl AllReduceTiming {
    /// Wall-clock duration past the barrier.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgd_gpusim::profile;

    #[test]
    fn reduce_time_scales_with_elements() {
        let ctx = CollectiveContext::new(Topology::pcie(2), &profile::homogeneous_server(2));
        assert!(ctx.reduce_time(0, 2000) > ctx.reduce_time(0, 1000));
    }

    #[test]
    fn slower_device_reduces_slower() {
        let profiles = profile::heterogeneous_server(4);
        let ctx = CollectiveContext::new(Topology::pcie(4), &profiles);
        // Device 3 has speed 0.76 < device 0's 1.0.
        assert!(ctx.reduce_time(3, 1 << 20) > ctx.reduce_time(0, 1 << 20));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn profile_count_must_match_topology() {
        let _ = CollectiveContext::new(Topology::pcie(4), &profile::homogeneous_server(2));
    }

    #[test]
    fn timing_duration() {
        let t = AllReduceTiming {
            start: SimTime(1.0),
            end: SimTime(3.5),
            bytes_moved: 10,
        };
        assert!((t.duration() - 2.5).abs() < 1e-12);
    }
}
