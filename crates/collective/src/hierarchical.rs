//! Two-level (hierarchical) all-reduce over a simulated cluster.
//!
//! The journal extension of the paper generalizes Algorithm 2's single-server
//! merge to an N-server fleet: each server first reduces its replicas into
//! one buffer on a *lead* device over the fast intra-node links, the leads
//! then reduce across servers over the slow inter-node fabric (ring or
//! tree), and finally each lead broadcasts the merged model back inside its
//! server.
//!
//! # The reduction contract
//!
//! A genuine two-level summation would change floating-point association
//! (`(a₀+a₁)+(a₂+a₃)` vs the flat algorithm's order) and therefore the bits
//! of the merged model — every golden trace would fork on the fleet shape.
//! This module deliberately keeps the **arithmetic pinned to the single-level
//! all-reduce**: the weighted sum is produced by [`allreduce_flat`] (same
//! pooled/serial machinery, same per-element order, bit-identical for any
//! `ASGD_THREADS`), while the cluster topology shapes only the *simulated*
//! two-level schedule — barrier, per-phase durations and byte accounting.
//! Merging topology is a scheduling optimization, not an arithmetic one:
//! trajectories are invariant under flat↔hierarchical and ring↔tree
//! switches, which is exactly the property the determinism test suite pins.
//!
//! # Cost model
//!
//! With `S` servers of `M` devices, model length `L` (elements of width `B`):
//!
//! 1. **Intra reduce-to-lead** (servers concurrent, slowest bounds the
//!    phase): Naive `(M−1)·(p2p(L)+red(L))` sequential on the lead; Tree /
//!    HalvingDoubling `⌈log₂M⌉·(p2p(L)+red(L))`; Ring / MultiStreamRing
//!    `(M−1)·(p2p(C)+red(C)) + (M−1)·p2p(C)` with `C = ⌈L/M⌉`.
//! 2. **Inter reduction over the `S` leads**: Ring
//!    `(S−1)·(inter(C·B)+red(C)) + (S−1)·inter(C·B)` with `C = ⌈L/S⌉`;
//!    Tree `⌈log₂S⌉·(inter(L·B)+red(L)) + ⌈log₂S⌉·inter(L·B)`. Both move
//!    `2(S−1)·L·B` bytes over the fabric.
//! 3. **Intra broadcast** (concurrent): `⌈log₂M⌉·p2p(L)`, `(M−1)·L·B` bytes
//!    per server.
//!
//! A single-server fleet (`S = 1`) degenerates to the flat collective —
//! timing included — so the 1×M row of a scaling curve is the flat baseline
//! by construction.

use crate::algorithms::{allreduce_flat, allreduce_flat_serial, Algorithm};
use crate::timing::{AllReduceTiming, CollectiveContext};
use asgd_gpusim::SimTime;
use asgd_tensor::FlatVec;

/// The inter-node reduction shape run over the server leads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterNode {
    /// Ring over the leads: bandwidth-optimal, `2(S−1)` chunk steps.
    Ring,
    /// Binomial tree over the leads: latency-optimal, `2⌈log₂S⌉` full-model
    /// steps.
    Tree,
}

/// Hierarchical weighted all-reduce over precision-tagged flat buffers.
///
/// Result bits are **identical** to [`allreduce_flat`] with the same
/// `buffers`/`weights`/`intra` (see the module docs); the returned timing is
/// the two-level schedule derived from the cluster links in `ctx`.
///
/// # Panics
/// Panics on the same inconsistencies as [`allreduce_flat`].
pub fn hierarchical_allreduce_flat(
    buffers: &mut [FlatVec],
    weights: &[f64],
    intra: Algorithm,
    inter: InterNode,
    ctx: &CollectiveContext,
    arrivals: &[SimTime],
) -> AllReduceTiming {
    let flat = allreduce_flat(buffers, weights, intra, ctx, arrivals);
    hierarchical_timing(buffers, intra, inter, ctx, flat)
}

/// [`hierarchical_allreduce_flat`] degraded to the serial (non-pooled)
/// arithmetic path — the merge-time OOM fallback. Bits and timing are
/// identical to the pooled variant; only host-side execution differs.
pub fn hierarchical_allreduce_flat_serial(
    buffers: &mut [FlatVec],
    weights: &[f64],
    intra: Algorithm,
    inter: InterNode,
    ctx: &CollectiveContext,
    arrivals: &[SimTime],
) -> AllReduceTiming {
    let flat = allreduce_flat_serial(buffers, weights, intra, ctx, arrivals);
    hierarchical_timing(buffers, intra, inter, ctx, flat)
}

/// `⌈log₂ m⌉` (0 for `m ≤ 1`): the round count of a binomial tree over `m`
/// participants.
pub(crate) fn ceil_log2(m: usize) -> usize {
    if m <= 1 {
        0
    } else {
        (usize::BITS - (m - 1).leading_zeros()) as usize
    }
}

/// Devices of each server in ascending flat order, grouped by ascending
/// server id. The fixed server-major ordering is what makes the schedule —
/// and therefore the timing — independent of any interleaving.
pub(crate) fn server_groups(ctx: &CollectiveContext) -> Vec<Vec<usize>> {
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for d in 0..ctx.n_devices() {
        let s = ctx.server_of(d);
        match groups.iter_mut().find(|(id, _)| *id == s) {
            Some((_, members)) => members.push(d),
            None => groups.push((s, vec![d])),
        }
    }
    groups.sort_by_key(|(id, _)| *id);
    groups.into_iter().map(|(_, members)| members).collect()
}

/// Replaces the flat collective's post-barrier schedule with the two-level
/// one. `flat.start` (barrier after pre-scale) is kept: arrival semantics do
/// not change with the merge topology.
fn hierarchical_timing(
    buffers: &[FlatVec],
    intra: Algorithm,
    inter: InterNode,
    ctx: &CollectiveContext,
    flat: AllReduceTiming,
) -> AllReduceTiming {
    let n = ctx.n_devices();
    let len = buffers[0].len();
    let elem_bytes = match &buffers[0] {
        FlatVec::F32(_) => 4,
        FlatVec::Bf16(_) => 2,
    };
    let groups = server_groups(ctx);
    let servers = groups.len();
    if n <= 1 || servers <= 1 || len == 0 {
        // One device, one server, or nothing to move: the flat schedule IS
        // the hierarchical one.
        return flat;
    }

    let red_max = |members: &[usize], elems: usize| -> f64 {
        members
            .iter()
            .map(|&d| ctx.reduce_time_sized(d, elems, elem_bytes))
            .fold(0.0f64, f64::max)
    };

    let mut elapsed = 0.0f64;
    let mut bytes = 0usize;

    // Phase 1: intra-node reduce-to-lead, all servers concurrent.
    let mut phase1 = 0.0f64;
    for members in &groups {
        let m = members.len();
        if m < 2 {
            continue;
        }
        let lead = members[0];
        let p2p = |elems: usize| ctx.p2p_time_sized(members[0], members[1], elems, elem_bytes);
        let (t, b) = match intra {
            Algorithm::Naive => (
                members
                    .iter()
                    .skip(1)
                    .map(|&d| {
                        ctx.p2p_time_sized(d, lead, len, elem_bytes)
                            + ctx.reduce_time_sized(lead, len, elem_bytes)
                    })
                    .sum::<f64>(),
                (m - 1) * len * elem_bytes,
            ),
            Algorithm::Tree | Algorithm::HalvingDoubling => (
                ceil_log2(m) as f64 * (p2p(len) + red_max(members, len)),
                (m - 1) * len * elem_bytes,
            ),
            Algorithm::Ring | Algorithm::MultiStreamRing { .. } => {
                let c = len.div_ceil(m);
                (
                    (m - 1) as f64 * (p2p(c) + red_max(members, c)) + (m - 1) as f64 * p2p(c),
                    (m - 1) * m * c * elem_bytes + (m - 1) * c * elem_bytes,
                )
            }
        };
        phase1 = phase1.max(t);
        bytes += b;
    }
    elapsed += phase1;

    // Phase 2: inter-node reduction over the leads.
    let leads: Vec<usize> = groups.iter().map(|g| g[0]).collect();
    let phase2 = match inter {
        InterNode::Ring => {
            let c = len.div_ceil(servers);
            (servers - 1) as f64 * (ctx.inter_time(c * elem_bytes) + red_max(&leads, c))
                + (servers - 1) as f64 * ctx.inter_time(c * elem_bytes)
        }
        InterNode::Tree => {
            let rounds = ceil_log2(servers) as f64;
            rounds * (ctx.inter_time(len * elem_bytes) + red_max(&leads, len))
                + rounds * ctx.inter_time(len * elem_bytes)
        }
    };
    elapsed += phase2;
    bytes += 2 * (servers - 1) * len * elem_bytes;

    // Phase 3: intra-node broadcast from each lead, all servers concurrent.
    let mut phase3 = 0.0f64;
    for members in &groups {
        let m = members.len();
        if m < 2 {
            continue;
        }
        let p2p = ctx.p2p_time_sized(members[0], members[1], len, elem_bytes);
        phase3 = phase3.max(ceil_log2(m) as f64 * p2p);
        bytes += (m - 1) * len * elem_bytes;
    }
    elapsed += phase3;

    AllReduceTiming {
        start: flat.start,
        end: flat.start + elapsed,
        bytes_moved: bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgd_gpusim::{profile, ClusterTopology};

    fn cluster_ctx(servers: usize, m: usize) -> CollectiveContext {
        let cluster = ClusterTopology::ethernet(servers, m);
        CollectiveContext::cluster(&cluster, &profile::homogeneous_server(servers * m))
    }

    fn f32_buffers(n: usize, len: usize, seed: u64) -> Vec<FlatVec> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                FlatVec::F32(
                    (0..len)
                        .map(|_| {
                            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
                            ((state >> 33) as f32 / u32::MAX as f32) * 4.0 - 2.0
                        })
                        .collect(),
                )
            })
            .collect()
    }

    fn bf16_buffers(n: usize, len: usize, seed: u64) -> Vec<FlatVec> {
        f32_buffers(n, len, seed)
            .into_iter()
            .map(|b| match b {
                FlatVec::F32(v) => {
                    FlatVec::Bf16(v.iter().map(|&x| asgd_tensor::bf16::narrow(x)).collect())
                }
                other => other,
            })
            .collect()
    }

    fn norm_weights(n: usize) -> Vec<f64> {
        let raw: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64 * 0.3).collect();
        let sum: f64 = raw.iter().sum();
        raw.iter().map(|w| w / sum).collect()
    }

    #[test]
    fn hierarchical_bits_equal_flat_bits() {
        for (servers, m) in [(2usize, 3usize), (4, 4), (3, 1), (1, 4)] {
            let n = servers * m;
            let ctx = cluster_ctx(servers, m);
            let weights = norm_weights(n);
            let arrivals: Vec<SimTime> = (0..n).map(|d| SimTime(d as f64 * 1e-4)).collect();
            for make in [f32_buffers, bf16_buffers] {
                for inter in [InterNode::Ring, InterNode::Tree] {
                    let mut hier = make(n, 257, 5);
                    let mut flat = make(n, 257, 5);
                    hierarchical_allreduce_flat(
                        &mut hier,
                        &weights,
                        Algorithm::MultiStreamRing { partitions: n },
                        inter,
                        &ctx,
                        &arrivals,
                    );
                    allreduce_flat(
                        &mut flat,
                        &weights,
                        Algorithm::MultiStreamRing { partitions: n },
                        &ctx,
                        &arrivals,
                    );
                    assert_eq!(hier, flat, "{servers}x{m} {inter:?}: bits diverged");
                }
            }
        }
    }

    #[test]
    fn single_server_degenerates_to_flat_timing() {
        let ctx = cluster_ctx(1, 4);
        let weights = norm_weights(4);
        let mut hier = f32_buffers(4, 128, 9);
        let mut flat = f32_buffers(4, 128, 9);
        let th = hierarchical_allreduce_flat(
            &mut hier,
            &weights,
            Algorithm::Ring,
            InterNode::Ring,
            &ctx,
            &[SimTime::ZERO; 4],
        );
        let tf = allreduce_flat(
            &mut flat,
            &weights,
            Algorithm::Ring,
            &ctx,
            &[SimTime::ZERO; 4],
        );
        assert_eq!(th, tf);
    }

    #[test]
    fn hierarchical_beats_flat_on_slow_inter_link() {
        // 8 servers × 4 devices, 25GbE-class fabric: a flat ring pays the
        // inter-node setup on every one of its 2(N−1) steps; the two-level
        // schedule pays it only 2(S−1) times.
        let (servers, m) = (8, 4);
        let n = servers * m;
        let ctx = cluster_ctx(servers, m);
        let weights = norm_weights(n);
        let len = 1 << 16;
        let mut a = f32_buffers(n, len, 3);
        let mut b = f32_buffers(n, len, 3);
        let arrivals = vec![SimTime::ZERO; n];
        let hier = hierarchical_allreduce_flat(
            &mut a,
            &weights,
            Algorithm::Ring,
            InterNode::Ring,
            &ctx,
            &arrivals,
        );
        let flat = allreduce_flat(&mut b, &weights, Algorithm::Ring, &ctx, &arrivals);
        assert!(
            hier.duration() < flat.duration(),
            "hierarchical {} !< flat {}",
            hier.duration(),
            flat.duration()
        );
        assert_eq!(a, b);
    }

    #[test]
    fn serial_variant_matches_pooled_bits_and_timing() {
        let (servers, m) = (3, 2);
        let n = servers * m;
        let ctx = cluster_ctx(servers, m);
        let weights = norm_weights(n);
        let arrivals: Vec<SimTime> = (0..n).map(|d| SimTime(d as f64 * 2e-4)).collect();
        let mut pooled = bf16_buffers(n, 300, 21);
        let mut serial = bf16_buffers(n, 300, 21);
        let tp = hierarchical_allreduce_flat(
            &mut pooled,
            &weights,
            Algorithm::Tree,
            InterNode::Tree,
            &ctx,
            &arrivals,
        );
        let ts = hierarchical_allreduce_flat_serial(
            &mut serial,
            &weights,
            Algorithm::Tree,
            InterNode::Tree,
            &ctx,
            &arrivals,
        );
        assert_eq!(pooled, serial);
        assert_eq!(tp, ts);
    }

    #[test]
    fn thread_count_invariance_at_fleet_scale() {
        // 64 and 256 replicas — the ISSUE's target range — across both
        // precisions: bits must not depend on ASGD_THREADS.
        for (servers, m) in [(16usize, 4usize), (64, 4)] {
            let n = servers * m;
            let ctx = cluster_ctx(servers, m);
            let weights = norm_weights(n);
            let arrivals = vec![SimTime::ZERO; n];
            let len = 1 << 15; // above MIN_PAR_REDUCE so the pool engages
            for make in [f32_buffers, bf16_buffers] {
                let mut one = make(n, len, 13);
                let mut eight = make(n, len, 13);
                asgd_tensor::parallel::override_threads(1);
                let t1 = hierarchical_allreduce_flat(
                    &mut one,
                    &weights,
                    Algorithm::MultiStreamRing { partitions: 4 },
                    InterNode::Ring,
                    &ctx,
                    &arrivals,
                );
                asgd_tensor::parallel::override_threads(8);
                let t8 = hierarchical_allreduce_flat(
                    &mut eight,
                    &weights,
                    Algorithm::MultiStreamRing { partitions: 4 },
                    InterNode::Ring,
                    &ctx,
                    &arrivals,
                );
                asgd_tensor::parallel::override_threads(0);
                assert_eq!(one, eight, "{servers}x{m}: bits differ across threads");
                assert_eq!(t1, t8, "{servers}x{m}: timing differs across threads");
            }
        }
    }

    #[test]
    fn ceil_log2_rounds() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use asgd_gpusim::{profile, ClusterTopology};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The ISSUE's contract: for random fleet shapes (1–16 servers ×
        /// 1–8 devices), random weights and both precisions, the
        /// hierarchical merge result is bit-equal to the single-level
        /// all-reduce over the same flat buffers.
        #[test]
        fn hierarchical_is_bit_equal_to_flat(
            servers in 1usize..=16,
            m in 1usize..=8,
            len in 1usize..200,
            seed in 0u64..1000,
            bf16_sel in 0usize..2,
            tree_sel in 0usize..2,
            algo_idx in 0usize..5,
        ) {
            let (bf16, tree_inter) = (bf16_sel == 1, tree_sel == 1);
            let n = servers * m;
            let cluster = ClusterTopology::ethernet(servers, m);
            let ctx = CollectiveContext::cluster(&cluster, &profile::homogeneous_server(n));
            let mut state = seed.wrapping_mul(747796405).wrapping_add(1);
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
                ((state >> 33) as f32 / u32::MAX as f32) * 4.0 - 2.0
            };
            let make = |next: &mut dyn FnMut() -> f32| -> Vec<FlatVec> {
                (0..n)
                    .map(|_| {
                        if bf16 {
                            FlatVec::Bf16(
                                (0..len).map(|_| asgd_tensor::bf16::narrow(next())).collect(),
                            )
                        } else {
                            FlatVec::F32((0..len).map(|_| next()).collect())
                        }
                    })
                    .collect()
            };
            let mut hier = make(&mut next);
            let flat_inputs: Vec<FlatVec> = hier.clone();
            let mut flat = flat_inputs;
            let raw: Vec<f64> = (0..n).map(|i| 0.2 + ((seed as usize + i) % 7) as f64).collect();
            let sum: f64 = raw.iter().sum();
            let weights: Vec<f64> = raw.iter().map(|w| w / sum).collect();
            let algo = match algo_idx {
                0 => Algorithm::Naive,
                1 => Algorithm::Tree,
                2 => Algorithm::Ring,
                3 => Algorithm::HalvingDoubling,
                _ => Algorithm::MultiStreamRing { partitions: m.max(1) },
            };
            let inter = if tree_inter { InterNode::Tree } else { InterNode::Ring };
            let arrivals: Vec<SimTime> = (0..n).map(|d| SimTime(d as f64 * 1e-5)).collect();
            let th = hierarchical_allreduce_flat(&mut hier, &weights, algo, inter, &ctx, &arrivals);
            let tf = allreduce_flat(&mut flat, &weights, algo, &ctx, &arrivals);
            prop_assert_eq!(hier, flat, "{}x{} {:?}/{:?}: bits diverged", servers, m, algo, inter);
            prop_assert_eq!(th.start, tf.start, "barrier must not depend on merge topology");
        }
    }
}
