//! Sparse delta all-reduce: merge only the rows the replicas actually
//! touched since the last sync.
//!
//! PR 7's LSH-sampled softmax makes each training step update only a few
//! hundred W2 columns (the sampler's candidates) plus the feature rows of
//! W1 present in the batch — yet the merge stage still all-reduces the
//! *dense* flat model. This module keeps the gradient sparsity alive
//! through the merge: replicas export `(row, values)` deltas over the rows
//! they dirtied, the collective reduces the **union** of touched rows, and
//! only the small dense blocks (b1) ride along unconditionally.
//!
//! # The reduction contract
//!
//! Exactly like [`crate::hierarchical`], sparsity here is a *communication
//! schedule*, never an arithmetic change. The weighted sum is still
//! produced by [`crate::allreduce_flat`] over full flat buffers — each
//! replica's buffer is reconstructed bit-for-bit by scattering its delta
//! over the shared base model (the payload of the last `SetModel`), so for
//! every touched row the summation order matches the dense path exactly and
//! untouched rows are bit-unchanged (`base + 0·anything` never executes:
//! untouched elements are simply the identical base bits in every replica).
//! The merged model is therefore **bit-identical** to the dense path at any
//! `ASGD_THREADS`, for both precisions, flat and hierarchical. What changes
//! is the *simulated* schedule: bytes and time are charged for the id
//! exchange plus a union-sized reduce instead of a model-sized one.
//!
//! # Cost model
//!
//! With `n` replicas, union size `U` rows / `Uₑ` elements, element width
//! `B` and per-replica delta lengths `lᵈ`:
//!
//! 1. **Compaction barrier**: each device packs its delta — one read + one
//!    write of `lᵈ` elements (`2·B·lᵈ` bytes of local traffic); the
//!    collective starts when the last device is ready (mirrors the dense
//!    pre-scale barrier).
//! 2. **Row-id all-gather** (ring): every id list makes `n−1` hops of
//!    `4·|rows|` bytes; step time is the slowest link of the step.
//! 3. **Union reduce**: the dense collective's post-barrier schedule
//!    ([`dense_schedule`], an exact timing mirror of the algorithms in
//!    [`crate::algorithms`]) at length `Uₑ` instead of the model length.
//! 4. **Scatter-back**: each device writes the reduced union into its
//!    model copy — `2·B·Uₑ` bytes of local traffic, devices concurrent.
//!
//! The hierarchical variant replaces 2–3 with per-server phases (id
//! gather-to-lead, per-server-union reduce-to-lead, inter-node id + value
//! exchange over the leads at the global union, intra broadcast), mirroring
//! the two-level cost model of [`crate::hierarchical`].
//!
//! When the union grows dense (above [`SparseMergePlan::max_density`]) the
//! id exchange and per-row bookkeeping would cost more than they save, so
//! the planner *falls back* to the dense schedule — again timing-only: the
//! arithmetic was dense all along.

use crate::algorithms::Algorithm;
use crate::hierarchical::{ceil_log2, server_groups, InterNode};
use crate::timing::{AllReduceTiming, CollectiveContext};
use asgd_gpusim::SimTime;
use asgd_tensor::parallel::split_ranges;
use asgd_tensor::FlatVec;

/// Default union-density threshold above which the sparse schedule falls
/// back to the dense one. At 0.5 the sparse path pays at most half the
/// value bytes plus the id overhead — comfortably ahead.
pub const DEFAULT_MAX_DENSITY: f64 = 0.5;

/// Maps the MLP's flat layout (`W1 ‖ b1 ‖ W2 ‖ b2`, row-major) onto a
/// *row space* of sparsifiable units:
///
/// * row `r < features` — W1 feature row `r` (`hidden` contiguous elements
///   at `r·hidden`), dirtied by any batch containing feature `r`;
/// * row `r ≥ features` — output class `c = r − features`: the W2 column
///   `{w2_off + k·classes + c}` (strided, `hidden` elements) plus `b2[c]`,
///   dirtied when `c` is an LSH candidate.
///
/// Only `b1` (`hidden` elements) is touched by every batch and always rides
/// along densely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparseLayout {
    /// Input feature count (W1 rows).
    pub features: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Output class count (W2 columns).
    pub classes: usize,
}

impl SparseLayout {
    /// Builds the layout for a `features → hidden → classes` MLP.
    pub fn new(features: usize, hidden: usize, classes: usize) -> Self {
        Self {
            features,
            hidden,
            classes,
        }
    }

    /// Number of sparsifiable rows: `features + classes`.
    pub fn num_rows(&self) -> usize {
        self.features + self.classes
    }

    /// Elements carried by row `r` (`hidden` for a W1 row, `hidden + 1`
    /// for a class column + its bias).
    pub fn row_width(&self, r: u32) -> usize {
        if (r as usize) < self.features {
            self.hidden
        } else {
            self.hidden + 1
        }
    }

    /// Elements that ride along densely in every delta (`b1`).
    pub fn dense_elems(&self) -> usize {
        self.hidden
    }

    /// Flat offset of `b1`.
    pub fn b1_off(&self) -> usize {
        self.features * self.hidden
    }

    /// Flat offset of `W2`.
    pub fn w2_off(&self) -> usize {
        self.b1_off() + self.hidden
    }

    /// Flat offset of `b2`.
    pub fn b2_off(&self) -> usize {
        self.w2_off() + self.hidden * self.classes
    }

    /// Total flat model length.
    pub fn param_len(&self) -> usize {
        self.b2_off() + self.classes
    }

    /// Elements of a delta over `rows` (dense blocks included).
    pub fn delta_elems(&self, rows: &[u32]) -> usize {
        self.dense_elems() + rows.iter().map(|&r| self.row_width(r)).sum::<usize>()
    }

    /// Visits every flat index of a delta over `rows` in payload order:
    /// the dense `b1` block first, then each row's elements, rows
    /// ascending. This single function defines the wire format — gather,
    /// scatter and the model-side delta writer all follow it.
    pub fn for_each_delta_index(&self, rows: &[u32], mut f: impl FnMut(usize)) {
        debug_assert!(
            rows.windows(2).all(|w| w[0] < w[1]),
            "delta rows must be strictly ascending"
        );
        let b1 = self.b1_off();
        for i in 0..self.hidden {
            f(b1 + i);
        }
        let (w2, b2) = (self.w2_off(), self.b2_off());
        for &r in rows {
            let r = r as usize;
            assert!(r < self.num_rows(), "row {r} outside layout");
            if r < self.features {
                let base = r * self.hidden;
                for i in 0..self.hidden {
                    f(base + i);
                }
            } else {
                let c = r - self.features;
                for k in 0..self.hidden {
                    f(w2 + k * self.classes + c);
                }
                f(b2 + c);
            }
        }
    }
}

/// Packs the delta over `rows` out of a full flat buffer into `out`
/// (cleared and refilled; allocation recycled, precision adopted from
/// `src`). Values are the stored bits — no re-rounding for bf16.
pub fn gather_delta(layout: &SparseLayout, rows: &[u32], src: &FlatVec, out: &mut FlatVec) {
    assert_eq!(
        src.len(),
        layout.param_len(),
        "source/layout length mismatch"
    );
    if out.precision() != src.precision() {
        *out = FlatVec::empty(src.precision());
    }
    match (src, out) {
        (FlatVec::F32(s), FlatVec::F32(o)) => {
            o.clear();
            layout.for_each_delta_index(rows, |i| o.push(s[i]));
        }
        (FlatVec::Bf16(s), FlatVec::Bf16(o)) => {
            o.clear();
            layout.for_each_delta_index(rows, |i| o.push(s[i]));
        }
        _ => unreachable!("precision was just aligned"),
    }
}

/// Scatters a delta payload over `rows` onto a full flat `base` buffer —
/// the inverse of [`gather_delta`]. After the call, `base` holds the
/// delta's bits at every touched index and its own bits everywhere else,
/// which is exactly how a replica's full flat buffer is reconstructed from
/// `(shared base, its delta)` without moving the dense model.
pub fn scatter_delta(layout: &SparseLayout, rows: &[u32], payload: &FlatVec, base: &mut FlatVec) {
    assert_eq!(
        base.len(),
        layout.param_len(),
        "base/layout length mismatch"
    );
    assert_eq!(
        payload.len(),
        layout.delta_elems(rows),
        "payload/rows length mismatch"
    );
    assert_eq!(
        payload.precision(),
        base.precision(),
        "payload/base precision mismatch"
    );
    match (payload, base) {
        (FlatVec::F32(p), FlatVec::F32(b)) => {
            let mut k = 0usize;
            layout.for_each_delta_index(rows, |i| {
                b[i] = p[k];
                k += 1;
            });
        }
        (FlatVec::Bf16(p), FlatVec::Bf16(b)) => {
            let mut k = 0usize;
            layout.for_each_delta_index(rows, |i| {
                b[i] = p[k];
                k += 1;
            });
        }
        _ => unreachable!("precision equality was just asserted"),
    }
}

/// Sorted, deduplicated union of per-replica touched-row sets.
pub fn union_rows(sets: &[&[u32]]) -> Vec<u32> {
    let mut all: Vec<u32> = sets.iter().flat_map(|s| s.iter().copied()).collect();
    all.sort_unstable();
    all.dedup();
    all
}

/// The sparse schedule's verdict for one merge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseMergeTiming {
    /// The schedule charged to the simulation (the sparse one, or the
    /// caller's dense timing when `fell_back`).
    pub timing: AllReduceTiming,
    /// Rows in the union of all touched-row sets.
    pub union_rows: usize,
    /// Elements a union delta carries (dense blocks included).
    pub union_elems: usize,
    /// `union_elems / param_len` — the density the fallback gate tests.
    pub density: f64,
    /// True when the union was too dense and the dense schedule was kept.
    pub fell_back: bool,
}

/// Static inputs of the sparse schedule, bundled so call sites stay legible.
#[derive(Debug, Clone, Copy)]
pub struct SparseMergePlan {
    /// Intra-server (or flat) reduce algorithm.
    pub algo: Algorithm,
    /// Inter-node shape for cluster contexts (`None` = flat).
    pub inter: Option<InterNode>,
    /// Stored element width in bytes (4 = f32, 2 = bf16).
    pub elem_bytes: usize,
    /// Fall back to the dense schedule above this union density.
    pub max_density: f64,
}

/// Computes the simulated schedule of one sparse delta all-reduce.
///
/// `row_sets[d]` is replica `d`'s sorted touched-row set; `dense` is the
/// timing the dense collective *would* charge (and already computed — the
/// arithmetic ran dense either way), returned verbatim on fallback. The
/// result is a pure function of its arguments: bit-identical across thread
/// counts, build profiles and replay.
pub fn sparse_merge_timing(
    layout: &SparseLayout,
    row_sets: &[&[u32]],
    plan: &SparseMergePlan,
    ctx: &CollectiveContext,
    arrivals: &[SimTime],
    dense: AllReduceTiming,
) -> SparseMergeTiming {
    let n = row_sets.len();
    assert_eq!(ctx.n_devices(), n, "context/row-set count mismatch");
    assert_eq!(arrivals.len(), n, "arrivals/row-set count mismatch");
    let union = union_rows(row_sets);
    let union_elems = layout.delta_elems(&union);
    let density = union_elems as f64 / layout.param_len() as f64;
    let stats = |timing, fell_back| SparseMergeTiming {
        timing,
        union_rows: union.len(),
        union_elems,
        density,
        fell_back,
    };
    if density > plan.max_density {
        return stats(dense, true);
    }
    if n < 2 {
        // One replica: nothing to exchange; the dense collective already
        // degenerated to barrier-only.
        return stats(dense, false);
    }
    let b = plan.elem_bytes;

    // Phase 0 — compaction barrier: device d packs its l_d-element delta
    // (read + write) before the collective can start. Mirrors the dense
    // pre-scale barrier formula exactly.
    let mut start = SimTime::ZERO;
    for d in 0..n {
        let p = &ctx.profiles()[d];
        let pack_t = (2 * b) as f64 * layout.delta_elems(row_sets[d]) as f64
            / (p.mem_bandwidth_gbs * 1e9)
            / p.speed_factor;
        start = start.max(arrivals[d] + pack_t);
    }

    let id_counts: Vec<usize> = row_sets.iter().map(|s| s.len()).collect();
    let mut elapsed = 0.0f64;
    let mut bytes = 0usize;

    let groups = server_groups(ctx);
    let hierarchical = plan.inter.is_some() && ctx.is_cluster() && groups.len() > 1;
    if hierarchical {
        let inter = plan.inter.expect("hierarchical implies inter shape");
        let servers = groups.len();
        let red_max = |members: &[usize], elems: usize| -> f64 {
            members
                .iter()
                .map(|&d| ctx.reduce_time_sized(d, elems, b))
                .fold(0.0f64, f64::max)
        };

        // Per-server unions: what each lead holds after the intra phase.
        let server_unions: Vec<Vec<u32>> = groups
            .iter()
            .map(|members| {
                let member_sets: Vec<&[u32]> = members.iter().map(|&d| row_sets[d]).collect();
                union_rows(&member_sets)
            })
            .collect();

        // Phase 1a — intra id gather-to-lead (servers concurrent, the
        // lead's link serializes its members).
        let mut phase = 0.0f64;
        for members in &groups {
            let lead = members[0];
            let mut t = 0.0f64;
            for &d in members.iter().skip(1) {
                let c = id_counts[d];
                if c == 0 {
                    continue;
                }
                t += ctx.p2p_time_sized(d, lead, c, 4);
                bytes += 4 * c;
            }
            phase = phase.max(t);
        }
        elapsed += phase;

        // Phase 1b — intra value reduce-to-lead at each server's union
        // length (the two-level cost model of `hierarchical`, evaluated at
        // the union delta size instead of the model size).
        let mut phase = 0.0f64;
        for (g, members) in groups.iter().enumerate() {
            let m = members.len();
            if m < 2 {
                continue;
            }
            let lead = members[0];
            let len = layout.delta_elems(&server_unions[g]);
            let p2p = |elems: usize| ctx.p2p_time_sized(members[0], members[1], elems, b);
            let (t, by) = match plan.algo {
                Algorithm::Naive => (
                    members
                        .iter()
                        .skip(1)
                        .map(|&d| {
                            ctx.p2p_time_sized(d, lead, len, b)
                                + ctx.reduce_time_sized(lead, len, b)
                        })
                        .sum::<f64>(),
                    (m - 1) * len * b,
                ),
                Algorithm::Tree | Algorithm::HalvingDoubling => (
                    ceil_log2(m) as f64 * (p2p(len) + red_max(members, len)),
                    (m - 1) * len * b,
                ),
                Algorithm::Ring | Algorithm::MultiStreamRing { .. } => {
                    let c = len.div_ceil(m);
                    (
                        (m - 1) as f64 * (p2p(c) + red_max(members, c)) + (m - 1) as f64 * p2p(c),
                        (m - 1) * m * c * b + (m - 1) * c * b,
                    )
                }
            };
            phase = phase.max(t);
            bytes += by;
        }
        elapsed += phase;

        // Phase 2a — inter id ring all-gather over the leads (per-server
        // union id lists).
        let leads: Vec<usize> = groups.iter().map(|g| g[0]).collect();
        let lead_counts: Vec<usize> = server_unions.iter().map(|u| u.len()).collect();
        let (t, by) = id_allgather_ring(ctx, &leads, &lead_counts);
        elapsed += t;
        bytes += by;

        // Phase 2b — inter value reduce over the leads at the global union.
        let phase = match inter {
            InterNode::Ring => {
                let c = union_elems.div_ceil(servers);
                (servers - 1) as f64 * (ctx.inter_time(c * b) + red_max(&leads, c))
                    + (servers - 1) as f64 * ctx.inter_time(c * b)
            }
            InterNode::Tree => {
                let rounds = ceil_log2(servers) as f64;
                rounds * (ctx.inter_time(union_elems * b) + red_max(&leads, union_elems))
                    + rounds * ctx.inter_time(union_elems * b)
            }
        };
        elapsed += phase;
        bytes += 2 * (servers - 1) * union_elems * b;

        // Phase 3 — intra broadcast of the union ids + values (servers
        // concurrent, binomial rounds).
        let mut phase = 0.0f64;
        for members in &groups {
            let m = members.len();
            if m < 2 {
                continue;
            }
            let hop = ctx.p2p_time_sized(members[0], members[1], union_elems, b)
                + ctx.p2p_time_sized(members[0], members[1], union.len(), 4);
            phase = phase.max(ceil_log2(m) as f64 * hop);
            bytes += (m - 1) * (union_elems * b + union.len() * 4);
        }
        elapsed += phase;
    } else {
        // Flat: id all-gather, then the dense algorithm's own schedule at
        // the union length.
        let devs: Vec<usize> = (0..n).collect();
        let (t, by) = id_allgather_ring(ctx, &devs, &id_counts);
        elapsed += t;
        bytes += by;
        let (t, by) = dense_schedule(plan.algo, ctx, union_elems, b);
        elapsed += t;
        bytes += by;
    }

    // Final phase — scatter the reduced union back into each local model
    // copy (read payload + write model; devices concurrent).
    let scatter = (0..n)
        .map(|d| {
            let p = &ctx.profiles()[d];
            (2 * b) as f64 * union_elems as f64 / (p.mem_bandwidth_gbs * 1e9) / p.speed_factor
        })
        .fold(0.0f64, f64::max);
    elapsed += scatter;

    stats(
        AllReduceTiming {
            start,
            end: start + elapsed,
            bytes_moved: bytes,
        },
        false,
    )
}

/// Ring all-gather of per-device id lists over the devices `devs` (logical
/// ring order): at step `s`, logical device `i` forwards the list that
/// originated at logical `(i − s) mod n` to `i + 1`. Returns
/// `(elapsed, bytes)`; empty lists cost nothing (mirroring how the dense
/// ring skips empty chunks).
fn id_allgather_ring(ctx: &CollectiveContext, devs: &[usize], counts: &[usize]) -> (f64, usize) {
    let n = devs.len();
    debug_assert_eq!(counts.len(), n);
    if n < 2 {
        return (0.0, 0);
    }
    let mut t = 0.0f64;
    let mut bytes = 0usize;
    for s in 0..n - 1 {
        let mut step_t = 0.0f64;
        for i in 0..n {
            let c = counts[(i + n - s) % n];
            if c == 0 {
                continue;
            }
            let (src, dst) = (devs[i], devs[(i + 1) % n]);
            bytes += 4 * c;
            step_t = step_t.max(ctx.p2p_time_sized(src, dst, c, 4));
        }
        t += step_t;
    }
    (t, bytes)
}

/// Post-barrier `(elapsed, bytes)` of the dense collective at an arbitrary
/// length — a pure *timing mirror* of [`crate::algorithms`]: every loop
/// below reproduces, step by step and in the same floating-point order, the
/// accounting the real algorithm performs alongside its arithmetic, so
/// `dense_schedule(algo, ctx, len, B)` equals the real collective's
/// `(duration − barrier, bytes_moved)` **exactly** (pinned by tests below).
/// The sparse path uses it to price the union reduce without materializing
/// union-length buffers.
pub fn dense_schedule(
    algo: Algorithm,
    ctx: &CollectiveContext,
    len: usize,
    elem_bytes: usize,
) -> (f64, usize) {
    let n = ctx.n_devices();
    if n < 2 {
        return (0.0, 0);
    }
    match algo {
        Algorithm::Naive => naive_schedule(ctx, len, elem_bytes),
        Algorithm::Tree => tree_schedule(ctx, len, elem_bytes),
        Algorithm::Ring => ring_schedule(ctx, len, elem_bytes, 0),
        Algorithm::HalvingDoubling => {
            if n.is_power_of_two() {
                hd_schedule(ctx, len, elem_bytes)
            } else {
                ring_schedule(ctx, len, elem_bytes, 0)
            }
        }
        Algorithm::MultiStreamRing { partitions } => {
            let partitions = partitions.clamp(1, len.max(1));
            let ranges = split_ranges(len, partitions);
            let mut worst = 0.0f64;
            let mut total_bytes = 0usize;
            for (p, r) in ranges.iter().enumerate() {
                let (t, b) = ring_schedule(ctx, r.len(), elem_bytes, p % n);
                worst = worst.max(t);
                total_bytes += b;
            }
            (worst, total_bytes)
        }
    }
}

/// Timing mirror of `algorithms::naive`.
fn naive_schedule(ctx: &CollectiveContext, len: usize, elem_bytes: usize) -> (f64, usize) {
    let n = ctx.n_devices();
    let mut t = 0.0;
    let mut bytes = 0usize;
    for src in 1..n {
        t +=
            ctx.p2p_time_sized(src, 0, len, elem_bytes) + ctx.reduce_time_sized(0, len, elem_bytes);
        bytes += elem_bytes * len;
    }
    for dst in 1..n {
        t += ctx.p2p_time_sized(0, dst, len, elem_bytes);
        bytes += elem_bytes * len;
    }
    (t, bytes)
}

/// Timing mirror of `algorithms::tree`.
fn tree_schedule(ctx: &CollectiveContext, len: usize, elem_bytes: usize) -> (f64, usize) {
    let n = ctx.n_devices();
    let mut t = 0.0;
    let mut bytes = 0usize;
    let mut stride = 1;
    while stride < n {
        let mut round = 0.0f64;
        let mut i = 0;
        while i + stride < n {
            round = round.max(
                ctx.p2p_time_sized(i + stride, i, len, elem_bytes)
                    + ctx.reduce_time_sized(i, len, elem_bytes),
            );
            bytes += elem_bytes * len;
            i += stride * 2;
        }
        t += round;
        stride *= 2;
    }
    while stride >= 1 {
        let mut round = 0.0f64;
        let mut i = 0;
        while i + stride < n {
            round = round.max(ctx.p2p_time_sized(i, i + stride, len, elem_bytes));
            bytes += elem_bytes * len;
            i += stride * 2;
        }
        t += round;
        stride /= 2;
    }
    (t, bytes)
}

/// Timing mirror of `algorithms::ring_slices` (including the empty-chunk
/// padding when `len < n`).
fn ring_schedule(
    ctx: &CollectiveContext,
    len: usize,
    elem_bytes: usize,
    rotate: usize,
) -> (f64, usize) {
    let n = ctx.n_devices();
    if len == 0 || n < 2 {
        return (0.0, 0);
    }
    let mut chunks: Vec<std::ops::Range<usize>> = split_ranges(len, n);
    while chunks.len() < n {
        chunks.push(len..len);
    }
    let chunk_of = |logical: usize| chunks[logical % n].clone();
    let dev = |i: usize| (i + rotate) % n;

    let mut t = 0.0f64;
    let mut bytes = 0usize;
    for s in 0..n - 1 {
        let mut step_t = 0.0f64;
        for i in 0..n {
            let c = chunk_of((i + n - s) % n);
            if c.is_empty() {
                continue;
            }
            let elems = c.len();
            let (src, dst) = (dev(i), dev((i + 1) % n));
            bytes += elem_bytes * elems;
            step_t = step_t.max(
                ctx.p2p_time_sized(src, dst, elems, elem_bytes)
                    + ctx.reduce_time_sized(dst, elems, elem_bytes),
            );
        }
        t += step_t;
    }
    for s in 0..n - 1 {
        let mut step_t = 0.0f64;
        for i in 0..n {
            let c = chunk_of((i + 1 + n - s) % n);
            if c.is_empty() {
                continue;
            }
            let elems = c.len();
            let (src, dst) = (dev(i), dev((i + 1) % n));
            bytes += elem_bytes * elems;
            step_t = step_t.max(ctx.p2p_time_sized(src, dst, elems, elem_bytes));
        }
        t += step_t;
    }
    (t, bytes)
}

/// Timing mirror of `algorithms::halving_doubling` (power-of-two n only;
/// the caller routes other sizes to the ring, as the real code does).
fn hd_schedule(ctx: &CollectiveContext, len: usize, elem_bytes: usize) -> (f64, usize) {
    let n = ctx.n_devices();
    debug_assert!(n.is_power_of_two() && n >= 2);
    let mut t = 0.0f64;
    let mut bytes = 0usize;
    let mut ranges: Vec<std::ops::Range<usize>> = vec![0..len; n];

    let mut d = n / 2;
    while d >= 1 {
        let mut step_t = 0.0f64;
        let mut new_ranges = ranges.clone();
        for i in 0..n {
            let p = i ^ d;
            let r = ranges[i].clone();
            let mid = r.start + r.len() / 2;
            let (keep, send) = if i < p {
                (r.start..mid, mid..r.end)
            } else {
                (mid..r.end, r.start..mid)
            };
            new_ranges[i] = keep;
            if send.is_empty() {
                continue;
            }
            let elems = send.len();
            bytes += elem_bytes * elems;
            step_t = step_t.max(
                2.0 * ctx.p2p_time_sized(i, p, elems, elem_bytes)
                    + ctx.reduce_time_sized(p, elems, elem_bytes),
            );
        }
        ranges = new_ranges;
        t += step_t;
        d /= 2;
    }

    let mut d = 1;
    while d < n {
        let mut step_t = 0.0f64;
        let mut new_ranges = ranges.clone();
        for (i, r) in ranges.iter().enumerate() {
            let p = i ^ d;
            let r = r.clone();
            if !r.is_empty() {
                let elems = r.len();
                bytes += elem_bytes * elems;
                step_t = step_t.max(2.0 * ctx.p2p_time_sized(i, p, elems, elem_bytes));
            }
            let own = &mut new_ranges[p];
            *own = own.start.min(r.start)..own.end.max(r.end);
        }
        ranges = new_ranges;
        t += step_t;
        d *= 2;
    }
    (t, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::allreduce_flat;
    use asgd_gpusim::{profile, ClusterTopology, Topology};

    fn layout() -> SparseLayout {
        SparseLayout::new(7, 3, 5)
    }

    fn lcg_f32(state: &mut u64) -> f32 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
        ((*state >> 33) as f32 / u32::MAX as f32) * 4.0 - 2.0
    }

    fn random_flat(len: usize, seed: u64, bf16: bool) -> FlatVec {
        let mut s = seed | 1;
        if bf16 {
            FlatVec::Bf16(
                (0..len)
                    .map(|_| asgd_tensor::bf16::narrow(lcg_f32(&mut s)))
                    .collect(),
            )
        } else {
            FlatVec::F32((0..len).map(|_| lcg_f32(&mut s)).collect())
        }
    }

    #[test]
    fn layout_offsets_and_widths() {
        let l = layout(); // 7 features, hidden 3, 5 classes
        assert_eq!(l.b1_off(), 21);
        assert_eq!(l.w2_off(), 24);
        assert_eq!(l.b2_off(), 39);
        assert_eq!(l.param_len(), 44);
        assert_eq!(l.num_rows(), 12);
        assert_eq!(l.row_width(0), 3);
        assert_eq!(l.row_width(6), 3);
        assert_eq!(l.row_width(7), 4);
        assert_eq!(l.delta_elems(&[]), 3);
        assert_eq!(l.delta_elems(&[1, 7, 11]), 3 + 3 + 4 + 4);
    }

    #[test]
    fn delta_indices_cover_each_index_once_and_in_payload_order() {
        let l = layout();
        let rows = [0u32, 6, 7, 11];
        let mut seen = Vec::new();
        l.for_each_delta_index(&rows, |i| seen.push(i));
        assert_eq!(seen.len(), l.delta_elems(&rows));
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seen.len(), "an index was visited twice");
        assert!(seen.iter().all(|&i| i < l.param_len()));
    }

    #[test]
    fn gather_scatter_reconstructs_the_replica_bit_for_bit() {
        let l = layout();
        for bf16 in [false, true] {
            let base = random_flat(l.param_len(), 42, bf16);
            // Replica = base modified ONLY at the touched rows' indices.
            let rows = [2u32, 3, 8, 10];
            let mut replica = base.clone();
            match &mut replica {
                FlatVec::F32(v) => l.for_each_delta_index(&rows, |i| v[i] += 1.0),
                FlatVec::Bf16(v) => l.for_each_delta_index(&rows, |i| v[i] ^= 1),
            }
            let mut delta = FlatVec::default();
            gather_delta(&l, &rows, &replica, &mut delta);
            assert_eq!(delta.len(), l.delta_elems(&rows));
            let mut rebuilt = base.clone();
            scatter_delta(&l, &rows, &delta, &mut rebuilt);
            assert_eq!(rebuilt, replica, "bf16={bf16}: reconstruction diverged");
        }
    }

    #[test]
    fn empty_row_set_still_carries_the_dense_blocks() {
        let l = layout();
        let src = random_flat(l.param_len(), 7, false);
        let mut delta = FlatVec::default();
        gather_delta(&l, &[], &src, &mut delta);
        assert_eq!(delta.len(), l.dense_elems());
    }

    #[test]
    fn union_merges_sorted_sets() {
        assert_eq!(union_rows(&[&[1, 3], &[2, 3, 9], &[]]), vec![1, 2, 3, 9]);
        assert_eq!(union_rows(&[]), Vec::<u32>::new());
        assert_eq!(union_rows(&[&[], &[]]), Vec::<u32>::new());
    }

    /// The heart of the cost model: `dense_schedule` must equal the real
    /// collective's post-barrier accounting exactly — duration AND bytes —
    /// for every algorithm, heterogeneous profiles and both precisions.
    #[test]
    fn dense_schedule_is_an_exact_timing_mirror() {
        for n in [2usize, 3, 4, 6] {
            let profiles = profile::heterogeneous_server(n);
            let ctx = CollectiveContext::new(Topology::pcie(n), &profiles);
            for len in [1usize, 3, n, 257, 1 << 12] {
                for bf16 in [false, true] {
                    for algo in [
                        Algorithm::Naive,
                        Algorithm::Tree,
                        Algorithm::Ring,
                        Algorithm::HalvingDoubling,
                        Algorithm::MultiStreamRing { partitions: n },
                    ] {
                        let mut bufs: Vec<FlatVec> = (0..n)
                            .map(|d| random_flat(len, d as u64 + 5, bf16))
                            .collect();
                        let weights: Vec<f64> = (0..n).map(|i| 1.0 / (i + 2) as f64).collect();
                        let arrivals: Vec<SimTime> =
                            (0..n).map(|d| SimTime(d as f64 * 3e-4)).collect();
                        let real = allreduce_flat(&mut bufs, &weights, algo, &ctx, &arrivals);
                        let b = if bf16 { 2 } else { 4 };
                        // Reproduce the barrier with the same formula.
                        let mut start = SimTime::ZERO;
                        for (d, &arrival) in arrivals.iter().enumerate() {
                            let p = &ctx.profiles()[d];
                            let scale_t = (2 * b) as f64 * len as f64
                                / (p.mem_bandwidth_gbs * 1e9)
                                / p.speed_factor;
                            start = start.max(arrival + scale_t);
                        }
                        let (elapsed, bytes) = dense_schedule(algo, &ctx, len, b);
                        assert_eq!(real.start, start, "{algo:?} n={n} len={len}: barrier");
                        assert_eq!(
                            real.end,
                            start + elapsed,
                            "{algo:?} n={n} len={len} bf16={bf16}: end"
                        );
                        assert_eq!(
                            real.bytes_moved, bytes,
                            "{algo:?} n={n} len={len} bf16={bf16}: bytes"
                        );
                    }
                }
            }
        }
    }

    fn amazon_layout() -> SparseLayout {
        SparseLayout::new(135_909, 128, 670_091)
    }

    fn refs(sets: &[Vec<u32>]) -> Vec<&[u32]> {
        sets.iter().map(|s| s.as_slice()).collect()
    }

    #[test]
    fn sparse_schedule_moves_an_order_of_magnitude_fewer_bytes_at_scale() {
        let l = amazon_layout();
        let n = 4;
        let ctx = CollectiveContext::new(Topology::pcie(n), &profile::heterogeneous_server(n));
        let arrivals = vec![SimTime::ZERO; n];
        // ~16k W1 rows + ~2.4k candidate columns per replica — the shape a
        // 24-batch mega-batch of the sampled Amazon-670k run produces.
        let mut state = 0xABCDu64;
        let row_sets: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                let mut rows: Vec<u32> = (0..18_400)
                    .map(|_| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
                        if state.is_multiple_of(8) {
                            l.features as u32 + (state >> 33) as u32 % l.classes as u32
                        } else {
                            (state >> 33) as u32 % l.features as u32
                        }
                    })
                    .collect();
                rows.sort_unstable();
                rows.dedup();
                rows
            })
            .collect();
        let algo = Algorithm::MultiStreamRing { partitions: n };
        let (dense_elapsed, dense_bytes) = dense_schedule(algo, &ctx, l.param_len(), 4);
        let dense = AllReduceTiming {
            start: SimTime::ZERO,
            end: SimTime(dense_elapsed),
            bytes_moved: dense_bytes,
        };
        let plan = SparseMergePlan {
            algo,
            inter: None,
            elem_bytes: 4,
            max_density: DEFAULT_MAX_DENSITY,
        };
        let s = sparse_merge_timing(&l, &refs(&row_sets), &plan, &ctx, &arrivals, dense);
        assert!(!s.fell_back);
        assert!(s.density < 0.15, "density {}", s.density);
        assert!(
            dense.bytes_moved as f64 / s.timing.bytes_moved as f64 >= 10.0,
            "sparse bytes {} not ≥10x under dense {}",
            s.timing.bytes_moved,
            dense.bytes_moved
        );
        assert!(s.timing.duration() < dense.duration());
    }

    #[test]
    fn dense_union_falls_back_to_the_dense_schedule() {
        let l = layout();
        let n = 3;
        let ctx = CollectiveContext::new(Topology::pcie(n), &profile::homogeneous_server(n));
        let all_rows: Vec<u32> = (0..l.num_rows() as u32).collect();
        let row_sets = vec![all_rows.clone(), all_rows.clone(), all_rows];
        let dense = AllReduceTiming {
            start: SimTime(1.0),
            end: SimTime(2.0),
            bytes_moved: 777,
        };
        let plan = SparseMergePlan {
            algo: Algorithm::Ring,
            inter: None,
            elem_bytes: 4,
            max_density: 0.5,
        };
        let s = sparse_merge_timing(
            &l,
            &refs(&row_sets),
            &plan,
            &ctx,
            &vec![SimTime::ZERO; n],
            dense,
        );
        assert!(s.fell_back);
        assert_eq!(s.timing, dense);
        // A full union covers every flat element exactly once.
        assert_eq!(s.union_elems, l.param_len());
        assert!((s.density - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_deltas_cost_only_barrier_and_dense_blocks() {
        let l = layout();
        let n = 2;
        let ctx = CollectiveContext::new(Topology::pcie(n), &profile::homogeneous_server(n));
        let plan = SparseMergePlan {
            algo: Algorithm::Ring,
            inter: None,
            elem_bytes: 4,
            max_density: 0.5,
        };
        let dense = AllReduceTiming {
            start: SimTime::ZERO,
            end: SimTime(9.0),
            bytes_moved: 999,
        };
        let s = sparse_merge_timing(
            &l,
            &vec![[].as_slice(); n],
            &plan,
            &ctx,
            &vec![SimTime::ZERO; n],
            dense,
        );
        assert!(!s.fell_back);
        assert_eq!(s.union_rows, 0);
        assert_eq!(s.union_elems, l.dense_elems());
        // Only the b1 block moves: 2(n−1)·dense_elems·4 ring bytes, no ids.
        assert_eq!(s.timing.bytes_moved, 2 * (n - 1) * l.dense_elems() * 4);
    }

    #[test]
    fn hierarchical_schedule_beats_flat_sparse_on_slow_fabric() {
        // 8 servers × 4 devices on a 30µs-setup ethernet fabric, replicas
        // sampling candidate columns from a shared hot pool (the LSH
        // sampler's popular classes overlap heavily): the flat ring pays
        // the inter-node setup on every one of its 2(N−1) steps, the
        // two-level schedule only 2(S−1) times.
        let l = amazon_layout();
        let (servers, m) = (8, 4);
        let n = servers * m;
        let cluster = ClusterTopology::ethernet(servers, m);
        let ctx = CollectiveContext::cluster(&cluster, &profile::homogeneous_server(n));
        let arrivals = vec![SimTime::ZERO; n];
        let mut state = 0x1234u64;
        let row_sets: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                let mut rows: Vec<u32> = (0..300)
                    .map(|_| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
                        l.features as u32 + (state >> 33) as u32 % 2000
                    })
                    .collect();
                rows.sort_unstable();
                rows.dedup();
                rows
            })
            .collect();
        let dense = AllReduceTiming {
            start: SimTime::ZERO,
            end: SimTime(1e9),
            bytes_moved: usize::MAX / 2,
        };
        let algo = Algorithm::Ring;
        let flat_plan = SparseMergePlan {
            algo,
            inter: None,
            elem_bytes: 4,
            max_density: 0.5,
        };
        let hier_plan = SparseMergePlan {
            algo,
            inter: Some(InterNode::Ring),
            elem_bytes: 4,
            max_density: 0.5,
        };
        let flat = sparse_merge_timing(&l, &refs(&row_sets), &flat_plan, &ctx, &arrivals, dense);
        let hier = sparse_merge_timing(&l, &refs(&row_sets), &hier_plan, &ctx, &arrivals, dense);
        assert!(!flat.fell_back && !hier.fell_back);
        assert_eq!(flat.union_rows, hier.union_rows);
        assert!(
            hier.timing.duration() < flat.timing.duration(),
            "hier {} !< flat {}",
            hier.timing.duration(),
            flat.timing.duration()
        );
    }

    #[test]
    fn bf16_halves_the_sparse_value_bytes() {
        let l = layout();
        let n = 2;
        let ctx = CollectiveContext::new(Topology::pcie(n), &profile::homogeneous_server(n));
        let rows = vec![vec![0u32, 8], vec![1u32, 8]];
        let dense = AllReduceTiming {
            start: SimTime::ZERO,
            end: SimTime(1.0),
            bytes_moved: 1 << 30,
        };
        let mk = |elem_bytes| SparseMergePlan {
            algo: Algorithm::Ring,
            inter: None,
            elem_bytes,
            max_density: 1.0,
        };
        let f32s = sparse_merge_timing(
            &l,
            &refs(&rows),
            &mk(4),
            &ctx,
            &vec![SimTime::ZERO; n],
            dense,
        );
        let bf16s = sparse_merge_timing(
            &l,
            &refs(&rows),
            &mk(2),
            &ctx,
            &vec![SimTime::ZERO; n],
            dense,
        );
        // Value traffic halves; the 4-byte id traffic is identical.
        let ids = |s: &SparseMergeTiming, value_b: usize| {
            s.timing.bytes_moved - 2 * (n - 1) * s.union_elems * value_b
        };
        assert_eq!(ids(&f32s, 4), ids(&bf16s, 2));
        assert!(bf16s.timing.bytes_moved < f32s.timing.bytes_moved);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::algorithms::allreduce_flat;
    use asgd_gpusim::{profile, Topology};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// `dense_schedule` is an exact mirror over random shapes, lengths,
        /// algorithms, precisions and arrival skews.
        #[test]
        fn schedule_mirror_is_exact(
            n in 2usize..7,
            len in 1usize..600,
            seed in 0u64..1000,
            bf16_sel in 0usize..2,
            algo_idx in 0usize..5,
            skew in 0u64..50,
        ) {
            let bf16 = bf16_sel == 1;
            let profiles = profile::heterogeneous_server(n);
            let ctx = CollectiveContext::new(Topology::pcie(n), &profiles);
            let algo = match algo_idx {
                0 => Algorithm::Naive,
                1 => Algorithm::Tree,
                2 => Algorithm::Ring,
                3 => Algorithm::HalvingDoubling,
                _ => Algorithm::MultiStreamRing { partitions: (seed as usize % 8) + 1 },
            };
            let mut state = seed.wrapping_mul(747796405).wrapping_add(1);
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
                ((state >> 33) as f32 / u32::MAX as f32) * 4.0 - 2.0
            };
            let mut bufs: Vec<FlatVec> = (0..n)
                .map(|_| {
                    if bf16 {
                        FlatVec::Bf16((0..len).map(|_| asgd_tensor::bf16::narrow(next())).collect())
                    } else {
                        FlatVec::F32((0..len).map(|_| next()).collect())
                    }
                })
                .collect();
            let weights: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
            let arrivals: Vec<SimTime> =
                (0..n).map(|d| SimTime((d as u64 * skew) as f64 * 1e-5)).collect();
            let real = allreduce_flat(&mut bufs, &weights, algo, &ctx, &arrivals);
            let b = if bf16 { 2 } else { 4 };
            let mut start = SimTime::ZERO;
            for (d, &arrival) in arrivals.iter().enumerate() {
                let p = &ctx.profiles()[d];
                let scale_t =
                    (2 * b) as f64 * len as f64 / (p.mem_bandwidth_gbs * 1e9) / p.speed_factor;
                start = start.max(arrival + scale_t);
            }
            let (elapsed, bytes) = dense_schedule(algo, &ctx, len, b);
            prop_assert_eq!(real.start, start);
            prop_assert_eq!(real.end, start + elapsed);
            prop_assert_eq!(real.bytes_moved, bytes);
        }

        /// Gather → scatter over a shared base reconstructs any replica
        /// whose edits stayed inside its touched rows — the exact property
        /// the trainer's sparse merge path relies on for bit-identity.
        #[test]
        fn gather_scatter_roundtrip(
            features in 1usize..20,
            hidden in 1usize..8,
            classes in 1usize..20,
            seed in 0u64..1000,
            bf16_sel in 0usize..2,
            row_mask in 0u64..u64::MAX,
        ) {
            let l = SparseLayout::new(features, hidden, classes);
            let rows: Vec<u32> = (0..l.num_rows().min(64) as u32)
                .filter(|r| row_mask & (1u64 << (r % 64)) != 0)
                .collect();
            let bf16 = bf16_sel == 1;
            let mut state = seed | 1;
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
                ((state >> 33) as f32 / u32::MAX as f32) * 4.0 - 2.0
            };
            let base = if bf16 {
                FlatVec::Bf16(
                    (0..l.param_len()).map(|_| asgd_tensor::bf16::narrow(next())).collect(),
                )
            } else {
                FlatVec::F32((0..l.param_len()).map(|_| next()).collect())
            };
            let mut replica = base.clone();
            match &mut replica {
                FlatVec::F32(v) => l.for_each_delta_index(&rows, |i| v[i] = v[i] * 0.5 + 1.0),
                FlatVec::Bf16(v) => l.for_each_delta_index(&rows, |i| v[i] = v[i].wrapping_add(3)),
            }
            let mut delta = FlatVec::default();
            gather_delta(&l, &rows, &replica, &mut delta);
            let mut rebuilt = base.clone();
            scatter_delta(&l, &rows, &delta, &mut rebuilt);
            prop_assert_eq!(rebuilt, replica);
        }
    }
}
