//! All-reduce collectives for single-server multi-GPU model merging.
//!
//! The paper implements model merging as an all-reduce because NCCL "lacks
//! support for multi-streams — which precludes the overlap between model
//! transfer and reduction computation" (§IV). This crate reproduces their
//! replacement: naive (gather-to-root), **tree**, **ring**, and the
//! **multi-stream partitioned ring** they settle on, where the model is split
//! into `P` partitions, each assigned to its own stream and starting its ring
//! at a different GPU, so transfer and reduction overlap completely.
//!
//! Every algorithm does **real arithmetic** — after a call, every device
//! buffer holds the weighted sum of all inputs — and returns simulated
//! timing derived from [`asgd_gpusim`]'s topology and device profiles, so
//! the ring-vs-tree and multi-stream claims can be benchmarked.
//!
//! # Example
//!
//! ```
//! use asgd_collective::{allreduce, Algorithm, CollectiveContext};
//! use asgd_gpusim::{profile, SimTime, Topology};
//!
//! let profiles = profile::homogeneous_server(4);
//! let ctx = CollectiveContext::new(Topology::pcie(4), &profiles);
//! let mut bufs = vec![vec![1.0f32; 64], vec![2.0; 64], vec![3.0; 64], vec![4.0; 64]];
//! let weights = [0.25f64; 4];
//! let timing = allreduce(
//!     &mut bufs,
//!     &weights,
//!     Algorithm::MultiStreamRing { partitions: 4 },
//!     &ctx,
//!     &[SimTime::ZERO; 4],
//! );
//! for b in &bufs {
//!     assert!((b[0] - 2.5).abs() < 1e-6); // 0.25·(1+2+3+4)
//! }
//! assert!(timing.end.secs() > 0.0);
//! ```

pub mod algorithms;
pub mod hierarchical;
pub mod sparse;
pub mod timing;

pub use algorithms::{
    allreduce, allreduce_flat, allreduce_flat_serial, allreduce_serial, Algorithm,
};
pub use hierarchical::{
    hierarchical_allreduce_flat, hierarchical_allreduce_flat_serial, InterNode,
};
pub use sparse::{
    dense_schedule, gather_delta, scatter_delta, sparse_merge_timing, union_rows, SparseLayout,
    SparseMergePlan, SparseMergeTiming, DEFAULT_MAX_DENSITY,
};
pub use timing::{AllReduceTiming, CollectiveContext};

#[cfg(test)]
mod integration_tests {
    use super::*;
    use asgd_gpusim::{profile, SimTime, Topology};

    fn ctx(n: usize) -> CollectiveContext {
        CollectiveContext::new(Topology::pcie(n), &profile::homogeneous_server(n))
    }

    fn buffers(n: usize, len: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|d| {
                (0..len)
                    .map(|i| (d * len + i) as f32 * 0.01 - 1.5)
                    .collect()
            })
            .collect()
    }

    fn expected(bufs: &[Vec<f32>], weights: &[f64]) -> Vec<f32> {
        let len = bufs[0].len();
        (0..len)
            .map(|i| {
                bufs.iter()
                    .zip(weights)
                    .map(|(b, &w)| b[i] as f64 * w)
                    .sum::<f64>() as f32
            })
            .collect()
    }

    #[test]
    fn all_algorithms_agree_with_reference() {
        for n in [1usize, 2, 3, 4, 6] {
            for algo in [
                Algorithm::Naive,
                Algorithm::Tree,
                Algorithm::Ring,
                Algorithm::HalvingDoubling,
                Algorithm::MultiStreamRing {
                    partitions: n.max(1),
                },
            ] {
                let mut bufs = buffers(n, 103);
                let weights: Vec<f64> = (1..=n)
                    .map(|i| i as f64 / (n * (n + 1) / 2) as f64)
                    .collect();
                let want = expected(&bufs, &weights);
                allreduce(&mut bufs, &weights, algo, &ctx(n), &vec![SimTime::ZERO; n]);
                for b in &bufs {
                    for (got, want) in b.iter().zip(&want) {
                        assert!((got - want).abs() < 1e-4, "{algo:?} n={n}: {got} != {want}");
                    }
                }
            }
        }
    }

    #[test]
    fn stragglers_delay_the_collective() {
        let n = 4;
        let mut bufs = buffers(n, 64);
        let weights = vec![0.25f64; 4];
        let arrivals = [SimTime(0.0), SimTime(0.0), SimTime(5.0), SimTime(0.0)];
        let t = allreduce(&mut bufs, &weights, Algorithm::Ring, &ctx(n), &arrivals);
        assert!(t.start.secs() >= 5.0, "collective must wait for stragglers");
        assert!(t.end.secs() > t.start.secs());
    }

    #[test]
    fn multi_stream_ring_beats_single_stream_tree_on_large_models() {
        // §IV: "the multi-stream ring-based all-reduce function performs
        // model merging at least twice as fast" as the single-stream tree.
        let n = 4;
        let len = 4_000_000; // 16 MB per replica: bandwidth-bound.
        let weights = vec![0.25f64; 4];
        let run = |algo| {
            let mut bufs: Vec<Vec<f32>> = (0..n).map(|d| vec![d as f32; len]).collect();
            allreduce(&mut bufs, &weights, algo, &ctx(n), &vec![SimTime::ZERO; n]).duration()
        };
        let tree = run(Algorithm::Tree);
        let msr = run(Algorithm::MultiStreamRing { partitions: 4 });
        assert!(
            msr * 2.0 <= tree,
            "multi-stream ring {msr} not 2x faster than tree {tree}"
        );
    }

    #[test]
    fn tree_beats_ring_on_tiny_models() {
        // Latency-bound regime: fewer sequential steps wins.
        let n = 8;
        let len = 32;
        let weights = vec![1.0 / n as f64; n];
        let run = |algo| {
            let mut bufs: Vec<Vec<f32>> = (0..n).map(|d| vec![d as f32; len]).collect();
            allreduce(&mut bufs, &weights, algo, &ctx(n), &vec![SimTime::ZERO; n]).duration()
        };
        assert!(run(Algorithm::Tree) < run(Algorithm::Ring));
    }
}
