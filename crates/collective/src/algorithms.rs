//! The all-reduce algorithm implementations.
//!
//! Every variant performs the *real* weighted-sum arithmetic chunk-by-chunk,
//! following the exact data flow of the algorithm (so floating-point
//! summation order matches what the hardware collective would produce), and
//! simultaneously accounts simulated time step-by-step.

use crate::timing::{AllReduceTiming, CollectiveContext};
use asgd_gpusim::SimTime;
use asgd_tensor::parallel::{par_add_assign, split_ranges};

/// Reductions shorter than this stay serial — the fork/join on the worker
/// pool only pays off for model-sized buffers. Element-wise addition is
/// order-independent per element, so the pooled and serial paths are
/// bit-identical.
const MIN_PAR_REDUCE: usize = 1 << 14;

/// The collective algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Gather every replica to device 0, reduce there, broadcast back.
    Naive,
    /// Binomial-tree reduce followed by a tree broadcast (single stream) —
    /// the shape of NCCL's single-server tree algorithm.
    Tree,
    /// Classic single-stream ring: reduce-scatter + all-gather over
    /// `n` model chunks.
    Ring,
    /// Recursive halving (reduce-scatter) + recursive doubling (all-gather):
    /// `2·log₂(n)` rounds moving half the previous payload each round. The
    /// classic latency/bandwidth compromise for power-of-two groups; falls
    /// back to [`Algorithm::Ring`] for non-power-of-two server sizes.
    HalvingDoubling,
    /// The paper's algorithm: the model is split into `partitions`
    /// partitions, each running its own ring on a dedicated stream starting
    /// at a different GPU, overlapping transfer and reduction completely.
    /// The optimal partition count is empirically the GPU count (§IV).
    MultiStreamRing {
        /// Number of partitions = concurrent streams.
        partitions: usize,
    },
}

/// Runs a weighted all-reduce over per-device buffers.
///
/// On return every buffer holds `Σ_i weights[i] · input_i` and the returned
/// timing covers barrier wait, pre-scaling, transfers and reductions.
///
/// # Panics
/// Panics when lengths are inconsistent or `buffers` is empty.
pub fn allreduce(
    buffers: &mut [Vec<f32>],
    weights: &[f64],
    algo: Algorithm,
    ctx: &CollectiveContext,
    arrivals: &[SimTime],
) -> AllReduceTiming {
    let n = buffers.len();
    assert!(n > 0, "allreduce needs at least one participant");
    assert_eq!(weights.len(), n, "weights/buffers mismatch");
    assert_eq!(arrivals.len(), n, "arrivals/buffers mismatch");
    assert_eq!(ctx.n_devices(), n, "context device count mismatch");
    let len = buffers[0].len();
    assert!(
        buffers.iter().all(|b| b.len() == len),
        "replica size mismatch"
    );

    // Pre-scale each replica by its merge weight on its own device. The
    // scale pass overlaps nothing — it delays that device's arrival.
    let mut ready = Vec::with_capacity(n);
    for (d, buf) in buffers.iter_mut().enumerate() {
        let w = weights[d] as f32;
        if w != 1.0 {
            for v in buf.iter_mut() {
                *v *= w;
            }
        }
        let scale_t = 8.0 * len as f64
            / (ctx.profiles()[d].mem_bandwidth_gbs * 1e9)
            / ctx.profiles()[d].speed_factor;
        ready.push(arrivals[d] + scale_t);
    }
    // Barrier: the collective begins when the last participant is ready.
    let start = ready.iter().cloned().fold(SimTime::ZERO, SimTime::max);

    if n == 1 {
        return AllReduceTiming {
            start,
            end: start,
            bytes_moved: 0,
        };
    }

    let (elapsed, bytes) = match algo {
        Algorithm::Naive => naive(buffers, ctx),
        Algorithm::Tree => tree(buffers, ctx),
        Algorithm::Ring => ring_range(buffers, ctx, 0..len, 0),
        Algorithm::HalvingDoubling => {
            if n.is_power_of_two() {
                halving_doubling(buffers, ctx)
            } else {
                ring_range(buffers, ctx, 0..len, 0)
            }
        }
        Algorithm::MultiStreamRing { partitions } => {
            let partitions = partitions.clamp(1, len.max(1));
            let ranges = split_ranges(len, partitions);
            let mut worst = 0.0f64;
            let mut total_bytes = 0usize;
            for (p, range) in ranges.into_iter().enumerate() {
                // Each partition's ring starts at a different GPU and runs
                // on its own stream: durations overlap, take the max.
                let (t, b) = ring_range(buffers, ctx, range, p % n);
                worst = worst.max(t);
                total_bytes += b;
            }
            (worst, total_bytes)
        }
    };

    AllReduceTiming {
        start,
        end: start + elapsed,
        bytes_moved: bytes,
    }
}

/// Gather-to-root + broadcast. Sequential on the root's links.
fn naive(buffers: &mut [Vec<f32>], ctx: &CollectiveContext) -> (f64, usize) {
    let n = buffers.len();
    let len = buffers[0].len();
    let mut t = 0.0;
    let mut bytes = 0usize;
    for src in 1..n {
        let (root_slice, src_slice) = pair_mut(buffers, 0, src);
        par_add_assign(root_slice, src_slice, MIN_PAR_REDUCE);
        t += ctx.p2p_time(src, 0, len) + ctx.reduce_time(0, len);
        bytes += 4 * len;
    }
    let (root, rest) = buffers.split_first_mut().expect("n >= 1");
    for (i, dst) in rest.iter_mut().enumerate() {
        dst.copy_from_slice(root);
        t += ctx.p2p_time(0, i + 1, len);
        bytes += 4 * len;
    }
    (t, bytes)
}

/// Binomial tree reduce + broadcast, single stream, whole-model transfers.
fn tree(buffers: &mut [Vec<f32>], ctx: &CollectiveContext) -> (f64, usize) {
    let n = buffers.len();
    let len = buffers[0].len();
    let mut t = 0.0;
    let mut bytes = 0usize;
    // Reduce up: stride doubling. Active pairs in a round are concurrent.
    let mut stride = 1;
    while stride < n {
        let mut round = 0.0f64;
        let mut i = 0;
        while i + stride < n {
            let (dst, src) = pair_mut(buffers, i, i + stride);
            par_add_assign(dst, src, MIN_PAR_REDUCE);
            round = round.max(ctx.p2p_time(i + stride, i, len) + ctx.reduce_time(i, len));
            bytes += 4 * len;
            i += stride * 2;
        }
        t += round;
        stride *= 2;
    }
    // Broadcast down: reverse the strides.
    while stride >= 1 {
        let mut round = 0.0f64;
        let mut i = 0;
        while i + stride < n {
            let (dst, src) = pair_mut(buffers, i + stride, i);
            dst.copy_from_slice(src);
            round = round.max(ctx.p2p_time(i, i + stride, len));
            bytes += 4 * len;
            i += stride * 2;
        }
        t += round;
        stride /= 2;
    }
    (t, bytes)
}

/// Ring all-reduce restricted to `range` of every buffer, with the ring
/// starting role rotated by `rotate` (used by the multi-stream variant so
/// each partition's traffic starts at a different GPU).
///
/// Returns `(elapsed, bytes_moved)`.
fn ring_range(
    buffers: &mut [Vec<f32>],
    ctx: &CollectiveContext,
    range: std::ops::Range<usize>,
    rotate: usize,
) -> (f64, usize) {
    let n = buffers.len();
    let len = range.len();
    if len == 0 || n < 2 {
        return (0.0, 0);
    }
    // Chunk the partition into n near-equal pieces (some may be empty when
    // len < n; timing then charges only the setup of non-empty sends).
    let mut chunks: Vec<std::ops::Range<usize>> = split_ranges(len, n)
        .into_iter()
        .map(|r| range.start + r.start..range.start + r.end)
        .collect();
    // `split_ranges` emits fewer ranges when len < n; pad with empty chunks
    // so every logical chunk index is addressable.
    while chunks.len() < n {
        chunks.push(range.end..range.end);
    }
    let chunk_of = |logical: usize| chunks[logical % n].clone();
    // Physical device playing logical role `i`.
    let dev = |i: usize| (i + rotate) % n;

    let mut t = 0.0f64;
    let mut bytes = 0usize;

    // Phase 1: reduce-scatter. Step s: logical device i sends chunk
    // (i - s) mod n to logical device i+1, which accumulates.
    for s in 0..n - 1 {
        let mut step_t = 0.0f64;
        // Collect sends first so the step is simultaneous (values read
        // before any accumulation of this step lands).
        let mut sends: Vec<(usize, std::ops::Range<usize>, Vec<f32>)> = Vec::with_capacity(n);
        for i in 0..n {
            let c = chunk_of((i + n - s) % n);
            let src = dev(i);
            let payload = buffers[src][c.clone()].to_vec();
            sends.push((dev((i + 1) % n), c, payload));
        }
        for (dst, c, payload) in sends {
            let elems = payload.len();
            if elems == 0 {
                continue;
            }
            par_add_assign(&mut buffers[dst][c], &payload, MIN_PAR_REDUCE);
            bytes += 4 * elems;
            // All transfers of a step run on disjoint ring links: take max.
            let src = prev_dev(dst, n);
            step_t = step_t.max(ctx.p2p_time(src, dst, elems) + ctx.reduce_time(dst, elems));
        }
        t += step_t;
    }

    // Phase 2: all-gather. After reduce-scatter, logical device i owns the
    // complete chunk (i + 1) mod n. Step s: logical i sends chunk
    // (i + 1 - s) mod n to i+1, which overwrites.
    for s in 0..n - 1 {
        let mut step_t = 0.0f64;
        let mut sends: Vec<(usize, std::ops::Range<usize>, Vec<f32>)> = Vec::with_capacity(n);
        for i in 0..n {
            let c = chunk_of((i + 1 + n - s) % n);
            let src = dev(i);
            sends.push((dev((i + 1) % n), c.clone(), buffers[src][c].to_vec()));
        }
        for (dst, c, payload) in sends {
            let elems = payload.len();
            if elems == 0 {
                continue;
            }
            buffers[dst][c].copy_from_slice(&payload);
            bytes += 4 * elems;
            let src = prev_dev(dst, n);
            step_t = step_t.max(ctx.p2p_time(src, dst, elems));
        }
        t += step_t;
    }

    (t, bytes)
}

fn prev_dev(d: usize, n: usize) -> usize {
    (d + n - 1) % n
}

/// Recursive halving reduce-scatter + recursive doubling all-gather.
/// Requires `n` to be a power of two (the caller guarantees it).
fn halving_doubling(buffers: &mut [Vec<f32>], ctx: &CollectiveContext) -> (f64, usize) {
    let n = buffers.len();
    debug_assert!(n.is_power_of_two() && n >= 2);
    let len = buffers[0].len();
    let mut t = 0.0f64;
    let mut bytes = 0usize;

    // Active range per device; pairs always share identical ranges because
    // pairing follows the bit pattern of already-processed rounds.
    let mut ranges: Vec<std::ops::Range<usize>> = vec![0..len; n];

    // Phase 1: recursive halving. Partner distance n/2, n/4, …, 1.
    let mut d = n / 2;
    while d >= 1 {
        let mut step_t = 0.0f64;
        // Stage sends: (dst, dst_new_range, payload from src's half).
        let mut sends: Vec<(usize, std::ops::Range<usize>, Vec<f32>)> = Vec::with_capacity(n);
        let mut new_ranges = ranges.clone();
        for i in 0..n {
            let p = i ^ d;
            let r = ranges[i].clone();
            let mid = r.start + r.len() / 2;
            let (keep, send) = if i < p {
                (r.start..mid, mid..r.end)
            } else {
                (mid..r.end, r.start..mid)
            };
            sends.push((p, send.clone(), buffers[i][send].to_vec()));
            new_ranges[i] = keep;
        }
        for (dst, range, payload) in sends {
            let elems = payload.len();
            if elems == 0 {
                continue;
            }
            par_add_assign(&mut buffers[dst][range], &payload, MIN_PAR_REDUCE);
            bytes += 4 * elems;
            // The pair's two transfers share one link; serialize them.
            step_t =
                step_t.max(2.0 * ctx.p2p_time(dst ^ d, dst, elems) + ctx.reduce_time(dst, elems));
        }
        ranges = new_ranges;
        t += step_t;
        d /= 2;
    }

    // Phase 2: recursive doubling all-gather. Distances 1, 2, …, n/2.
    let mut d = 1;
    while d < n {
        let mut step_t = 0.0f64;
        let mut sends: Vec<(usize, std::ops::Range<usize>, Vec<f32>)> = Vec::with_capacity(n);
        for i in 0..n {
            let p = i ^ d;
            let r = ranges[i].clone();
            sends.push((p, r.clone(), buffers[i][r].to_vec()));
        }
        let mut new_ranges = ranges.clone();
        for (dst, range, payload) in sends {
            let elems = payload.len();
            if elems > 0 {
                buffers[dst][range.clone()].copy_from_slice(&payload);
                bytes += 4 * elems;
                step_t = step_t.max(2.0 * ctx.p2p_time(dst ^ d, dst, elems));
            }
            // The destination now owns the union of the two ranges.
            let own = &mut new_ranges[dst];
            *own = own.start.min(range.start)..own.end.max(range.end);
        }
        ranges = new_ranges;
        t += step_t;
        d *= 2;
    }
    (t, bytes)
}

/// Mutably borrows two distinct buffers.
fn pair_mut(buffers: &mut [Vec<f32>], a: usize, b: usize) -> (&mut [f32], &[f32]) {
    assert_ne!(a, b);
    if a < b {
        let (lo, hi) = buffers.split_at_mut(b);
        (&mut lo[a], &hi[0])
    } else {
        let (lo, hi) = buffers.split_at_mut(a);
        (&mut hi[0], &lo[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgd_gpusim::{profile, Topology};

    fn ctx(n: usize) -> CollectiveContext {
        CollectiveContext::new(Topology::pcie(n), &profile::homogeneous_server(n))
    }

    #[test]
    fn ring_handles_len_smaller_than_devices() {
        let n = 4;
        let mut bufs: Vec<Vec<f32>> = (0..n).map(|d| vec![d as f32 + 1.0; 2]).collect();
        let w = vec![1.0f64; n];
        allreduce(
            &mut bufs,
            &w,
            Algorithm::Ring,
            &ctx(n),
            &vec![SimTime::ZERO; n],
        );
        for b in &bufs {
            assert_eq!(b, &vec![10.0f32; 2]);
        }
    }

    #[test]
    fn single_device_is_scale_only() {
        let mut bufs = vec![vec![2.0f32; 8]];
        let t = allreduce(
            &mut bufs,
            &[0.5],
            Algorithm::Ring,
            &ctx(1),
            &[SimTime::ZERO],
        );
        assert_eq!(bufs[0], vec![1.0f32; 8]);
        assert_eq!(t.bytes_moved, 0);
    }

    #[test]
    fn non_power_of_two_tree() {
        let n = 5;
        let mut bufs: Vec<Vec<f32>> = (0..n).map(|d| vec![d as f32; 16]).collect();
        let w = vec![1.0f64; n];
        allreduce(
            &mut bufs,
            &w,
            Algorithm::Tree,
            &ctx(n),
            &vec![SimTime::ZERO; n],
        );
        for b in &bufs {
            assert_eq!(b, &vec![10.0f32; 16]);
        }
    }

    #[test]
    fn rotation_does_not_change_result() {
        let n = 3;
        let make = || -> Vec<Vec<f32>> {
            (0..n)
                .map(|d| (0..50).map(|i| (d * 50 + i) as f32).collect())
                .collect()
        };
        let mut a = make();
        let mut b = make();
        ring_range(&mut a, &ctx(n), 0..50, 0);
        ring_range(&mut b, &ctx(n), 0..50, 2);
        assert_eq!(a[0], b[0]);
    }

    #[test]
    fn bytes_moved_matches_ring_formula() {
        let n = 4;
        let len = 400usize;
        let mut bufs: Vec<Vec<f32>> = (0..n).map(|_| vec![1.0; len]).collect();
        let w = vec![1.0f64; n];
        let t = allreduce(
            &mut bufs,
            &w,
            Algorithm::Ring,
            &ctx(n),
            &vec![SimTime::ZERO; n],
        );
        // Ring moves 2(n-1)/n of the model per device: 2*(n-1)*len*4 bytes total.
        assert_eq!(t.bytes_moved, 2 * (n - 1) * len * 4);
    }

    #[test]
    #[should_panic(expected = "replica size mismatch")]
    fn mismatched_replicas_panic() {
        let mut bufs = vec![vec![0.0f32; 4], vec![0.0f32; 5]];
        let _ = allreduce(
            &mut bufs,
            &[0.5, 0.5],
            Algorithm::Ring,
            &ctx(2),
            &[SimTime::ZERO; 2],
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use asgd_gpusim::{profile, Topology};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn every_algorithm_matches_reference(
            n in 2usize..5,
            len in 1usize..40,
            seed in 0u64..1000,
            algo_idx in 0usize..5,
        ) {
            let ctx = CollectiveContext::new(
                Topology::pcie(n),
                &profile::homogeneous_server(n),
            );
            let mut state = seed.wrapping_mul(747796405).wrapping_add(1);
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
                ((state >> 33) as f32 / u32::MAX as f32) * 4.0 - 2.0
            };
            let mut bufs: Vec<Vec<f32>> =
                (0..n).map(|_| (0..len).map(|_| next()).collect()).collect();
            let weights: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
            let want: Vec<f32> = (0..len)
                .map(|i| {
                    bufs.iter()
                        .zip(&weights)
                        .map(|(b, &w)| b[i] as f64 * w)
                        .sum::<f64>() as f32
                })
                .collect();
            let algo = match algo_idx {
                0 => Algorithm::Naive,
                1 => Algorithm::Tree,
                2 => Algorithm::Ring,
                3 => Algorithm::HalvingDoubling,
                _ => Algorithm::MultiStreamRing { partitions: n },
            };
            let timing = allreduce(&mut bufs, &weights, algo, &ctx, &vec![SimTime::ZERO; n]);
            prop_assert!(timing.duration() >= 0.0);
            for b in &bufs {
                for (g, w) in b.iter().zip(&want) {
                    prop_assert!((g - w).abs() < 1e-3, "{algo:?}: {g} vs {w}");
                }
            }
        }
    }
}
