//! The all-reduce algorithm implementations.
//!
//! Every variant performs the *real* weighted-sum arithmetic chunk-by-chunk,
//! following the exact data flow of the algorithm (so floating-point
//! summation order matches what the hardware collective would produce), and
//! simultaneously accounts simulated time step-by-step.
//!
//! Reduction arithmetic is applied **in place** on the destination buffers:
//! within any single step of any algorithm here, the chunks written never
//! alias the chunks read (the ring forwards chunk `i - s` while reading
//! `i + 1 - s`; halving/doubling partners exchange disjoint halves), so no
//! staging copies of the payloads are needed and the result is bit-identical
//! to a fully simultaneous exchange. Per-chunk arithmetic routes through the
//! persistent worker pool (`asgd_tensor::parallel`), which partitions
//! deterministically — results are bit-identical for any `ASGD_THREADS`.

use crate::timing::{AllReduceTiming, CollectiveContext};
use asgd_gpusim::SimTime;
use asgd_tensor::bf16::ReduceElem;
use asgd_tensor::parallel::{
    par_add_assign_elem, par_copy_elem, par_scale_elem, par_tasks, split_ranges,
};
use asgd_tensor::FlatVec;

/// Reductions shorter than this stay serial — the fork/join on the worker
/// pool only pays off for model-sized buffers. Element-wise addition is
/// order-independent per element, so the pooled and serial paths are
/// bit-identical.
const MIN_PAR_REDUCE: usize = 1 << 14;

/// The collective algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Gather every replica to device 0, reduce there, broadcast back.
    Naive,
    /// Binomial-tree reduce followed by a tree broadcast (single stream) —
    /// the shape of NCCL's single-server tree algorithm.
    Tree,
    /// Classic single-stream ring: reduce-scatter + all-gather over
    /// `n` model chunks.
    Ring,
    /// Recursive halving (reduce-scatter) + recursive doubling (all-gather):
    /// `2·log₂(n)` rounds moving half the previous payload each round. The
    /// classic latency/bandwidth compromise for power-of-two groups; falls
    /// back to [`Algorithm::Ring`] for non-power-of-two server sizes.
    HalvingDoubling,
    /// The paper's algorithm: the model is split into `partitions`
    /// partitions, each running its own ring on a dedicated stream starting
    /// at a different GPU, overlapping transfer and reduction completely.
    /// The optimal partition count is empirically the GPU count (§IV).
    MultiStreamRing {
        /// Number of partitions = concurrent streams.
        partitions: usize,
    },
}

/// Runs a weighted all-reduce over per-device buffers.
///
/// On return every buffer holds `Σ_i weights[i] · input_i` and the returned
/// timing covers barrier wait, pre-scaling, transfers and reductions.
///
/// # Panics
/// Panics when lengths are inconsistent or `buffers` is empty.
pub fn allreduce(
    buffers: &mut [Vec<f32>],
    weights: &[f64],
    algo: Algorithm,
    ctx: &CollectiveContext,
    arrivals: &[SimTime],
) -> AllReduceTiming {
    let mut views: Vec<&mut [f32]> = buffers.iter_mut().map(|b| b.as_mut_slice()).collect();
    allreduce_with(&mut views, weights, algo, ctx, arrivals, MIN_PAR_REDUCE)
}

/// [`allreduce`] over precision-tagged flat buffers: every algorithm runs
/// on the stored element type (f32 verbatim, or bf16 bits with f32
/// accumulators and one narrow per store — see `asgd_tensor::bf16`), with
/// byte accounting and simulated transfer/reduce times reflecting the
/// element width.
///
/// # Panics
/// Panics when buffers mix precisions, lengths are inconsistent, or
/// `buffers` is empty.
pub fn allreduce_flat(
    buffers: &mut [FlatVec],
    weights: &[f64],
    algo: Algorithm,
    ctx: &CollectiveContext,
    arrivals: &[SimTime],
) -> AllReduceTiming {
    allreduce_flat_with(buffers, weights, algo, ctx, arrivals, MIN_PAR_REDUCE)
}

/// [`allreduce_flat`] degraded to the serial path; see [`allreduce_serial`].
pub fn allreduce_flat_serial(
    buffers: &mut [FlatVec],
    weights: &[f64],
    algo: Algorithm,
    ctx: &CollectiveContext,
    arrivals: &[SimTime],
) -> AllReduceTiming {
    allreduce_flat_with(buffers, weights, algo, ctx, arrivals, usize::MAX)
}

/// Dispatches [`allreduce_with`] on the storage precision of the flat
/// buffers (which must all match).
fn allreduce_flat_with(
    buffers: &mut [FlatVec],
    weights: &[f64],
    algo: Algorithm,
    ctx: &CollectiveContext,
    arrivals: &[SimTime],
    min_par: usize,
) -> AllReduceTiming {
    assert!(
        !buffers.is_empty(),
        "allreduce needs at least one participant"
    );
    match buffers[0] {
        FlatVec::F32(_) => {
            let mut views: Vec<&mut [f32]> = buffers
                .iter_mut()
                .map(|b| match b {
                    FlatVec::F32(v) => v.as_mut_slice(),
                    FlatVec::Bf16(_) => panic!("mixed-precision allreduce"),
                })
                .collect();
            allreduce_with(&mut views, weights, algo, ctx, arrivals, min_par)
        }
        FlatVec::Bf16(_) => {
            let mut views: Vec<&mut [u16]> = buffers
                .iter_mut()
                .map(|b| match b {
                    FlatVec::Bf16(v) => v.as_mut_slice(),
                    FlatVec::F32(_) => panic!("mixed-precision allreduce"),
                })
                .collect();
            allreduce_with(&mut views, weights, algo, ctx, arrivals, min_par)
        }
    }
}

/// [`allreduce`] degraded to the serial (non-pooled) path: no work is ever
/// submitted to the persistent worker pool, so the reduction succeeds even
/// when pooled scratch can't be allocated (the trainer's merge-time OOM
/// fallback). Per-element arithmetic order is identical to the pooled path —
/// results AND timing are bit-identical to [`allreduce`]; only wall-clock
/// execution differs.
pub fn allreduce_serial(
    buffers: &mut [Vec<f32>],
    weights: &[f64],
    algo: Algorithm,
    ctx: &CollectiveContext,
    arrivals: &[SimTime],
) -> AllReduceTiming {
    let mut views: Vec<&mut [f32]> = buffers.iter_mut().map(|b| b.as_mut_slice()).collect();
    allreduce_with(&mut views, weights, algo, ctx, arrivals, usize::MAX)
}

/// Shared implementation, generic over the storage element (`f32`
/// reproduces the pre-generic code path bit for bit; `u16` runs the bf16
/// rounding contract). `min_par` is the minimum element count at which
/// per-chunk arithmetic is handed to the worker pool (`usize::MAX` keeps
/// everything on the calling thread).
fn allreduce_with<E: ReduceElem>(
    views: &mut [&mut [E]],
    weights: &[f64],
    algo: Algorithm,
    ctx: &CollectiveContext,
    arrivals: &[SimTime],
    min_par: usize,
) -> AllReduceTiming {
    let n = views.len();
    assert!(n > 0, "allreduce needs at least one participant");
    assert_eq!(weights.len(), n, "weights/buffers mismatch");
    assert_eq!(arrivals.len(), n, "arrivals/buffers mismatch");
    assert_eq!(ctx.n_devices(), n, "context device count mismatch");
    let len = views[0].len();
    assert!(
        views.iter().all(|b| b.len() == len),
        "replica size mismatch"
    );

    // Pre-scale each replica by its merge weight on its own device. The
    // scale pass overlaps nothing — it delays that device's arrival. It must
    // stay a separate pass (not fused into the ring's adds): ring chunks
    // forward partial sums, so fusing would re-scale them. Cost model: one
    // read + one write of the stored payload (`2 · BYTES` bytes/element).
    let mut ready = Vec::with_capacity(n);
    for (d, buf) in views.iter_mut().enumerate() {
        let w = weights[d] as f32;
        if w != 1.0 {
            par_scale_elem(w, buf, min_par);
        }
        let scale_t = (2 * E::BYTES) as f64 * len as f64
            / (ctx.profiles()[d].mem_bandwidth_gbs * 1e9)
            / ctx.profiles()[d].speed_factor;
        ready.push(arrivals[d] + scale_t);
    }
    // Barrier: the collective begins when the last participant is ready.
    let start = ready.iter().cloned().fold(SimTime::ZERO, SimTime::max);

    if n == 1 {
        return AllReduceTiming {
            start,
            end: start,
            bytes_moved: 0,
        };
    }

    let (elapsed, bytes) = match algo {
        Algorithm::Naive => naive(views, ctx, min_par),
        Algorithm::Tree => tree(views, ctx, min_par),
        Algorithm::Ring => ring_slices(views, ctx, 0, min_par),
        Algorithm::HalvingDoubling => {
            if n.is_power_of_two() {
                halving_doubling(views, ctx, min_par)
            } else {
                ring_slices(views, ctx, 0, min_par)
            }
        }
        Algorithm::MultiStreamRing { partitions } => {
            let partitions = partitions.clamp(1, len.max(1));
            let ranges = split_ranges(len, partitions);
            let nparts = ranges.len();
            if min_par == usize::MAX {
                // Serial fallback: run the partition rings one after another
                // on the calling thread. Partition order matches the pooled
                // path's result-combining order, and each partition touches a
                // disjoint element range, so results and timing are
                // bit-identical — only the simulated streams overlap, never
                // the host-side arithmetic.
                let mut worst = 0.0f64;
                let mut total_bytes = 0usize;
                for (p, r) in ranges.iter().enumerate() {
                    let mut part: Vec<&mut [E]> =
                        views.iter_mut().map(|v| &mut v[r.start..r.end]).collect();
                    let (t, b) = ring_slices(&mut part, ctx, p % n, min_par);
                    worst = worst.max(t);
                    total_bytes += b;
                }
                (worst, total_bytes)
            } else {
                // Each partition's ring starts at a different GPU and runs on
                // its own stream: the partitions are element-disjoint, so they
                // map directly onto pool tasks. Durations overlap (take the
                // max); bytes add. Results are written by partition index and
                // combined in partition order, so the totals are deterministic.
                let mut results: Vec<(f64, usize)> = vec![(0.0, 0); nparts];
                let bases: Vec<usize> = views.iter_mut().map(|v| v.as_mut_ptr() as usize).collect();
                let results_base = results.as_mut_ptr() as usize;
                par_tasks(nparts, |p| {
                    let r = &ranges[p];
                    // SAFETY: partition ranges are disjoint sub-ranges of every
                    // buffer, each task touches only its own partition `p`, and
                    // `par_tasks` joins all tasks before returning — so the
                    // reborrowed sub-slices (and the `results[p]` writes) never
                    // alias across tasks and never outlive the borrow.
                    let mut part: Vec<&mut [E]> = bases
                        .iter()
                        .map(|&b| unsafe {
                            std::slice::from_raw_parts_mut((b as *mut E).add(r.start), r.len())
                        })
                        .collect();
                    let out = ring_slices(&mut part, ctx, p % n, min_par);
                    unsafe { *(results_base as *mut (f64, usize)).add(p) = out };
                });
                let mut worst = 0.0f64;
                let mut total_bytes = 0usize;
                for (t, b) in results {
                    worst = worst.max(t);
                    total_bytes += b;
                }
                (worst, total_bytes)
            }
        }
    };

    AllReduceTiming {
        start,
        end: start + elapsed,
        bytes_moved: bytes,
    }
}

/// Gather-to-root + broadcast. Sequential on the root's links.
fn naive<E: ReduceElem>(
    bufs: &mut [&mut [E]],
    ctx: &CollectiveContext,
    min_par: usize,
) -> (f64, usize) {
    let n = bufs.len();
    let len = bufs[0].len();
    let mut t = 0.0;
    let mut bytes = 0usize;
    for src in 1..n {
        let (root_slice, src_slice) = chunk_pair(bufs, 0, src, 0..len, 0..len);
        par_add_assign_elem(root_slice, src_slice, min_par);
        t += ctx.p2p_time_sized(src, 0, len, E::BYTES) + ctx.reduce_time_sized(0, len, E::BYTES);
        bytes += E::BYTES * len;
    }
    let (root, rest) = bufs.split_first_mut().expect("n >= 1");
    for (i, dst) in rest.iter_mut().enumerate() {
        par_copy_elem(root, dst, min_par);
        t += ctx.p2p_time_sized(0, i + 1, len, E::BYTES);
        bytes += E::BYTES * len;
    }
    (t, bytes)
}

/// Binomial tree reduce + broadcast, single stream, whole-model transfers.
fn tree<E: ReduceElem>(
    bufs: &mut [&mut [E]],
    ctx: &CollectiveContext,
    min_par: usize,
) -> (f64, usize) {
    let n = bufs.len();
    let len = bufs[0].len();
    let mut t = 0.0;
    let mut bytes = 0usize;
    // Reduce up: stride doubling. Active pairs in a round are concurrent.
    let mut stride = 1;
    while stride < n {
        let mut round = 0.0f64;
        let mut i = 0;
        while i + stride < n {
            let (dst, src) = chunk_pair(bufs, i, i + stride, 0..len, 0..len);
            par_add_assign_elem(dst, src, min_par);
            round = round.max(
                ctx.p2p_time_sized(i + stride, i, len, E::BYTES)
                    + ctx.reduce_time_sized(i, len, E::BYTES),
            );
            bytes += E::BYTES * len;
            i += stride * 2;
        }
        t += round;
        stride *= 2;
    }
    // Broadcast down: reverse the strides.
    while stride >= 1 {
        let mut round = 0.0f64;
        let mut i = 0;
        while i + stride < n {
            let (dst, src) = chunk_pair(bufs, i + stride, i, 0..len, 0..len);
            par_copy_elem(src, dst, min_par);
            round = round.max(ctx.p2p_time_sized(i, i + stride, len, E::BYTES));
            bytes += E::BYTES * len;
            i += stride * 2;
        }
        t += round;
        stride /= 2;
    }
    (t, bytes)
}

/// Ring all-reduce over equal-length per-device slices, with the ring
/// starting role rotated by `rotate` (used by the multi-stream variant so
/// each partition's traffic starts at a different GPU).
///
/// Payloads are applied directly, without staging: in reduce-scatter step
/// `s`, device `i+1` receives chunk `i - s` while only chunk `i + 1 - s` of
/// its buffer is read (as the source of the next hop) — written and read
/// chunks never coincide within a step, so in-place application is
/// bit-identical to a simultaneous exchange. The all-gather phase overwrites
/// chunk `i + 1 - s` while chunk `i + 2 - s` is read: again disjoint.
///
/// Returns `(elapsed, bytes_moved)`.
fn ring_slices<E: ReduceElem>(
    bufs: &mut [&mut [E]],
    ctx: &CollectiveContext,
    rotate: usize,
    min_par: usize,
) -> (f64, usize) {
    let n = bufs.len();
    let len = bufs[0].len();
    if len == 0 || n < 2 {
        return (0.0, 0);
    }
    // Chunk the slice into n near-equal pieces (some may be empty when
    // len < n; timing then charges only the setup of non-empty sends).
    let mut chunks: Vec<std::ops::Range<usize>> = split_ranges(len, n);
    // `split_ranges` emits fewer ranges when len < n; pad with empty chunks
    // so every logical chunk index is addressable.
    while chunks.len() < n {
        chunks.push(len..len);
    }
    let chunk_of = |logical: usize| chunks[logical % n].clone();
    // Physical device playing logical role `i`.
    let dev = |i: usize| (i + rotate) % n;

    let mut t = 0.0f64;
    let mut bytes = 0usize;

    // Phase 1: reduce-scatter. Step s: logical device i sends chunk
    // (i - s) mod n to logical device i+1, which accumulates.
    for s in 0..n - 1 {
        let mut step_t = 0.0f64;
        for i in 0..n {
            let c = chunk_of((i + n - s) % n);
            if c.is_empty() {
                continue;
            }
            let elems = c.len();
            let (src, dst) = (dev(i), dev((i + 1) % n));
            let (dst_chunk, src_chunk) = chunk_pair(bufs, dst, src, c.clone(), c);
            par_add_assign_elem(dst_chunk, src_chunk, min_par);
            bytes += E::BYTES * elems;
            // All transfers of a step run on disjoint ring links: take max.
            step_t = step_t.max(
                ctx.p2p_time_sized(src, dst, elems, E::BYTES)
                    + ctx.reduce_time_sized(dst, elems, E::BYTES),
            );
        }
        t += step_t;
    }

    // Phase 2: all-gather. After reduce-scatter, logical device i owns the
    // complete chunk (i + 1) mod n. Step s: logical i sends chunk
    // (i + 1 - s) mod n to i+1, which overwrites.
    for s in 0..n - 1 {
        let mut step_t = 0.0f64;
        for i in 0..n {
            let c = chunk_of((i + 1 + n - s) % n);
            if c.is_empty() {
                continue;
            }
            let elems = c.len();
            let (src, dst) = (dev(i), dev((i + 1) % n));
            let (dst_chunk, src_chunk) = chunk_pair(bufs, dst, src, c.clone(), c);
            par_copy_elem(src_chunk, dst_chunk, min_par);
            bytes += E::BYTES * elems;
            step_t = step_t.max(ctx.p2p_time_sized(src, dst, elems, E::BYTES));
        }
        t += step_t;
    }

    (t, bytes)
}

/// Recursive halving reduce-scatter + recursive doubling all-gather.
/// Requires `n` to be a power of two (the caller guarantees it).
///
/// Like the ring, payloads are applied in place: a pair exchanges the two
/// complementary halves of its shared active range (halving), or its two
/// disjoint owned ranges (doubling), so within a step no written region is
/// ever read.
fn halving_doubling<E: ReduceElem>(
    bufs: &mut [&mut [E]],
    ctx: &CollectiveContext,
    min_par: usize,
) -> (f64, usize) {
    let n = bufs.len();
    debug_assert!(n.is_power_of_two() && n >= 2);
    let len = bufs[0].len();
    let mut t = 0.0f64;
    let mut bytes = 0usize;

    // Active range per device; pairs always share identical ranges because
    // pairing follows the bit pattern of already-processed rounds.
    let mut ranges: Vec<std::ops::Range<usize>> = vec![0..len; n];

    // Phase 1: recursive halving. Partner distance n/2, n/4, …, 1.
    let mut d = n / 2;
    while d >= 1 {
        let mut step_t = 0.0f64;
        let mut new_ranges = ranges.clone();
        for i in 0..n {
            let p = i ^ d;
            let r = ranges[i].clone();
            let mid = r.start + r.len() / 2;
            let (keep, send) = if i < p {
                (r.start..mid, mid..r.end)
            } else {
                (mid..r.end, r.start..mid)
            };
            new_ranges[i] = keep;
            if send.is_empty() {
                continue;
            }
            let elems = send.len();
            let (dst_chunk, src_chunk) = chunk_pair(bufs, p, i, send.clone(), send);
            par_add_assign_elem(dst_chunk, src_chunk, min_par);
            bytes += E::BYTES * elems;
            // The pair's two transfers share one link; serialize them.
            step_t = step_t.max(
                2.0 * ctx.p2p_time_sized(i, p, elems, E::BYTES)
                    + ctx.reduce_time_sized(p, elems, E::BYTES),
            );
        }
        ranges = new_ranges;
        t += step_t;
        d /= 2;
    }

    // Phase 2: recursive doubling all-gather. Distances 1, 2, …, n/2.
    let mut d = 1;
    while d < n {
        let mut step_t = 0.0f64;
        let mut new_ranges = ranges.clone();
        for (i, r) in ranges.iter().enumerate() {
            let p = i ^ d;
            let r = r.clone();
            if !r.is_empty() {
                let elems = r.len();
                let (dst_chunk, src_chunk) = chunk_pair(bufs, p, i, r.clone(), r.clone());
                par_copy_elem(src_chunk, dst_chunk, min_par);
                bytes += E::BYTES * elems;
                step_t = step_t.max(2.0 * ctx.p2p_time_sized(i, p, elems, E::BYTES));
            }
            // The destination now owns the union of the two ranges.
            let own = &mut new_ranges[p];
            *own = own.start.min(r.start)..own.end.max(r.end);
        }
        ranges = new_ranges;
        t += step_t;
        d *= 2;
    }
    (t, bytes)
}

/// Borrows chunk `dst_range` of buffer `dst` mutably and chunk `src_range`
/// of buffer `src` immutably (`dst != src`).
fn chunk_pair<'a, E: ReduceElem>(
    bufs: &'a mut [&mut [E]],
    dst: usize,
    src: usize,
    dst_range: std::ops::Range<usize>,
    src_range: std::ops::Range<usize>,
) -> (&'a mut [E], &'a [E]) {
    assert_ne!(dst, src);
    if dst < src {
        let (lo, hi) = bufs.split_at_mut(src);
        (&mut lo[dst][dst_range], &hi[0][src_range])
    } else {
        let (lo, hi) = bufs.split_at_mut(dst);
        (&mut hi[0][dst_range], &lo[src][src_range])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgd_gpusim::{profile, Topology};

    fn ctx(n: usize) -> CollectiveContext {
        CollectiveContext::new(Topology::pcie(n), &profile::homogeneous_server(n))
    }

    fn ring_on_vecs(bufs: &mut [Vec<f32>], ctx: &CollectiveContext, rotate: usize) -> (f64, usize) {
        let mut views: Vec<&mut [f32]> = bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
        ring_slices(&mut views, ctx, rotate, MIN_PAR_REDUCE)
    }

    #[test]
    fn ring_handles_len_smaller_than_devices() {
        let n = 4;
        let mut bufs: Vec<Vec<f32>> = (0..n).map(|d| vec![d as f32 + 1.0; 2]).collect();
        let w = vec![1.0f64; n];
        allreduce(
            &mut bufs,
            &w,
            Algorithm::Ring,
            &ctx(n),
            &vec![SimTime::ZERO; n],
        );
        for b in &bufs {
            assert_eq!(b, &vec![10.0f32; 2]);
        }
    }

    #[test]
    fn single_device_is_scale_only() {
        let mut bufs = vec![vec![2.0f32; 8]];
        let t = allreduce(
            &mut bufs,
            &[0.5],
            Algorithm::Ring,
            &ctx(1),
            &[SimTime::ZERO],
        );
        assert_eq!(bufs[0], vec![1.0f32; 8]);
        assert_eq!(t.bytes_moved, 0);
    }

    #[test]
    fn non_power_of_two_tree() {
        let n = 5;
        let mut bufs: Vec<Vec<f32>> = (0..n).map(|d| vec![d as f32; 16]).collect();
        let w = vec![1.0f64; n];
        allreduce(
            &mut bufs,
            &w,
            Algorithm::Tree,
            &ctx(n),
            &vec![SimTime::ZERO; n],
        );
        for b in &bufs {
            assert_eq!(b, &vec![10.0f32; 16]);
        }
    }

    #[test]
    fn rotation_does_not_change_result() {
        let n = 3;
        let make = || -> Vec<Vec<f32>> {
            (0..n)
                .map(|d| (0..50).map(|i| (d * 50 + i) as f32).collect())
                .collect()
        };
        let mut a = make();
        let mut b = make();
        ring_on_vecs(&mut a, &ctx(n), 0);
        ring_on_vecs(&mut b, &ctx(n), 2);
        assert_eq!(a[0], b[0]);
    }

    #[test]
    fn bytes_moved_matches_ring_formula() {
        let n = 4;
        let len = 400usize;
        let mut bufs: Vec<Vec<f32>> = (0..n).map(|_| vec![1.0; len]).collect();
        let w = vec![1.0f64; n];
        let t = allreduce(
            &mut bufs,
            &w,
            Algorithm::Ring,
            &ctx(n),
            &vec![SimTime::ZERO; n],
        );
        // Ring moves 2(n-1)/n of the model per device: 2*(n-1)*len*4 bytes total.
        assert_eq!(t.bytes_moved, 2 * (n - 1) * len * 4);
    }

    #[test]
    fn thread_count_does_not_change_any_algorithm_bits() {
        // Buffers longer than MIN_PAR_REDUCE so the worker pool actually
        // engages; pseudo-random values so rounding differences would show.
        let n = 4;
        let len = MIN_PAR_REDUCE * 2 + 37;
        let make = || -> Vec<Vec<f32>> {
            let mut state = 0x9e3779b97f4a7c15u64;
            (0..n)
                .map(|_| {
                    (0..len)
                        .map(|_| {
                            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
                            ((state >> 33) as f32 / u32::MAX as f32) * 4.0 - 2.0
                        })
                        .collect()
                })
                .collect()
        };
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
        let algos = [
            Algorithm::Naive,
            Algorithm::Tree,
            Algorithm::Ring,
            Algorithm::HalvingDoubling,
            Algorithm::MultiStreamRing { partitions: n },
        ];
        for algo in algos {
            let mut serial = make();
            let mut pooled = make();
            asgd_tensor::parallel::override_threads(1);
            allreduce(
                &mut serial,
                &weights,
                algo,
                &ctx(n),
                &vec![SimTime::ZERO; n],
            );
            asgd_tensor::parallel::override_threads(8);
            allreduce(
                &mut pooled,
                &weights,
                algo,
                &ctx(n),
                &vec![SimTime::ZERO; n],
            );
            asgd_tensor::parallel::override_threads(0);
            for (a, b) in serial.iter().zip(&pooled) {
                assert!(
                    a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "{algo:?}: 1-thread and 8-thread results differ"
                );
            }
        }
    }

    #[test]
    fn serial_fallback_is_bit_identical_to_pooled_with_equal_timing() {
        // The OOM degradation path must change *nothing* observable but the
        // host-side execution strategy: same bits, same simulated timing.
        let n = 4;
        let len = MIN_PAR_REDUCE * 2 + 11;
        let make = || -> Vec<Vec<f32>> {
            let mut state = 0xDEAD_BEEF_u64;
            (0..n)
                .map(|_| {
                    (0..len)
                        .map(|_| {
                            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
                            ((state >> 33) as f32 / u32::MAX as f32) * 2.0 - 1.0
                        })
                        .collect()
                })
                .collect()
        };
        let weights: Vec<f64> = (0..n).map(|i| (i + 1) as f64 / 10.0).collect();
        let arrivals: Vec<SimTime> = (0..n).map(|i| SimTime(i as f64 * 0.01)).collect();
        for algo in [
            Algorithm::Naive,
            Algorithm::Tree,
            Algorithm::Ring,
            Algorithm::HalvingDoubling,
            Algorithm::MultiStreamRing { partitions: n },
        ] {
            let mut pooled = make();
            let mut serial = make();
            let tp = allreduce(&mut pooled, &weights, algo, &ctx(n), &arrivals);
            let ts = allreduce_serial(&mut serial, &weights, algo, &ctx(n), &arrivals);
            for (a, b) in pooled.iter().zip(&serial) {
                assert!(
                    a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "{algo:?}: serial fallback changed result bits"
                );
            }
            assert_eq!(tp.start, ts.start, "{algo:?}: start differs");
            assert_eq!(tp.end, ts.end, "{algo:?}: end differs");
            assert_eq!(tp.bytes_moved, ts.bytes_moved, "{algo:?}: bytes differ");
        }
    }

    /// Deterministic pseudo-random bf16 buffers (bit patterns from an LCG,
    /// narrowed from f32 so they are valid storage values).
    fn bf16_buffers(n: usize, len: usize, seed: u64) -> Vec<FlatVec> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                FlatVec::Bf16(
                    (0..len)
                        .map(|_| {
                            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
                            asgd_tensor::bf16::narrow(
                                ((state >> 33) as f32 / u32::MAX as f32) * 4.0 - 2.0,
                            )
                        })
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn bf16_thread_count_does_not_change_any_algorithm_bits() {
        let n = 4;
        let len = MIN_PAR_REDUCE * 2 + 37;
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
        for algo in [
            Algorithm::Naive,
            Algorithm::Tree,
            Algorithm::Ring,
            Algorithm::HalvingDoubling,
            Algorithm::MultiStreamRing { partitions: n },
        ] {
            let mut one = bf16_buffers(n, len, 7);
            let mut eight = bf16_buffers(n, len, 7);
            asgd_tensor::parallel::override_threads(1);
            let t1 = allreduce_flat(&mut one, &weights, algo, &ctx(n), &vec![SimTime::ZERO; n]);
            asgd_tensor::parallel::override_threads(8);
            let t8 = allreduce_flat(&mut eight, &weights, algo, &ctx(n), &vec![SimTime::ZERO; n]);
            asgd_tensor::parallel::override_threads(0);
            assert_eq!(one, eight, "{algo:?}: bf16 bits differ across threads");
            assert_eq!(t1, t8, "{algo:?}: bf16 timing differs across threads");
            // Serial OOM fallback: same bits AND timing as the pooled path.
            let mut serial = bf16_buffers(n, len, 7);
            let ts = allreduce_flat_serial(
                &mut serial,
                &weights,
                algo,
                &ctx(n),
                &vec![SimTime::ZERO; n],
            );
            assert_eq!(serial, one, "{algo:?}: bf16 serial fallback bits differ");
            assert_eq!(ts, t1, "{algo:?}: bf16 serial fallback timing differs");
        }
    }

    #[test]
    fn bf16_ring_moves_half_the_bytes_of_f32() {
        let n = 4;
        let len = 400usize;
        let w = vec![1.0f64; n];
        let mut halves = bf16_buffers(n, len, 3);
        let th = allreduce_flat(
            &mut halves,
            &w,
            Algorithm::Ring,
            &ctx(n),
            &vec![SimTime::ZERO; n],
        );
        assert_eq!(th.bytes_moved, 2 * (n - 1) * len * 2);
        let mut fulls: Vec<FlatVec> = (0..n).map(|_| FlatVec::F32(vec![1.0; len])).collect();
        let tf = allreduce_flat(
            &mut fulls,
            &w,
            Algorithm::Ring,
            &ctx(n),
            &vec![SimTime::ZERO; n],
        );
        assert_eq!(tf.bytes_moved, 2 * th.bytes_moved);
        // Halved payloads finish the simulated collective faster.
        assert!(th.duration() < tf.duration());
    }

    #[test]
    fn bf16_allreduce_approximates_weighted_sum() {
        let n = 4;
        let len = 257;
        let weights = vec![1.0 / n as f64; n];
        let mut bufs = bf16_buffers(n, len, 11);
        let want: Vec<f64> = (0..len)
            .map(|i| {
                bufs.iter()
                    .zip(&weights)
                    .map(|(b, &w)| b.get_f32(i) as f64 * w)
                    .sum::<f64>()
            })
            .collect();
        allreduce_flat(
            &mut bufs,
            &weights,
            Algorithm::MultiStreamRing { partitions: n },
            &ctx(n),
            &vec![SimTime::ZERO; n],
        );
        for b in &bufs {
            for (i, &w) in want.iter().enumerate() {
                // bf16 keeps ~8 mantissa bits; the ring re-rounds per step.
                assert!(
                    (b.get_f32(i) as f64 - w).abs() < 0.05,
                    "elem {i}: {} vs {w}",
                    b.get_f32(i)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "mixed-precision allreduce")]
    fn mixed_precision_panics() {
        let mut bufs = vec![FlatVec::F32(vec![0.0; 8]), FlatVec::Bf16(vec![0; 8])];
        let _ = allreduce_flat(
            &mut bufs,
            &[0.5, 0.5],
            Algorithm::Ring,
            &ctx(2),
            &[SimTime::ZERO; 2],
        );
    }

    #[test]
    #[should_panic(expected = "replica size mismatch")]
    fn mismatched_replicas_panic() {
        let mut bufs = vec![vec![0.0f32; 4], vec![0.0f32; 5]];
        let _ = allreduce(
            &mut bufs,
            &[0.5, 0.5],
            Algorithm::Ring,
            &ctx(2),
            &[SimTime::ZERO; 2],
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use asgd_gpusim::{profile, Topology};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn every_algorithm_matches_reference(
            n in 2usize..5,
            len in 1usize..40,
            seed in 0u64..1000,
            algo_idx in 0usize..5,
        ) {
            let ctx = CollectiveContext::new(
                Topology::pcie(n),
                &profile::homogeneous_server(n),
            );
            let mut state = seed.wrapping_mul(747796405).wrapping_add(1);
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
                ((state >> 33) as f32 / u32::MAX as f32) * 4.0 - 2.0
            };
            let mut bufs: Vec<Vec<f32>> =
                (0..n).map(|_| (0..len).map(|_| next()).collect()).collect();
            let weights: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
            let want: Vec<f32> = (0..len)
                .map(|i| {
                    bufs.iter()
                        .zip(&weights)
                        .map(|(b, &w)| b[i] as f64 * w)
                        .sum::<f64>() as f32
                })
                .collect();
            let algo = match algo_idx {
                0 => Algorithm::Naive,
                1 => Algorithm::Tree,
                2 => Algorithm::Ring,
                3 => Algorithm::HalvingDoubling,
                _ => Algorithm::MultiStreamRing { partitions: n },
            };
            let timing = allreduce(&mut bufs, &weights, algo, &ctx, &vec![SimTime::ZERO; n]);
            prop_assert!(timing.duration() >= 0.0);
            for b in &bufs {
                for (g, w) in b.iter().zip(&want) {
                    prop_assert!((g - w).abs() < 1e-3, "{algo:?}: {g} vs {w}");
                }
            }
        }
    }
}
