//! Sparse-times-dense kernels.
//!
//! These are the products the sparse input layer needs:
//!
//! * forward: `H = X · W₁` where `X` is a CSR batch — [`spmm`], or fused
//!   with the bias add and ReLU as [`spmm_bias_relu`];
//! * weight gradient: `∇W₁ += α · Xᵀ · G` — [`spmm_tn_acc`].
//!
//! Both parallelize over *output* rows on the persistent worker pool
//! (`asgd_tensor::parallel`), so no two workers ever write the same cache
//! line. The transposed kernel partitions the feature (output-row) space and
//! lets each worker stream the whole batch, touching only its own partition —
//! O(threads · nnz) index reads but zero synchronization, which wins for the
//! batch-sized operands this workload produces.
//!
//! Inner kernels follow the lane-width-8 reduction contract of
//! `asgd_tensor::kernels`: the lanes span the output row (`j`), which is not
//! a reduction axis, so every output element accumulates its nonzero terms
//! one at a time in ascending CSR order — rule 1 of the contract, and the
//! exact association order of the scalar kernels these replaced.

use crate::csr::CsrMatrix;
use asgd_tensor::kernels::{self, Epilogue, NB};
use asgd_tensor::parallel::MIN_PAR_ROWS;
use asgd_tensor::Matrix;

/// One CSR row times the `cols` window of `B`, panel-blocked: an `NB`-wide
/// stack accumulator panel sweeps the window; each panel streams the row's
/// nonzeros in ascending CSR order (rule 1 of the reduction contract),
/// reading `w` contiguous floats of `B` per nonzero, then the shared
/// epilogue writes the window once. `crow` covers exactly the `cols` window
/// of the output row; each output element accumulates its own `acc` slot
/// serially, so where the window boundaries fall never changes the bits.
#[inline(always)]
fn spmm_row(
    idx: &[u32],
    val: &[f32],
    b_data: &[f32],
    n: usize,
    cols: std::ops::Range<usize>,
    crow: &mut [f32],
    ep: Epilogue,
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        // SAFETY: AVX2+FMA support was just verified.
        unsafe { spmm_row_avx2(idx, val, b_data, n, cols, crow, ep) };
        return;
    }
    let mut j0 = cols.start;
    while j0 < cols.end {
        let w = (cols.end - j0).min(NB);
        let mut acc = [0.0f32; NB];
        for (&col, &av) in idx.iter().zip(val) {
            let brow = &b_data[col as usize * n + j0..col as usize * n + j0 + w];
            for (av_slot, &bv) in acc[..w].iter_mut().zip(brow) {
                *av_slot = kernels::fused(av, bv, *av_slot);
            }
        }
        let out = &mut crow[j0 - cols.start..j0 - cols.start + w];
        for (l, o) in out.iter_mut().enumerate() {
            *o = ep.apply(j0 + l, acc[l], *o);
        }
        j0 += w;
    }
}

/// AVX2+FMA leaf of [`spmm_row`]: the same panel loop compiled with
/// hardware-FMA features, so the per-term `mul_add` vectorizes to `vfmadd`.
/// The body must live textually inside this `#[target_feature]` function
/// and stay out-of-line — see the reduction-contract docs in
/// `asgd_tensor::kernels` for the LTO hazard this avoids.
///
/// # Safety
/// The caller must have verified AVX2+FMA support at runtime.
#[cfg(target_arch = "x86_64")]
#[inline(never)]
#[target_feature(enable = "avx2,fma")]
unsafe fn spmm_row_avx2(
    idx: &[u32],
    val: &[f32],
    b_data: &[f32],
    n: usize,
    cols: std::ops::Range<usize>,
    crow: &mut [f32],
    ep: Epilogue,
) {
    let mut j0 = cols.start;
    while j0 < cols.end {
        let w = (cols.end - j0).min(NB);
        let mut acc = [0.0f32; NB];
        for (&col, &av) in idx.iter().zip(val) {
            let brow = &b_data[col as usize * n + j0..col as usize * n + j0 + w];
            for (av_slot, &bv) in acc[..w].iter_mut().zip(brow) {
                *av_slot = av.mul_add(bv, *av_slot);
            }
        }
        let out = &mut crow[j0 - cols.start..j0 - cols.start + w];
        for (l, o) in out.iter_mut().enumerate() {
            *o = ep.apply(j0 + l, acc[l], *o);
        }
        j0 += w;
    }
}

/// One chunk of CSR·dense at full output width: one pass over the chunk's
/// CSR rows; [`spmm_row`] dispatches to its AVX2+FMA leaf per row.
fn spmm_chunk(
    a: &CsrMatrix,
    b_data: &[f32],
    n: usize,
    first_row: usize,
    chunk: &mut [f32],
    ep: Epilogue,
) {
    for (i, crow) in chunk.chunks_mut(n).enumerate() {
        let (idx, val) = a.row(first_row + i);
        spmm_row(idx, val, b_data, n, 0..n, crow, ep);
    }
}

/// `NB`-panel-aligned column blocks covering `0..n`, at most `parts` of
/// them. Blocks cut only on panel boundaries so each block's panel sweep is
/// the same sweep the full-width pass would run over those columns.
fn panel_col_blocks(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let panels = n.div_ceil(NB);
    asgd_tensor::parallel::split_ranges(panels, parts.clamp(1, panels))
        .into_iter()
        .map(|r| (r.start * NB)..(r.end * NB).min(n))
        .collect()
}

/// Contiguous row ranges with near-equal *nonzero* counts — the nnz-aware
/// replacement for `split_ranges`' equal-row chunks. Power-law batches put
/// most nonzeros in a few heavy rows, so equal-row chunks leave all but one
/// worker idle; equal-nnz ranges balance actual work while keeping rows
/// contiguous (sequential output writes, streaming CSR reads). Each row is
/// weighted `nnz + 1` so the per-row epilogue sweep counts too. The greedy
/// cut is a pure function of the CSR row lengths — fully deterministic.
fn nnz_balanced_row_ranges(a: &CsrMatrix, parts: usize) -> Vec<std::ops::Range<usize>> {
    let m = a.rows();
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut acc = 0usize;
    // Weight of the rows not yet assigned (rows `r..m` at the top of the
    // loop iteration for row `r`).
    let mut remaining = a.nnz() + m;
    for r in 0..m {
        let w = a.row_nnz(r) + 1;
        let open = parts - ranges.len();
        // Close the current range *before* a row that would push it further
        // past its fair share than stopping short would undershoot it — so
        // one heavy row never drags its light predecessors along. Never
        // leave fewer rows than the ranges still owed.
        if open > 1 && acc > 0 && m - r >= open {
            let share = (acc + remaining) / open;
            if acc + w > share && acc + w - share > share.saturating_sub(acc) {
                ranges.push(start..r);
                start = r;
                acc = 0;
            }
        }
        acc += w;
        remaining -= w;
    }
    ranges.push(start..m);
    ranges
}

fn spmm_with_epilogue(a: &CsrMatrix, b: &Matrix, c: &mut Matrix, ep: Epilogue) {
    let n = b.cols();
    if n == 0 {
        return;
    }
    let b_data = b.as_slice();
    let m = a.rows();
    let threads = asgd_tensor::parallel::num_threads();
    // A batch too small to split by rows can still fill the pool when the
    // output is wide (sampled-softmax shapes: tens of rows × hundreds of
    // thousands of columns) — column blocks provide that second axis.
    let wide = n >= 2 * NB;
    if threads == 1 || (m < MIN_PAR_ROWS && !wide) {
        spmm_chunk(a, b_data, n, 0, c.as_mut_slice(), ep);
        return;
    }
    // Parallel path: a 2-D tile grid. Rows split into nnz-balanced
    // contiguous ranges (never more than the batch has rows); if those
    // alone cannot occupy every worker, the wide output is additionally cut
    // into NB-panel-aligned column blocks. Each output element is still
    // accumulated serially in ascending CSR order by exactly one task, so
    // the result is bit-equal to the serial pass — only where the tile
    // boundaries fall changes.
    let row_ranges = nnz_balanced_row_ranges(a, threads.min(m));
    let col_blocks = if wide && row_ranges.len() < threads {
        panel_col_blocks(n, threads.div_ceil(row_ranges.len()))
    } else {
        panel_col_blocks(n, 1)
    };
    let base = c.as_mut_slice().as_mut_ptr() as usize;
    asgd_tensor::parallel::par_tasks(row_ranges.len() * col_blocks.len(), |t| {
        let rows = &row_ranges[t / col_blocks.len()];
        let cols = &col_blocks[t % col_blocks.len()];
        for row in rows.clone() {
            let (idx, val) = a.row(row);
            // SAFETY: tiles partition the (row, column-block) space, so
            // tasks write disjoint windows of a buffer that outlives the
            // pool scope; the usize round-trip keeps the closure Sync.
            let crow = unsafe {
                std::slice::from_raw_parts_mut(
                    (base as *mut f32).add(row * n + cols.start),
                    cols.len(),
                )
            };
            spmm_row(idx, val, b_data, n, cols.clone(), crow, ep);
        }
    });
}

/// `C = A · B` where `A` is sparse CSR (`m×k`), `B` dense (`k×n`).
///
/// # Panics
/// Panics on dimension mismatch.
pub fn spmm(a: &CsrMatrix, b: &Matrix, c: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "spmm inner dimension mismatch");
    assert_eq!(c.rows(), a.rows(), "spmm output rows mismatch");
    assert_eq!(c.cols(), b.cols(), "spmm output cols mismatch");
    let ep = Epilogue::AlphaBeta {
        alpha: 1.0,
        beta: 0.0,
    };
    spmm_with_epilogue(a, b, c, ep);
}

/// Fused forward activation: `C = relu(A·B + bias)` in a single pass —
/// the `H = relu(X·W₁ + b₁)` hot path without the separate bias and ReLU
/// sweeps over `H`. Empty CSR rows produce `relu(bias)`.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn spmm_bias_relu(a: &CsrMatrix, b: &Matrix, bias: &[f32], c: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "spmm_bias_relu inner dimension mismatch"
    );
    assert_eq!(c.rows(), a.rows(), "spmm_bias_relu output rows mismatch");
    assert_eq!(c.cols(), b.cols(), "spmm_bias_relu output cols mismatch");
    assert_eq!(bias.len(), b.cols(), "spmm_bias_relu bias length mismatch");
    spmm_with_epilogue(a, b, c, Epilogue::BiasRelu(bias));
}

/// `C += alpha · Aᵀ · G` where `A` is CSR (`m×k`), `G` dense (`m×n`), `C`
/// dense (`k×n`).
///
/// Accumulates (never zeroes `C`) because SGD weight updates apply the scaled
/// gradient directly: `W₁ -= lr · Xᵀ·G` is one call with `alpha = -lr`.
pub fn spmm_tn_acc(alpha: f32, a: &CsrMatrix, g: &Matrix, c: &mut Matrix) {
    assert_eq!(a.rows(), g.rows(), "spmm_tn rows mismatch");
    assert_eq!(c.rows(), a.cols(), "spmm_tn output rows mismatch");
    assert_eq!(c.cols(), g.cols(), "spmm_tn output cols mismatch");
    let n = g.cols();
    let k = a.cols();
    let g_data = g.as_slice();
    asgd_tensor::parallel::par_chunks_mut(
        c.as_mut_slice(),
        k,
        n,
        MIN_PAR_ROWS,
        |first_row, chunk| {
            let range = first_row..first_row + chunk.len() / n.max(1);
            spmm_tn_acc_range(alpha, a, g_data, n, range, chunk);
        },
    );
}

/// Accumulates the rows of `Aᵀ·G` that fall in `range` into `c_part`, which
/// is the `range`-rows slice of the output. Dispatches to the AVX2 clone
/// when the host supports it.
fn spmm_tn_acc_range(
    alpha: f32,
    a: &CsrMatrix,
    g_data: &[f32],
    n: usize,
    range: std::ops::Range<usize>,
    c_part: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified.
        unsafe { spmm_tn_acc_range_avx2(alpha, a, g_data, n, range, c_part) };
        return;
    }
    spmm_tn_acc_range_impl(alpha, a, g_data, n, range, c_part)
}

/// AVX2 clone of [`spmm_tn_acc_range_impl`] (same body, wider codegen).
///
/// # Safety
/// The caller must have verified AVX2 support at runtime.
#[cfg(target_arch = "x86_64")]
#[inline(never)] // inlining past the feature boundary under LTO splits the FMAs
#[target_feature(enable = "avx2")]
unsafe fn spmm_tn_acc_range_avx2(
    alpha: f32,
    a: &CsrMatrix,
    g_data: &[f32],
    n: usize,
    range: std::ops::Range<usize>,
    c_part: &mut [f32],
) {
    spmm_tn_acc_range_impl(alpha, a, g_data, n, range, c_part)
}

#[inline(always)]
fn spmm_tn_acc_range_impl(
    alpha: f32,
    a: &CsrMatrix,
    g_data: &[f32],
    n: usize,
    range: std::ops::Range<usize>,
    c_part: &mut [f32],
) {
    // Serial call (or a single partition): every column index falls in the
    // window, so skip the per-row window searches entirely.
    let full = range.start == 0 && range.end >= a.cols();
    for row in 0..a.rows() {
        let (idx, val) = a.row(row);
        // Rows are sorted: a first/last span check rejects rows that miss
        // this partition without the two binary searches below.
        match (idx.first(), idx.last()) {
            (Some(&first), Some(&last)) => {
                if (last as usize) < range.start || (first as usize) >= range.end {
                    continue;
                }
            }
            _ => continue,
        }
        let (lo, hi) = if full {
            (0, idx.len())
        } else {
            // Binary-search the window inside this partition.
            (
                idx.partition_point(|&c| (c as usize) < range.start),
                idx.partition_point(|&c| (c as usize) < range.end),
            )
        };
        if lo == hi {
            continue;
        }
        let grow = &g_data[row * n..(row + 1) * n];
        for j in lo..hi {
            let feature = idx[j] as usize - range.start;
            let s = alpha * val[j];
            let crow = &mut c_part[feature * n..(feature + 1) * n];
            kernels::axpy_lanes(s, grow, crow);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgd_tensor::ops as dops;

    fn sparse_sample(rows: usize, cols: usize, seed: u64) -> CsrMatrix {
        let mut b = crate::CooBuilder::new(rows, cols);
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for r in 0..rows {
            let nnz = (next() % (cols as u64 / 2 + 1)) as usize;
            let mut cols_seen = std::collections::BTreeSet::new();
            for _ in 0..nnz {
                cols_seen.insert((next() % cols as u64) as usize);
            }
            for c in cols_seen {
                b.push(r, c, ((next() % 17) as f32 - 8.0) / 4.0);
            }
        }
        b.into_csr()
    }

    fn dense_sample(rows: usize, cols: usize, seed: u64) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            (((r * 31 + c * 7 + seed as usize) % 23) as f32 - 11.0) / 9.0
        })
    }

    /// Executable spec of the contract for CSR·dense: per element, ascending
    /// CSR-nonzero serial accumulation (one fused multiply-add per term),
    /// then the epilogue.
    fn spmm_ordered(a: &CsrMatrix, b: &Matrix, bias_relu: Option<&[f32]>) -> Matrix {
        let n = b.cols();
        let mut c = Matrix::zeros(a.rows(), n);
        for r in 0..a.rows() {
            let (idx, val) = a.row(r);
            for j in 0..n {
                let mut s = 0.0f32;
                for (&col, &av) in idx.iter().zip(val) {
                    s = kernels::fused(av, b.at(col as usize, j), s);
                }
                let out = match bias_relu {
                    None => s,
                    Some(bias) => {
                        let v = s + bias[j];
                        if v < 0.0 {
                            0.0
                        } else {
                            v
                        }
                    }
                };
                c.set(r, j, out);
            }
        }
        c
    }

    #[test]
    fn spmm_matches_dense_gemm() {
        for (m, k, n) in [(1, 3, 2), (8, 16, 4), (40, 64, 12), (100, 50, 8)] {
            let a = sparse_sample(m, k, 1);
            let b = dense_sample(k, n, 2);
            let mut c = Matrix::zeros(m, n);
            spmm(&a, &b, &mut c);
            let mut want = Matrix::zeros(m, n);
            dops::gemm(1.0, &a.to_dense(), &b, 0.0, &mut want);
            assert!(c.max_abs_diff(&want) < 1e-4, "({m},{k},{n})");
        }
    }

    #[test]
    fn spmm_bit_matches_ordered_reference_on_edge_shapes() {
        // Widths off the lane grid, single rows, and rows with empty CSR
        // ranges must all reproduce the contract's association order exactly.
        for (m, k, n) in [(1, 5, 1), (3, 9, 7), (8, 16, 8), (17, 40, 13), (33, 64, 24)] {
            let a = sparse_sample(m, k, m as u64 + 1);
            let b = dense_sample(k, n, 2);
            let mut c = Matrix::from_fn(m, n, |_, _| f32::NAN); // output must be overwritten
            spmm(&a, &b, &mut c);
            let want = spmm_ordered(&a, &b, None);
            let got: Vec<u32> = c.as_slice().iter().map(|x| x.to_bits()).collect();
            let spec: Vec<u32> = want.as_slice().iter().map(|x| x.to_bits()).collect();
            assert_eq!(got, spec, "({m},{k},{n})");
        }
    }

    #[test]
    fn spmm_with_empty_rows() {
        let a = CsrMatrix::zeros(3, 4);
        let b = dense_sample(4, 2, 3);
        let mut c = Matrix::from_fn(3, 2, |_, _| 9.0);
        spmm(&a, &b, &mut c);
        assert_eq!(c.as_slice(), &[0.0; 6]);
    }

    #[test]
    fn fused_bias_relu_bit_matches_two_pass() {
        let a = sparse_sample(21, 50, 5);
        let b = dense_sample(50, 13, 6);
        let bias: Vec<f32> = (0..13).map(|j| (j % 7) as f32 * 0.3 - 1.0).collect();
        let mut fused = Matrix::zeros(21, 13);
        spmm_bias_relu(&a, &b, &bias, &mut fused);
        let want = spmm_ordered(&a, &b, Some(&bias));
        let got_bits: Vec<u32> = fused.as_slice().iter().map(|x| x.to_bits()).collect();
        let want_bits: Vec<u32> = want.as_slice().iter().map(|x| x.to_bits()).collect();
        assert_eq!(got_bits, want_bits);
        assert!(fused.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn fused_bias_relu_on_empty_rows_is_relu_bias() {
        let a = CsrMatrix::zeros(2, 4);
        let b = dense_sample(4, 3, 7);
        let bias = [0.5f32, -0.25, 1.5];
        let mut c = Matrix::from_fn(2, 3, |_, _| -7.0);
        spmm_bias_relu(&a, &b, &bias, &mut c);
        for r in 0..2 {
            assert_eq!(c.row(r), &[0.5, 0.0, 1.5]);
        }
    }

    #[test]
    fn spmm_tn_matches_dense() {
        for (m, k, n) in [(3, 5, 2), (16, 64, 8), (50, 200, 16)] {
            let a = sparse_sample(m, k, 4);
            let g = dense_sample(m, n, 5);
            let mut c = Matrix::zeros(k, n);
            spmm_tn_acc(1.0, &a, &g, &mut c);
            let mut want = Matrix::zeros(k, n);
            dops::gemm_tn(1.0, &a.to_dense(), &g, 0.0, &mut want);
            assert!(c.max_abs_diff(&want) < 1e-4, "({m},{k},{n})");
        }
    }

    #[test]
    fn spmm_tn_accumulates_with_alpha() {
        let a = sparse_sample(6, 40, 6);
        let g = dense_sample(6, 3, 7);
        let mut c = dense_sample(40, 3, 8);
        let c0 = c.clone();
        spmm_tn_acc(-0.5, &a, &g, &mut c);
        let mut delta = Matrix::zeros(40, 3);
        dops::gemm_tn(-0.5, &a.to_dense(), &g, 0.0, &mut delta);
        for i in 0..c.len() {
            let want = c0.as_slice()[i] + delta.as_slice()[i];
            assert!((c.as_slice()[i] - want).abs() < 1e-4);
        }
    }

    #[test]
    fn spmm_bit_identical_across_thread_counts() {
        // Determinism guarantee of the worker pool: the same product at 1
        // and 8 threads must match bit for bit (each output row is computed
        // whole by one task with a fixed inner-loop order).
        let a = sparse_sample(96, 300, 11);
        let b = dense_sample(300, 24, 12);
        let bias: Vec<f32> = (0..24).map(|j| (j % 5) as f32 * 0.2 - 0.4).collect();
        let run = |threads: usize| {
            asgd_tensor::parallel::override_threads(threads);
            let mut c = Matrix::zeros(96, 24);
            spmm(&a, &b, &mut c);
            let mut h = Matrix::zeros(96, 24);
            spmm_bias_relu(&a, &b, &bias, &mut h);
            let mut t = Matrix::zeros(300, 24);
            spmm_tn_acc(1.0, &a, &c, &mut t);
            (c, h, t)
        };
        let single = run(1);
        let eight = run(8);
        asgd_tensor::parallel::override_threads(0);
        assert_eq!(single, eight);
    }

    #[test]
    fn skewed_nnz_schedule_is_bit_identical_and_balanced() {
        // Power-law row lengths: one flood row holds most of the nonzeros,
        // the rest are near-empty. The LPT schedule must (a) leave the
        // numeric result bit-equal to the serial pass and (b) actually
        // isolate the heavy row from the light ones.
        let m = 64;
        let rows: Vec<(Vec<u32>, Vec<f32>)> = (0..m)
            .map(|r| {
                let nnz = if r == 17 { 240 } else { r % 4 };
                let idx: Vec<u32> = (0..nnz as u32).map(|j| j * 2 + (r as u32 % 2)).collect();
                let val: Vec<f32> = idx.iter().map(|&j| (j as f32 - 3.0) * 0.125).collect();
                (idx, val)
            })
            .collect();
        let a = CsrMatrix::from_rows(512, &rows).unwrap();
        let b = dense_sample(512, 24, 13);
        let run = |threads: usize| {
            asgd_tensor::parallel::override_threads(threads);
            let mut c = Matrix::zeros(m, 24);
            spmm(&a, &b, &mut c);
            c
        };
        let single = run(1);
        let eight = run(8);
        asgd_tensor::parallel::override_threads(0);
        assert_eq!(single, eight, "skewed schedule changed the bits");
        assert_eq!(single, spmm_ordered(&a, &b, None), "spec mismatch");
        // The schedule isolates the flood row: the range that carries it
        // takes little else, while the light rows spread over the others.
        let ranges = nnz_balanced_row_ranges(&a, 8);
        assert_eq!(ranges.len(), 8);
        assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), m);
        let heavy = ranges.iter().find(|r| r.contains(&17)).unwrap();
        let heavy_extra: usize = heavy
            .clone()
            .filter(|&r| r != 17)
            .map(|r| a.row_nnz(r))
            .sum();
        assert!(
            heavy_extra <= 8,
            "flood row's range also carries {heavy_extra} light nonzeros"
        );
        // An equal-row split would put 8 rows (~a quarter of the light
        // nonzeros) next to the flood row; nnz-balancing must not.
        let light_max = ranges
            .iter()
            .filter(|r| !r.contains(&17))
            .map(|r| r.clone().map(|i| a.row_nnz(i) + 1).sum::<usize>())
            .max()
            .unwrap();
        assert!(
            light_max <= 2 * ((a.nnz() + m) / 8 + 1),
            "a light range carries {light_max} weight"
        );
    }

    #[test]
    fn panel_col_blocks_align_and_cover() {
        for (n, parts) in [(1usize, 4usize), (256, 4), (600, 3), (2048, 8), (2049, 8)] {
            let blocks = panel_col_blocks(n, parts);
            assert!(blocks.len() <= parts);
            assert_eq!(blocks.first().unwrap().start, 0);
            assert_eq!(blocks.last().unwrap().end, n);
            for w in blocks.windows(2) {
                assert_eq!(w[0].end, w[1].start, "gap at n={n} parts={parts}");
            }
            for b in &blocks {
                assert_eq!(b.start % NB, 0, "unaligned block start at n={n}");
            }
        }
    }

    #[test]
    fn wide_output_small_batch_is_bit_identical_across_threads() {
        // The sampled-softmax shape class: a batch far below MIN_PAR_ROWS
        // against a wide output. Row splitting alone leaves workers idle;
        // the column-block axis engages, and the bits must not move.
        let a = sparse_sample(4, 60, 21);
        let b = dense_sample(60, 3 * NB + 37, 22);
        let bias: Vec<f32> = (0..b.cols()).map(|j| (j % 11) as f32 * 0.1 - 0.5).collect();
        let run = |threads: usize| {
            asgd_tensor::parallel::override_threads(threads);
            let mut c = Matrix::zeros(4, b.cols());
            spmm(&a, &b, &mut c);
            let mut h = Matrix::zeros(4, b.cols());
            spmm_bias_relu(&a, &b, &bias, &mut h);
            (c, h)
        };
        let single = run(1);
        let eight = run(8);
        asgd_tensor::parallel::override_threads(0);
        assert_eq!(single, eight);
        assert_eq!(single.0, spmm_ordered(&a, &b, None), "spec mismatch");
        assert_eq!(single.1, spmm_ordered(&a, &b, Some(&bias)));
    }

    #[test]
    fn parallel_and_serial_tn_agree() {
        // k large enough to hit the parallel path.
        let a = sparse_sample(30, 500, 9);
        let g = dense_sample(30, 4, 10);
        let mut par = Matrix::zeros(500, 4);
        spmm_tn_acc(1.0, &a, &g, &mut par);
        let mut ser = Matrix::zeros(500, 4);
        spmm_tn_acc_range(1.0, &a, g.as_slice(), 4, 0..500, ser.as_mut_slice());
        assert!(par.max_abs_diff(&ser) < 1e-5);
    }

    #[test]
    fn partitioned_ranges_stitch_bit_identically() {
        // The partition fast paths (full-range skip, first/last span
        // rejection) must not change results: computing each partition
        // independently must reproduce the full-range result bit for bit.
        let a = sparse_sample(20, 300, 11);
        let g = dense_sample(20, 6, 12);
        let mut full = Matrix::zeros(300, 6);
        spmm_tn_acc_range(1.0, &a, g.as_slice(), 6, 0..300, full.as_mut_slice());
        for parts in [2usize, 3, 7, 32] {
            let mut stitched = Matrix::zeros(300, 6);
            for r in asgd_tensor::parallel::split_ranges(300, parts) {
                let slice = &mut stitched.as_mut_slice()[r.start * 6..r.end * 6];
                spmm_tn_acc_range(1.0, &a, g.as_slice(), 6, r, slice);
            }
            assert_eq!(full.as_slice(), stitched.as_slice(), "parts={parts}");
        }
    }

    #[test]
    fn banded_rows_exercise_span_rejection() {
        // Each row's features sit in a narrow band, so most (row, partition)
        // pairs miss entirely — the span early-exit path.
        let mut b = crate::CooBuilder::new(16, 400);
        for r in 0..16 {
            for j in 0..6 {
                b.push(r, r * 25 + j, (r + j) as f32 * 0.25 - 1.0);
            }
        }
        let a = b.into_csr();
        let g = dense_sample(16, 5, 13);
        let mut c = Matrix::zeros(400, 5);
        spmm_tn_acc(1.0, &a, &g, &mut c);
        let mut want = Matrix::zeros(400, 5);
        dops::gemm_tn(1.0, &a.to_dense(), &g, 0.0, &mut want);
        assert!(c.max_abs_diff(&want) < 1e-4);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn spmm_shape_mismatch_panics() {
        let a = CsrMatrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let mut c = Matrix::zeros(2, 2);
        spmm(&a, &b, &mut c);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use asgd_tensor::ops as dops;
    use proptest::prelude::*;

    /// Strategy: random COO entries over an 8×12 matrix.
    fn sparse_strategy() -> impl Strategy<Value = CsrMatrix> {
        proptest::collection::vec((0usize..8, 0usize..12, -2.0f32..2.0), 0..60).prop_map(|es| {
            let mut b = crate::CooBuilder::new(8, 12);
            for (r, c, v) in es {
                b.push(r, c, v);
            }
            b.into_csr()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn spmm_equals_dense_reference(
            a in sparse_strategy(),
            bvals in proptest::collection::vec(-2.0f32..2.0, 12 * 5),
        ) {
            let b = Matrix::from_vec(12, 5, bvals);
            let mut c = Matrix::zeros(8, 5);
            spmm(&a, &b, &mut c);
            let mut want = Matrix::zeros(8, 5);
            dops::gemm(1.0, &a.to_dense(), &b, 0.0, &mut want);
            prop_assert!(c.max_abs_diff(&want) < 1e-3);
        }

        #[test]
        fn spmm_tn_equals_dense_reference(
            a in sparse_strategy(),
            gvals in proptest::collection::vec(-2.0f32..2.0, 8 * 5),
        ) {
            let g = Matrix::from_vec(8, 5, gvals);
            let mut c = Matrix::zeros(12, 5);
            spmm_tn_acc(1.0, &a, &g, &mut c);
            let mut want = Matrix::zeros(12, 5);
            dops::gemm_tn(1.0, &a.to_dense(), &g, 0.0, &mut want);
            prop_assert!(c.max_abs_diff(&want) < 1e-3);
        }

        #[test]
        fn fused_bias_relu_bit_matches_per_element_spec(
            a in sparse_strategy(),
            bvals in proptest::collection::vec(-2.0f32..2.0, 12 * 7),
            bias in proptest::collection::vec(-1.0f32..1.0, 7),
        ) {
            let b = Matrix::from_vec(12, 7, bvals);
            let mut fused = Matrix::zeros(8, 7);
            spmm_bias_relu(&a, &b, &bias, &mut fused);
            for r in 0..8 {
                let (idx, val) = a.row(r);
                for (j, &bj) in bias.iter().enumerate() {
                    let mut s = 0.0f32;
                    for (&col, &av) in idx.iter().zip(val) {
                        s = kernels::fused(av, b.at(col as usize, j), s);
                    }
                    let v = s + bj;
                    let want = if v < 0.0 { 0.0 } else { v };
                    prop_assert_eq!(fused.at(r, j).to_bits(), want.to_bits());
                }
            }
        }
    }
}
