//! Compressed sparse row matrix with validated invariants.

/// Error cases for CSR construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsrError {
    /// `indptr` must hold exactly `rows + 1` entries.
    IndptrLength { expected: usize, actual: usize },
    /// `indptr` must start at 0 and be non-decreasing, ending at `nnz`.
    IndptrNotMonotone { row: usize },
    /// `indices` and `values` must have equal length `nnz`.
    NnzMismatch { indices: usize, values: usize },
    /// Column index out of bounds.
    ColumnOutOfBounds { row: usize, col: u32, cols: usize },
    /// Column indices inside a row must be strictly increasing.
    UnsortedRow { row: usize },
}

impl std::fmt::Display for CsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsrError::IndptrLength { expected, actual } => {
                write!(f, "indptr length {actual}, expected {expected}")
            }
            CsrError::IndptrNotMonotone { row } => {
                write!(f, "indptr not monotone at row {row}")
            }
            CsrError::NnzMismatch { indices, values } => {
                write!(f, "indices len {indices} != values len {values}")
            }
            CsrError::ColumnOutOfBounds { row, col, cols } => {
                write!(f, "column {col} out of bounds ({cols}) in row {row}")
            }
            CsrError::UnsortedRow { row } => write!(f, "row {row} has unsorted columns"),
        }
    }
}

impl std::error::Error for CsrError {}

/// A compressed-sparse-row `f32` matrix.
///
/// Invariants (checked by [`CsrMatrix::try_new`], maintained by every
/// operation):
///
/// * `indptr.len() == rows + 1`, `indptr[0] == 0`, non-decreasing,
///   `indptr[rows] == nnz`;
/// * `indices.len() == values.len() == nnz`;
/// * within each row, column indices are strictly increasing and `< cols`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix, validating every invariant.
    pub fn try_new(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self, CsrError> {
        if indptr.len() != rows + 1 {
            return Err(CsrError::IndptrLength {
                expected: rows + 1,
                actual: indptr.len(),
            });
        }
        if indices.len() != values.len() {
            return Err(CsrError::NnzMismatch {
                indices: indices.len(),
                values: values.len(),
            });
        }
        if indptr[0] != 0 || indptr[rows] != indices.len() {
            return Err(CsrError::IndptrNotMonotone { row: 0 });
        }
        for r in 0..rows {
            if indptr[r] > indptr[r + 1] {
                return Err(CsrError::IndptrNotMonotone { row: r });
            }
            let row_idx = &indices[indptr[r]..indptr[r + 1]];
            for w in row_idx.windows(2) {
                if w[0] >= w[1] {
                    return Err(CsrError::UnsortedRow { row: r });
                }
            }
            if let Some(&last) = row_idx.last() {
                if last as usize >= cols {
                    return Err(CsrError::ColumnOutOfBounds {
                        row: r,
                        col: last,
                        cols,
                    });
                }
            }
        }
        Ok(Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        })
    }

    /// An empty (all-zero) matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds from per-row `(sorted column indices, values)` pairs.
    ///
    /// # Panics
    /// Panics if a row's indices/values lengths differ. Column order and
    /// bounds are validated through [`CsrMatrix::try_new`].
    pub fn from_rows(cols: usize, rows: &[(Vec<u32>, Vec<f32>)]) -> Result<Self, CsrError> {
        let nnz: usize = rows.iter().map(|(i, _)| i.len()).sum();
        let mut indptr = Vec::with_capacity(rows.len() + 1);
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        indptr.push(0);
        for (idx, val) in rows {
            assert_eq!(idx.len(), val.len(), "row indices/values length mismatch");
            indices.extend_from_slice(idx);
            values.extend_from_slice(val);
            indptr.push(indices.len());
        }
        Self::try_new(rows.len(), cols, indptr, indices, values)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Non-zeros in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.indptr[r + 1] - self.indptr[r]
    }

    /// `(column indices, values)` of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f32]) {
        let (s, e) = (self.indptr[r], self.indptr[r + 1]);
        (&self.indices[s..e], &self.values[s..e])
    }

    /// The row-pointer array.
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// All column indices, row-concatenated.
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// All values, row-concatenated.
    #[inline]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Density `nnz / (rows · cols)`; 0 for degenerate shapes.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// Mean non-zeros per row (0 when there are no rows).
    pub fn avg_row_nnz(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.rows as f64
        }
    }

    /// Extracts the sub-matrix holding `row_ids` (in the given order) — the
    /// batch-construction primitive. Duplicate row ids are allowed (sampling
    /// with replacement).
    pub fn select_rows(&self, row_ids: &[usize]) -> CsrMatrix {
        let nnz: usize = row_ids.iter().map(|&r| self.row_nnz(r)).sum();
        let mut indptr = Vec::with_capacity(row_ids.len() + 1);
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        indptr.push(0);
        for &r in row_ids {
            assert!(r < self.rows, "row id {r} out of bounds");
            let (idx, val) = self.row(r);
            indices.extend_from_slice(idx);
            values.extend_from_slice(val);
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows: row_ids.len(),
            cols: self.cols,
            indptr,
            indices,
            values,
        }
    }

    /// Dense `rows × cols` copy — test/debug helper, O(rows·cols) memory.
    pub fn to_dense(&self) -> asgd_tensor::Matrix {
        let mut m = asgd_tensor::Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (idx, val) = self.row(r);
            for (&c, &v) in idx.iter().zip(val) {
                m.set(r, c as usize, v);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[1,0,2],[0,0,0],[0,3,4]]
        CsrMatrix::try_new(
            3,
            3,
            vec![0, 2, 2, 4],
            vec![0, 2, 1, 2],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn accessors() {
        let m = sample();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row_nnz(0), 2);
        assert_eq!(m.row_nnz(1), 0);
        let (idx, val) = m.row(2);
        assert_eq!(idx, &[1, 2]);
        assert_eq!(val, &[3.0, 4.0]);
        assert!((m.density() - 4.0 / 9.0).abs() < 1e-12);
        assert!((m.avg_row_nnz() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_indptr_len() {
        let e = CsrMatrix::try_new(2, 2, vec![0, 1], vec![0], vec![1.0]);
        assert!(matches!(e, Err(CsrError::IndptrLength { .. })));
    }

    #[test]
    fn rejects_nonmonotone_indptr() {
        let e = CsrMatrix::try_new(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]);
        assert!(matches!(e, Err(CsrError::IndptrNotMonotone { .. })));
    }

    #[test]
    fn rejects_column_out_of_bounds() {
        let e = CsrMatrix::try_new(1, 2, vec![0, 1], vec![5], vec![1.0]);
        assert!(matches!(e, Err(CsrError::ColumnOutOfBounds { .. })));
    }

    #[test]
    fn rejects_unsorted_row() {
        let e = CsrMatrix::try_new(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]);
        assert!(matches!(e, Err(CsrError::UnsortedRow { .. })));
        // Duplicate column is also "not strictly increasing".
        let e = CsrMatrix::try_new(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]);
        assert!(matches!(e, Err(CsrError::UnsortedRow { .. })));
    }

    #[test]
    fn rejects_nnz_mismatch() {
        let e = CsrMatrix::try_new(1, 3, vec![0, 2], vec![0, 1], vec![1.0]);
        assert!(matches!(e, Err(CsrError::NnzMismatch { .. })));
    }

    #[test]
    fn select_rows_reorders_and_repeats() {
        let m = sample();
        let b = m.select_rows(&[2, 0, 2]);
        assert_eq!(b.rows(), 3);
        assert_eq!(b.nnz(), 6);
        assert_eq!(b.row(0), m.row(2));
        assert_eq!(b.row(1), m.row(0));
        assert_eq!(b.row(2), m.row(2));
    }

    #[test]
    fn select_rows_empty_selection() {
        let m = sample();
        let b = m.select_rows(&[]);
        assert_eq!(b.rows(), 0);
        assert_eq!(b.nnz(), 0);
        assert_eq!(b.cols(), 3);
    }

    #[test]
    fn from_rows_roundtrip() {
        let m = CsrMatrix::from_rows(
            4,
            &[
                (vec![0, 3], vec![1.0, 2.0]),
                (vec![], vec![]),
                (vec![1], vec![5.0]),
            ],
        )
        .unwrap();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row(0), (&[0u32, 3][..], &[1.0f32, 2.0][..]));
    }

    #[test]
    fn to_dense_matches() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(d.at(0, 0), 1.0);
        assert_eq!(d.at(0, 2), 2.0);
        assert_eq!(d.at(1, 1), 0.0);
        assert_eq!(d.at(2, 1), 3.0);
        assert_eq!(d.at(2, 2), 4.0);
    }

    #[test]
    fn zeros_is_valid_and_empty() {
        let m = CsrMatrix::zeros(5, 7);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.rows(), 5);
        for r in 0..5 {
            assert_eq!(m.row_nnz(r), 0);
        }
    }
}
