//! Coordinate-format accumulation into CSR.

use crate::csr::CsrMatrix;

/// An unordered `(row, col, value)` accumulator.
///
/// `push` in any order, possibly with duplicates; [`CooBuilder::into_csr`]
/// sorts, merges duplicates by summation, and produces a validated
/// [`CsrMatrix`]. The synthetic dataset generators emit features in sampling
/// order through this builder.
#[derive(Debug, Clone, Default)]
pub struct CooBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f32)>,
}

impl CooBuilder {
    /// Creates a builder for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows <= u32::MAX as usize && cols <= u32::MAX as usize);
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Adds an entry; duplicates are summed at build time.
    ///
    /// # Panics
    /// Panics when `r`/`c` are out of bounds.
    pub fn push(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows, "row {r} out of bounds {}", self.rows);
        assert!(c < self.cols, "col {c} out of bounds {}", self.cols);
        self.entries.push((r as u32, c as u32, v));
    }

    /// Number of raw (pre-merge) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sorts, merges duplicates (summing values), and builds the CSR matrix.
    /// Entries that merge to exactly `0.0` are kept (explicit zeros), since
    /// dropping them would make nnz data-dependent in a way the cost model
    /// should see.
    pub fn into_csr(mut self) -> CsrMatrix {
        self.entries.sort_unstable_by_key(|a| (a.0, a.1));
        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut indices: Vec<u32> = Vec::with_capacity(self.entries.len());
        let mut values: Vec<f32> = Vec::with_capacity(self.entries.len());
        indptr.push(0);
        let mut cur_row = 0usize;
        let mut i = 0usize;
        while i < self.entries.len() {
            let (r, c, mut v) = self.entries[i];
            i += 1;
            while i < self.entries.len() && self.entries[i].0 == r && self.entries[i].1 == c {
                v += self.entries[i].2;
                i += 1;
            }
            while cur_row < r as usize {
                indptr.push(indices.len());
                cur_row += 1;
            }
            indices.push(c);
            values.push(v);
        }
        while cur_row < self.rows {
            indptr.push(indices.len());
            cur_row += 1;
        }
        CsrMatrix::try_new(self.rows, self.cols, indptr, indices, values)
            .expect("CooBuilder produced invalid CSR — internal bug")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unordered_entries_sort_into_csr() {
        let mut b = CooBuilder::new(3, 4);
        b.push(2, 1, 5.0);
        b.push(0, 3, 1.0);
        b.push(0, 0, 2.0);
        let m = b.into_csr();
        assert_eq!(m.row(0), (&[0u32, 3][..], &[2.0f32, 1.0][..]));
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.row(2), (&[1u32][..], &[5.0f32][..]));
    }

    #[test]
    fn duplicates_are_summed() {
        let mut b = CooBuilder::new(1, 2);
        b.push(0, 1, 1.0);
        b.push(0, 1, 2.5);
        b.push(0, 0, -1.0);
        let m = b.into_csr();
        assert_eq!(m.row(0), (&[0u32, 1][..], &[-1.0f32, 3.5][..]));
    }

    #[test]
    fn empty_builder_yields_zero_matrix() {
        let m = CooBuilder::new(4, 4).into_csr();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.rows(), 4);
    }

    #[test]
    fn trailing_empty_rows_have_indptr() {
        let mut b = CooBuilder::new(5, 2);
        b.push(1, 0, 1.0);
        let m = b.into_csr();
        assert_eq!(m.indptr(), &[0, 0, 1, 1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_out_of_bounds_panics() {
        let mut b = CooBuilder::new(2, 2);
        b.push(2, 0, 1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        #[allow(clippy::needless_range_loop)]
        fn coo_csr_dense_agree(
            entries in proptest::collection::vec((0usize..8, 0usize..8, -5.0f32..5.0), 0..100)
        ) {
            let mut b = CooBuilder::new(8, 8);
            let mut dense = [[0.0f32; 8]; 8];
            for &(r, c, v) in &entries {
                b.push(r, c, v);
                dense[r][c] += v;
            }
            let m = b.into_csr();
            let d = m.to_dense();
            for r in 0..8 {
                for c in 0..8 {
                    prop_assert!((d.at(r, c) - dense[r][c]).abs() < 1e-4);
                }
            }
        }

        #[test]
        fn built_csr_upholds_invariants(
            entries in proptest::collection::vec((0usize..16, 0usize..16, -1.0f32..1.0), 0..200)
        ) {
            let mut b = CooBuilder::new(16, 16);
            for &(r, c, v) in &entries {
                b.push(r, c, v);
            }
            let m = b.into_csr();
            // Re-validating through try_new must succeed.
            let again = CsrMatrix::try_new(
                m.rows(), m.cols(),
                m.indptr().to_vec(), m.indices().to_vec(), m.values().to_vec(),
            );
            prop_assert!(again.is_ok());
        }
    }
}
