//! Sparse linear algebra for extreme multi-label classification workloads.
//!
//! The paper trains on libSVM-format XML datasets whose feature vectors have
//! ~10⁻³ density, so the input layer of the MLP is a sparse-times-dense
//! product. This crate is our cuSPARSE replacement:
//!
//! * [`CsrMatrix`] — validated compressed-sparse-row storage with cheap
//!   per-row views and batch extraction ([`CsrMatrix::select_rows`]).
//! * [`coo::CooBuilder`] — coordinate-format accumulation that sorts and
//!   de-duplicates into CSR.
//! * [`ops`] — `C = A·B` ([`ops::spmm`]) and the transposed-accumulate
//!   gradient kernel `W += α·Aᵀ·G` ([`ops::spmm_tn_acc`]), both parallel
//!   over the persistent worker pool of `asgd_tensor::parallel`.
//! * [`libsvm`] — reader/writer for the Extreme Classification repository's
//!   multi-label libSVM format.
//!
//! # Example
//!
//! ```
//! use asgd_sparse::{CsrMatrix, ops};
//! use asgd_tensor::Matrix;
//!
//! // 2×3 sparse matrix [[1,0,2],[0,3,0]]
//! let a = CsrMatrix::try_new(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0]).unwrap();
//! let b = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
//! let mut c = Matrix::zeros(2, 2);
//! ops::spmm(&a, &b, &mut c);
//! assert_eq!(c.as_slice(), &[11., 14., 9., 12.]);
//! ```

pub mod coo;
pub mod csr;
pub mod libsvm;
pub mod ops;

pub use coo::CooBuilder;
pub use csr::{CsrError, CsrMatrix};
