//! Reader/writer for the Extreme Classification repository's multi-label
//! libSVM text format.
//!
//! The format (used by Amazon-670k, Delicious-200k, …):
//!
//! ```text
//! num_points num_features num_labels      <- header line
//! l1,l2,l3 f1:v1 f2:v2 ...                <- one line per sample
//! ```
//!
//! A sample may have zero labels (the line then starts with a space) and
//! zero features. Feature ids are 0-based, sorted output is guaranteed by
//! the writer and *not* assumed by the reader (rows are sorted on ingest).

use crate::csr::CsrMatrix;
use std::io::{BufRead, Write};

/// A loaded multi-label sparse dataset.
#[derive(Debug, Clone)]
pub struct LibsvmDataset {
    /// `samples × num_features` sparse feature matrix.
    pub features: CsrMatrix,
    /// Per-sample label sets (sorted, de-duplicated).
    pub labels: Vec<Vec<u32>>,
    /// Size of the label space.
    pub num_labels: usize,
}

impl LibsvmDataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Mean number of labels per sample.
    pub fn avg_labels_per_sample(&self) -> f64 {
        if self.labels.is_empty() {
            0.0
        } else {
            self.labels.iter().map(|l| l.len()).sum::<usize>() as f64 / self.labels.len() as f64
        }
    }
}

/// Parse error with 1-based line number context.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line number (0 = header missing entirely).
    pub line: usize,
    /// Human-readable cause.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "libsvm parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Reads an XC-format dataset from a buffered reader.
///
/// Streaming, single pass: one reusable line buffer, each sample appended
/// directly to the CSR arrays as its line is consumed (per-row sort plus
/// duplicate merge by summation — the same semantics [`crate::CooBuilder`]
/// provides, explicit zeros kept). Peak memory is the final dataset plus
/// one line of text; there is no COO intermediate, no whole-file buffer and
/// no global sort, which is what lets full-label-scale XC files
/// (Amazon-670k, Delicious-200k — tens of millions of non-zeros) load
/// without a multiple-of-dataset-size allocation spike. [`read_file`] wraps
/// this in a wide-buffered file reader for the chunked on-disk path.
pub fn read<R: BufRead>(mut reader: R) -> Result<LibsvmDataset, ParseError> {
    let mut line = String::new();
    if reader
        .read_line(&mut line)
        .map_err(|e| err(1, e.to_string()))?
        == 0
    {
        return Err(err(0, "missing header line"));
    }
    let mut parts = line.split_whitespace();
    let n: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(1, "bad sample count"))?;
    let d: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(1, "bad feature count"))?;
    let l: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(1, "bad label count"))?;

    let mut indptr: Vec<usize> = Vec::with_capacity(n + 1);
    indptr.push(0);
    let mut indices: Vec<u32> = Vec::new();
    let mut values: Vec<f32> = Vec::new();
    let mut labels: Vec<Vec<u32>> = Vec::with_capacity(n);
    let mut row_scratch: Vec<(u32, f32)> = Vec::new();
    let mut lineno = 1usize;
    while labels.len() < n {
        line.clear();
        let read = reader
            .read_line(&mut line)
            .map_err(|e| err(lineno + 1, e.to_string()))?;
        if read == 0 {
            break;
        }
        lineno += 1;
        let line = line.trim_end_matches(['\n', '\r']);
        let (label_part, feat_part) = match line.find(' ') {
            Some(pos) => (&line[..pos], &line[pos + 1..]),
            None => (line, ""),
        };
        let mut sample_labels: Vec<u32> = Vec::new();
        if !label_part.is_empty() {
            for tok in label_part.split(',') {
                if tok.is_empty() {
                    continue;
                }
                let lab: u32 = tok
                    .trim()
                    .parse()
                    .map_err(|_| err(lineno, format!("bad label '{tok}'")))?;
                if lab as usize >= l {
                    return Err(err(lineno, format!("label {lab} >= label count {l}")));
                }
                sample_labels.push(lab);
            }
        }
        sample_labels.sort_unstable();
        sample_labels.dedup();
        labels.push(sample_labels);

        row_scratch.clear();
        for tok in feat_part.split_whitespace() {
            let (f, v) = tok
                .split_once(':')
                .ok_or_else(|| err(lineno, format!("bad feature token '{tok}'")))?;
            let f: usize = f
                .parse()
                .map_err(|_| err(lineno, format!("bad feature id '{f}'")))?;
            let v: f32 = v
                .parse()
                .map_err(|_| err(lineno, format!("bad feature value '{v}'")))?;
            if f >= d {
                return Err(err(lineno, format!("feature {f} >= feature count {d}")));
            }
            row_scratch.push((f as u32, v));
        }
        row_scratch.sort_by_key(|&(c, _)| c);
        for &(c, v) in &row_scratch {
            if indices.len() > *indptr.last().unwrap() && *indices.last().unwrap() == c {
                *values.last_mut().unwrap() += v;
            } else {
                indices.push(c);
                values.push(v);
            }
        }
        indptr.push(indices.len());
    }
    if labels.len() != n {
        return Err(err(
            labels.len() + 1,
            format!("expected {n} samples, found {}", labels.len()),
        ));
    }
    let features = CsrMatrix::try_new(n, d, indptr, indices, values)
        .expect("streamed rows are sorted and bounds-checked");
    Ok(LibsvmDataset {
        features,
        labels,
        num_labels: l,
    })
}

/// Opens `path` through a wide buffered reader (1 MiB chunks) and parses it
/// with [`read`] — the entry point for full-scale on-disk XC datasets.
pub fn read_file(path: impl AsRef<std::path::Path>) -> Result<LibsvmDataset, ParseError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)
        .map_err(|e| err(0, format!("cannot open {}: {e}", path.display())))?;
    read(std::io::BufReader::with_capacity(1 << 20, file))
}

/// Writes a dataset in XC libSVM format.
pub fn write<W: Write>(w: &mut W, ds: &LibsvmDataset) -> std::io::Result<()> {
    writeln!(
        w,
        "{} {} {}",
        ds.features.rows(),
        ds.features.cols(),
        ds.num_labels
    )?;
    for r in 0..ds.features.rows() {
        let labs: Vec<String> = ds.labels[r].iter().map(|l| l.to_string()).collect();
        write!(w, "{}", labs.join(","))?;
        let (idx, val) = ds.features.row(r);
        for (&f, &v) in idx.iter().zip(val) {
            write!(w, " {f}:{v}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    const SAMPLE: &str = "3 5 4\n0,2 1:0.5 3:1.5\n1 0:2\n 4:1\n";

    #[test]
    fn reads_sample() {
        let ds = read(BufReader::new(SAMPLE.as_bytes())).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.num_labels, 4);
        assert_eq!(ds.features.cols(), 5);
        assert_eq!(ds.labels[0], vec![0, 2]);
        assert_eq!(ds.labels[1], vec![1]);
        assert!(ds.labels[2].is_empty());
        assert_eq!(ds.features.row(0), (&[1u32, 3][..], &[0.5f32, 1.5][..]));
        assert_eq!(ds.features.row(2), (&[4u32][..], &[1.0f32][..]));
        assert!((ds.avg_labels_per_sample() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn roundtrip() {
        let ds = read(BufReader::new(SAMPLE.as_bytes())).unwrap();
        let mut buf = Vec::new();
        write(&mut buf, &ds).unwrap();
        let again = read(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(again.features, ds.features);
        assert_eq!(again.labels, ds.labels);
        assert_eq!(again.num_labels, ds.num_labels);
    }

    #[test]
    fn rejects_missing_header() {
        let e = read(BufReader::new("".as_bytes())).unwrap_err();
        assert_eq!(e.line, 0);
    }

    #[test]
    fn rejects_label_out_of_range() {
        let e = read(BufReader::new("1 5 2\n7 0:1\n".as_bytes())).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("label 7"));
    }

    #[test]
    fn rejects_feature_out_of_range() {
        let e = read(BufReader::new("1 3 2\n0 9:1\n".as_bytes())).unwrap_err();
        assert!(e.message.contains("feature 9"));
    }

    #[test]
    fn rejects_truncated_file() {
        let e = read(BufReader::new("3 5 4\n0 1:1\n".as_bytes())).unwrap_err();
        assert!(e.message.contains("expected 3 samples"));
    }

    #[test]
    fn rejects_malformed_feature_token() {
        let e = read(BufReader::new("1 3 2\n0 nonsense\n".as_bytes())).unwrap_err();
        assert!(e.message.contains("bad feature token"));
    }

    #[test]
    fn duplicate_labels_are_deduped() {
        let ds = read(BufReader::new("1 3 5\n2,2,1 0:1\n".as_bytes())).unwrap();
        assert_eq!(ds.labels[0], vec![1, 2]);
    }

    #[test]
    fn unsorted_features_are_sorted_per_row() {
        let ds = read(BufReader::new(
            "2 6 2\n0 5:5 1:1 3:3\n1 2:2 0:0.5\n".as_bytes(),
        ))
        .unwrap();
        assert_eq!(
            ds.features.row(0),
            (&[1u32, 3, 5][..], &[1.0f32, 3.0, 5.0][..])
        );
        assert_eq!(ds.features.row(1), (&[0u32, 2][..], &[0.5f32, 2.0][..]));
    }

    #[test]
    fn duplicate_features_are_summed_and_zeros_kept() {
        let ds = read(BufReader::new("1 4 2\n0 1:2 3:0 1:0.5\n".as_bytes())).unwrap();
        // Duplicate column 1 merges by summation; the explicit zero at
        // column 3 stays, matching CooBuilder semantics.
        assert_eq!(ds.features.row(0), (&[1u32, 3][..], &[2.5f32, 0.0][..]));
    }

    #[test]
    fn streaming_matches_coo_builder_reference() {
        let text = "3 7 3\n0 6:1 2:4 2:1 0:0\n1,2 3:2\n 5:9 5:-9 1:1\n";
        let ds = read(BufReader::new(text.as_bytes())).unwrap();
        let mut coo = crate::CooBuilder::new(3, 7);
        for (row, v) in [
            (
                0usize,
                [(6u32, 1.0f32), (2, 4.0), (2, 1.0), (0, 0.0)].as_slice(),
            ),
            (1, [(3, 2.0)].as_slice()),
            (2, [(5, 9.0), (5, -9.0), (1, 1.0)].as_slice()),
        ] {
            for &(c, x) in v {
                coo.push(row, c as usize, x);
            }
        }
        assert_eq!(ds.features, coo.into_csr());
    }

    #[test]
    fn empty_line_is_an_empty_sample() {
        // A fully empty line is the degenerate form of the documented
        // "zero labels, zero features" sample (which normally starts with
        // a space): it must consume one sample slot, not desync the stream.
        let ds = read(BufReader::new("3 3 2\n\n0 1:1\n \n".as_bytes())).unwrap();
        assert_eq!(ds.len(), 3);
        assert!(ds.labels[0].is_empty());
        assert_eq!(ds.features.row(0), (&[][..], &[][..]));
        assert_eq!(ds.labels[1], vec![0]);
        assert!(ds.labels[2].is_empty());
    }

    #[test]
    fn trailing_whitespace_is_ignored() {
        // Real XC dumps carry trailing spaces and tabs; they must not turn
        // into phantom feature tokens.
        let ds = read(BufReader::new("2 4 2\n0 1:1   \n1 2:1\t\r\n".as_bytes())).unwrap();
        assert_eq!(ds.features.row(0), (&[1u32][..], &[1.0f32][..]));
        assert_eq!(ds.features.row(1), (&[2u32][..], &[1.0f32][..]));
    }

    #[test]
    fn final_line_without_newline_still_parses() {
        let ds = read(BufReader::new("2 4 2\n0 1:1\n1 2:0.5".as_bytes())).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.features.row(1), (&[2u32][..], &[0.5f32][..]));
    }

    #[test]
    fn truncated_final_token_is_rejected() {
        // A file cut mid-token ("1:" with the value sheared off) must fail
        // with line context, not silently coerce.
        let e = read(BufReader::new("1 3 2\n0 1:".as_bytes())).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bad feature value"));
    }

    #[test]
    fn feature_id_at_exact_bound_is_rejected() {
        // Ids are 0-based: id == num_features is the first out-of-range id.
        let e = read(BufReader::new("1 3 2\n0 3:1\n".as_bytes())).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("feature 3 >= feature count 3"));
    }

    #[test]
    fn handles_crlf_line_endings() {
        let ds = read(BufReader::new("1 3 2\n0 1:1\r\n".as_bytes())).unwrap();
        assert_eq!(ds.features.row(0), (&[1u32][..], &[1.0f32][..]));
    }

    #[test]
    fn read_file_loads_from_disk() {
        let path = std::env::temp_dir().join("asgd_libsvm_read_file_test.txt");
        std::fs::write(&path, SAMPLE).unwrap();
        let ds = read_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.features.row(0), (&[1u32, 3][..], &[0.5f32, 1.5][..]));
    }

    #[test]
    fn read_file_reports_missing_path() {
        let e = read_file("/nonexistent/asgd-no-such-file.txt").unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.message.contains("cannot open"));
    }
}
