//! Reader/writer for the Extreme Classification repository's multi-label
//! libSVM text format.
//!
//! The format (used by Amazon-670k, Delicious-200k, …):
//!
//! ```text
//! num_points num_features num_labels      <- header line
//! l1,l2,l3 f1:v1 f2:v2 ...                <- one line per sample
//! ```
//!
//! A sample may have zero labels (the line then starts with a space) and
//! zero features. Feature ids are 0-based, sorted output is guaranteed by
//! the writer and *not* assumed by the reader (rows are sorted on ingest).

use crate::coo::CooBuilder;
use crate::csr::CsrMatrix;
use std::io::{BufRead, Write};

/// A loaded multi-label sparse dataset.
#[derive(Debug, Clone)]
pub struct LibsvmDataset {
    /// `samples × num_features` sparse feature matrix.
    pub features: CsrMatrix,
    /// Per-sample label sets (sorted, de-duplicated).
    pub labels: Vec<Vec<u32>>,
    /// Size of the label space.
    pub num_labels: usize,
}

impl LibsvmDataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Mean number of labels per sample.
    pub fn avg_labels_per_sample(&self) -> f64 {
        if self.labels.is_empty() {
            0.0
        } else {
            self.labels.iter().map(|l| l.len()).sum::<usize>() as f64 / self.labels.len() as f64
        }
    }
}

/// Parse error with 1-based line number context.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line number (0 = header missing entirely).
    pub line: usize,
    /// Human-readable cause.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "libsvm parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Reads an XC-format dataset from a buffered reader.
pub fn read<R: BufRead>(reader: R) -> Result<LibsvmDataset, ParseError> {
    let mut lines = reader.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| err(0, "missing header line"))?;
    let header = header.map_err(|e| err(1, e.to_string()))?;
    let mut parts = header.split_whitespace();
    let n: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(1, "bad sample count"))?;
    let d: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(1, "bad feature count"))?;
    let l: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(1, "bad label count"))?;

    let mut coo = CooBuilder::new(n, d);
    let mut labels: Vec<Vec<u32>> = Vec::with_capacity(n);
    for (idx, line) in lines {
        let lineno = idx + 1;
        if labels.len() == n {
            break;
        }
        let line = line.map_err(|e| err(lineno, e.to_string()))?;
        let row = labels.len();
        let (label_part, feat_part) = match line.find(' ') {
            Some(pos) => (&line[..pos], &line[pos + 1..]),
            None => (line.as_str(), ""),
        };
        let mut sample_labels: Vec<u32> = Vec::new();
        if !label_part.is_empty() {
            for tok in label_part.split(',') {
                if tok.is_empty() {
                    continue;
                }
                let lab: u32 = tok
                    .trim()
                    .parse()
                    .map_err(|_| err(lineno, format!("bad label '{tok}'")))?;
                if lab as usize >= l {
                    return Err(err(lineno, format!("label {lab} >= label count {l}")));
                }
                sample_labels.push(lab);
            }
        }
        sample_labels.sort_unstable();
        sample_labels.dedup();
        labels.push(sample_labels);

        for tok in feat_part.split_whitespace() {
            let (f, v) = tok
                .split_once(':')
                .ok_or_else(|| err(lineno, format!("bad feature token '{tok}'")))?;
            let f: usize = f
                .parse()
                .map_err(|_| err(lineno, format!("bad feature id '{f}'")))?;
            let v: f32 = v
                .parse()
                .map_err(|_| err(lineno, format!("bad feature value '{v}'")))?;
            if f >= d {
                return Err(err(lineno, format!("feature {f} >= feature count {d}")));
            }
            coo.push(row, f, v);
        }
    }
    if labels.len() != n {
        return Err(err(
            labels.len() + 1,
            format!("expected {n} samples, found {}", labels.len()),
        ));
    }
    Ok(LibsvmDataset {
        features: coo.into_csr(),
        labels,
        num_labels: l,
    })
}

/// Writes a dataset in XC libSVM format.
pub fn write<W: Write>(w: &mut W, ds: &LibsvmDataset) -> std::io::Result<()> {
    writeln!(
        w,
        "{} {} {}",
        ds.features.rows(),
        ds.features.cols(),
        ds.num_labels
    )?;
    for r in 0..ds.features.rows() {
        let labs: Vec<String> = ds.labels[r].iter().map(|l| l.to_string()).collect();
        write!(w, "{}", labs.join(","))?;
        let (idx, val) = ds.features.row(r);
        for (&f, &v) in idx.iter().zip(val) {
            write!(w, " {f}:{v}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    const SAMPLE: &str = "3 5 4\n0,2 1:0.5 3:1.5\n1 0:2\n 4:1\n";

    #[test]
    fn reads_sample() {
        let ds = read(BufReader::new(SAMPLE.as_bytes())).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.num_labels, 4);
        assert_eq!(ds.features.cols(), 5);
        assert_eq!(ds.labels[0], vec![0, 2]);
        assert_eq!(ds.labels[1], vec![1]);
        assert!(ds.labels[2].is_empty());
        assert_eq!(ds.features.row(0), (&[1u32, 3][..], &[0.5f32, 1.5][..]));
        assert_eq!(ds.features.row(2), (&[4u32][..], &[1.0f32][..]));
        assert!((ds.avg_labels_per_sample() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn roundtrip() {
        let ds = read(BufReader::new(SAMPLE.as_bytes())).unwrap();
        let mut buf = Vec::new();
        write(&mut buf, &ds).unwrap();
        let again = read(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(again.features, ds.features);
        assert_eq!(again.labels, ds.labels);
        assert_eq!(again.num_labels, ds.num_labels);
    }

    #[test]
    fn rejects_missing_header() {
        let e = read(BufReader::new("".as_bytes())).unwrap_err();
        assert_eq!(e.line, 0);
    }

    #[test]
    fn rejects_label_out_of_range() {
        let e = read(BufReader::new("1 5 2\n7 0:1\n".as_bytes())).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("label 7"));
    }

    #[test]
    fn rejects_feature_out_of_range() {
        let e = read(BufReader::new("1 3 2\n0 9:1\n".as_bytes())).unwrap_err();
        assert!(e.message.contains("feature 9"));
    }

    #[test]
    fn rejects_truncated_file() {
        let e = read(BufReader::new("3 5 4\n0 1:1\n".as_bytes())).unwrap_err();
        assert!(e.message.contains("expected 3 samples"));
    }

    #[test]
    fn rejects_malformed_feature_token() {
        let e = read(BufReader::new("1 3 2\n0 nonsense\n".as_bytes())).unwrap_err();
        assert!(e.message.contains("bad feature token"));
    }

    #[test]
    fn duplicate_labels_are_deduped() {
        let ds = read(BufReader::new("1 3 5\n2,2,1 0:1\n".as_bytes())).unwrap();
        assert_eq!(ds.labels[0], vec![1, 2]);
    }
}
