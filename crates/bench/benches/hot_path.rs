//! End-to-end training hot path: full `train_batch` steps (sparse forward,
//! dense output layer, backward, sparse weight update) at the two Table I
//! dataset shapes, measured as samples/second.
//!
//! This is the benchmark guarding the persistent-pool + reusable-workspace
//! hot path: it exercises exactly what one GPU manager runs per dispatched
//! batch.

use asgd_data::{generate, DatasetSpec};
use asgd_model::{Mlp, MlpConfig, Workspace};
use asgd_sparse::CsrMatrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const HIDDEN: usize = 128;
const BATCH: usize = 256;

struct Shape {
    label: &'static str,
    spec: DatasetSpec,
}

fn shapes() -> Vec<Shape> {
    vec![
        Shape {
            label: "amazon_like",
            spec: DatasetSpec::amazon_670k(0.005),
        },
        Shape {
            label: "delicious_like",
            spec: DatasetSpec::delicious_200k(0.002),
        },
    ]
}

fn batch_of(ds: &asgd_data::XmlDataset, batch: usize) -> (CsrMatrix, Vec<Vec<u32>>) {
    let ids: Vec<usize> = (0..batch).map(|i| i % ds.train.len()).collect();
    let x = ds.train.features.select_rows(&ids);
    let labels: Vec<Vec<u32>> = ids.iter().map(|&i| ds.train.labels[i].clone()).collect();
    (x, labels)
}

fn bench_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_hot_path");
    for shape in shapes() {
        let ds = generate(&shape.spec, 7);
        let config = MlpConfig {
            num_features: ds.num_features,
            hidden: HIDDEN,
            num_classes: ds.num_labels,
        };
        let (x, labels) = batch_of(&ds, BATCH);
        let mut model = Mlp::init(&config, 3);
        let mut ws = Workspace::new(&config);
        group.throughput(Throughput::Elements(BATCH as u64));
        // The steady-state trainer path: one long-lived workspace per
        // replica, zero allocations per step.
        group.bench_function(BenchmarkId::new(shape.label, BATCH), |b| {
            b.iter(|| model.train_batch_ws(&x, &labels, 1e-3, &mut ws))
        });
        // The allocating wrapper, for quantifying what workspace reuse
        // saves (same kernels, fresh buffers each step).
        group.bench_function(BenchmarkId::new(shape.label, "alloc_per_step"), |b| {
            b.iter(|| model.train_batch(&x, &labels, 1e-3))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_hot_path
}
criterion_main!(benches);
