//! Kernel fusion vs launch contention (§IV): the epoch launch overhead with
//! and without fusion as the number of concurrently launching GPU managers
//! grows — the paper's motivation for fusing element-wise kernels into
//! event-synchronized streams.

use asgd_gpusim::fusion::{epoch_launch_overhead, FusionPolicy, LaunchModel};
use asgd_model::workload::epoch_kernels;
use asgd_model::MlpConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fusion(c: &mut Criterion) {
    let config = MlpConfig {
        num_features: 135_909,
        hidden: 128,
        num_classes: 670_091,
    };
    let kernels = epoch_kernels(&config, 256, 256 * 76);
    let model = LaunchModel::default_cuda();

    // The simulated overhead table the paper's §IV narrates.
    eprintln!("simulated per-epoch launch overhead (us):");
    eprintln!("  managers  unfused  fused  saving");
    for managers in [1usize, 2, 4, 8] {
        let unfused =
            epoch_launch_overhead(&kernels, FusionPolicy::Unfused, &model, managers) * 1e6;
        let fused = epoch_launch_overhead(&kernels, FusionPolicy::Fused, &model, managers) * 1e6;
        eprintln!(
            "  {managers:>8}  {unfused:>7.1}  {fused:>5.1}  {:.1}%",
            (1.0 - fused / unfused) * 100.0
        );
    }

    // Cost of the planner itself (it runs once per dispatched batch).
    let mut group = c.benchmark_group("fusion_planning");
    for managers in [1usize, 4] {
        group.bench_function(BenchmarkId::new("unfused", managers), |b| {
            b.iter(|| epoch_launch_overhead(&kernels, FusionPolicy::Unfused, &model, managers));
        });
        group.bench_function(BenchmarkId::new("fused", managers), |b| {
            b.iter(|| epoch_launch_overhead(&kernels, FusionPolicy::Fused, &model, managers));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fusion
}
criterion_main!(benches);
