//! Model-merging microbenchmarks: Algorithm 2's weight computation, the
//! weighted model sum, the momentum update, and Algorithm 1's scaling step.

use asgd_core::merging::apply_global_update;
use asgd_core::{compute_merge_weights, scale_batch_sizes, GpuHyper, MergeParams, ScalingParams};
use asgd_tensor::{ops, Matrix};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn hypers(n: usize) -> Vec<GpuHyper> {
    (0..n)
        .map(|i| GpuHyper {
            batch_size: 256.0 - i as f64 * 17.0,
            lr: 0.1,
            updates: 20 + (i as u64 * 3) % 7,
        })
        .collect()
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm2_weights");
    for n in [2usize, 4, 8] {
        let gs = hypers(n);
        let norms = vec![0.05; n];
        let params = MergeParams::default();
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| compute_merge_weights(&gs, &norms, &params));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("weighted_model_sum");
    for len in [1usize << 16, 1 << 20] {
        let mats: Vec<Matrix> = (0..4)
            .map(|d| Matrix::from_fn(1, len, |_, i| ((i + d) % 7) as f32))
            .collect();
        let refs: Vec<&Matrix> = mats.iter().collect();
        let weights = [0.3, 0.3, 0.2, 0.2];
        group.bench_function(BenchmarkId::from_parameter(len), |b| {
            let mut out = Matrix::zeros(1, len);
            b.iter(|| ops::weighted_sum(&refs, &weights, &mut out));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("momentum_global_update");
    for len in [1usize << 16, 1 << 20] {
        let merged = vec![0.5f32; len];
        group.bench_function(BenchmarkId::from_parameter(len), |b| {
            b.iter_batched(
                || (vec![1.0f32; len], vec![0.8f32; len]),
                |(mut global, mut prev)| apply_global_update(&merged, &mut global, &mut prev, 0.9),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();

    c.bench_function("algorithm1_batch_scaling_8gpus", |b| {
        let params = ScalingParams::paper_defaults(1024);
        b.iter_batched(
            || hypers(8),
            |mut gs| scale_batch_sizes(&mut gs, &params),
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_merge
}
criterion_main!(benches);
