//! Model-merging microbenchmarks: Algorithm 2's weight computation, the
//! weighted model sum, the momentum update, Algorithm 1's scaling step, and
//! the full merge stage (gather + all-reduce + global update +
//! redistribution) with and without the persistent merge arena.

use asgd_collective::{allreduce, Algorithm, CollectiveContext};
use asgd_core::merging::apply_global_update;
use asgd_core::{compute_merge_weights, scale_batch_sizes, GpuHyper, MergeParams, ScalingParams};
use asgd_gpusim::{profile, SimTime, Topology};
use asgd_model::{Mlp, MlpConfig};
use asgd_tensor::parallel::par_copy;
use asgd_tensor::{ops, Matrix};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn hypers(n: usize) -> Vec<GpuHyper> {
    (0..n)
        .map(|i| GpuHyper {
            batch_size: 256.0 - i as f64 * 17.0,
            lr: 0.1,
            updates: 20 + (i as u64 * 3) % 7,
        })
        .collect()
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm2_weights");
    for n in [2usize, 4, 8] {
        let gs = hypers(n);
        let norms = vec![0.05; n];
        let params = MergeParams::default();
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| compute_merge_weights(&gs, &norms, &params));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("weighted_model_sum");
    for len in [1usize << 16, 1 << 20] {
        let mats: Vec<Matrix> = (0..4)
            .map(|d| Matrix::from_fn(1, len, |_, i| ((i + d) % 7) as f32))
            .collect();
        let refs: Vec<&Matrix> = mats.iter().collect();
        let weights = [0.3, 0.3, 0.2, 0.2];
        group.bench_function(BenchmarkId::from_parameter(len), |b| {
            let mut out = Matrix::zeros(1, len);
            b.iter(|| ops::weighted_sum(&refs, &weights, &mut out));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("momentum_global_update");
    for len in [1usize << 16, 1 << 20] {
        let merged = vec![0.5f32; len];
        group.bench_function(BenchmarkId::from_parameter(len), |b| {
            b.iter_batched(
                || (vec![1.0f32; len], vec![0.8f32; len]),
                |(mut global, mut prev)| apply_global_update(&merged, &mut global, &mut prev, 0.9),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();

    c.bench_function("algorithm1_batch_scaling_8gpus", |b| {
        let params = ScalingParams::paper_defaults(1024);
        b.iter_batched(
            || hypers(8),
            |mut gs| scale_batch_sizes(&mut gs, &params),
            criterion::BatchSize::SmallInput,
        );
    });
}

/// One full scheduler-side merge at the amazon-like shape (hot_path bench's
/// shape), 4 replicas: gather every replica flat, weighted all-reduce
/// (multi-stream ring), momentum global update, redistribute + load. The
/// `arena` variant recycles persistent buffers (the trainer's steady
/// state); `alloc_per_merge` allocates the flats and redistribution clones
/// fresh every merge — quantifying what the arena saves.
fn bench_merge_stage(c: &mut Criterion) {
    let n = 4;
    let config = MlpConfig {
        num_features: 135_909,
        hidden: 128,
        num_classes: 6_701,
    };
    let mut replicas: Vec<Mlp> = (0..n).map(|g| Mlp::init(&config, 3 + g as u64)).collect();
    let mut global = replicas[0].to_flat();
    let mut prev_global = global.clone();
    let weights = vec![1.0 / n as f64; n];
    let ctx = CollectiveContext::new(Topology::pcie(n), &profile::heterogeneous_server(n));
    let arrivals = vec![SimTime::ZERO; n];
    let algo = Algorithm::MultiStreamRing { partitions: 4 };

    let mut group = c.benchmark_group("merge_stage");
    group.sample_size(10);

    let mut bufs: Vec<Vec<f32>> = (0..n).map(|_| Vec::new()).collect();
    group.bench_function("arena_4x_amazon", |b| {
        b.iter(|| {
            for (r, buf) in replicas.iter().zip(bufs.iter_mut()) {
                r.write_flat_into(buf);
            }
            allreduce(&mut bufs, &weights, algo, &ctx, &arrivals);
            apply_global_update(&bufs[0], &mut global, &mut prev_global, 0.9);
            for (r, buf) in replicas.iter_mut().zip(bufs.iter_mut()) {
                par_copy(&global, buf, 1 << 14);
                r.read_flat_from(buf);
            }
        });
    });

    group.bench_function("alloc_per_merge_4x_amazon", |b| {
        b.iter(|| {
            let mut fresh: Vec<Vec<f32>> = replicas.iter().map(|r| r.to_flat()).collect();
            allreduce(&mut fresh, &weights, algo, &ctx, &arrivals);
            let merged = fresh.swap_remove(0);
            apply_global_update(&merged, &mut global, &mut prev_global, 0.9);
            for r in replicas.iter_mut() {
                let flat = global.clone();
                r.load_flat(&flat);
            }
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_merge, bench_merge_stage
}
criterion_main!(benches);
