//! Compute-kernel micro-benchmarks: the blocked/vectorized GEMM and SpMM
//! micro-kernels against the scalar baselines they replaced, at the amazon
//! hot-path shape (`batch = 256`, `hidden = 128`, `classes ≈ 3350` — the
//! exact shapes one `train_batch`/`predict_topk` step runs).
//!
//! Three groups:
//!
//! * `dense_kernels` — tiled `ops::gemm`/`gemm_tn`/`gemm_nt` vs the
//!   verbatim pre-tiling kernels preserved in [`asgd_tensor::reference`],
//!   plus the fused epilogues (`gemm_bias_relu`, `gemm_bias_topk`) vs their
//!   unfused two-pass formulations.
//! * `sparse_kernels` — register-blocked `spmm`/`spmm_bias_relu` on a real
//!   amazon-like CSR batch.
//! * `skewed_spmm` — the shapes the nnz-balanced 2-D tiling targets: a
//!   power-law flood-row batch and a tiny batch against a
//!   sampled-softmax-wide output.
//! * `min_par_rows` — sweep of the `par_chunks_mut` serial-fallback
//!   threshold around [`asgd_tensor::parallel::MIN_PAR_ROWS`]; see
//!   EXPERIMENTS.md ("Kernel benchmarks") for how to read it on hosts where
//!   the pool resolves to one worker (the sweep is flat there by design:
//!   every threshold degenerates to the serial path).

use asgd_data::{generate, DatasetSpec};
use asgd_sparse::{ops as sops, CsrMatrix};
use asgd_tensor::kernels::{self, Epilogue};
use asgd_tensor::parallel::{par_chunks_mut, MIN_PAR_ROWS};
use asgd_tensor::{numerics, ops, reference, Matrix};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const BATCH: usize = 256;
const HIDDEN: usize = 128;

/// Deterministic pseudo-random fill (same LCG family as the tensor tests).
fn filled(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed | 1;
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn amazon_batch() -> (CsrMatrix, usize) {
    let spec = DatasetSpec::amazon_670k(0.005);
    let ds = generate(&spec, 42 ^ 0xD5);
    let ids: Vec<usize> = (0..BATCH).map(|i| i % ds.train.len()).collect();
    (ds.train.features.select_rows(&ids), spec.num_labels)
}

fn dense_kernels(c: &mut Criterion) {
    let classes = DatasetSpec::amazon_670k(0.005).num_labels;
    let mut group = c.benchmark_group("dense_kernels");
    group.sample_size(15);
    let flops = (2 * BATCH * HIDDEN * classes) as u64;
    group.throughput(Throughput::Elements(flops));

    // Forward output layer: C[batch × classes] = H[batch × hidden] · W2.
    let h = filled(BATCH, HIDDEN, 1);
    let w2 = filled(HIDDEN, classes, 2);
    let mut out = Matrix::zeros(BATCH, classes);
    group.bench_function(BenchmarkId::new("gemm_nn", "scalar"), |b| {
        b.iter(|| reference::gemm_scalar(1.0, &h, &w2, 0.0, &mut out))
    });
    group.bench_function(BenchmarkId::new("gemm_nn", "tiled"), |b| {
        b.iter(|| ops::gemm(1.0, &h, &w2, 0.0, &mut out))
    });

    // Weight gradient: G[hidden × classes] = Hᵀ[batch × hidden]ᵀ · D[batch × classes].
    let d = filled(BATCH, classes, 3);
    let mut grad = Matrix::zeros(HIDDEN, classes);
    group.bench_function(BenchmarkId::new("gemm_tn", "scalar"), |b| {
        b.iter(|| reference::gemm_tn_scalar(1.0, &h, &d, 0.0, &mut grad))
    });
    group.bench_function(BenchmarkId::new("gemm_tn", "tiled"), |b| {
        b.iter(|| ops::gemm_tn(1.0, &h, &d, 0.0, &mut grad))
    });

    // Input gradient: DH[batch × hidden] = D[batch × classes] · W2ᵀ.
    let mut dh = Matrix::zeros(BATCH, HIDDEN);
    group.bench_function(BenchmarkId::new("gemm_nt", "scalar"), |b| {
        b.iter(|| reference::gemm_nt_scalar(1.0, &d, &w2, 0.0, &mut dh))
    });
    group.bench_function(BenchmarkId::new("gemm_nt", "tiled"), |b| {
        b.iter(|| ops::gemm_nt(1.0, &d, &w2, 0.0, &mut dh))
    });

    // Fused epilogues vs their unfused two-pass formulations.
    let bias: Vec<f32> = (0..classes).map(|j| (j as f32 * 0.01).sin()).collect();
    group.bench_function(BenchmarkId::new("gemm_bias_relu", "unfused"), |b| {
        b.iter(|| {
            ops::gemm(1.0, &h, &w2, 0.0, &mut out);
            numerics::add_bias_inplace(&mut out, &bias);
            numerics::relu_inplace(&mut out);
        })
    });
    group.bench_function(BenchmarkId::new("gemm_bias_relu", "fused"), |b| {
        b.iter(|| ops::gemm_bias_relu(&h, &w2, &bias, &mut out))
    });

    let k = 5usize;
    let mut topk = vec![0u32; BATCH * k];
    let mut order: Vec<u32> = Vec::new();
    group.bench_function(BenchmarkId::new("gemm_bias_topk", "materialized"), |b| {
        b.iter(|| {
            ops::gemm_bias(&h, &w2, &bias, &mut out);
            for r in 0..BATCH {
                let row = out.row(r);
                order.clear();
                order.extend(0..classes as u32);
                order.select_nth_unstable_by(k - 1, |&x, &y| {
                    row[y as usize]
                        .partial_cmp(&row[x as usize])
                        .unwrap()
                        .then(x.cmp(&y))
                });
                order[..k].sort_unstable_by(|&x, &y| {
                    row[y as usize]
                        .partial_cmp(&row[x as usize])
                        .unwrap()
                        .then(x.cmp(&y))
                });
                topk[r * k..(r + 1) * k].copy_from_slice(&order[..k]);
            }
        })
    });
    group.bench_function(BenchmarkId::new("gemm_bias_topk", "streaming"), |b| {
        b.iter(|| ops::gemm_bias_topk(&h, &w2, &bias, k, &mut topk))
    });
    group.finish();
}

fn sparse_kernels(c: &mut Criterion) {
    let (x, _classes) = amazon_batch();
    let w1 = filled(x.cols(), HIDDEN, 7);
    let bias: Vec<f32> = (0..HIDDEN).map(|j| (j as f32 * 0.1).cos()).collect();
    let mut h = Matrix::zeros(BATCH, HIDDEN);

    let mut group = c.benchmark_group("sparse_kernels");
    group.sample_size(20);
    group.throughput(Throughput::Elements((2 * x.nnz() * HIDDEN) as u64));
    group.bench_function("spmm", |b| b.iter(|| sops::spmm(&x, &w1, &mut h)));
    group.bench_function(BenchmarkId::new("spmm_bias_relu", "unfused"), |b| {
        b.iter(|| {
            sops::spmm(&x, &w1, &mut h);
            numerics::add_bias_inplace(&mut h, &bias);
            numerics::relu_inplace(&mut h);
        })
    });
    group.bench_function(BenchmarkId::new("spmm_bias_relu", "fused"), |b| {
        b.iter(|| sops::spmm_bias_relu(&x, &w1, &bias, &mut h))
    });
    group.finish();
}

/// Skewed SpMM shapes the nnz-balanced 2-D tiling targets:
///
/// * `flood_row` — power-law row lengths (one row holds most of the batch's
///   nonzeros, the rest are near-empty), the case equal-row chunking
///   serializes on a single worker;
/// * `wide_output` — a batch far below `MIN_PAR_ROWS` against a
///   sampled-softmax-wide output, the case row splitting alone cannot
///   occupy the pool and the NB-panel column blocks engage.
fn skewed_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("skewed_spmm");
    group.sample_size(15);

    // Power-law batch: row 0 carries 8192 nonzeros, the rest carry 0–3.
    let feats = 16_384usize;
    let rows: Vec<(Vec<u32>, Vec<f32>)> = (0..BATCH)
        .map(|r| {
            let nnz = if r == 0 { 8192 } else { r % 4 };
            let idx: Vec<u32> = (0..nnz as u32).map(|j| j * 2 + (r as u32 % 2)).collect();
            let val: Vec<f32> = idx.iter().map(|&j| (j as f32 * 0.37).sin()).collect();
            (idx, val)
        })
        .collect();
    let flood = CsrMatrix::from_rows(feats, &rows).unwrap();
    let w1 = filled(feats, HIDDEN, 31);
    let mut h = Matrix::zeros(BATCH, HIDDEN);
    group.throughput(Throughput::Elements((2 * flood.nnz() * HIDDEN) as u64));
    group.bench_function("flood_row", |b| b.iter(|| sops::spmm(&flood, &w1, &mut h)));

    // Wide output, tiny batch: 8 rows × 16k columns (a sampled-softmax-like
    // output width), dominated by the column-block axis.
    let small = 8usize;
    let wide_cols = 16_384usize;
    let ids: Vec<usize> = (1..=small).collect();
    let xs = flood.select_rows(&ids);
    let w_wide = filled(feats, wide_cols, 32);
    let mut out = Matrix::zeros(small, wide_cols);
    group.throughput(Throughput::Elements((2 * xs.nnz() * wide_cols) as u64));
    group.bench_function("wide_output", |b| {
        b.iter(|| sops::spmm(&xs, &w_wide, &mut out))
    });
    group.finish();
}

/// Sweeps the `par_chunks_mut` serial-fallback threshold for the NN
/// micro-kernel at a chunk-sized row count. `MIN_PAR_ROWS` is a compile-time
/// constant in the production kernels; here the threshold is passed straight
/// to `par_chunks_mut`, so each point shows what the kernels would do if the
/// constant were retuned.
fn min_par_rows_sweep(c: &mut Criterion) {
    let classes = DatasetSpec::amazon_670k(0.005).num_labels;
    let rows = 2 * MIN_PAR_ROWS;
    let a = filled(rows, HIDDEN, 11);
    let b = filled(HIDDEN, classes, 12);
    let mut out = Matrix::zeros(rows, classes);

    let mut group = c.benchmark_group("min_par_rows");
    group.sample_size(20);
    for threshold in [1usize, 4, 8, 16, 32, 64] {
        group.bench_with_input(
            BenchmarkId::new("gemm_nn_32rows", threshold),
            &threshold,
            |bench, &threshold| {
                bench.iter(|| {
                    let (adata, bdata) = (a.as_slice(), b.as_slice());
                    par_chunks_mut(
                        out.as_mut_slice(),
                        rows,
                        classes,
                        threshold,
                        |first, chunk| {
                            kernels::gemm_nn_chunk(
                                adata,
                                HIDDEN,
                                bdata,
                                classes,
                                first,
                                chunk,
                                Epilogue::AlphaBeta {
                                    alpha: 1.0,
                                    beta: 0.0,
                                },
                            )
                        },
                    );
                })
            },
        );
    }
    group.finish();
}

/// bf16 storage-tier conversion kernels (DESIGN.md, "Precision tiers &
/// rounding contract") at a merge-sized buffer: the AVX2 slice dispatchers
/// against a per-element loop over the scalar spec. Both produce identical
/// bits; only the throughput differs.
fn bf16_conversions(c: &mut Criterion) {
    use asgd_tensor::bf16;
    let n = 1 << 20;
    let src = filled(1, n, 21);
    let src = src.as_slice();
    let mut half = vec![0u16; n];
    let mut wide = vec![0f32; n];

    let mut group = c.benchmark_group("bf16_conversions");
    group.sample_size(20);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function(BenchmarkId::new("narrow", "scalar"), |b| {
        b.iter(|| {
            for (o, &x) in half.iter_mut().zip(src) {
                *o = bf16::narrow(x);
            }
        })
    });
    group.bench_function(BenchmarkId::new("narrow", "simd"), |b| {
        b.iter(|| bf16::narrow_slice(src, &mut half))
    });
    bf16::narrow_slice(src, &mut half);
    group.bench_function(BenchmarkId::new("widen", "scalar"), |b| {
        b.iter(|| {
            for (o, &x) in wide.iter_mut().zip(half.iter()) {
                *o = bf16::widen(x);
            }
        })
    });
    group.bench_function(BenchmarkId::new("widen", "simd"), |b| {
        b.iter(|| bf16::widen_slice(&half, &mut wide))
    });
    group.finish();
}

criterion_group!(
    benches,
    dense_kernels,
    sparse_kernels,
    skewed_spmm,
    min_par_rows_sweep,
    bf16_conversions
);
criterion_main!(benches);
