//! Sparse-times-dense kernel microbenchmarks: the forward input layer
//! (`H = X·W₁`) and the gradient kernel (`∇W₁ += Xᵀ·dH`) at XML-like
//! sparsity, across batch sizes.

use asgd_data::{generate, DatasetSpec};
use asgd_sparse::ops::{spmm, spmm_tn_acc};
use asgd_tensor::Matrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_spmm(c: &mut Criterion) {
    let ds = generate(&DatasetSpec::amazon_670k(0.002), 1);
    let hidden = 128;
    let w1 = Matrix::from_fn(ds.num_features, hidden, |r, q| {
        ((r * 31 + q * 7) % 13) as f32 / 13.0 - 0.5
    });

    let mut group = c.benchmark_group("spmm_forward");
    for batch in [64usize, 256, 1024] {
        let ids: Vec<usize> = (0..batch).map(|i| i % ds.train.len()).collect();
        let x = ds.train.features.select_rows(&ids);
        group.throughput(Throughput::Elements((2 * x.nnz() * hidden) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &x, |b, x| {
            let mut h = Matrix::zeros(x.rows(), hidden);
            b.iter(|| spmm(x, &w1, &mut h));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("spmm_tn_gradient");
    for batch in [64usize, 256] {
        let ids: Vec<usize> = (0..batch).map(|i| i % ds.train.len()).collect();
        let x = ds.train.features.select_rows(&ids);
        let dh = Matrix::from_fn(batch, hidden, |r, q| ((r + q) % 7) as f32 * 0.01);
        group.throughput(Throughput::Elements((2 * x.nnz() * hidden) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &x, |b, x| {
            let mut g = Matrix::zeros(ds.num_features, hidden);
            b.iter(|| spmm_tn_acc(1.0, x, &dh, &mut g));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_spmm
}
criterion_main!(benches);
