//! All-reduce algorithm comparison (§IV): naive vs tree vs ring vs the
//! paper's multi-stream partitioned ring, reporting both the *real* CPU
//! arithmetic cost (criterion wall time) and, on stderr, the *simulated*
//! collective durations — the paper's claim is that the multi-stream ring
//! merges models at least 2x faster than the single-stream tree.

use asgd_collective::{allreduce, Algorithm, CollectiveContext};
use asgd_gpusim::{profile, SimTime, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_allreduce(c: &mut Criterion) {
    let n = 4;
    let ctx = CollectiveContext::new(Topology::pcie(n), &profile::homogeneous_server(n));
    let weights = vec![1.0 / n as f64; n];

    // Simulated durations (the experiment the paper actually reports).
    eprintln!("simulated merge durations (model elements x algorithm):");
    for len in [1 << 16, 1 << 20, 1 << 22] {
        for algo in [
            Algorithm::Naive,
            Algorithm::Tree,
            Algorithm::Ring,
            Algorithm::HalvingDoubling,
            Algorithm::MultiStreamRing { partitions: n },
        ] {
            let mut bufs: Vec<Vec<f32>> = (0..n).map(|d| vec![d as f32; len]).collect();
            let t = allreduce(&mut bufs, &weights, algo, &ctx, &vec![SimTime::ZERO; n]);
            eprintln!("  {len:>8} {algo:?}: {:.1} us", t.duration() * 1e6);
        }
    }

    // Real arithmetic cost of each algorithm implementation.
    let mut group = c.benchmark_group("allreduce_arithmetic");
    for len in [1usize << 16, 1 << 20] {
        for (name, algo) in [
            ("naive", Algorithm::Naive),
            ("tree", Algorithm::Tree),
            ("ring", Algorithm::Ring),
            ("hd", Algorithm::HalvingDoubling),
            ("msr", Algorithm::MultiStreamRing { partitions: n }),
        ] {
            group.bench_function(BenchmarkId::new(name, len), |b| {
                b.iter_batched(
                    || (0..n).map(|d| vec![d as f32; len]).collect::<Vec<_>>(),
                    |mut bufs| allreduce(&mut bufs, &weights, algo, &ctx, &vec![SimTime::ZERO; n]),
                    criterion::BatchSize::LargeInput,
                );
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_allreduce
}
criterion_main!(benches);
