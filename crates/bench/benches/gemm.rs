//! Dense GEMM microbenchmarks at the shapes the output layer produces:
//! `logits = H·W₂` (NN), `dH = dO·W₂ᵀ` (NT), `∇W₂ = Hᵀ·dO` (TN).

use asgd_tensor::{ops, Matrix};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn mat(rows: usize, cols: usize, seed: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, q| {
        ((r * 31 + q * 7 + seed) % 13) as f32 / 13.0 - 0.5
    })
}

fn bench_gemm(c: &mut Criterion) {
    let hidden = 128;
    for classes in [1024usize, 4096] {
        let mut group = c.benchmark_group(format!("gemm_output_layer_c{classes}"));
        for batch in [64usize, 256] {
            let flops = (2 * batch * hidden * classes) as u64;
            group.throughput(Throughput::Elements(flops));
            let h = mat(batch, hidden, 1);
            let w2 = mat(hidden, classes, 2);
            let dl = mat(batch, classes, 3);
            group.bench_function(BenchmarkId::new("nn_forward", batch), |b| {
                let mut out = Matrix::zeros(batch, classes);
                b.iter(|| ops::gemm(1.0, &h, &w2, 0.0, &mut out));
            });
            group.bench_function(BenchmarkId::new("nt_backward", batch), |b| {
                let mut out = Matrix::zeros(batch, hidden);
                b.iter(|| ops::gemm_nt(1.0, &dl, &w2, 0.0, &mut out));
            });
            group.bench_function(BenchmarkId::new("tn_weight_grad", batch), |b| {
                let mut out = Matrix::zeros(hidden, classes);
                b.iter(|| ops::gemm_tn(1.0, &h, &dl, 0.0, &mut out));
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_gemm
}
criterion_main!(benches);
