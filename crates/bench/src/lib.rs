//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each `fig*`/`table*` binary is a thin wrapper over a function in
//! [`experiments`], so `run_all` can execute the full evaluation in-process
//! and the functions can be smoke-tested. Output is CSV on stdout plus files
//! under `results/` (created on demand).
//!
//! Experiment scale is controlled by environment variables so the same
//! binaries serve quick CI smoke runs and full overnight sweeps:
//!
//! | variable | default | meaning |
//! |---|---|---|
//! | `ASGD_SCALE` | `0.01` | linear dataset scale vs Table I |
//! | `ASGD_BMAX` | `48` | maximum batch size |
//! | `ASGD_BATCHES_PER_MEGA` | `24` | batches per mega-batch (paper: 100) |
//! | `ASGD_MEGA_LIMIT` | `24` | mega-batches per run |
//! | `ASGD_HIDDEN` | `64` | MLP hidden width (paper: 128; 64 keeps the
//!   single-host sweep affordable) |
//! | `ASGD_SEED` | `42` | master seed |
//! | `ASGD_OUT_DIR` | `results` | artifact directory |
//! | `ASGD_SOFTMAX` | `dense` | output layer: `dense` (exact reference) or
//!   `sampled` (LSH-sampled softmax over candidate labels) |
//! | `ASGD_LSH_TABLES` | `8` | SimHash tables when `ASGD_SOFTMAX=sampled` |
//! | `ASGD_NEG_SAMPLES` | `64` | negative candidates per batch when
//!   `ASGD_SOFTMAX=sampled` |
//! | `ASGD_SPARSE_MERGE` | `0` | `1` = charge merges through the sparse
//!   delta all-reduce (timing-only; requires `ASGD_SOFTMAX=sampled`) |

use asgd_core::trainer::{RunConfig, SampledSoftmax, Trainer, TrainerSpec};
use asgd_core::RunResult;
use asgd_data::{generate, DatasetSpec, XmlDataset};
use asgd_gpusim::profile::heterogeneous_server;
use std::io::Write;
use std::path::PathBuf;

pub mod experiments;
pub mod fleet;

/// Scale/size knobs shared by every experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Env {
    /// Linear dataset scale vs Table I.
    pub scale: f64,
    /// Maximum batch size `b_max`.
    pub b_max: usize,
    /// Batches per mega-batch.
    pub batches_per_mega: usize,
    /// Mega-batches per run.
    pub mega_limit: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Master seed.
    pub seed: u64,
    /// Output directory for CSV artifacts.
    pub out_dir: PathBuf,
    /// `Some` = LSH-sampled softmax on the training hot path
    /// (`ASGD_SOFTMAX=sampled`), `None` = the exact dense output layer.
    pub sampled: Option<SampledSoftmax>,
    /// `ASGD_SPARSE_MERGE=1`: keep sampled-softmax deltas sparse through
    /// the merge stage (simulated-traffic accounting; bit-identical model).
    pub sparse_merge: bool,
}

/// Resolves the `ASGD_SOFTMAX`/`ASGD_LSH_TABLES`/`ASGD_NEG_SAMPLES` triple
/// into a trainer-level sampled-softmax config. Any `mode` other than
/// `"sampled"` (case-insensitive) means the dense path; tables/negatives
/// apply on top of [`SampledSoftmax::defaults`], so the LSH seed and bit
/// width stay at their pinned values.
pub fn parse_softmax(
    mode: Option<&str>,
    tables: Option<usize>,
    neg: Option<usize>,
) -> Option<SampledSoftmax> {
    if !mode.is_some_and(|m| m.trim().eq_ignore_ascii_case("sampled")) {
        return None;
    }
    let mut s = SampledSoftmax::defaults(neg.unwrap_or(64));
    if let Some(t) = tables {
        s.tables = t.max(1);
    }
    Some(s)
}

impl Env {
    /// Reads the environment (see module docs for the variables).
    pub fn from_env() -> Self {
        fn var<T: std::str::FromStr>(name: &str, default: T) -> T {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(default)
        }
        Env {
            scale: var("ASGD_SCALE", 0.01),
            b_max: var("ASGD_BMAX", 48),
            batches_per_mega: var("ASGD_BATCHES_PER_MEGA", 24),
            mega_limit: var("ASGD_MEGA_LIMIT", 24),
            hidden: var("ASGD_HIDDEN", 64),
            seed: var("ASGD_SEED", 42),
            out_dir: PathBuf::from(
                std::env::var("ASGD_OUT_DIR").unwrap_or_else(|_| "results".into()),
            ),
            sampled: parse_softmax(
                std::env::var("ASGD_SOFTMAX").ok().as_deref(),
                std::env::var("ASGD_LSH_TABLES")
                    .ok()
                    .and_then(|v| v.trim().parse().ok()),
                std::env::var("ASGD_NEG_SAMPLES")
                    .ok()
                    .and_then(|v| v.trim().parse().ok()),
            ),
            sparse_merge: std::env::var("ASGD_SPARSE_MERGE").is_ok_and(|v| v.trim() == "1"),
        }
    }

    /// A fast configuration for harness self-tests.
    pub fn smoke() -> Self {
        Env {
            scale: 0.001,
            b_max: 64,
            batches_per_mega: 8,
            mega_limit: 3,
            hidden: 24,
            seed: 42,
            out_dir: std::env::temp_dir().join("asgd-bench-smoke"),
            sampled: None,
            sparse_merge: false,
        }
    }

    /// The two evaluation datasets at this env's scale.
    pub fn dataset_specs(&self) -> Vec<DatasetSpec> {
        vec![
            DatasetSpec::amazon_670k(self.scale),
            DatasetSpec::delicious_200k(self.scale),
        ]
    }

    /// Generates a dataset deterministically for this env.
    pub fn dataset(&self, spec: &DatasetSpec) -> XmlDataset {
        generate(spec, self.seed ^ 0xD5)
    }

    /// The shared run configuration (same hyperparameters for every
    /// algorithm, §V-A), with the learning rate from [`grid_learning_rate`].
    pub fn run_config(&self, base_lr: f64) -> RunConfig {
        let mut c = RunConfig::paper_defaults(self.b_max, self.batches_per_mega);
        c.hidden = self.hidden;
        c.base_lr = base_lr;
        c.seed = self.seed;
        c.mega_batch_limit = Some(self.mega_limit);
        c.overhead_scale = self.scale;
        c.sampled_softmax = self.sampled;
        c.sparse_merge = self.sparse_merge;
        c
    }

    /// Runs one GPU algorithm on a heterogeneous `n_gpus` server.
    pub fn run(
        &self,
        spec: TrainerSpec,
        n_gpus: usize,
        dataset: &XmlDataset,
        lr: f64,
    ) -> RunResult {
        Trainer::new(spec, heterogeneous_server(n_gpus), self.run_config(lr)).run(dataset)
    }

    /// Writes an artifact under the output directory, returning its path.
    pub fn write_artifact(&self, name: &str, contents: &str) -> PathBuf {
        std::fs::create_dir_all(&self.out_dir).expect("create results dir");
        let path = self.out_dir.join(name);
        let mut f = std::fs::File::create(&path).expect("create artifact");
        f.write_all(contents.as_bytes()).expect("write artifact");
        path
    }
}

/// The paper's learning-rate selection (§V-A): grid the rate at `b_max` in
/// powers of 10 and keep the one with the best accuracy after a short
/// Adaptive SGD probe; rates for other batch sizes follow linear scaling
/// inside the trainer.
pub fn grid_learning_rate(env: &Env, dataset: &XmlDataset) -> f64 {
    let mut best = (-1.0f64, 0.1f64);
    for lr in [1.0, 0.1, 0.01] {
        let mut config = env.run_config(lr);
        // A longer probe than the first few mega-batches: high rates look
        // good early and collapse later, so judge at ~1/3 of the real run.
        config.mega_batch_limit = Some((env.mega_limit / 3).clamp(3, 8));
        let result = Trainer::new(
            asgd_core::algorithms::adaptive_sgd(),
            heterogeneous_server(2),
            config,
        )
        .run(dataset);
        let acc = result.best_accuracy();
        if acc > best.0 {
            best = (acc, lr);
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults_parse() {
        let env = Env::from_env();
        assert!(env.scale > 0.0);
        assert!(env.b_max >= 8);
    }

    #[test]
    fn parse_softmax_resolves_the_env_triple() {
        assert_eq!(parse_softmax(None, None, None), None);
        assert_eq!(parse_softmax(Some("dense"), Some(4), Some(9)), None);
        let s = parse_softmax(Some("sampled"), None, None).unwrap();
        assert_eq!(s, SampledSoftmax::defaults(64));
        let s = parse_softmax(Some(" SAMPLED "), Some(4), Some(128)).unwrap();
        assert_eq!(s.tables, 4);
        assert_eq!(s.neg_samples, 128);
        assert_eq!(s.k_bits, SampledSoftmax::defaults(128).k_bits);
    }

    #[test]
    fn run_config_carries_the_sampled_choice() {
        let mut env = Env::smoke();
        assert_eq!(env.run_config(0.1).sampled_softmax, None);
        env.sampled = Some(SampledSoftmax::defaults(32));
        assert_eq!(
            env.run_config(0.1).sampled_softmax,
            Some(SampledSoftmax::defaults(32))
        );
    }

    #[test]
    fn smoke_env_produces_datasets() {
        let env = Env::smoke();
        let specs = env.dataset_specs();
        assert_eq!(specs.len(), 2);
        let ds = env.dataset(&specs[0]);
        assert!(!ds.train.is_empty());
    }

    #[test]
    fn grid_picks_a_power_of_ten() {
        let env = Env::smoke();
        let ds = env.dataset(&DatasetSpec::tiny("grid"));
        let lr = grid_learning_rate(&env, &ds);
        assert!([1.0, 0.1, 0.01].contains(&lr));
    }

    #[test]
    fn write_artifact_creates_file() {
        let env = Env::smoke();
        let path = env.write_artifact("unit.csv", "a,b\n1,2\n");
        assert!(path.exists());
        assert_eq!(std::fs::read_to_string(path).unwrap(), "a,b\n1,2\n");
    }
}
