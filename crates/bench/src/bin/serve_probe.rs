//! Serve determinism probe: one end-to-end train → checkpoint → serve
//! session on a 2-fast/2-slow fleet, rendered to a deterministic report.
//!
//! The CI gate runs this binary with the same `(request seed, fault seed)`
//! under different `ASGD_THREADS` settings (in separate processes, so each
//! gets its own worker pool) and byte-diffs the reports: a serving run must
//! be a pure function of its seeds, independent of host parallelism. The
//! report carries the per-replica micro-batch trajectories, p50/p95/p99
//! latency (per replica and fleet-wide), throughput, the fault log, and an
//! FNV checksum of every served prediction — so a diff catches scheduler
//! *and* numeric divergence alike.
//!
//! The workload is the serving testbed from DESIGN.md: a wide-head
//! classifier (amazon-670k twin at scale 0.1, hidden width 8) where
//! per-request softmax/top-k cost dominates per-batch flat cost — the shape
//! in which micro-batch size is the latency knob. The probe serves the same
//! stream twice, adaptive and fixed-batch, and reports the p99 ratio.
//!
//! Environment (on top of the shared `ASGD_*` variables):
//!   ASGD_SERVE_SEED       request-stream seed           (default 11)
//!   ASGD_SLO_MS           per-request latency SLO, ms   (default 0.05)
//!   ASGD_FAULT_SEED       seed for `FaultPlan::random`  (default 7)
//!   ASGD_SERVE_RPS        offered load, requests/s      (default 1.6e6)
//!   ASGD_SERVE_REQUESTS   stream length                 (default 2000)

use asgd_core::trainer::{RunConfig, Trainer};
use asgd_core::{algorithms, load_model};
use asgd_data::DatasetSpec;
use asgd_gpusim::profile::{homogeneous_server, two_tier_server};
use asgd_gpusim::FaultPlan;
use asgd_model::MlpConfig;
use asgd_serve::{open_loop_stream, serve, LatencyStats, ServeConfig, ServeOutcome};
use asgd_stats::fnv1a;
use std::fmt::Write as _;

/// Dataset scale of the serving twin (wide head: ~67k classes).
const SERVE_SCALE: f64 = 0.1;
/// Hidden width of the serving twin (tiny, so per-request cost dominates).
const SERVE_HIDDEN: usize = 8;
/// Fast devices / slow devices / slow-tier speed factor.
const FLEET: (usize, usize, f64) = (2, 2, 0.25);
/// Maximum (and fixed-baseline) micro-batch size.
const B_MAX: usize = 64;

fn quantiles_us(stats: &LatencyStats) -> (f64, f64, f64) {
    let v = |q: &asgd_stats::P2Quantile| q.value().unwrap_or(0.0) * 1e6;
    (v(&stats.p50), v(&stats.p95), v(&stats.p99))
}

fn render(report: &mut String, label: &str, outcome: &ServeOutcome) {
    let _ = writeln!(report, "[{label}]");
    for line in &outcome.fault_log {
        let _ = writeln!(report, "fault: {line}");
    }
    for (i, r) in outcome.replicas.iter().enumerate() {
        let (p50, p95, p99) = quantiles_us(&r.stats);
        let _ = writeln!(
            report,
            "replica {i} {} alive={} served={} batches={} final_b={} \
             p50_us={p50:.9} p95_us={p95:.9} p99_us={p99:.9}",
            r.name, r.alive, r.served, r.batches, r.final_b
        );
        let _ = writeln!(report, "replica {i} trajectory {:?}", r.trajectory);
    }
    let (p50, p95, p99) = quantiles_us(&outcome.fleet_latency());
    let _ = writeln!(
        report,
        "fleet p50_us={p50:.9} p95_us={p95:.9} p99_us={p99:.9} \
         throughput_rps={:.3} makespan_s={:.9} served={} lost={}",
        outcome.throughput_rps(),
        outcome.makespan_s,
        outcome.served,
        outcome.lost
    );
    let _ = writeln!(
        report,
        "predictions fnv {:#018x}",
        fnv1a(outcome.predictions.iter().flat_map(|p| p.to_le_bytes()))
    );
}

fn main() {
    let env = asgd_bench::Env::from_env();
    fn var<T: std::str::FromStr>(name: &str, default: T) -> T {
        std::env::var(name)
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(default)
    }
    let serve_seed: u64 = var("ASGD_SERVE_SEED", 11);
    let slo_ms: f64 = var("ASGD_SLO_MS", 0.05);
    let fault_seed: u64 = var("ASGD_FAULT_SEED", 7);
    let rate_rps: f64 = var("ASGD_SERVE_RPS", 1.6e6);
    let n_requests: usize = var("ASGD_SERVE_REQUESTS", 2000);

    // Train the serving twin for two mega-batches and hand the model over
    // exactly as production would: TrainingState → serveable checkpoint
    // bytes → `load_model`.
    let ds = asgd_data::generate(&DatasetSpec::amazon_670k(SERVE_SCALE), env.seed ^ 0xD5);
    let mconfig = MlpConfig {
        num_features: ds.num_features,
        hidden: SERVE_HIDDEN,
        num_classes: ds.num_labels,
    };
    let mut tconfig = RunConfig::paper_defaults(48, 24);
    tconfig.hidden = SERVE_HIDDEN;
    tconfig.base_lr = 0.1;
    tconfig.seed = env.seed;
    tconfig.mega_batch_limit = Some(2);
    tconfig.overhead_scale = SERVE_SCALE;
    let trained = Trainer::new(algorithms::adaptive_sgd(), homogeneous_server(2), tconfig).run(&ds);
    let state = trained.final_state.expect("gpu trainer keeps a snapshot");
    let model = load_model(state.export_model(&mconfig)).expect("serveable checkpoint decodes");

    let (fast, slow, slow_factor) = FLEET;
    let profiles: Vec<_> = two_tier_server(fast, slow, slow_factor)
        .into_iter()
        .map(|p| p.with_overhead_scale(0.05))
        .collect();
    let pool = &ds.test.features;
    let requests = open_loop_stream(serve_seed, n_requests, rate_rps, pool.rows());
    // ~3 controller windows cover the stream's early-to-mid life, so the
    // random plan's mid-run events (including the device loss) actually fire.
    let plan = FaultPlan::random(fault_seed, profiles.len(), 3);
    let config = ServeConfig::paper_defaults(B_MAX, slo_ms * 1e-3);

    // One faulted session (the chaos artifact: degradation + zero loss) and
    // one fault-free adaptive/fixed pair (the SLO-controller comparison).
    let faulted = serve(&model, &profiles, pool, &requests, &plan, &config);
    let adaptive = serve(
        &model,
        &profiles,
        pool,
        &requests,
        &FaultPlan::new(),
        &config,
    );
    let fixed = serve(
        &model,
        &profiles,
        pool,
        &requests,
        &FaultPlan::new(),
        &config.clone().fixed_batch(),
    );

    let mut report = String::new();
    let _ = writeln!(
        report,
        "serve probe: request seed {serve_seed}, fault seed {fault_seed}, \
         slo {slo_ms} ms, rate {rate_rps} rps, {n_requests} requests, \
         {fast}+{slow} devices (slow x{slow_factor})"
    );
    let _ = writeln!(
        report,
        "model: {} h{SERVE_HIDDEN}, trained 2 megas, checkpoint roundtrip",
        ds.name
    );
    for e in plan.events() {
        let _ = writeln!(report, "plan: {e:?}");
    }
    render(&mut report, "adaptive under faults", &faulted);
    render(&mut report, "adaptive", &adaptive);
    render(&mut report, "fixed-batch baseline", &fixed);
    let a99 = adaptive.fleet_latency().p99.value().unwrap_or(0.0);
    let f99 = fixed.fleet_latency().p99.value().unwrap_or(0.0);
    let _ = writeln!(
        report,
        "slo controller: adaptive p99 {:.9} us vs fixed {:.9} us (fixed/adaptive {:.4})",
        a99 * 1e6,
        f99 * 1e6,
        f99 / a99
    );
    let _ = writeln!(
        report,
        "degradation: faulted run served {} of {} requests, lost {}",
        faulted.served,
        requests.len(),
        faulted.lost
    );

    print!("{report}");
    let path = env.write_artifact(
        &format!("serve_probe_{serve_seed}_{fault_seed}.txt"),
        &report,
    );
    eprintln!("wrote {path:?}");
}
