//! Regenerates Figure 5 (Adaptive SGD scalability vs SLIDE; 5a = sim_time, 5b = epochs).
fn main() {
    let env = asgd_bench::Env::from_env();
    let csv = asgd_bench::experiments::fig5(&env);
    print!("{csv}");
    let path = env.write_artifact("fig5.csv", &csv);
    eprintln!("wrote {path:?}");
    eprint!("{}", asgd_bench::experiments::summarize_curves(&csv));
}
