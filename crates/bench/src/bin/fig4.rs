//! Regenerates Figure 4 (time-to-accuracy, 4 algorithms x 1/2/4 GPUs x 2 datasets).
fn main() {
    let env = asgd_bench::Env::from_env();
    let csv = asgd_bench::experiments::fig4(&env);
    print!("{csv}");
    let path = env.write_artifact("fig4.csv", &csv);
    eprintln!("wrote {path:?}");
    eprint!("{}", asgd_bench::experiments::summarize_curves(&csv));
}
