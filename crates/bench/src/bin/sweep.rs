//! Hyperparameter sweep: Adaptive SGD over a `learning rate × b_max` grid
//! (the selection procedure of §V-A, expanded into a full reproducible
//! artifact). Prints one row per cell with best accuracy and
//! time-to-80%-of-global-best.

use asgd_bench::Env;
use asgd_core::algorithms;
use asgd_core::trainer::Trainer;
use asgd_gpusim::profile::heterogeneous_server;

fn main() {
    let env = Env::from_env();
    let spec = &env.dataset_specs()[0];
    let ds = env.dataset(spec);
    eprintln!(
        "sweeping on {} ({} train samples)",
        spec.name,
        ds.train.len()
    );

    let lrs = [1.0, 0.3, 0.1, 0.03, 0.01];
    let b_maxes = [env.b_max / 2, env.b_max, env.b_max * 2];
    let mut cells = Vec::new();
    for &lr in &lrs {
        for &b_max in &b_maxes {
            let mut config = env.run_config(lr);
            config.b_max = b_max;
            config.mega_batch_size = b_max * env.batches_per_mega;
            config.scaling_params = asgd_core::ScalingParams::paper_defaults(b_max);
            let result =
                Trainer::new(algorithms::adaptive_sgd(), heterogeneous_server(4), config).run(&ds);
            cells.push((lr, b_max, result));
        }
    }

    let global_best = cells
        .iter()
        .map(|(_, _, r)| r.best_accuracy())
        .fold(0.0f64, f64::max);
    let target = global_best * 0.8;
    let mut out = String::from("lr,b_max,best_accuracy,time_to_80pct,final_sim_time\n");
    for (lr, b_max, r) in &cells {
        let tta = r
            .time_to_accuracy(target)
            .map(|t| format!("{t:.6}"))
            .unwrap_or_else(|| "never".into());
        out.push_str(&format!(
            "{lr},{b_max},{:.4},{tta},{:.6}\n",
            r.best_accuracy(),
            r.records.last().map(|x| x.sim_time).unwrap_or(0.0)
        ));
    }
    print!("{out}");
    let path = env.write_artifact("sweep.csv", &out);
    eprintln!("wrote {path:?} (target accuracy {target:.4})");
}
