//! Runs the complete evaluation (Table I + Figures 1-6 + ablations) and
//! writes every artifact under `results/`.
//!
//! With arguments, runs only the experiments whose artifact name contains
//! one of them: `run_all BENCH_kernels` regenerates just
//! `results/BENCH_kernels.json`.
use asgd_bench::experiments as ex;
use asgd_bench::Env;

fn main() {
    let filters: Vec<String> = std::env::args().skip(1).collect();
    let env = Env::from_env();
    println!("experiment environment: {env:?}\n");
    let t0 = std::time::Instant::now();
    type Exp = (&'static str, fn(&Env) -> String);
    let experiments: [Exp; 17] = [
        ("table1.csv", ex::table1),
        ("hot_path.csv", ex::hot_path),
        ("merge_stage.csv", ex::merge_stage),
        ("BENCH_hot_path.json", ex::bench_hot_path_json),
        ("BENCH_kernels.json", ex::bench_kernels_json),
        ("BENCH_full_scale.json", ex::bench_full_scale_json),
        ("BENCH_merge.json", ex::bench_merge_json),
        ("BENCH_cluster.json", ex::bench_cluster_json),
        ("BENCH_sparse_merge.json", ex::bench_sparse_merge_json),
        ("BENCH_serve.json", ex::bench_serve_json),
        ("BENCH_autoscale.json", ex::bench_autoscale_json),
        ("fig1.csv", ex::fig1),
        ("fig2_trace.txt", ex::fig2_trace),
        ("fig4.csv", ex::fig4),
        ("fig5.csv", ex::fig5),
        ("fig6.csv", ex::fig6),
        ("ablations.csv", ex::ablations),
    ];
    for (name, run) in experiments {
        if !filters.is_empty() && !filters.iter().any(|f| name.contains(f.as_str())) {
            continue;
        }
        let csv = run(&env);
        let path = env.write_artifact(name, &csv);
        println!(
            "== {name} ({path:?}, {:.1}s elapsed) ==",
            t0.elapsed().as_secs_f64()
        );
        if name.starts_with("fig4") || name.starts_with("fig5") {
            print!("{}", ex::summarize_curves(&csv));
        } else {
            print!("{csv}");
        }
        println!();
    }
    println!("total: {:.1}s", t0.elapsed().as_secs_f64());
}
