//! Sampled-softmax determinism probe: one training run with the LSH-sampled
//! output layer, rendered to a deterministic report.
//!
//! The CI gate runs this binary under different `ASGD_THREADS` settings and
//! build profiles (in separate processes, so each gets its own worker pool)
//! and byte-diffs the reports against each other and against the checked-in
//! `results/sampled_probe.txt`: a sampled run is a pure function of
//! `(data seed, LSH seed)` — candidate selection, the gathered-row kernels,
//! and the sparse output update all follow the reduction contract
//! (DESIGN.md, "Sampled softmax & sparse output path"). A diff is a
//! determinism regression.
//!
//! Environment (on top of the shared `ASGD_*` variables): the probe always
//! trains sampled; `ASGD_LSH_TABLES` / `ASGD_NEG_SAMPLES` tune the sampler
//! exactly as they do for `run_all` (defaults here: 8 tables, 16 negatives,
//! kept small so the debug-profile leg of the gate stays fast).

use asgd_core::trainer::SampledSoftmax;
use asgd_stats::fnv1a;

fn main() {
    let env = asgd_bench::Env::from_env();
    let sampled = env.sampled.unwrap_or_else(|| SampledSoftmax::defaults(16));

    let dataset = env.dataset(&asgd_bench::Env::dataset_specs(&env)[0]);
    let mut config = env.run_config(0.2);
    config.trace = true;
    config.sampled_softmax = Some(sampled);
    let result = asgd_core::trainer::Trainer::new(
        asgd_core::algorithms::adaptive_sgd(),
        asgd_gpusim::profile::heterogeneous_server(4),
        config,
    )
    .run(&dataset);

    let mut report = String::new();
    report.push_str(&format!(
        "sampled probe: {} tables x {} bits, {} negatives, lsh seed {:#x}, {} megas\n",
        sampled.tables, sampled.k_bits, sampled.neg_samples, sampled.seed, env.mega_limit
    ));
    for r in &result.records {
        report.push_str(&format!(
            "merge {} time {:.9} loss {:.9} acc {:.6} updates {:?}\n",
            r.merge_index, r.sim_time, r.mean_loss, r.accuracy, r.updates
        ));
    }
    report.push_str(&format!(
        "trace fnv {:#018x}\n",
        fnv1a(result.trace.bytes())
    ));
    report.push_str(&format!(
        "model fnv {:#018x}\n",
        fnv1a(result.final_model.iter().flat_map(|w| w.to_le_bytes()))
    ));

    print!("{report}");
    let path = env.write_artifact("sampled_probe.txt", &report);
    eprintln!("wrote {path:?}");
}
