//! Cluster determinism probe: one faulted training run over a simulated
//! multi-node cluster (hierarchical two-level merge), rendered to a
//! deterministic report.
//!
//! The CI gate runs this binary at the full 64×4 shape under different
//! `ASGD_THREADS` settings (in separate processes, so each gets its own
//! worker pool) and byte-diffs the reports: a clustered run must be a pure
//! function of `(run seed, fault seed, cluster shape)`, independent of host
//! parallelism and of how the intra-node and inter-node phases interleave.
//! The fault plan comes from `FaultPlan::random_cluster`, so whole-server
//! losses and inter-node stalls are part of the gated trajectory.
//!
//! Environment (on top of the shared `ASGD_*` variables):
//!   ASGD_SERVERS             number of server nodes (default 4)
//!   ASGD_DEVICES_PER_SERVER  devices on each node (default 4)
//!   ASGD_FAULT_SEED          seed for `FaultPlan::random_cluster` (default 7)
//!   ASGD_INTER               inter-node schedule, `ring` (default) or `tree`
//!   ASGD_PRECISION           merge-arena storage tier, `f32` (default) or
//!                            `bf16`; bf16 artifacts get a `_bf16` suffix

use asgd_collective::InterNode;
use asgd_core::ClusterConfig;
use asgd_stats::fnv1a;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn main() {
    let env = asgd_bench::Env::from_env();
    let fault_seed: u64 = std::env::var("ASGD_FAULT_SEED")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(7);
    let servers = env_usize("ASGD_SERVERS", 4);
    let per = env_usize("ASGD_DEVICES_PER_SERVER", 4);
    let n_gpus = servers * per;
    let inter = match std::env::var("ASGD_INTER").as_deref() {
        Ok("tree") => InterNode::Tree,
        _ => InterNode::Ring,
    };

    let precision = asgd_tensor::Precision::from_env_or(asgd_tensor::Precision::F32);

    let dataset = env.dataset(&asgd_bench::Env::dataset_specs(&env)[0]);
    let plan = asgd_gpusim::FaultPlan::random_cluster(fault_seed, servers, per, env.mega_limit);
    let mut config = env.run_config(0.2);
    config.trace = true;
    config.fault_plan = Some(plan.clone());
    config.precision = precision;
    config.cluster = Some(ClusterConfig {
        servers,
        devices_per_server: per,
        inter,
    });
    let result = asgd_core::trainer::Trainer::new(
        asgd_core::algorithms::adaptive_sgd(),
        asgd_gpusim::profile::heterogeneous_server(n_gpus),
        config,
    )
    .run(&dataset);

    let mut report = String::new();
    report.push_str(&format!(
        "cluster probe: fault seed {fault_seed}, {servers}x{per} cluster ({n_gpus} gpus), \
         {inter:?} inter-node, {} megas, {} merge arena\n",
        env.mega_limit,
        precision.name()
    ));
    for e in plan.events() {
        report.push_str(&format!("plan: {e:?}\n"));
    }
    report.push_str(&result.chaos.render());
    for r in &result.records {
        report.push_str(&format!(
            "merge {} time {:.9} loss {:.9} acc {:.6} updates {:?}\n",
            r.merge_index, r.sim_time, r.mean_loss, r.accuracy, r.updates
        ));
    }
    report.push_str(&format!(
        "trace fnv {:#018x}\n",
        fnv1a(result.trace.bytes())
    ));
    report.push_str(&format!(
        "model fnv {:#018x}\n",
        fnv1a(result.final_model.iter().flat_map(|w| w.to_le_bytes()))
    ));

    print!("{report}");
    let suffix = match precision {
        asgd_tensor::Precision::F32 => String::new(),
        _ => format!("_{}", precision.name()),
    };
    let path = env.write_artifact(
        &format!("cluster_probe_{fault_seed}_{servers}x{per}{suffix}.txt"),
        &report,
    );
    eprintln!("wrote {path:?}");
}
