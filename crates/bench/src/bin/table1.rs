//! Regenerates Table I (dataset statistics).
fn main() {
    let env = asgd_bench::Env::from_env();
    let csv = asgd_bench::experiments::table1(&env);
    print!("{csv}");
    let path = env.write_artifact("table1.csv", &csv);
    eprintln!("wrote {path:?}");
}
