//! Regenerates Figure 1 (per-GPU epoch time on an identical batch).
fn main() {
    let env = asgd_bench::Env::from_env();
    let csv = asgd_bench::experiments::fig1(&env);
    print!("{csv}");
    let path = env.write_artifact("fig1.csv", &csv);
    eprintln!("wrote {path:?}");
}
