//! Sparse-merge determinism probe: one sampled-softmax training run executed
//! twice — dense merge path and sparse delta merge path — rendered to a
//! deterministic report that *contains* the bit-identity verdict.
//!
//! The CI gate runs this binary under different `ASGD_THREADS` settings and
//! build profiles (in separate processes, so each gets its own worker pool)
//! and byte-diffs the reports against each other and the checked-in
//! `results/sparse_merge_probe_7.txt`: the sparse delta merge promises the
//! merged model is bit-identical to the dense flat reduction (see DESIGN.md,
//! "Sparse delta merge") — only the merge stage's simulated timing and byte
//! accounting change, and those are pure functions of the run seed too. The
//! default fault plan replays device losses through the survivor-subset
//! union path, so degraded merges are part of the gated trajectory.
//!
//! Environment (on top of the shared `ASGD_*` variables):
//!   ASGD_SERVERS             server nodes (default 1 = flat single server)
//!   ASGD_DEVICES_PER_SERVER  devices per node (default 4)
//!   ASGD_FAULT_SEED          seed for `FaultPlan::random[_cluster]`
//!                            (default 7; `none` disables faults)
//!   ASGD_PRECISION           merge-arena storage tier, `f32` (default) or
//!                            `bf16`; bf16 artifacts get a `_bf16` suffix

use asgd_collective::InterNode;
use asgd_core::trainer::SampledSoftmax;
use asgd_core::{ClusterConfig, RunResult};
use asgd_stats::{fnv, fnv1a};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn main() {
    let env = asgd_bench::Env::from_env();
    let servers = env_usize("ASGD_SERVERS", 1);
    let per = env_usize("ASGD_DEVICES_PER_SERVER", 4);
    let n_gpus = servers.max(1) * per;
    let fault_seed = match std::env::var("ASGD_FAULT_SEED").as_deref() {
        Ok("none") => None,
        Ok(v) => v.trim().parse().ok(),
        Err(_) => Some(7u64),
    };
    let precision = asgd_tensor::Precision::from_env_or(asgd_tensor::Precision::F32);

    let dataset = env.dataset(&asgd_bench::Env::dataset_specs(&env)[0]);
    let mut config = env.run_config(0.2);
    config.trace = true;
    config.precision = precision;
    config.sampled_softmax = Some(env.sampled.unwrap_or_else(|| SampledSoftmax::defaults(64)));
    // Probe-scale unions are dense (tiny label space), which would send
    // every merge through the dense fallback; force the sparse schedule so
    // the golden gates the path under test. Traffic claims live in
    // BENCH_sparse_merge.json, not here.
    config.sparse_max_density = 1.0;
    if servers > 1 {
        config.cluster = Some(ClusterConfig {
            servers,
            devices_per_server: per,
            inter: InterNode::Ring,
        });
    }
    let plan = fault_seed.map(|seed| {
        if servers > 1 {
            asgd_gpusim::FaultPlan::random_cluster(seed, servers, per, env.mega_limit)
        } else {
            asgd_gpusim::FaultPlan::random(seed, n_gpus, env.mega_limit)
        }
    });
    config.fault_plan = plan.clone();

    let run = |sparse: bool| -> RunResult {
        let mut c = config.clone();
        c.sparse_merge = sparse;
        asgd_core::trainer::Trainer::new(
            asgd_core::algorithms::adaptive_sgd(),
            asgd_gpusim::profile::heterogeneous_server(n_gpus),
            c,
        )
        .run(&dataset)
    };
    let dense = run(false);
    let sparse = run(true);
    assert_eq!(
        dense.final_model, sparse.final_model,
        "sparse delta merge broke the bit-identity contract"
    );

    let mut report = String::new();
    report.push_str(&format!(
        "sparse-merge probe: fault seed {fault_seed:?}, {servers}x{per} ({n_gpus} gpus), \
         {} megas, {} merge arena\n",
        env.mega_limit,
        precision.name()
    ));
    for e in plan.iter().flat_map(|p| p.events()) {
        report.push_str(&format!("plan: {e:?}\n"));
    }
    report.push_str(&sparse.chaos.render());
    for r in &sparse.records {
        report.push_str(&format!(
            "merge {} time {:.9} loss {:.9} acc {:.6} updates {:?}\n",
            r.merge_index, r.sim_time, r.mean_loss, r.accuracy, r.updates
        ));
    }
    let stats = sparse.sparse_merge.as_ref().expect("sparse stats");
    report.push_str(&format!(
        "sparse merges {} fallbacks {} sparse_bytes {} dense_bytes {} ratio {:.3}\n",
        stats.merges,
        stats.fallbacks,
        stats.sparse_bytes,
        stats.dense_bytes,
        stats.bytes_ratio()
    ));
    report.push_str(&format!(
        "dense model fnv {:#018x}\n",
        fnv::fnv1a_f32(&dense.final_model)
    ));
    report.push_str(&format!(
        "sparse model fnv {:#018x}\n",
        fnv::fnv1a_f32(&sparse.final_model)
    ));
    report.push_str("models bit-identical true\n");
    report.push_str(&format!(
        "sparse trace fnv {:#018x}\n",
        fnv1a(sparse.trace.bytes())
    ));

    print!("{report}");
    let suffix = match precision {
        asgd_tensor::Precision::F32 => String::new(),
        _ => format!("_{}", precision.name()),
    };
    let seed_tag = fault_seed.map_or_else(|| "none".into(), |s| s.to_string());
    let path = env.write_artifact(
        &format!("sparse_merge_probe_{seed_tag}{suffix}.txt"),
        &report,
    );
    eprintln!("wrote {path:?}");
}
