//! Chaos determinism probe: one faulted training run, rendered to a
//! deterministic report.
//!
//! The CI gate runs this binary with the same `ASGD_FAULT_SEED` under
//! different `ASGD_THREADS` settings (in separate processes, so each gets
//! its own worker pool) and byte-diffs the reports: a faulted run must be a
//! pure function of `(run seed, fault seed)`, independent of host
//! parallelism. A diff is a determinism regression; the logged fault seed
//! reproduces it exactly.
//!
//! Environment (on top of the shared `ASGD_*` variables):
//!   ASGD_FAULT_SEED   seed for `FaultPlan::random` (default 7)
//!   ASGD_FAULT_GPUS   server size (default 4)
//!   ASGD_PRECISION    merge-arena storage tier, `f32` (default) or `bf16`;
//!                     bf16 artifacts get a `_bf16` name suffix so the two
//!                     tiers keep separate goldens

use asgd_stats::fnv1a;

fn main() {
    let env = asgd_bench::Env::from_env();
    let fault_seed: u64 = std::env::var("ASGD_FAULT_SEED")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(7);
    let n_gpus: usize = std::env::var("ASGD_FAULT_GPUS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(4);

    let precision = asgd_tensor::Precision::from_env_or(asgd_tensor::Precision::F32);

    let dataset = env.dataset(&asgd_bench::Env::dataset_specs(&env)[0]);
    let plan = asgd_gpusim::FaultPlan::random(fault_seed, n_gpus, env.mega_limit);
    let mut config = env.run_config(0.2);
    config.trace = true;
    config.fault_plan = Some(plan.clone());
    config.precision = precision;
    let result = asgd_core::trainer::Trainer::new(
        asgd_core::algorithms::adaptive_sgd(),
        asgd_gpusim::profile::heterogeneous_server(n_gpus),
        config,
    )
    .run(&dataset);

    let mut report = String::new();
    report.push_str(&format!(
        "chaos probe: fault seed {fault_seed}, {n_gpus} gpus, {} megas, {} merge arena\n",
        env.mega_limit,
        precision.name()
    ));
    for e in plan.events() {
        report.push_str(&format!("plan: {e:?}\n"));
    }
    report.push_str(&result.chaos.render());
    for r in &result.records {
        report.push_str(&format!(
            "merge {} time {:.9} loss {:.9} acc {:.6} updates {:?}\n",
            r.merge_index, r.sim_time, r.mean_loss, r.accuracy, r.updates
        ));
    }
    report.push_str(&format!(
        "trace fnv {:#018x}\n",
        fnv1a(result.trace.bytes())
    ));
    report.push_str(&format!(
        "model fnv {:#018x}\n",
        fnv1a(result.final_model.iter().flat_map(|w| w.to_le_bytes()))
    ));

    print!("{report}");
    let suffix = match precision {
        asgd_tensor::Precision::F32 => String::new(),
        _ => format!("_{}", precision.name()),
    };
    let path = env.write_artifact(&format!("chaos_probe_{fault_seed}{suffix}.txt"), &report);
    eprintln!("wrote {path:?}");
}
