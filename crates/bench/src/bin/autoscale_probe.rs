//! Autoscale determinism probe: the multi-tenant fleet (weight-dedup
//! registry, Zipf prediction cache, hedged requests, elastic autoscaling)
//! served end-to-end and rendered to a deterministic report.
//!
//! The CI gate runs this binary with the same `(load seed, fault seed)`
//! under different `ASGD_THREADS` settings (in separate processes, so each
//! gets its own worker pool) and byte-diffs the reports against each other
//! and the checked-in goldens: a fleet run must be a pure function of its
//! seeds, independent of host parallelism. The report carries the fault
//! log, per-slot cost/latency lines, the autoscale trajectory, cache /
//! hedge / dedup counters, exact fleet percentiles, and an FNV checksum of
//! every served prediction — so a diff catches scheduler *and* numeric
//! divergence alike.
//!
//! Four sessions over the same stream: elastic under faults (the chaos
//! artifact), elastic fault-free, and the two static baselines the
//! autoscaler is judged against — static-min (the elastic floor, misses the
//! SLO at peak) and static-max (every slot, holds the SLO but pays for idle
//! troughs).
//!
//! Environment (on top of the shared `ASGD_*` variables):
//!   ASGD_SERVE_SEED      load-stream seed                  (default 11)
//!   ASGD_FAULT_SEED      seed for `FaultPlan::random`      (default 7)
//!   ASGD_TENANTS         tenant count                      (default 12)
//!   ASGD_ZIPF_S          popularity Zipf exponent          (default 1.1)
//!   ASGD_CACHE_CAP       prediction-cache entries          (default 1024)
//!   ASGD_HEDGE_Q         hedge quantile, 0 disables        (default 0.95)
//!   ASGD_AUTOSCALE       elastic floor / static-min size   (default 2)
//!   ASGD_SLO_MS          per-request latency SLO, ms       (default 0.4)
//!   ASGD_SERVE_RPS       diurnal-midline load, rps         (default 2e6)
//!   ASGD_SERVE_REQUESTS  stream length                     (default 6000)
//!   ASGD_PRECISION       registry tier, `f32` or `bf16`; bf16 artifacts
//!                        get a `_bf16` name suffix

use asgd_bench::fleet::{FleetKnobs, FleetScenario, FLEET_SLOTS};
use asgd_gpusim::FaultPlan;
use asgd_serve::FleetOutcome;
use asgd_stats::fnv1a;
use std::fmt::Write as _;

fn render(report: &mut String, label: &str, o: &FleetOutcome) {
    let _ = writeln!(report, "[{label}]");
    for line in &o.fault_log {
        let _ = writeln!(report, "fault: {line}");
    }
    for (i, r) in o.replicas.iter().enumerate() {
        let _ = writeln!(
            report,
            "slot {i} {} server={} alive={} commissioned={} served={} \
             batches={} final_b={} device_s={:.9}",
            r.name,
            r.server,
            r.alive,
            r.commissioned,
            r.served,
            r.batches,
            r.final_b,
            r.device_seconds
        );
    }
    if !o.trajectory.is_empty() {
        let traj: Vec<(u64, usize, usize)> = o
            .trajectory
            .iter()
            .map(|d| (d.window, d.depth, d.replicas))
            .collect();
        let _ = writeln!(report, "autoscale trajectory {traj:?}");
    }
    let _ = writeln!(
        report,
        "cache hits={} misses={} insertions={} evictions={} hit_rate={:.6}",
        o.cache.hits,
        o.cache.misses,
        o.cache.insertions,
        o.cache.evictions,
        o.cache.hit_rate()
    );
    let _ = writeln!(
        report,
        "hedge issued={} wins={} losses={} cancelled_s={:.9}",
        o.hedge.issued, o.hedge.wins, o.hedge.losses, o.hedge.cancelled_s
    );
    let p = |q: f64| o.latency_percentile(q).unwrap_or(0.0) * 1e6;
    let _ = writeln!(
        report,
        "fleet p50_us={:.9} p95_us={:.9} p99_us={:.9} throughput_rps={:.3} \
         makespan_s={:.9} device_s={:.9} served={} lost={}",
        p(0.50),
        p(0.95),
        p(0.99),
        o.throughput_rps(),
        o.makespan_s,
        o.device_seconds(),
        o.served,
        o.lost
    );
    let _ = writeln!(
        report,
        "predictions fnv {:#018x}",
        fnv1a(o.predictions.iter().flat_map(|p| p.to_le_bytes()))
    );
}

fn main() {
    let env = asgd_bench::Env::from_env();
    let knobs = FleetKnobs::from_env();
    let scenario = FleetScenario::build(env.seed, knobs.clone());
    let plan = FaultPlan::random(knobs.fault_seed, FLEET_SLOTS, 3);

    let faulted = scenario.run(&scenario.auto_config(), &plan);
    let auto = scenario.run(&scenario.auto_config(), &FaultPlan::new());
    let static_min = scenario.run(&scenario.static_config(knobs.r_min), &FaultPlan::new());
    let static_max = scenario.run(&scenario.static_config(FLEET_SLOTS), &FaultPlan::new());

    let mut report = String::new();
    let _ = writeln!(
        report,
        "autoscale probe: load seed {}, fault seed {}, {} tenants on {} \
         versions, zipf {}, cache {}, hedge q {}, r_min {}, slo {} ms, \
         rate {} rps, {} requests, {} slots on {} servers, {}",
        knobs.serve_seed,
        knobs.fault_seed,
        knobs.tenants,
        scenario.registry.len(),
        knobs.zipf_s,
        knobs.cache_cap,
        knobs.hedge_q,
        knobs.r_min,
        knobs.slo_ms,
        knobs.base_rps,
        scenario.requests.len(),
        FLEET_SLOTS,
        scenario.topo.servers(),
        knobs.precision.name(),
    );
    let d = scenario.registry.dedup_stats();
    let _ = writeln!(
        report,
        "registry: {} versions, {} distinct models, {} logical bytes, \
         {} stored bytes, dedup ratio {:.4}",
        scenario.registry.len(),
        scenario.registry.distinct_models(),
        d.bytes_logical,
        d.bytes_stored,
        d.ratio()
    );
    for e in plan.events() {
        let _ = writeln!(report, "plan: {e:?}");
    }
    render(&mut report, "elastic under faults", &faulted);
    render(&mut report, "elastic", &auto);
    render(&mut report, "static-min", &static_min);
    render(&mut report, "static-max", &static_max);

    let p99 = |o: &FleetOutcome| o.latency_percentile(0.99).unwrap_or(0.0);
    let slo = scenario.slo_s();
    let _ = writeln!(
        report,
        "slo {:.3} us: elastic p99 {:.9} us ({}), static-min p99 {:.9} us \
         ({}), static-max p99 {:.9} us ({})",
        slo * 1e6,
        p99(&auto) * 1e6,
        if p99(&auto) <= slo { "met" } else { "MISSED" },
        p99(&static_min) * 1e6,
        if p99(&static_min) <= slo {
            "met"
        } else {
            "MISSED"
        },
        p99(&static_max) * 1e6,
        if p99(&static_max) <= slo {
            "met"
        } else {
            "MISSED"
        },
    );
    let _ = writeln!(
        report,
        "cost: elastic {:.9} device-s vs static-min {:.9} vs static-max \
         {:.9} (static-max/elastic {:.4})",
        auto.device_seconds(),
        static_min.device_seconds(),
        static_max.device_seconds(),
        static_max.device_seconds() / auto.device_seconds()
    );
    let _ = writeln!(
        report,
        "degradation: faulted elastic served {} of {} requests, lost {}",
        faulted.served,
        scenario.requests.len(),
        faulted.lost
    );

    print!("{report}");
    let path = env.write_artifact(
        &format!(
            "autoscale_probe_{}_{}{}.txt",
            knobs.serve_seed,
            knobs.fault_seed,
            knobs.suffix()
        ),
        &report,
    );
    eprintln!("wrote {path:?}");
}
