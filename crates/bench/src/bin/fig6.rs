//! Regenerates Figure 6 (batch size evolution + perturbation activation).
fn main() {
    let env = asgd_bench::Env::from_env();
    let csv = asgd_bench::experiments::fig6(&env);
    print!("{csv}");
    let path = env.write_artifact("fig6.csv", &csv);
    eprintln!("wrote {path:?}");
}
