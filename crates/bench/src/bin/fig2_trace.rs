//! Regenerates Figure 2 as a machine-readable dispatch trace.
fn main() {
    let env = asgd_bench::Env::from_env();
    let trace = asgd_bench::experiments::fig2_trace(&env);
    print!("{trace}");
    let path = env.write_artifact("fig2_trace.txt", &trace);
    eprintln!("wrote {path:?}");
}
