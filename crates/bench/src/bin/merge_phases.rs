//! Phase-level timing of one merge-stage iteration, f32 vs bf16 arena.
//! Diagnostic companion to `merge_stage.csv` — not part of `run_all`.

use asgd_collective::{allreduce_flat, Algorithm, CollectiveContext};
use asgd_core::merging::{apply_global_update_flat, redistribute_global};
use asgd_gpusim::{profile, SimTime, Topology};
use asgd_model::{Mlp, MlpConfig};
use asgd_tensor::{FlatVec, Precision};
use std::time::Instant;

fn main() {
    let n = 4;
    let config = MlpConfig {
        num_features: 135_909,
        hidden: 128,
        num_classes: 6_701,
    };
    let weights = vec![1.0 / n as f64; n];
    let ctx = CollectiveContext::new(Topology::pcie(n), &profile::heterogeneous_server(n));
    let arrivals = vec![SimTime::ZERO; n];
    let algo = Algorithm::MultiStreamRing { partitions: 4 };

    for precision in [Precision::F32, Precision::Bf16] {
        let mut replicas: Vec<Mlp> = (0..n).map(|g| Mlp::init(&config, 3 + g as u64)).collect();
        let mut global = replicas[0].to_flat();
        let mut prev_global = global.clone();
        let mut bufs: Vec<FlatVec> = (0..n).map(|_| FlatVec::empty(precision)).collect();
        let mut phases = [0.0f64; 4];
        let iters = 10;
        for it in 0..iters + 1 {
            let record = it > 0; // first iteration is warm-up
            let t0 = Instant::now();
            for (r, buf) in replicas.iter().zip(bufs.iter_mut()) {
                r.write_flat_buf(buf);
            }
            let t1 = Instant::now();
            allreduce_flat(&mut bufs, &weights, algo, &ctx, &arrivals);
            let t2 = Instant::now();
            apply_global_update_flat(&bufs[0], &mut global, &mut prev_global, 0.9);
            let t3 = Instant::now();
            redistribute_global(&global, &mut bufs);
            for (r, buf) in replicas.iter_mut().zip(bufs.iter()) {
                r.read_flat_buf(buf);
            }
            let t4 = Instant::now();
            if record {
                phases[0] += (t1 - t0).as_secs_f64();
                phases[1] += (t2 - t1).as_secs_f64();
                phases[2] += (t3 - t2).as_secs_f64();
                phases[3] += (t4 - t3).as_secs_f64();
            }
        }
        println!(
            "{}: gather {:.1} ms  allreduce {:.1} ms  global_update {:.1} ms  redistribute {:.1} ms",
            precision.name(),
            phases[0] * 1e3 / iters as f64,
            phases[1] * 1e3 / iters as f64,
            phases[2] * 1e3 / iters as f64,
            phases[3] * 1e3 / iters as f64,
        );
    }
}
