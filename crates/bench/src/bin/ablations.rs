//! Ablation study: each Adaptive SGD mechanism removed in isolation.
fn main() {
    let env = asgd_bench::Env::from_env();
    let csv = asgd_bench::experiments::ablations(&env);
    print!("{csv}");
    let path = env.write_artifact("ablations.csv", &csv);
    eprintln!("wrote {path:?}");
}
