//! Kernel determinism probe: every blocked/vectorized compute kernel run at
//! awkward shapes, rendered to a deterministic report.
//!
//! The CI gate runs this binary under different `ASGD_THREADS` settings (in
//! separate processes, so each gets its own worker pool) and byte-diffs the
//! reports against each other and against the checked-in
//! `results/kernel_probe.txt`: the kernel layer's reduction contract
//! (DESIGN.md, "Kernel layer") promises results are a pure function of the
//! inputs, independent of host parallelism. A diff is a contract
//! regression.
//!
//! Shapes are chosen to hit every code path: full MR×LANES tiles, row and
//! column remainders, single rows, empty CSR rows, and both the streaming
//! and materialized top-k paths.

use asgd_sparse::{ops as sops, CsrMatrix};
use asgd_stats::fnv::{fnv1a_f32 as fnv_f32, fnv1a_u16 as fnv_u16, fnv1a_u32 as fnv_u32};
use asgd_tensor::{ops, Matrix};
use std::fmt::Write as _;

/// Deterministic pseudo-random fill in [-0.5, 0.5).
fn filled(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed | 1;
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn main() {
    let env = asgd_bench::Env::from_env();
    let mut report = String::new();
    let _ = writeln!(
        report,
        "kernel probe: lanes {}, mr {}, threads-invariant goldens",
        asgd_tensor::kernels::LANES,
        asgd_tensor::kernels::MR
    );

    // Shapes hitting full tiles plus every remainder combination.
    let shapes: [(usize, usize, usize); 5] =
        [(1, 1, 1), (3, 7, 5), (4, 8, 8), (13, 24, 19), (33, 40, 53)];
    for &(m, k, n) in &shapes {
        let a = filled(m, k, 0x5EED ^ ((m as u64) << 8) ^ k as u64);
        let b = filled(k, n, 0xBEEF ^ ((n as u64) << 4) ^ k as u64);
        let at = filled(k, m, 0xA5A5 ^ ((m as u64) << 2) ^ n as u64);
        let bt = filled(n, k, 0xC3C3 ^ ((k as u64) << 6) ^ m as u64);
        let mut c = filled(m, n, 0xD00D ^ (m * n) as u64);
        ops::gemm(1.0, &a, &b, 0.0, &mut c);
        let _ = writeln!(
            report,
            "gemm_nn {m}x{k}x{n} fnv {:#018x}",
            fnv_f32(c.as_slice())
        );
        ops::gemm(0.5, &a, &b, 0.25, &mut c);
        let _ = writeln!(
            report,
            "gemm_nn_ab {m}x{k}x{n} fnv {:#018x}",
            fnv_f32(c.as_slice())
        );
        ops::gemm_tn(1.0, &at, &b, 0.0, &mut c);
        let _ = writeln!(
            report,
            "gemm_tn {m}x{k}x{n} fnv {:#018x}",
            fnv_f32(c.as_slice())
        );
        ops::gemm_nt(1.0, &a, &bt, 0.0, &mut c);
        let _ = writeln!(
            report,
            "gemm_nt {m}x{k}x{n} fnv {:#018x}",
            fnv_f32(c.as_slice())
        );

        let bias: Vec<f32> = (0..n).map(|j| (j as f32 * 0.37).sin()).collect();
        ops::gemm_bias_relu(&a, &b, &bias, &mut c);
        let _ = writeln!(
            report,
            "gemm_bias_relu {m}x{k}x{n} fnv {:#018x}",
            fnv_f32(c.as_slice())
        );
        let kk = 3.min(n);
        let mut topk = vec![0u32; m * kk];
        ops::gemm_bias_topk(&a, &b, &bias, kk, &mut topk);
        let _ = writeln!(
            report,
            "gemm_bias_topk {m}x{k}x{n} k{kk} fnv {:#018x}",
            fnv_u32(&topk)
        );
    }

    // Gathered-row kernels of the sampled-softmax output path: candidate
    // index sets with duplicates-free ascending order at shapes hitting full
    // tiles and remainders, including a single candidate and a gather that
    // permutes far-apart rows.
    for &(m, k, big_n, c_n) in &[
        (1usize, 4usize, 9usize, 1usize),
        (5, 8, 40, 7),
        (13, 24, 101, 19),
        (33, 40, 257, 53),
    ] {
        let a = filled(m, k, 0x6A7E ^ ((m as u64) << 8) ^ k as u64);
        let bt = filled(big_n, k, 0x1DEA ^ ((big_n as u64) << 4) ^ k as u64);
        let bn = filled(big_n, c_n, 0x7EA1 ^ ((c_n as u64) << 6) ^ m as u64);
        let idx: Vec<u32> = (0..c_n).map(|i| (i * big_n / c_n) as u32).collect();
        let bias: Vec<f32> = (0..c_n).map(|j| (j as f32 * 0.29).sin()).collect();
        let mut out = filled(m, c_n, 0xF00D ^ (m * c_n) as u64);
        ops::gemm_nt_gather(1.0, &a, &bt, &idx, 0.0, &mut out);
        let _ = writeln!(
            report,
            "gemm_nt_gather {m}x{k}x{c_n}of{big_n} fnv {:#018x}",
            fnv_f32(out.as_slice())
        );
        ops::gemm_nt_gather_bias(&a, &bt, &idx, &bias, &mut out);
        let _ = writeln!(
            report,
            "gemm_nt_gather_bias {m}x{k}x{c_n}of{big_n} fnv {:#018x}",
            fnv_f32(out.as_slice())
        );
        let ac = filled(m, c_n, 0xBA11 ^ (m + c_n) as u64);
        let mut dh = Matrix::zeros(m, bn.cols());
        ops::gemm_nn_gather(1.0, &ac, &bn, &idx, 0.0, &mut dh);
        let _ = writeln!(
            report,
            "gemm_nn_gather {m}x{c_n}of{big_n}x{} fnv {:#018x}",
            bn.cols(),
            fnv_f32(dh.as_slice())
        );
    }

    // Sparse kernels on a CSR with empty, short and long rows.
    let rows: Vec<(Vec<u32>, Vec<f32>)> = (0..23)
        .map(|r| {
            let nnz = [0usize, 1, 3, 9, 17][r % 5];
            let idx: Vec<u32> = (0..nnz).map(|i| ((r * 7 + i * 11) % 40) as u32).collect();
            let mut idx = idx;
            idx.sort_unstable();
            idx.dedup();
            let val: Vec<f32> = idx
                .iter()
                .map(|&i| (i as f32 * 0.3 + r as f32).cos())
                .collect();
            (idx, val)
        })
        .collect();
    let x = CsrMatrix::from_rows(40, &rows).unwrap();
    for n in [1usize, 8, 19, 24] {
        let w = filled(40, n, 0xFACE ^ n as u64);
        let bias: Vec<f32> = (0..n).map(|j| (j as f32 * 0.21).cos()).collect();
        let mut h = Matrix::zeros(23, n);
        sops::spmm(&x, &w, &mut h);
        let _ = writeln!(report, "spmm 23x40x{n} fnv {:#018x}", fnv_f32(h.as_slice()));
        sops::spmm_bias_relu(&x, &w, &bias, &mut h);
        let _ = writeln!(
            report,
            "spmm_bias_relu 23x40x{n} fnv {:#018x}",
            fnv_f32(h.as_slice())
        );
        let mut grad = Matrix::zeros(40, n);
        let g = filled(23, n, 0xCAFE ^ n as u64);
        sops::spmm_tn_acc(1.0, &x, &g, &mut grad);
        let _ = writeln!(
            report,
            "spmm_tn_acc 40x23x{n} fnv {:#018x}",
            fnv_f32(grad.as_slice())
        );
    }

    // bf16 conversion kernels — the storage tier's only rounding operation
    // (DESIGN.md, "Precision tiers & rounding contract"). Edge values force
    // every branch of the RNE formula (ties both ways, NaN quieting,
    // infinities, denormals, signed zeros); the bulk sweep at an odd length
    // exercises the AVX2 body plus the scalar tail.
    {
        use asgd_tensor::bf16;
        let edges: Vec<f32> = vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            f32::from_bits(0x3F80_8000), // tie, even mantissa: rounds down
            f32::from_bits(0x3F81_8000), // tie, odd mantissa: rounds up
            f32::from_bits(0x3F80_8001), // just above the tie
            f32::from_bits(0x7F7F_FFFF), // f32::MAX → rounds to +inf
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            f32::from_bits(0x7F80_0001), // signalling NaN → quieted
            f32::from_bits(0x0000_0001), // smallest denormal
            f32::from_bits(0x0080_0000), // smallest normal
            f32::MIN_POSITIVE,
        ];
        let mut half = vec![0u16; edges.len()];
        bf16::narrow_slice(&edges, &mut half);
        let _ = writeln!(report, "bf16_narrow edges fnv {:#018x}", fnv_u16(&half));
        let mut wide = vec![0.0f32; half.len()];
        bf16::widen_slice(&half, &mut wide);
        let _ = writeln!(report, "bf16_widen edges fnv {:#018x}", fnv_f32(&wide));

        let bulk = filled(1, 1013, 0xB16);
        let mut half = vec![0u16; 1013];
        bf16::narrow_slice(bulk.as_slice(), &mut half);
        let _ = writeln!(report, "bf16_narrow 1x1013 fnv {:#018x}", fnv_u16(&half));
        let mut wide = vec![0.0f32; 1013];
        bf16::widen_slice(&half, &mut wide);
        let _ = writeln!(report, "bf16_widen 1x1013 fnv {:#018x}", fnv_f32(&wide));
    }

    print!("{report}");
    let path = env.write_artifact("kernel_probe.txt", &report);
    eprintln!("wrote {path:?}");
}
