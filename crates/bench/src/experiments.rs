//! One function per paper artifact (Table I, Figures 1–6, ablations).
//!
//! Every function returns the CSV (or trace text) it generates so the
//! binaries can both print it and persist it under `results/`.

use crate::{grid_learning_rate, Env};
use asgd_core::slide::{SlideConfig, SlideTrainer};
use asgd_core::trainer::Trainer;
use asgd_core::{algorithms, RunResult};
use asgd_data::{DatasetSpec, DatasetStats};
use asgd_gpusim::device::build_server;
use asgd_gpusim::profile::heterogeneous_server;
use asgd_model::workload::epoch_kernels;
use asgd_model::MlpConfig;
use asgd_stats::StreamingSummary;
use std::fmt::Write as _;

/// **Table I** — dataset statistics of the synthetic twins next to the
/// paper's full-scale reference values.
pub fn table1(env: &Env) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", DatasetStats::csv_header());
    for spec in env.dataset_specs() {
        let ds = env.dataset(&spec);
        let _ = writeln!(out, "{}", DatasetStats::compute(&ds).csv_row());
    }
    // The paper's reference rows for shape comparison.
    let _ = writeln!(
        out,
        "amazon-670k@1.0 (paper),135909,670091,490449,153025,76.0,5.0"
    );
    let _ = writeln!(
        out,
        "delicious-200k@1.0 (paper),782585,205443,196606,100095,302.0,75.0"
    );
    out
}

/// **Figure 1** — per-GPU epoch time on an *identical* batch across the
/// 4-V100 heterogeneous server; the paper reports a gap of up to 32%.
pub fn fig1(env: &Env) -> String {
    let spec = &env.dataset_specs()[0];
    let ds = env.dataset(spec);
    let mconfig = MlpConfig {
        num_features: ds.num_features,
        hidden: env.hidden,
        num_classes: ds.num_labels,
    };
    let batch = env.b_max.min(ds.train.len());
    let ids: Vec<usize> = (0..batch).collect();
    let nnz: usize = ids.iter().map(|&i| ds.train.features.row_nnz(i)).sum();
    let kinds = epoch_kernels(&mconfig, batch, nnz);
    let profiles: Vec<_> = heterogeneous_server(4)
        .into_iter()
        .map(|p| p.with_overhead_scale(env.scale))
        .collect();
    let mut devices = build_server(&profiles, env.seed);

    let mut out = String::from("gpu,mean_epoch_us,std_us,min_us,max_us\n");
    let mut means = StreamingSummary::new();
    for (i, d) in devices.iter_mut().enumerate() {
        let mut s = StreamingSummary::new();
        for _ in 0..200 {
            s.record(d.execute_all(&kinds) * 1e6);
        }
        let _ = writeln!(
            out,
            "{i},{:.3},{:.3},{:.3},{:.3}",
            s.mean(),
            s.std_dev(),
            s.min().unwrap(),
            s.max().unwrap()
        );
        means.record(s.mean());
    }
    let _ = writeln!(
        out,
        "# fastest-to-slowest gap: {:.1}% (paper: up to 32%)",
        means.relative_gap().unwrap() * 100.0
    );
    out
}

/// **Figure 2** — the dynamic-scheduling dispatch timeline on two
/// heterogeneous GPUs over two mega-batches (the paper's illustration,
/// reproduced as a machine-readable trace).
pub fn fig2_trace(env: &Env) -> String {
    let spec = &env.dataset_specs()[0];
    let ds = env.dataset(spec);
    let lr = grid_learning_rate(env, &ds);
    let mut config = env.run_config(lr);
    config.mega_batch_limit = Some(2);
    config.trace = true;
    let profiles = vec![
        asgd_gpusim::DeviceProfile::v100("gpu-fast").with_overhead_scale(env.scale),
        asgd_gpusim::DeviceProfile::v100("gpu-slow")
            .with_speed(0.62)
            .with_overhead_scale(env.scale),
    ];
    let result = Trainer::new(algorithms::adaptive_sgd(), profiles, config).run(&ds);
    result.trace
}

/// **Hot path** — wall-clock training throughput of one replica's
/// `train_batch_ws` steps at both dataset shapes: the quantity the
/// persistent worker pool + reusable workspace optimize. (The Criterion
/// variant lives in `benches/hot_path.rs`; this row makes the number part of
/// every full evaluation run so regressions show up in the artifact
/// trajectory.)
pub fn hot_path(env: &Env) -> String {
    let mut out = String::from("dataset,batch,steps,ms_per_batch,samples_per_s\n");
    for r in measure_hot_path(env) {
        let _ = writeln!(
            out,
            "{},{},{},{:.3},{:.0}",
            r.dataset,
            r.batch,
            r.steps,
            r.ns_per_iter / 1e6,
            r.throughput
        );
    }
    out
}

/// One timed hot-path shape, shared by the CSV row and `BENCH_hot_path.json`.
struct HotPathRow {
    dataset: String,
    shape: String,
    batch: usize,
    steps: usize,
    ns_per_iter: f64,
    /// samples/s
    throughput: f64,
}

fn measure_hot_path(env: &Env) -> Vec<HotPathRow> {
    use asgd_model::{Mlp, Workspace};
    let mut rows = Vec::new();
    for spec in env.dataset_specs() {
        let ds = env.dataset(&spec);
        let config = MlpConfig {
            num_features: ds.num_features,
            hidden: env.hidden,
            num_classes: ds.num_labels,
        };
        let batch = env.b_max.min(ds.train.len());
        let ids: Vec<usize> = (0..batch).collect();
        let x = ds.train.features.select_rows(&ids);
        let labels: Vec<&[u32]> = ids.iter().map(|&i| ds.train.labels[i].as_slice()).collect();
        let mut model = Mlp::init(&config, env.seed);
        let mut ws = Workspace::new(&config);
        model.train_batch_ws(&x, &labels, 1e-3, &mut ws); // warm up buffers
        let steps = 10;
        let t0 = std::time::Instant::now();
        for _ in 0..steps {
            model.train_batch_ws(&x, &labels, 1e-3, &mut ws);
        }
        let elapsed = t0.elapsed().as_secs_f64();
        rows.push(HotPathRow {
            dataset: spec.name.clone(),
            shape: format!(
                "{}x{}x{}",
                config.num_features, config.hidden, config.num_classes
            ),
            batch,
            steps,
            ns_per_iter: elapsed * 1e9 / steps as f64,
            throughput: (batch * steps) as f64 / elapsed,
        });
    }
    rows
}

/// Machine-readable twin of the `hot_path` CSV: one JSON object per shape
/// with `ns_per_iter` (one training step) and samples/s throughput.
pub fn bench_hot_path_json(env: &Env) -> String {
    let mut out = String::from("{\n  \"bench\": \"hot_path\",\n  \"rows\": [\n");
    let rows = measure_hot_path(env);
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"dataset\": \"{}\", \"shape\": \"{}\", \"batch\": {}, \
             \"ns_per_iter\": {:.0}, \"throughput\": {:.1}, \
             \"throughput_unit\": \"samples_per_s\"}}",
            r.dataset, r.shape, r.batch, r.ns_per_iter, r.throughput
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// One timed kernel variant, shared by the rows of `BENCH_kernels.json`.
struct KernelRow {
    kernel: &'static str,
    variant: &'static str,
    ns_per_iter: f64,
    gflops: f64,
}

/// Median wall-clock nanoseconds of `iters` single calls (one warm-up call
/// first). Medians keep one slow outlier from hiding a 2x kernel win.
fn median_ns(mut f: impl FnMut(), iters: usize) -> f64 {
    f(); // warm up (page in buffers, wake the pool)
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// **Kernel micro-benchmarks** (`BENCH_kernels.json`) — the blocked /
/// vectorized GEMM and SpMM micro-kernels against the verbatim scalar
/// kernels they replaced (preserved in [`asgd_tensor::reference`]), at the
/// amazon hot-path shape: `batch = 256`, `hidden = 128`, and the label
/// space of `amazon_670k(scale / 2)` — at the default `ASGD_SCALE = 0.01`
/// that is exactly the `256 × 128 × ~3350` shape of `benches/kernels.rs`
/// and `benches/hot_path.rs`. Tiled rows carry `speedup_vs_scalar` so the
/// artifact shows the before/after ratio directly.
pub fn bench_kernels_json(env: &Env) -> String {
    use asgd_data::generate;
    use asgd_tensor::parallel::{par_chunks_mut, MIN_PAR_ROWS};
    use asgd_tensor::{ops, reference, Matrix};

    fn filled(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        let data: Vec<f32> = (0..rows * cols)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    let batch = 256usize;
    let hidden = 128usize;
    let spec = DatasetSpec::amazon_670k(env.scale / 2.0);
    let classes = spec.num_labels;
    let ds = generate(&spec, env.seed ^ 0xD5);
    let ids: Vec<usize> = (0..batch).map(|i| i % ds.train.len()).collect();
    let x = ds.train.features.select_rows(&ids);
    let iters = 5;

    let h = filled(batch, hidden, 1);
    let w1 = filled(x.cols(), hidden, 5);
    let w2 = filled(hidden, classes, 2);
    let d = filled(batch, classes, 3);
    let mut out = Matrix::zeros(batch, classes);
    let mut grad = Matrix::zeros(hidden, classes);
    let mut dh = Matrix::zeros(batch, hidden);
    let mut act = Matrix::zeros(batch, hidden);
    let gemm_flops = (2 * batch * hidden * classes) as f64;
    let spmm_flops = (2 * x.nnz() * hidden) as f64;

    // The pre-tiling SpMM, verbatim: per-row scalar j-loop with zero-skip,
    // same row partition (kept here because `asgd_tensor::reference` is
    // dense-only).
    let spmm_scalar = |c: &mut Matrix| {
        let n = hidden;
        let (indptr, indices, values) = (x.indptr(), x.indices(), x.values());
        let bdata = w1.as_slice();
        par_chunks_mut(c.as_mut_slice(), batch, n, MIN_PAR_ROWS, |first, chunk| {
            for (r, crow) in chunk.chunks_mut(n).enumerate() {
                crow.fill(0.0);
                let row = first + r;
                for p in indptr[row]..indptr[row + 1] {
                    let v = values[p];
                    if v == 0.0 {
                        continue;
                    }
                    let brow = &bdata[indices[p] as usize * n..indices[p] as usize * n + n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += v * bv;
                    }
                }
            }
        });
    };

    let mut rows: Vec<KernelRow> = Vec::new();
    let pair = |kernel: &'static str,
                flops: f64,
                scalar_ns: f64,
                tiled_ns: f64,
                rows: &mut Vec<KernelRow>| {
        rows.push(KernelRow {
            kernel,
            variant: "scalar",
            ns_per_iter: scalar_ns,
            gflops: flops / scalar_ns,
        });
        rows.push(KernelRow {
            kernel,
            variant: "tiled",
            ns_per_iter: tiled_ns,
            gflops: flops / tiled_ns,
        });
    };

    let s = median_ns(
        || reference::gemm_scalar(1.0, &h, &w2, 0.0, &mut out),
        iters,
    );
    let t = median_ns(|| ops::gemm(1.0, &h, &w2, 0.0, &mut out), iters);
    pair("gemm", gemm_flops, s, t, &mut rows);
    let s = median_ns(
        || reference::gemm_tn_scalar(1.0, &h, &d, 0.0, &mut grad),
        iters,
    );
    let t = median_ns(|| ops::gemm_tn(1.0, &h, &d, 0.0, &mut grad), iters);
    pair("gemm_tn", gemm_flops, s, t, &mut rows);
    let s = median_ns(
        || reference::gemm_nt_scalar(1.0, &d, &w2, 0.0, &mut dh),
        iters,
    );
    let t = median_ns(|| ops::gemm_nt(1.0, &d, &w2, 0.0, &mut dh), iters);
    pair("gemm_nt", gemm_flops, s, t, &mut rows);
    let s = median_ns(|| spmm_scalar(&mut act), iters);
    let t = median_ns(|| asgd_sparse::ops::spmm(&x, &w1, &mut act), iters);
    pair("spmm", spmm_flops, s, t, &mut rows);

    // bf16 storage-tier conversions at the output-layer size: the SIMD
    // slice dispatchers vs a per-element loop over the scalar spec. One
    // converted element counts as one op, so `gflops` reads as Gelem/s.
    let conv_elems = (batch * classes) as f64;
    let mut half = vec![0u16; batch * classes];
    let mut wide = vec![0.0f32; batch * classes];
    let s = median_ns(
        || {
            for (o, &v) in half.iter_mut().zip(d.as_slice()) {
                *o = asgd_tensor::bf16::narrow(v);
            }
        },
        iters,
    );
    let t = median_ns(
        || asgd_tensor::bf16::narrow_slice(d.as_slice(), &mut half),
        iters,
    );
    pair("bf16_narrow", conv_elems, s, t, &mut rows);
    let s = median_ns(
        || {
            for (o, &v) in wide.iter_mut().zip(half.iter()) {
                *o = asgd_tensor::bf16::widen(v);
            }
        },
        iters,
    );
    let t = median_ns(|| asgd_tensor::bf16::widen_slice(&half, &mut wide), iters);
    pair("bf16_widen", conv_elems, s, t, &mut rows);

    // Sampled-softmax output kernels: the gathered-row GEMMs the LSH-sampled
    // path runs at candidate width `c`, against the full-label-width dense
    // kernels they replace. `dense`/`sampled` rows pair up like
    // `scalar`/`tiled` ones; the sampled row carries `speedup_vs_dense`.
    let cand_n = 512.min(classes);
    let cand: Vec<u32> = (0..cand_n).map(|i| (i * classes / cand_n) as u32).collect();
    let w2t = filled(classes, hidden, 4);
    let mut out_c = Matrix::zeros(batch, cand_n);
    let d_c = filled(batch, cand_n, 6);
    let s = median_ns(|| ops::gemm_nt(1.0, &h, &w2t, 0.0, &mut out), iters);
    let t = median_ns(
        || ops::gemm_nt_gather(1.0, &h, &w2t, &cand, 0.0, &mut out_c),
        iters,
    );
    rows.push(KernelRow {
        kernel: "sampled_forward",
        variant: "dense",
        ns_per_iter: s,
        gflops: gemm_flops / s,
    });
    rows.push(KernelRow {
        kernel: "sampled_forward",
        variant: "sampled",
        ns_per_iter: t,
        gflops: (2 * batch * hidden * cand_n) as f64 / t,
    });
    let s = median_ns(|| ops::gemm_nt(1.0, &d, &w2, 0.0, &mut dh), iters);
    let t = median_ns(
        || ops::gemm_nn_gather(1.0, &d_c, &w2t, &cand, 0.0, &mut dh),
        iters,
    );
    rows.push(KernelRow {
        kernel: "sampled_input_grad",
        variant: "dense",
        ns_per_iter: s,
        gflops: gemm_flops / s,
    });
    rows.push(KernelRow {
        kernel: "sampled_input_grad",
        variant: "sampled",
        ns_per_iter: t,
        gflops: (2 * batch * hidden * cand_n) as f64 / t,
    });

    let mut out_json = format!(
        "{{\n  \"bench\": \"kernels\",\n  \"shape\": \"{batch}x{hidden}x{classes}\", \
         \"spmm_nnz\": {},\n  \"rows\": [\n",
        x.nnz()
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out_json,
            "    {{\"kernel\": \"{}\", \"variant\": \"{}\", \"ns_per_iter\": {:.0}, \
             \"gflops\": {:.3}",
            r.kernel, r.variant, r.ns_per_iter, r.gflops
        );
        if r.variant == "tiled" {
            let scalar = &rows[i - 1];
            let _ = write!(
                out_json,
                ", \"speedup_vs_scalar\": {:.2}",
                scalar.ns_per_iter / r.ns_per_iter
            );
        } else if r.variant == "sampled" {
            let dense = &rows[i - 1];
            let _ = write!(
                out_json,
                ", \"speedup_vs_dense\": {:.2}",
                dense.ns_per_iter / r.ns_per_iter
            );
        }
        out_json.push('}');
        out_json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out_json.push_str("  ]\n}\n");
    out_json
}

/// **Full-label-scale training step** (`BENCH_full_scale.json`) — the
/// tentpole measurement of the sampled-softmax path: one replica's
/// `train_batch` wall-clock at the REAL Amazon-670k label space
/// (`135,909 × 128 × 670,091`), dense versus LSH-sampled, next to the dense
/// step at the 1/100 label space (`670,091 / 100 ≈ 6.7k`) every other
/// experiment runs at. The dense full-scale row is the path the sampled
/// softmax replaces; the sampled row carries `speedup_vs_dense_full`
/// (acceptance floor: ≥ 5x). Hardcoded full shape, hidden 128 — the
/// `merge_stage` methodology, not the `ASGD_SCALE` twin.
pub fn bench_full_scale_json(env: &Env) -> String {
    use asgd_core::trainer::SampledSoftmax;
    use asgd_model::{Mlp, Workspace};
    use asgd_slide::CandidateSampler;
    use asgd_sparse::CsrMatrix;

    let features = 135_909usize;
    let hidden = 128usize;
    let full_classes = 670_091usize;
    let small_classes = DatasetSpec::amazon_670k(0.01).num_labels;
    let batch = 64usize;
    let nnz_per_row = 76usize;
    let labels_per_row = 5usize;

    // Deterministic synthetic batch: Table I per-sample statistics at the
    // full feature space, no full-corpus generation needed.
    let mut state = env.seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let rows: Vec<(Vec<u32>, Vec<f32>)> = (0..batch)
        .map(|_| {
            let mut cols: Vec<u32> = (0..nnz_per_row)
                .map(|_| (next() % features as u64) as u32)
                .collect();
            cols.sort_unstable();
            cols.dedup();
            let vals: Vec<f32> = cols
                .iter()
                .map(|&c| ((c % 17) as f32 - 8.0) / 8.0 + 1.5)
                .collect();
            (cols, vals)
        })
        .collect();
    let x = CsrMatrix::from_rows(features, &rows).unwrap();
    let raw_labels: Vec<Vec<u32>> = (0..batch)
        .map(|_| {
            let mut l: Vec<u32> = (0..labels_per_row)
                .map(|_| (next() % full_classes as u64) as u32)
                .collect();
            l.sort_unstable();
            l.dedup();
            l
        })
        .collect();
    let sampled_cfg = env.sampled.unwrap_or_else(|| SampledSoftmax::defaults(64));

    struct Row {
        mode: &'static str,
        classes: usize,
        candidates: Option<usize>,
        steps: usize,
        ns_per_iter: f64,
    }
    let mut out_rows: Vec<Row> = Vec::new();

    let time_steps = |steps: usize, mut f: Box<dyn FnMut() + '_>| -> f64 {
        f(); // warm up buffers and the worker pool
        let t0 = std::time::Instant::now();
        for _ in 0..steps {
            f();
        }
        t0.elapsed().as_secs_f64() * 1e9 / steps as f64
    };

    // Dense step at the 1/100 label space: the shape every other artifact
    // trains at, included as the cost yardstick.
    {
        let config = MlpConfig {
            num_features: features,
            hidden,
            num_classes: small_classes,
        };
        let labels: Vec<Vec<u32>> = raw_labels
            .iter()
            .map(|l| {
                let mut s: Vec<u32> = l.iter().map(|&v| v % small_classes as u32).collect();
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect();
        let mut model = Mlp::init(&config, env.seed);
        let mut ws = Workspace::new(&config);
        let steps = 8;
        let ns = time_steps(
            steps,
            Box::new(|| {
                model.train_batch_ws(&x, &labels, 1e-3, &mut ws);
            }),
        );
        out_rows.push(Row {
            mode: "dense",
            classes: small_classes,
            candidates: None,
            steps,
            ns_per_iter: ns,
        });
    }

    // Dense and sampled steps at the full 670k label space. The dense arm is
    // the path being replaced — a few steps are enough for a stable median
    // and keep the row affordable.
    let config = MlpConfig {
        num_features: features,
        hidden,
        num_classes: full_classes,
    };
    {
        let mut model = Mlp::init(&config, env.seed);
        let mut ws = Workspace::new(&config);
        let steps = 3;
        let ns = time_steps(
            steps,
            Box::new(|| {
                model.train_batch_ws(&x, &raw_labels, 1e-3, &mut ws);
            }),
        );
        out_rows.push(Row {
            mode: "dense",
            classes: full_classes,
            candidates: None,
            steps,
            ns_per_iter: ns,
        });
    }
    {
        let mut model = Mlp::init(&config, env.seed);
        let mut ws = Workspace::new(&config);
        let mut sampler = CandidateSampler::new(
            sampled_cfg.tables,
            sampled_cfg.k_bits,
            hidden,
            sampled_cfg.neg_samples,
            sampled_cfg.seed,
        );
        sampler.rebuild(model.w2());
        let label_views: Vec<&[u32]> = raw_labels.iter().map(|l| l.as_slice()).collect();
        let candidates = sampler.select(&label_views, env.seed).len();
        let steps = 8;
        let mut step_seed = env.seed;
        let ns = time_steps(
            steps,
            Box::new(|| {
                let cand = sampler.select(&label_views, step_seed).to_vec();
                step_seed = step_seed.wrapping_add(1);
                model.train_batch_sampled_ws(&x, &raw_labels, &cand, 1e-3, &mut ws);
            }),
        );
        out_rows.push(Row {
            mode: "sampled",
            classes: full_classes,
            candidates: Some(candidates),
            steps,
            ns_per_iter: ns,
        });
    }

    let dense_full_ns = out_rows
        .iter()
        .find(|r| r.mode == "dense" && r.classes == full_classes)
        .map(|r| r.ns_per_iter);
    let mut out = String::from("{\n  \"bench\": \"full_scale\",\n  \"rows\": [\n");
    for (i, r) in out_rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"mode\": \"{}\", \"shape\": \"{features}x{hidden}x{}\", \
             \"batch\": {batch}, \"steps\": {}, \"ns_per_iter\": {:.0}, \
             \"samples_per_s\": {:.1}",
            r.mode,
            r.classes,
            r.steps,
            r.ns_per_iter,
            batch as f64 / (r.ns_per_iter / 1e9)
        );
        if let Some(c) = r.candidates {
            let _ = write!(out, ", \"candidates\": {c}");
        }
        if r.mode == "sampled" {
            if let Some(dense_ns) = dense_full_ns {
                let _ = write!(
                    out,
                    ", \"speedup_vs_dense_full\": {:.2}",
                    dense_ns / r.ns_per_iter
                );
            }
        }
        out.push('}');
        out.push_str(if i + 1 < out_rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// **Merge-stage throughput** — the scheduler-side merge (gather every
/// replica's flat model, weighted all-reduce, momentum global update,
/// redistribute + load) at the full amazon shape with 4 replicas: the
/// persistent f32 arena against the allocate-per-merge path it replaced,
/// plus the bf16 arena (half the bytes through gather/reduce/redistribute,
/// f32 accumulation, one round point per store). Median of 20 individually
/// timed merges; the `merges` column records that iteration count.
pub fn merge_stage(env: &Env) -> String {
    let mut out = String::from(
        "variant,params,replicas,merges,ms_per_merge,mparams_per_s,sim_collective_ms,sim_mb_moved\n",
    );
    for r in measured_merge_rows(env) {
        let _ = writeln!(
            out,
            "{},{},{},{},{:.3},{:.1},{:.3},{:.3}",
            r.variant,
            r.params,
            r.replicas,
            r.merges,
            r.ns_per_iter / 1e6,
            r.throughput / 1e6,
            r.sim_collective_ms,
            r.sim_bytes_moved as f64 / 1e6
        );
    }
    out
}

/// One timed merge-stage variant, shared by the CSV and `BENCH_merge.json`.
struct MergeStageRow {
    variant: &'static str,
    shape: String,
    params: usize,
    replicas: usize,
    merges: usize,
    ns_per_iter: f64,
    /// replica-parameters merged per second (`params * replicas / t`).
    throughput: f64,
    /// Simulated collective time per merge (deterministic — the cost model
    /// charges per byte, so the bf16 arena's halved wire format halves this
    /// exactly, independent of the benchmark host).
    sim_collective_ms: f64,
    /// Bytes moved over simulated peer links by one all-reduce.
    sim_bytes_moved: usize,
}

/// One process-wide measurement pass shared by the CSV and JSON emitters:
/// the merge stage takes minutes to time and the host is noisy, so emitting
/// both artifacts from separate passes would let them disagree.
fn measured_merge_rows(env: &Env) -> &'static [MergeStageRow] {
    static ROWS: std::sync::OnceLock<Vec<MergeStageRow>> = std::sync::OnceLock::new();
    ROWS.get_or_init(|| measure_merge_stage(env))
}

fn measure_merge_stage(env: &Env) -> Vec<MergeStageRow> {
    use asgd_collective::{allreduce_flat, Algorithm, CollectiveContext};
    use asgd_core::merging::{apply_global_update_flat, redistribute_global};
    use asgd_gpusim::{SimTime, Topology};
    use asgd_model::Mlp;
    use asgd_tensor::{FlatVec, Precision};

    // The full amazon shape, NOT the `ASGD_SCALE` twin. At the scaled shape
    // (~180k params) a merge finishes inside its fixed overheads (pool
    // dispatch, simulated-timing bookkeeping), which is how an earlier
    // artifact recorded the arena at parity with alloc-per-merge. This is
    // the `examples/merge_probe.rs` methodology: hardcoded full shape,
    // per-iteration timing, median of 20.
    let config = MlpConfig {
        num_features: 135_909,
        hidden: 128,
        num_classes: 6_701,
    };
    let n = 4;
    let params = config.param_len();
    let shape = format!(
        "{}x{}x{} x{n}",
        config.num_features, config.hidden, config.num_classes
    );
    let weights = vec![1.0 / n as f64; n];
    let ctx = CollectiveContext::new(Topology::pcie(n), &heterogeneous_server(n));
    let arrivals = vec![SimTime::ZERO; n];
    let algo = Algorithm::MultiStreamRing { partitions: 4 };
    let iters = 20;

    let mut rows = Vec::new();
    for variant in ["arena", "alloc_per_merge", "arena_bf16"] {
        let precision = if variant == "arena_bf16" {
            Precision::Bf16
        } else {
            Precision::F32
        };
        let mut replicas: Vec<Mlp> = (0..n)
            .map(|g| Mlp::init(&config, env.seed + g as u64))
            .collect();
        let mut global = replicas[0].to_flat();
        let mut prev_global = global.clone();
        let mut bufs: Vec<FlatVec> = (0..n).map(|_| FlatVec::empty(precision)).collect();
        let run_merge = |replicas: &mut [Mlp],
                         global: &mut Vec<f32>,
                         prev_global: &mut Vec<f32>,
                         bufs: &mut [FlatVec]| {
            if variant == "alloc_per_merge" {
                let mut fresh: Vec<FlatVec> =
                    replicas.iter().map(|r| FlatVec::F32(r.to_flat())).collect();
                let timing = allreduce_flat(&mut fresh, &weights, algo, &ctx, &arrivals);
                apply_global_update_flat(&fresh[0], global, prev_global, 0.9);
                for r in replicas.iter_mut() {
                    let flat = global.clone();
                    r.load_flat(&flat);
                }
                timing
            } else {
                for (r, buf) in replicas.iter().zip(bufs.iter_mut()) {
                    r.write_flat_buf(buf);
                }
                let timing = allreduce_flat(bufs, &weights, algo, &ctx, &arrivals);
                apply_global_update_flat(&bufs[0], global, prev_global, 0.9);
                redistribute_global(global, bufs);
                for (r, buf) in replicas.iter_mut().zip(bufs.iter()) {
                    r.read_flat_buf(buf);
                }
                timing
            }
        };
        // Warm up (and capture the simulated collective timing, which is a
        // pure function of the shape/precision — identical every iteration).
        let timing = run_merge(&mut replicas, &mut global, &mut prev_global, &mut bufs);
        let mut times = Vec::with_capacity(iters);
        for _ in 0..iters {
            let t0 = std::time::Instant::now();
            run_merge(&mut replicas, &mut global, &mut prev_global, &mut bufs);
            times.push(t0.elapsed().as_secs_f64());
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = times[iters / 2];
        rows.push(MergeStageRow {
            variant,
            shape: shape.clone(),
            params,
            replicas: n,
            merges: iters,
            ns_per_iter: median * 1e9,
            throughput: (params * n) as f64 / median,
            sim_collective_ms: timing.duration() * 1e3,
            sim_bytes_moved: timing.bytes_moved,
        });
    }
    rows
}

/// Machine-readable twin of the `merge_stage` CSV: one JSON object per
/// variant with `ns_per_iter` (median of one full merge) and
/// replica-parameters/s throughput. The `arena_bf16` row carries its
/// speedup over the f32 arena — the mixed-precision acceptance ratio.
pub fn bench_merge_json(env: &Env) -> String {
    let mut out = String::from("{\n  \"bench\": \"merge_stage\",\n  \"rows\": [\n");
    let rows = measured_merge_rows(env);
    let arena_f32 = rows.iter().find(|r| r.variant == "arena");
    let arena_f32_ns = arena_f32.map(|r| r.ns_per_iter);
    let arena_f32_sim_ms = arena_f32.map(|r| r.sim_collective_ms);
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"variant\": \"{}\", \"shape\": \"{}\", \"params\": {}, \
             \"replicas\": {}, \"ns_per_iter\": {:.0}, \"throughput\": {:.0}, \
             \"throughput_unit\": \"replica_params_per_s\", \
             \"sim_collective_ms\": {:.3}, \"sim_bytes_moved\": {}",
            r.variant,
            r.shape,
            r.params,
            r.replicas,
            r.ns_per_iter,
            r.throughput,
            r.sim_collective_ms,
            r.sim_bytes_moved
        );
        if r.variant == "arena_bf16" {
            if let Some(f32_ns) = arena_f32_ns {
                let _ = write!(
                    out,
                    ", \"speedup_vs_arena_f32\": {:.2}",
                    f32_ns / r.ns_per_iter
                );
            }
            if let Some(f32_sim) = arena_f32_sim_ms {
                let _ = write!(
                    out,
                    ", \"sim_collective_speedup_vs_arena_f32\": {:.2}",
                    f32_sim / r.sim_collective_ms
                );
            }
        }
        out.push('}');
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// **Cluster merge scaling** (`BENCH_cluster.json`) — the simulated
/// wall-clock of one full-fleet model merge on an ethernet cluster
/// (`ClusterTopology::ethernet`: PCIe inside each server, a 3 GB/s
/// inter-node link between them), scaled from 1×4 to 64×4 replicas.
/// Each row pits the flat single-level all-reduce (every hop that crosses
/// a server boundary pays the slow link) against the two-level hierarchical
/// schedule (intra-node pool → one inter-node ring/tree over per-server lead
/// buffers → intra-node broadcast). Arithmetic is pinned to the flat
/// reduction order (see `asgd-collective::hierarchical`), so the row also
/// asserts the merged bits are identical across all three schedules —
/// topology choice is a scheduling optimization, never a numeric one.
pub fn bench_cluster_json(env: &Env) -> String {
    use asgd_collective::{
        allreduce_flat, hierarchical_allreduce_flat, Algorithm, CollectiveContext, InterNode,
    };
    use asgd_gpusim::{ClusterTopology, SimTime};
    use asgd_tensor::FlatVec;

    let len = 1usize << 16;
    let shapes: [(usize, usize); 4] = [(1, 4), (4, 4), (16, 4), (64, 4)];

    // Deterministic pseudo-random buffers, seeded per (replica, element).
    let fill = |n: usize| -> Vec<FlatVec> {
        (0..n)
            .map(|d| {
                let mut state = env.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(d as u64 + 1));
                let v: Vec<f32> = (0..len)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
                    })
                    .collect();
                FlatVec::F32(v)
            })
            .collect()
    };

    let mut out = String::from("{\n  \"bench\": \"cluster_merge\",\n  \"rows\": [\n");
    for (i, &(servers, per)) in shapes.iter().enumerate() {
        let n = servers * per;
        let profiles = heterogeneous_server(n);
        let ctx = CollectiveContext::cluster(&ClusterTopology::ethernet(servers, per), &profiles);
        let weights = vec![1.0 / n as f64; n];
        let arrivals = vec![SimTime::ZERO; n];
        let algo = Algorithm::MultiStreamRing {
            partitions: per.min(4),
        };

        let mut flat_bufs = fill(n);
        let flat = allreduce_flat(&mut flat_bufs, &weights, algo, &ctx, &arrivals);
        let mut ring_bufs = fill(n);
        let ring = hierarchical_allreduce_flat(
            &mut ring_bufs,
            &weights,
            algo,
            InterNode::Ring,
            &ctx,
            &arrivals,
        );
        let mut tree_bufs = fill(n);
        let tree = hierarchical_allreduce_flat(
            &mut tree_bufs,
            &weights,
            algo,
            InterNode::Tree,
            &ctx,
            &arrivals,
        );
        let bits = |bufs: &[FlatVec]| -> Vec<u32> {
            match &bufs[0] {
                FlatVec::F32(v) => v.iter().map(|w| w.to_bits()).collect(),
                FlatVec::Bf16(v) => v.iter().map(|&w| w as u32).collect(),
            }
        };
        assert_eq!(
            bits(&flat_bufs),
            bits(&ring_bufs),
            "hierarchical ring changed merge bits at {servers}x{per}"
        );
        assert_eq!(
            bits(&flat_bufs),
            bits(&tree_bufs),
            "hierarchical tree changed merge bits at {servers}x{per}"
        );

        let _ = write!(
            out,
            "    {{\"servers\": {servers}, \"devices_per_server\": {per}, \"replicas\": {n}, \
             \"elems\": {len}, \"flat_ms\": {:.3}, \"hier_ring_ms\": {:.3}, \
             \"hier_tree_ms\": {:.3}, \"flat_bytes\": {}, \"hier_ring_bytes\": {}, \
             \"hier_tree_bytes\": {}, \"ring_speedup_vs_flat\": {:.2}, \
             \"tree_speedup_vs_flat\": {:.2}, \"bits_equal_flat\": true}}",
            flat.duration() * 1e3,
            ring.duration() * 1e3,
            tree.duration() * 1e3,
            flat.bytes_moved,
            ring.bytes_moved,
            tree.bytes_moved,
            flat.duration() / ring.duration(),
            flat.duration() / tree.duration(),
        );
        out.push_str(if i + 1 < shapes.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// **Sparse delta merge** (`BENCH_sparse_merge.json`) — the headline traffic
/// numbers of the sparse delta all-reduce next to its correctness gate.
///
/// `full_scale` rows price one mega-batch merge at the full Amazon-670k
/// sampled-softmax shape (no training; the touched-row sets are drawn from
/// the dataset spec's Zipf feature/label distributions at the paper's batch
/// shape, then priced through `sparse_merge_timing` against the exact dense
/// schedule mirror). The flat f32 row asserts the ≥10x simulated-byte
/// reduction the sparse path exists for.
///
/// `runs` rows are paired *real* dense/sparse training runs at the env's
/// scale — f32 and bf16, flat and a 2×2 cluster — each asserting the merged
/// model is bit-identical to the dense path (`bits_equal_dense`), with the
/// per-run traffic accounting from [`asgd_core::SparseMergeStats`].
pub fn bench_sparse_merge_json(env: &Env) -> String {
    use asgd_collective::{
        dense_schedule, sparse_merge_timing, Algorithm, AllReduceTiming, CollectiveContext,
        InterNode, SparseLayout, SparseMergePlan, DEFAULT_MAX_DENSITY,
    };
    use asgd_core::trainer::SampledSoftmax;
    use asgd_core::ClusterConfig;
    use asgd_gpusim::{ClusterTopology, SimTime, Topology};
    use asgd_stats::Zipf;
    use asgd_tensor::Precision;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    let spec = DatasetSpec::amazon_670k(1.0);
    let (features, classes, hidden) = (spec.num_features, spec.num_labels, 128usize);
    let layout = SparseLayout::new(features, hidden, classes);
    let flat_len = features * hidden + hidden + hidden * classes + classes;
    // The repo's paper-default merge cadence ([`RunConfig::paper_defaults`]):
    // 8 batches of ≤64 samples per replica between merges. The touched-row
    // sets mirror the synthetic generator's mechanism (see
    // `asgd-data::synthetic`): per sample ~5 Zipf labels; each of its ~76
    // features comes from a label's fixed prototype pool with probability
    // 1 − noise, else from the global feature Zipf. Per batch the sampled
    // softmax dirties the positives plus 64 negative candidates.
    let (batches, b) = (8usize, 64usize);
    let feat_zipf = Zipf::new(features as u64, spec.feature_zipf_s).unwrap();
    let label_zipf = Zipf::new(classes as u64, spec.label_zipf_s).unwrap();
    let proto_pool = |label: u64| -> Vec<u32> {
        // Per-label RNG, like the generator: the pool is a fixed property
        // of the label, shared by every sample carrying it.
        let mut lr = StdRng::seed_from_u64(env.seed ^ label.wrapping_mul(0x9E37_79B9));
        (0..spec.prototype_size)
            .map(|_| feat_zipf.sample(&mut lr) as u32 - 1)
            .collect()
    };
    let touched = |replica: usize| -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(env.seed ^ (replica as u64).wrapping_mul(0x9E37));
        let mut pools: std::collections::HashMap<u64, Vec<u32>> = std::collections::HashMap::new();
        let mut marks = vec![0u64; (features + classes).div_ceil(64)];
        for _ in 0..batches {
            let mut batch_candidates: Vec<u64> = Vec::new();
            for _ in 0..b {
                let labels: Vec<u64> = (0..5).map(|_| label_zipf.sample(&mut rng)).collect();
                batch_candidates.extend_from_slice(&labels);
                for _ in 0..76 {
                    let f = if rng.gen::<f64>() >= spec.noise_fraction {
                        let l = labels[rng.gen_range(0..labels.len())];
                        let pool = pools.entry(l).or_insert_with(|| proto_pool(l));
                        pool[rng.gen_range(0..pool.len())]
                    } else {
                        feat_zipf.sample(&mut rng) as u32 - 1
                    };
                    marks[f as usize / 64] |= 1 << (f % 64);
                }
            }
            // Negative candidates ride the same label popularity the LSH
            // buckets concentrate on.
            batch_candidates.extend((0..64).map(|_| label_zipf.sample(&mut rng)));
            for c in batch_candidates {
                let row = features + c as usize - 1;
                marks[row / 64] |= 1 << (row % 64);
            }
        }
        let mut rows = Vec::new();
        for (w, &word) in marks.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                rows.push((w * 64 + bits.trailing_zeros() as usize) as u32);
                bits &= bits - 1;
            }
        }
        rows
    };

    let mut out = String::from("{\n  \"bench\": \"sparse_merge\",\n  \"full_scale\": [\n");
    let shapes: [(&str, usize, usize); 2] = [("flat", 1, 8), ("cluster", 4, 4)];
    let mut first_ratio = None;
    for (i, &(name, servers, per)) in shapes.iter().enumerate() {
        let n = servers * per;
        let profiles = heterogeneous_server(n);
        let ctx = if servers == 1 {
            CollectiveContext::new(Topology::pcie(n), &profiles)
        } else {
            CollectiveContext::cluster(&ClusterTopology::ethernet(servers, per), &profiles)
        };
        let sets: Vec<Vec<u32>> = (0..n).map(touched).collect();
        let refs: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
        let arrivals = vec![SimTime::ZERO; n];
        let algo = Algorithm::MultiStreamRing { partitions: 4 };
        for (j, &elem_bytes) in [4usize, 2].iter().enumerate() {
            let (dense_secs, dense_bytes) = dense_schedule(algo, &ctx, flat_len, elem_bytes);
            let dense = AllReduceTiming {
                start: SimTime::ZERO,
                end: SimTime(dense_secs),
                bytes_moved: dense_bytes,
            };
            let plan = SparseMergePlan {
                algo,
                inter: (servers > 1).then_some(InterNode::Ring),
                elem_bytes,
                max_density: DEFAULT_MAX_DENSITY,
            };
            let s = sparse_merge_timing(&layout, &refs, &plan, &ctx, &arrivals, dense);
            assert!(!s.fell_back, "full-scale unions must stay sparse");
            let ratio = dense_bytes as f64 / s.timing.bytes_moved as f64;
            first_ratio.get_or_insert(ratio);
            let _ = write!(
                out,
                "    {{\"topology\": \"{name}\", \"replicas\": {n}, \
                 \"elem_bytes\": {elem_bytes}, \"flat_elems\": {flat_len}, \
                 \"union_rows\": {}, \"density\": {:.4}, \
                 \"dense_bytes\": {dense_bytes}, \"sparse_bytes\": {}, \
                 \"bytes_ratio\": {ratio:.1}, \"dense_ms\": {:.3}, \"sparse_ms\": {:.3}}}",
                s.union_rows,
                s.density,
                s.timing.bytes_moved,
                dense_secs * 1e3,
                s.timing.duration() * 1e3,
            );
            let last = i + 1 == shapes.len() && j == 1;
            out.push_str(if last { "\n" } else { ",\n" });
        }
    }
    assert!(
        first_ratio.unwrap() >= 10.0,
        "sparse merge must cut simulated merge bytes >= 10x at Amazon-670k \
         shape, got {:.1}x",
        first_ratio.unwrap()
    );
    out.push_str("  ],\n  \"runs\": [\n");

    // Paired real runs: the bit-identity gate at the env's scale.
    let dataset = env.dataset(&spec_at_env_scale(env));
    let combos: [(&str, Precision, Option<ClusterConfig>, usize); 4] = [
        ("flat", Precision::F32, None, 3),
        ("flat", Precision::Bf16, None, 3),
        ("cluster2x2", Precision::F32, Some(cluster_2x2()), 4),
        ("cluster2x2", Precision::Bf16, Some(cluster_2x2()), 4),
    ];
    for (i, (name, precision, cluster, n)) in combos.into_iter().enumerate() {
        let mut cfg = env.run_config(0.1);
        cfg.mega_batch_limit = Some(env.mega_limit.min(6));
        cfg.precision = precision;
        cfg.cluster = cluster;
        cfg.sampled_softmax = Some(env.sampled.unwrap_or_else(|| SampledSoftmax::defaults(64)));
        // Small-scale unions are dense; force the sparse schedule so the
        // gate exercises it (full-scale rows above carry the perf claim).
        cfg.sparse_max_density = 1.0;
        cfg.sparse_merge = false;
        let mut sparse_cfg = cfg.clone();
        sparse_cfg.sparse_merge = true;
        let run =
            |c| Trainer::new(algorithms::adaptive_sgd(), heterogeneous_server(n), c).run(&dataset);
        let dense = run(cfg);
        let sparse = run(sparse_cfg);
        assert_eq!(
            dense.final_model, sparse.final_model,
            "sparse merge changed the merged bits ({name}, {precision:?})"
        );
        let stats = sparse
            .sparse_merge
            .as_ref()
            .expect("sparse run must report stats");
        let sim_time = |r: &RunResult| r.records.last().map_or(0.0, |rec| rec.sim_time);
        let _ = write!(
            out,
            "    {{\"topology\": \"{name}\", \"precision\": \"{precision:?}\", \
             \"replicas\": {n}, \"merges\": {}, \"fallbacks\": {}, \
             \"dense_bytes\": {}, \"sparse_bytes\": {}, \"bytes_ratio\": {:.2}, \
             \"dense_sim_s\": {:.6}, \"sparse_sim_s\": {:.6}, \
             \"bits_equal_dense\": true}}",
            stats.merges,
            stats.fallbacks,
            stats.dense_bytes,
            stats.sparse_bytes,
            stats.bytes_ratio(),
            sim_time(&dense),
            sim_time(&sparse),
        );
        out.push_str(if i + 1 < combos.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn spec_at_env_scale(env: &Env) -> DatasetSpec {
    DatasetSpec::amazon_670k(env.scale.clamp(0.0005, 0.02))
}

fn cluster_2x2() -> asgd_core::ClusterConfig {
    asgd_core::ClusterConfig {
        servers: 2,
        devices_per_server: 2,
        inter: asgd_collective::InterNode::Ring,
    }
}

/// **Serving tail latency** (`BENCH_serve.json`) — the online-inference twin
/// of the training-side batch-size experiments: the wide-head serving
/// testbed (many classes, tiny hidden layer, so per-request softmax/top-k
/// cost dominates per-batch flat cost; see DESIGN.md, "Serving subsystem")
/// on a 2-fast/2-slow fleet, served once with the adaptive SLO controller
/// and once with the fixed `b_max` baseline. Latency and throughput are
/// simulated time, so every row is exact and deterministic. The load
/// constants are tuned at the default `ASGD_SCALE = 0.01` and scale
/// linearly with it (per-request cost is proportional to the head width).
pub fn bench_serve_json(env: &Env) -> String {
    use asgd_gpusim::profile::two_tier_server;
    use asgd_gpusim::FaultPlan;
    use asgd_model::Mlp;
    use asgd_serve::{open_loop_stream, serve, ServeConfig};

    let spec = DatasetSpec::amazon_670k(3.0 * env.scale);
    let ds = env.dataset(&spec);
    let config = MlpConfig {
        num_features: ds.num_features,
        hidden: 8,
        num_classes: ds.num_labels,
    };
    let model = Mlp::init(&config, env.seed);
    let pool = &ds.test.features;
    let profiles: Vec<_> = two_tier_server(2, 2, 0.25)
        .into_iter()
        .map(|p| p.with_overhead_scale(0.05))
        .collect();
    let rate_rps = 4.0e6 * 0.01 / env.scale;
    let slo_s = 1.5e-3 * env.scale;
    // 2400 requests: long enough that the post-engagement tail (the
    // controller needs a window of dispatches before it moves) dominates
    // the p99 estimate, short enough to stay a smoke-affordable row.
    let requests = open_loop_stream(env.seed, 2400, rate_rps, pool.rows());
    let adaptive_cfg = ServeConfig::paper_defaults(64, slo_s);
    let sessions = [
        ("adaptive", adaptive_cfg.clone()),
        ("fixed", adaptive_cfg.fixed_batch()),
    ];

    let mut out = String::from("{\n  \"bench\": \"serve\",\n  \"rows\": [\n");
    for (i, (mode, cfg)) in sessions.iter().enumerate() {
        let o = serve(&model, &profiles, pool, &requests, &FaultPlan::new(), cfg);
        let stats = o.fleet_latency();
        let us = |q: &asgd_stats::P2Quantile| q.value().unwrap_or(0.0) * 1e6;
        let final_b: Vec<usize> = o.replicas.iter().map(|r| r.final_b).collect();
        let _ = write!(
            out,
            "    {{\"mode\": \"{mode}\", \"dataset\": \"{}\", \"requests\": {}, \
             \"p50_us\": {:.3}, \"p95_us\": {:.3}, \"p99_us\": {:.3}, \
             \"throughput_rps\": {:.1}, \"throughput_unit\": \"requests_per_sim_s\", \
             \"final_b\": {final_b:?}, \"served\": {}, \"lost\": {}}}",
            ds.name,
            requests.len(),
            us(&stats.p50),
            us(&stats.p95),
            us(&stats.p99),
            o.throughput_rps(),
            o.served,
            o.lost
        );
        out.push_str(if i + 1 < sessions.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// **BENCH_autoscale** — the multi-tenant fleet scenario (weight-dedup
/// registry, Zipf prediction cache, hedged requests) served three ways over
/// the same diurnal/bursty stream: elastic autoscaling (floor `r_min`,
/// ceiling every slot), static-min (pinned at the floor), and static-max
/// (pinned at every slot). The acceptance summary encodes the claim the
/// subsystem exists to make: elastic holds the p99 SLO that static-min
/// misses, at ≥1.3× less device-seconds than static-max, with the Zipf head
/// hitting the cache more than half the time. Everything is simulated time,
/// so every row — and the acceptance booleans — is deterministic.
pub fn bench_autoscale_json(env: &Env) -> String {
    use crate::fleet::{FleetKnobs, FleetScenario, FLEET_SLOTS};
    use asgd_gpusim::FaultPlan;

    let knobs = FleetKnobs::default();
    let scenario = FleetScenario::build(env.seed, knobs.clone());
    let slo_s = scenario.slo_s();
    let sessions = [
        ("elastic", scenario.auto_config()),
        ("static-min", scenario.static_config(knobs.r_min)),
        ("static-max", scenario.static_config(FLEET_SLOTS)),
    ];

    let mut out = String::from("{\n  \"bench\": \"autoscale\",\n  \"rows\": [\n");
    let mut summary = Vec::new();
    for (i, (mode, cfg)) in sessions.iter().enumerate() {
        let o = scenario.run(cfg, &FaultPlan::new());
        let p = |q: f64| o.latency_percentile(q).unwrap_or(0.0) * 1e6;
        let peak = o
            .trajectory
            .iter()
            .map(|d| d.replicas)
            .max()
            .unwrap_or(o.replicas.iter().filter(|r| r.commissioned).count());
        let _ = write!(
            out,
            "    {{\"mode\": \"{mode}\", \"requests\": {}, \"p50_us\": {:.3}, \
             \"p99_us\": {:.3}, \"slo_met\": {}, \"device_seconds\": {:.9}, \
             \"peak_replicas\": {peak}, \"cache_hit_rate\": {:.4}, \
             \"hedges\": {}, \"served\": {}, \"lost\": {}}}",
            scenario.requests.len(),
            p(0.50),
            p(0.99),
            o.latency_percentile(0.99).unwrap_or(0.0) <= slo_s,
            o.device_seconds(),
            o.cache.hit_rate(),
            o.hedge.issued,
            o.served,
            o.lost
        );
        out.push_str(if i + 1 < sessions.len() { ",\n" } else { "\n" });
        summary.push(o);
    }
    let p99 = |o: &asgd_serve::FleetOutcome| o.latency_percentile(0.99).unwrap_or(0.0);
    let (auto, smin, smax) = (&summary[0], &summary[1], &summary[2]);
    let cost_ratio = smax.device_seconds() / auto.device_seconds();
    let _ = write!(
        out,
        "  ],\n  \"slo_us\": {:.3},\n  \"dedup_ratio\": {:.4},\n  \
         \"cost_ratio_staticmax_over_elastic\": {cost_ratio:.4},\n  \
         \"elastic_meets_slo\": {},\n  \"staticmin_misses_slo\": {},\n  \
         \"cost_ratio_ok\": {},\n  \"cache_hit_ok\": {}\n}}\n",
        slo_s * 1e6,
        scenario.registry.dedup_stats().ratio(),
        p99(auto) <= slo_s,
        p99(smin) > slo_s,
        cost_ratio >= 1.3,
        auto.cache.hit_rate() > 0.5
    );
    out
}

/// Formats one run's curve as CSV rows tagged with dataset/gpus/algorithm.
fn curve_rows(out: &mut String, dataset: &str, gpus: usize, result: &RunResult) {
    for r in &result.records {
        let _ = writeln!(
            out,
            "{dataset},{gpus},{},{},{:.6},{:.4},{:.4},{:.5}",
            result.name, r.merge_index, r.sim_time, r.epochs, r.accuracy, r.mean_loss
        );
    }
}

const CURVE_HEADER: &str = "dataset,gpus,algorithm,merge,sim_time,epochs,accuracy,mean_loss\n";

/// **Figure 4** — time-to-accuracy of Adaptive vs Elastic vs CROSSBOW vs
/// TensorFlow for 1/2/4 GPUs on both datasets. Every algorithm runs for the
/// same simulated time (the §V-A methodology): the budget is what Adaptive
/// needs for `env.mega_limit` mega-batches.
pub fn fig4(env: &Env) -> String {
    let mut out = String::from(CURVE_HEADER);
    for spec in env.dataset_specs() {
        let ds = env.dataset(&spec);
        let lr = grid_learning_rate(env, &ds);
        for gpus in [1usize, 2, 4] {
            // Adaptive sets the time budget.
            let adaptive = env.run(algorithms::adaptive_sgd(), gpus, &ds, lr);
            let budget = adaptive.records.last().map(|r| r.sim_time).unwrap_or(1e-3);
            curve_rows(&mut out, &spec.name, gpus, &adaptive);
            for algo in [
                algorithms::elastic_sgd(),
                algorithms::crossbow_sma(),
                algorithms::tensorflow_sync(),
            ] {
                // On one GPU Elastic degenerates to the same mini-batch SGD
                // as Adaptive (the paper plots them as one curve).
                if gpus == 1 && algo.name == "elastic-sgd" {
                    continue;
                }
                let mut config = env.run_config(lr);
                config.mega_batch_limit = Some(env.mega_limit * 40);
                config.time_limit = Some(budget);
                let result = Trainer::new(algo, heterogeneous_server(gpus), config).run(&ds);
                curve_rows(&mut out, &spec.name, gpus, &result);
            }
        }
    }
    out
}

/// **Figure 5** — scalability: Adaptive SGD on 1/2/4 GPUs vs the SLIDE CPU
/// baseline, reporting both time-to-accuracy (5a: `sim_time` column) and
/// statistical efficiency (5b: `epochs` column).
pub fn fig5(env: &Env) -> String {
    let mut out = String::from(CURVE_HEADER);
    for spec in env.dataset_specs() {
        let ds = env.dataset(&spec);
        let lr = grid_learning_rate(env, &ds);
        // The 1-GPU run sets the shared time budget (§V-A: every
        // configuration runs for the same amount of time); multi-GPU runs
        // then fit more mega-batches into the same window.
        let one = env.run(algorithms::adaptive_sgd(), 1, &ds, lr);
        let slowest_budget = one.records.last().map(|r| r.sim_time).unwrap_or(1e-3);
        let mut gpu_samples = one
            .records
            .last()
            .map(|r| (r.epochs * ds.train.len() as f64) as u64)
            .unwrap_or(0);
        curve_rows(&mut out, &spec.name, 1, &one);
        for gpus in [2usize, 4] {
            let mut config = env.run_config(lr);
            config.mega_batch_limit = Some(env.mega_limit * 40);
            config.time_limit = Some(slowest_budget);
            let result = Trainer::new(
                algorithms::adaptive_sgd(),
                heterogeneous_server(gpus),
                config,
            )
            .run(&ds);
            if let Some(r) = result.records.last() {
                gpu_samples = gpu_samples.max((r.epochs * ds.train.len() as f64) as u64);
            }
            curve_rows(&mut out, &spec.name, gpus, &result);
        }
        // SLIDE gets the same simulated time budget as the slowest GPU
        // configuration (and a generous sample cap as a safety stop).
        let mut slide_cfg = SlideConfig::defaults(env.b_max * env.batches_per_mega);
        slide_cfg.hidden = env.hidden;
        slide_cfg.seed = env.seed;
        slide_cfg.lr = lr * slide_cfg.batch_size as f64 / env.b_max as f64;
        slide_cfg.k_bits = ((ds.num_labels as f64 / 16.0).log2().round() as usize).clamp(3, 12);
        slide_cfg.time_limit = Some(slowest_budget);
        slide_cfg.sample_limit = Some(gpu_samples.max(1) * 4);
        let slide = SlideTrainer::new(slide_cfg).run(&ds);
        curve_rows(&mut out, &spec.name, 0, &slide);
    }
    out
}

/// **Figure 6a** — per-GPU batch size evolution across mega-batches, and
/// **Figure 6b** — perturbation activation per mega-batch. One CSV.
pub fn fig6(env: &Env) -> String {
    let spec = &env.dataset_specs()[0];
    let ds = env.dataset(spec);
    let lr = grid_learning_rate(env, &ds);
    let mut config = env.run_config(lr);
    config.mega_batch_limit = Some(env.mega_limit * 2);
    let result = Trainer::new(algorithms::adaptive_sgd(), heterogeneous_server(4), config).run(&ds);
    let mut out = String::from(
        "mega_batch,b_gpu0,b_gpu1,b_gpu2,b_gpu3,u_gpu0,u_gpu1,u_gpu2,u_gpu3,perturbed\n",
    );
    for r in &result.records {
        let b: Vec<String> = r.batch_sizes.iter().map(|x| format!("{:.1}", x)).collect();
        let u: Vec<String> = r.updates.iter().map(|x| x.to_string()).collect();
        let _ = writeln!(
            out,
            "{},{},{},{}",
            r.merge_index,
            b.join(","),
            u.join(","),
            u8::from(r.perturbed)
        );
    }
    let _ = writeln!(
        out,
        "# perturbation frequency: {:.1}% of merges (paper: very high)",
        result.perturbation_frequency() * 100.0
    );
    out
}

/// **Ablations** (DESIGN.md §6) — each Adaptive SGD mechanism removed in
/// isolation, on the Amazon-like dataset with 4 GPUs.
pub fn ablations(env: &Env) -> String {
    let spec = &env.dataset_specs()[0];
    let ds = env.dataset(spec);
    let lr = grid_learning_rate(env, &ds);
    let mut out =
        String::from("variant,best_accuracy,final_sim_time,time_to_80pct_best,perturbation_freq\n");
    let variants = vec![
        algorithms::adaptive_sgd(),
        algorithms::adaptive_without_scaling(),
        algorithms::adaptive_multiplicative_scaling(),
        algorithms::adaptive_product_normalization(),
        algorithms::adaptive_without_perturbation(),
        algorithms::adaptive_with_plain_average(),
        algorithms::elastic_sgd(),
    ];
    let results: Vec<RunResult> = variants
        .into_iter()
        .map(|v| env.run(v, 4, &ds, lr))
        .collect();
    let best_overall = results
        .iter()
        .map(|r| r.best_accuracy())
        .fold(0.0f64, f64::max);
    for r in &results {
        let tta = r
            .time_to_accuracy(best_overall * 0.8)
            .map(|t| format!("{t:.6}"))
            .unwrap_or_else(|| "never".into());
        let _ = writeln!(
            out,
            "{},{:.4},{:.6},{},{:.2}",
            r.name,
            r.best_accuracy(),
            r.records.last().map(|x| x.sim_time).unwrap_or(0.0),
            tta,
            r.perturbation_frequency()
        );
    }
    out
}

/// Summarizes a fig4/fig5 CSV into per-(dataset,gpus,algorithm) one-liners:
/// best accuracy and earliest time a shared target was reached.
pub fn summarize_curves(csv: &str) -> String {
    use std::collections::BTreeMap;
    let mut best: BTreeMap<(String, String, String), (f64, f64)> = BTreeMap::new();
    for line in csv.lines().skip(1) {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        if f.len() < 8 {
            continue;
        }
        let key = (f[0].to_string(), f[1].to_string(), f[2].to_string());
        let time: f64 = f[4].parse().unwrap_or(0.0);
        let acc: f64 = f[6].parse().unwrap_or(0.0);
        let e = best.entry(key).or_insert((0.0, 0.0));
        if acc > e.0 {
            *e = (acc, time);
        }
    }
    let mut out = String::from("dataset,gpus,algorithm,best_accuracy,time_of_best\n");
    for ((d, g, a), (acc, t)) in best {
        let _ = writeln!(out, "{d},{g},{a},{acc:.4},{t:.6}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_both_datasets_and_reference_rows() {
        let env = Env::smoke();
        let csv = table1(&env);
        assert!(csv.contains("amazon-670k@0.001"));
        assert!(csv.contains("delicious-200k@0.001"));
        assert!(csv.contains("(paper)"));
        assert_eq!(csv.lines().count(), 5);
    }

    #[test]
    fn fig1_reports_four_gpus_and_a_gap() {
        let env = Env::smoke();
        let csv = fig1(&env);
        assert_eq!(
            csv.lines().filter(|l| !l.starts_with(['g', '#'])).count(),
            4
        );
        assert!(csv.contains("gap"));
    }

    #[test]
    fn fig2_trace_shows_dispatch_and_merges() {
        let env = Env::smoke();
        let trace = fig2_trace(&env);
        assert!(trace.contains("batch 0"));
        assert!(trace.contains("merge"));
        assert!(trace.contains("gpu0"));
        assert!(trace.contains("gpu1"));
    }

    #[test]
    fn fig6_tracks_batch_sizes_and_perturbation() {
        let env = Env::smoke();
        let csv = fig6(&env);
        let data_rows = csv.lines().filter(|l| !l.starts_with(['m', '#'])).count();
        assert_eq!(data_rows, env.mega_limit * 2);
        assert!(csv.contains("perturbation frequency"));
    }

    #[test]
    fn bench_kernels_pairs_every_kernel_with_a_scalar_baseline() {
        let env = Env::smoke();
        let json = bench_kernels_json(&env);
        for kernel in [
            "gemm",
            "gemm_tn",
            "gemm_nt",
            "spmm",
            "bf16_narrow",
            "bf16_widen",
        ] {
            assert!(json.contains(&format!(
                "\"kernel\": \"{kernel}\", \"variant\": \"scalar\""
            )));
            assert!(json.contains(&format!("\"kernel\": \"{kernel}\", \"variant\": \"tiled\"")));
        }
        assert_eq!(json.matches("speedup_vs_scalar").count(), 6);
        for kernel in ["sampled_forward", "sampled_input_grad"] {
            assert!(json.contains(&format!("\"kernel\": \"{kernel}\", \"variant\": \"dense\"")));
            assert!(json.contains(&format!(
                "\"kernel\": \"{kernel}\", \"variant\": \"sampled\""
            )));
        }
        assert_eq!(json.matches("speedup_vs_dense").count(), 2);
    }

    #[test]
    fn bench_serve_reports_both_modes_with_zero_loss() {
        let env = Env::smoke();
        let json = bench_serve_json(&env);
        assert!(json.contains("\"mode\": \"adaptive\""));
        assert!(json.contains("\"mode\": \"fixed\""));
        assert!(json.contains("\"served\": 2400"));
        assert!(!json.contains("\"lost\": 1"), "no request may be lost");
    }

    #[test]
    fn bench_sparse_merge_smoke() {
        let env = Env::smoke();
        let json = bench_sparse_merge_json(&env);
        // The ≥10x full-scale byte reduction and every run's bit-identity
        // are asserted inside the experiment; here just check the shape.
        assert_eq!(
            json.matches("\"bits_equal_dense\": true").count(),
            4,
            "all four precision x topology gates must report"
        );
        assert_eq!(json.matches("\"topology\"").count(), 8);
        assert!(json.contains("\"bench\": \"sparse_merge\""));
    }

    #[test]
    fn bench_cluster_hierarchical_beats_flat_on_multi_server_shapes() {
        fn field(row: &str, key: &str) -> f64 {
            let start = row.find(key).expect(key) + key.len();
            let rest = &row[start..];
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            rest[..end].trim().parse().expect(key)
        }
        let env = Env::smoke();
        let json = bench_cluster_json(&env);
        let rows: Vec<&str> = json.lines().filter(|l| l.contains("\"servers\"")).collect();
        assert_eq!(rows.len(), 4, "expected the 1x4 .. 64x4 scaling table");
        for row in rows {
            let servers = field(row, "\"servers\": ");
            let flat = field(row, "\"flat_ms\": ");
            let ring = field(row, "\"hier_ring_ms\": ");
            let tree = field(row, "\"hier_tree_ms\": ");
            assert!(row.contains("\"bits_equal_flat\": true"));
            if servers > 1.0 {
                assert!(
                    ring < flat && tree < flat,
                    "hierarchical must beat flat once hops cross the slow link: {row}"
                );
            } else {
                // The single-server row *is* the flat baseline by construction.
                assert_eq!(ring, flat);
                assert_eq!(tree, flat);
            }
        }
    }

    #[test]
    fn summarize_curves_aggregates() {
        let csv = "dataset,gpus,algorithm,merge,sim_time,epochs,accuracy,mean_loss\n\
                   a,2,x,0,1.0,0.5,0.2,1.0\n\
                   a,2,x,1,2.0,1.0,0.5,0.8\n\
                   a,2,y,0,1.5,0.5,0.3,0.9\n";
        let s = summarize_curves(csv);
        assert!(s.contains("a,2,x,0.5000,2.000000"));
        assert!(s.contains("a,2,y,0.3000,1.500000"));
    }
}
