//! Shared multi-tenant fleet scenario for the autoscale probe and
//! `BENCH_autoscale`.
//!
//! One place defines the testbed so the CI determinism gate
//! (`autoscale_probe`) and the cost/latency benchmark row
//! (`BENCH_autoscale.json`) measure the *same* fleet: the serving twin of
//! `serve_probe` (amazon-670k at scale 0.1, hidden width 8 — wide head,
//! per-request cost dominates) registered six times into a weight-dedup
//! [`ModelRegistry`] (one base + five adapter variants sharing the big
//! layers), twelve tenants mapped many-to-one onto the versions, and a
//! diurnal/bursty Zipf-skewed open-loop load over eight homogeneous replica
//! slots spread round-robin across a four-server ethernet cluster.
//!
//! Every number here is a pure function of `(master seed, knobs)` — the
//! probe byte-diffs its report across `ASGD_THREADS` settings and against
//! checked-in goldens.

use asgd_core::trainer::{RunConfig, Trainer};
use asgd_core::{algorithms, load_model};
use asgd_data::{generate, DatasetSpec, XmlDataset};
use asgd_gpusim::profile::homogeneous_server;
use asgd_gpusim::{ClusterTopology, DeviceProfile, FaultPlan};
use asgd_model::MlpConfig;
use asgd_serve::{
    adapter_variant, fleet_stream, serve_fleet, FleetConfig, FleetLoadSpec, FleetOutcome,
    ModelRegistry, TenantRequest, VersionId,
};
use asgd_tensor::Precision;

/// Dataset scale of the serving twin (wide head: ~67k classes).
pub const FLEET_SCALE: f64 = 0.1;
/// Hidden width of the serving twin (tiny, so per-request cost dominates).
pub const FLEET_HIDDEN: usize = 8;
/// Replica slots (= the autoscaler's ceiling and the static-max fleet).
pub const FLEET_SLOTS: usize = 8;
/// Simulated servers the slots round-robin across.
pub const FLEET_SERVERS: usize = 4;
/// Maximum micro-batch size.
pub const FLEET_B_MAX: usize = 64;
/// Registry versions (1 base + adapters); tenants map onto these mod-wise.
pub const FLEET_VERSIONS: usize = 6;

/// Scenario knobs, all overridable from the environment (see
/// [`FleetKnobs::from_env`]).
#[derive(Debug, Clone)]
pub struct FleetKnobs {
    /// Load-stream seed (`ASGD_SERVE_SEED`).
    pub serve_seed: u64,
    /// Fault-plan seed (`ASGD_FAULT_SEED`).
    pub fault_seed: u64,
    /// Tenant count (`ASGD_TENANTS`).
    pub tenants: usize,
    /// Zipf exponent of tenant/request popularity (`ASGD_ZIPF_S`).
    pub zipf_s: f64,
    /// Prediction-cache capacity, entries; 0 disables (`ASGD_CACHE_CAP`).
    pub cache_cap: usize,
    /// Hedge quantile in (0, 1); anything else disables (`ASGD_HEDGE_Q`).
    pub hedge_q: f64,
    /// Elastic floor `r_min` of the autoscaled session — and the size of
    /// the static-min baseline (`ASGD_AUTOSCALE`).
    pub r_min: usize,
    /// Per-request latency SLO, milliseconds (`ASGD_SLO_MS`).
    pub slo_ms: f64,
    /// Diurnal-midline offered load, requests/s (`ASGD_SERVE_RPS`).
    pub base_rps: f64,
    /// Stream length (`ASGD_SERVE_REQUESTS`).
    pub n_requests: usize,
    /// Registry storage tier (`ASGD_PRECISION`, `f32` or `bf16`).
    pub precision: Precision,
}

impl Default for FleetKnobs {
    fn default() -> Self {
        Self {
            serve_seed: 11,
            fault_seed: 7,
            tenants: 12,
            zipf_s: 1.1,
            cache_cap: 1024,
            hedge_q: 0.95,
            r_min: 2,
            slo_ms: 0.4,
            base_rps: 2.0e6,
            n_requests: 6000,
            precision: Precision::F32,
        }
    }
}

impl FleetKnobs {
    /// Reads the `ASGD_*` overrides on top of [`FleetKnobs::default`].
    pub fn from_env() -> Self {
        fn var<T: std::str::FromStr>(name: &str, default: T) -> T {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(default)
        }
        let d = Self::default();
        Self {
            serve_seed: var("ASGD_SERVE_SEED", d.serve_seed),
            fault_seed: var("ASGD_FAULT_SEED", d.fault_seed),
            tenants: var("ASGD_TENANTS", d.tenants),
            zipf_s: var("ASGD_ZIPF_S", d.zipf_s),
            cache_cap: var("ASGD_CACHE_CAP", d.cache_cap),
            hedge_q: var("ASGD_HEDGE_Q", d.hedge_q),
            r_min: var("ASGD_AUTOSCALE", d.r_min),
            slo_ms: var("ASGD_SLO_MS", d.slo_ms),
            base_rps: var("ASGD_SERVE_RPS", d.base_rps),
            n_requests: var("ASGD_SERVE_REQUESTS", d.n_requests),
            precision: Precision::from_env_or(d.precision),
        }
    }

    /// Artifact-name suffix of the precision tier (`""` or `"_bf16"`).
    pub fn suffix(&self) -> &'static str {
        match self.precision {
            Precision::F32 => "",
            Precision::Bf16 => "_bf16",
        }
    }
}

/// The built testbed: registry, tenants, fleet shape, and request stream.
pub struct FleetScenario {
    /// The serving twin's dataset (the test split is the request pool).
    pub ds: XmlDataset,
    /// Weight-dedup registry holding base + adapter versions.
    pub registry: ModelRegistry,
    /// Tenant → version map (many-to-one).
    pub tenant_versions: Vec<VersionId>,
    /// One profile per replica slot.
    pub profiles: Vec<DeviceProfile>,
    /// Cluster the slots round-robin onto.
    pub topo: ClusterTopology,
    /// Load shape the stream was drawn from.
    pub spec: FleetLoadSpec,
    /// The materialized request stream.
    pub requests: Vec<TenantRequest>,
    /// Knobs the scenario was built with.
    pub knobs: FleetKnobs,
}

impl FleetScenario {
    /// Trains the serving twin (2 mega-batches, exactly like `serve_probe`),
    /// round-trips it through a serveable checkpoint at the knobs'
    /// precision, registers base + adapter versions, and draws the request
    /// stream. `seed` is the master (dataset/training) seed.
    pub fn build(seed: u64, knobs: FleetKnobs) -> Self {
        let ds = generate(&DatasetSpec::amazon_670k(FLEET_SCALE), seed ^ 0xD5);
        let mconfig = MlpConfig {
            num_features: ds.num_features,
            hidden: FLEET_HIDDEN,
            num_classes: ds.num_labels,
        };
        let mut tconfig = RunConfig::paper_defaults(48, 24);
        tconfig.hidden = FLEET_HIDDEN;
        tconfig.base_lr = 0.1;
        tconfig.seed = seed;
        tconfig.mega_batch_limit = Some(2);
        tconfig.overhead_scale = FLEET_SCALE;
        let trained =
            Trainer::new(algorithms::adaptive_sgd(), homogeneous_server(2), tconfig).run(&ds);
        let state = trained.final_state.expect("gpu trainer keeps a snapshot");
        let base = load_model(state.export_model_with(&mconfig, knobs.precision))
            .expect("serveable checkpoint decodes");

        // Base + adapters: each adapter perturbs the small hidden layers and
        // shares the wide embedding/output blocks, so the registry dedups
        // most of the fleet's parameter bytes.
        let mut registry = ModelRegistry::new(mconfig);
        registry.register("base", &base, knobs.precision);
        for i in 1..FLEET_VERSIONS as u64 {
            let variant = adapter_variant(&base, i, 1e-3);
            registry.register(format!("adapter-{i}"), &variant, knobs.precision);
        }
        let tenant_versions: Vec<VersionId> = (0..knobs.tenants)
            .map(|t| VersionId(t % registry.len()))
            .collect();

        let profiles: Vec<_> = homogeneous_server(FLEET_SLOTS)
            .into_iter()
            .map(|p| p.with_overhead_scale(0.05))
            .collect();
        let topo = ClusterTopology::ethernet(FLEET_SERVERS, FLEET_SLOTS / FLEET_SERVERS);

        // Diurnal day ≈ 2/3 of the stream's expected span, plus seeded
        // bursts: the trough needs ~r_min replicas, the burst peak all of
        // them. Hot rows come from a clamped pool so the Zipf head is
        // genuinely repeated traffic.
        let pool_rows = ds.test.features.rows().min(2048);
        let expected_span = knobs.n_requests as f64 / knobs.base_rps;
        let spec = FleetLoadSpec {
            n: knobs.n_requests,
            base_rps: knobs.base_rps,
            diurnal_amplitude: 0.6,
            diurnal_period_s: expected_span * 0.66,
            burst_factor: 2.0,
            burst_every_s: expected_span * 0.25,
            burst_len_s: expected_span * 0.05,
            tenants: knobs.tenants,
            zipf_s: knobs.zipf_s,
            pool_rows,
        };
        let requests = fleet_stream(knobs.serve_seed, &spec);

        Self {
            ds,
            registry,
            tenant_versions,
            profiles,
            topo,
            spec,
            requests,
            knobs,
        }
    }

    /// The SLO in seconds.
    pub fn slo_s(&self) -> f64 {
        self.knobs.slo_ms * 1e-3
    }

    /// Config shared by every session: adaptive micro-batching, the
    /// prediction cache, and hedging (when armed by the knobs).
    fn base_config(&self) -> FleetConfig {
        let mut c =
            FleetConfig::paper_defaults(FLEET_B_MAX, self.slo_s()).with_cache(self.knobs.cache_cap);
        if self.knobs.hedge_q > 0.0 && self.knobs.hedge_q < 1.0 {
            c = c.hedged(self.knobs.hedge_q);
        }
        c.autoscale_target_depth = 12.0;
        c.boot_delay_s = 2e-5;
        c
    }

    /// The elastic session: floor `r_min`, ceiling every slot.
    pub fn auto_config(&self) -> FleetConfig {
        self.base_config().autoscaled(self.knobs.r_min)
    }

    /// A static session pinned at `n` replicas.
    pub fn static_config(&self, n: usize) -> FleetConfig {
        self.base_config().static_replicas(n)
    }

    /// Runs one fleet session over the scenario's stream.
    pub fn run(&self, config: &FleetConfig, plan: &FaultPlan) -> FleetOutcome {
        serve_fleet(
            &self.registry,
            &self.tenant_versions,
            &self.profiles,
            &self.topo,
            &self.ds.test.features,
            &self.requests,
            plan,
            config,
        )
    }
}
