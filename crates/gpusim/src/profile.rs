//! Static device capability descriptions and jitter models.

/// The stochastic perturbation applied to every kernel duration on a device.
///
/// Two paper-motivated components compose multiplicatively:
///
/// * a **slow sinusoidal drift** of the effective clock — "the clock rate and
///   memory latency display oscillations on GPUs with the same model from the
///   same vendor" (§I). Amplitude `osc_amplitude`, period `osc_period`
///   kernels, per-device phase.
/// * **per-kernel log-normal noise** with multiplicative sigma
///   `lognormal_sigma`, capturing short-term scheduling/DVFS variation.
///
/// Both are driven by a seeded RNG owned by the device, so a given
/// `(seed, kernel sequence)` always produces the same timing trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitterModel {
    /// Relative amplitude of the slow drift (e.g. `0.05` = ±5%).
    pub osc_amplitude: f64,
    /// Drift period, in kernels executed.
    pub osc_period: f64,
    /// Sigma of the per-kernel log-normal noise (0 disables it).
    pub lognormal_sigma: f64,
}

impl JitterModel {
    /// No jitter at all — used by tests that need exact analytic timings.
    pub const NONE: JitterModel = JitterModel {
        osc_amplitude: 0.0,
        osc_period: 1.0,
        lognormal_sigma: 0.0,
    };

    /// The default calibrated to reproduce Fig. 1's intra-model variation.
    pub fn default_v100() -> Self {
        JitterModel {
            osc_amplitude: 0.04,
            osc_period: 512.0,
            lognormal_sigma: 0.03,
        }
    }
}

/// Static performance profile of one simulated GPU (or CPU) device.
///
/// Throughputs are *effective* rates for this workload class, not peak specs:
/// sparse kernels on V100s reach only a small fraction of peak FLOPS because
/// of irregular memory access, which is exactly the sensitivity to non-zero
/// counts the paper exploits.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable name, e.g. `"V100-0"`.
    pub name: String,
    /// Dense GEMM effective throughput, GFLOP/s.
    pub dense_gflops: f64,
    /// Sparse (SpMM) effective throughput, GFLOP/s.
    pub sparse_gflops: f64,
    /// Device memory bandwidth, GB/s (element-wise kernels are bound by it).
    pub mem_bandwidth_gbs: f64,
    /// Host↔device link bandwidth, GB/s.
    pub h2d_bandwidth_gbs: f64,
    /// Peer-to-peer link bandwidth, GB/s.
    pub p2p_bandwidth_gbs: f64,
    /// Fixed cost of one kernel launch, seconds.
    pub launch_overhead_s: f64,
    /// Device memory capacity, bytes (bounds `b_max`).
    pub memory_bytes: u64,
    /// Relative speed multiplier (1.0 = nominal). The heterogeneity knob:
    /// every kernel duration is divided by this factor.
    pub speed_factor: f64,
    /// Stochastic perturbation model.
    pub jitter: JitterModel,
}

impl DeviceProfile {
    /// Nominal V100-class profile (effective rates for sparse DL workloads).
    pub fn v100(name: impl Into<String>) -> Self {
        DeviceProfile {
            name: name.into(),
            dense_gflops: 9_000.0,
            sparse_gflops: 250.0,
            mem_bandwidth_gbs: 800.0,
            h2d_bandwidth_gbs: 12.0,
            p2p_bandwidth_gbs: 9.0,
            launch_overhead_s: 6e-6,
            memory_bytes: 16 * (1 << 30),
            speed_factor: 1.0,
            jitter: JitterModel::default_v100(),
        }
    }

    /// A CPU profile used by the SLIDE baseline: far lower throughput, no
    /// kernel-launch overhead, no device transfers. Thread scaling is
    /// sublinear (`t^0.7`) — sparse CPU kernels contend on the memory
    /// subsystem well before 16 threads.
    pub fn cpu_server(name: impl Into<String>, threads: usize) -> Self {
        let t = (threads.max(1) as f64).powf(0.6);
        DeviceProfile {
            name: name.into(),
            dense_gflops: 20.0 * t,
            sparse_gflops: 6.0 * t,
            mem_bandwidth_gbs: 80.0,
            h2d_bandwidth_gbs: f64::INFINITY,
            p2p_bandwidth_gbs: f64::INFINITY,
            launch_overhead_s: 0.0,
            memory_bytes: 192 * (1 << 30),
            speed_factor: 1.0,
            jitter: JitterModel {
                osc_amplitude: 0.02,
                osc_period: 1024.0,
                lognormal_sigma: 0.02,
            },
        }
    }

    /// Scales the profile's speed by `factor` (builder-style).
    pub fn with_speed(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "speed factor must be positive");
        self.speed_factor = factor;
        self
    }

    /// Replaces the jitter model (builder-style).
    pub fn with_jitter(mut self, jitter: JitterModel) -> Self {
        self.jitter = jitter;
        self
    }

    /// Scales the fixed per-kernel launch overhead by `s` (builder-style).
    ///
    /// Used when running linearly scaled-down datasets: per-kernel *work*
    /// shrinks with the scale while launch overhead is fixed, which would
    /// distort the compute-to-overhead ratio the paper's full-size datasets
    /// exhibit. Scaling the overhead by the dataset scale restores it.
    pub fn with_overhead_scale(mut self, s: f64) -> Self {
        assert!(s > 0.0, "overhead scale must be positive");
        self.launch_overhead_s *= s;
        self
    }
}

/// The paper's testbed: `n` same-model V100s whose *observed* speeds differ.
///
/// Speed factors are spaced so the fastest/slowest gap on an identical batch
/// is ≈32% for `n = 4` (Fig. 1): `1.0, 0.95, 0.87, 0.76`, extended cyclically
/// with mild decay for larger `n`.
pub fn heterogeneous_server(n: usize) -> Vec<DeviceProfile> {
    const BASE: [f64; 4] = [1.0, 0.95, 0.87, 0.76];
    (0..n)
        .map(|i| {
            let decay = 0.98f64.powi((i / BASE.len()) as i32);
            DeviceProfile::v100(format!("V100-{i}")).with_speed(BASE[i % BASE.len()] * decay)
        })
        .collect()
}

/// A two-tier server: `fast` nominal-speed devices followed by `slow`
/// devices throttled to `slow_factor` — the serving testbed's worst case for
/// fixed-size micro-batching, where a slow device greedily draining
/// full-size batches inflates exactly those requests' tail latency.
///
/// # Panics
/// Panics when the server would be empty or `slow_factor` is not in `(0, 1]`.
pub fn two_tier_server(fast: usize, slow: usize, slow_factor: f64) -> Vec<DeviceProfile> {
    assert!(fast + slow >= 1, "need at least one device");
    assert!(
        slow_factor > 0.0 && slow_factor <= 1.0,
        "slow factor must be in (0, 1]"
    );
    (0..fast + slow)
        .map(|i| {
            let speed = if i < fast { 1.0 } else { slow_factor };
            DeviceProfile::v100(format!("V100-{i}")).with_speed(speed)
        })
        .collect()
}

/// A homogeneous server (all devices identical) — the control configuration
/// in which Adaptive SGD should behave like Elastic SGD.
pub fn homogeneous_server(n: usize) -> Vec<DeviceProfile> {
    (0..n)
        .map(|i| DeviceProfile::v100(format!("V100-{i}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_profile_sane() {
        let p = DeviceProfile::v100("gpu0");
        assert!(p.dense_gflops > p.sparse_gflops);
        assert!(p.speed_factor == 1.0);
        assert!(p.memory_bytes == 16 * (1 << 30));
    }

    #[test]
    fn heterogeneous_gap_is_about_32_percent() {
        let profiles = heterogeneous_server(4);
        let fastest = profiles
            .iter()
            .map(|p| p.speed_factor)
            .fold(f64::MIN, f64::max);
        let slowest = profiles
            .iter()
            .map(|p| p.speed_factor)
            .fold(f64::MAX, f64::min);
        // Same work takes 1/speed time: gap = fastest/slowest - 1.
        let gap = fastest / slowest - 1.0;
        assert!((gap - 0.32).abs() < 0.01, "gap {gap}");
    }

    #[test]
    fn heterogeneous_server_extends_beyond_four() {
        let profiles = heterogeneous_server(6);
        assert_eq!(profiles.len(), 6);
        assert!(profiles[4].speed_factor < profiles[0].speed_factor);
        assert_eq!(profiles[5].name, "V100-5");
    }

    #[test]
    fn two_tier_server_splits_speeds() {
        let profiles = two_tier_server(2, 2, 0.5);
        assert_eq!(profiles.len(), 4);
        assert_eq!(profiles[0].speed_factor, 1.0);
        assert_eq!(profiles[1].speed_factor, 1.0);
        assert_eq!(profiles[2].speed_factor, 0.5);
        assert_eq!(profiles[3].speed_factor, 0.5);
        assert_eq!(profiles[3].name, "V100-3");
    }

    #[test]
    #[should_panic(expected = "slow factor")]
    fn two_tier_rejects_bad_factor() {
        let _ = two_tier_server(1, 1, 1.5);
    }

    #[test]
    fn homogeneous_server_is_uniform() {
        let profiles = homogeneous_server(3);
        assert!(profiles.iter().all(|p| p.speed_factor == 1.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_speed_factor_panics() {
        let _ = DeviceProfile::v100("x").with_speed(0.0);
    }
}
