//! Kernel taxonomy and the analytic cost model.

use crate::profile::DeviceProfile;

/// One unit of GPU work, with exact flop/byte accounting.
///
/// The training loop charges these to a [`crate::Device`]; the device's
/// profile converts them to virtual seconds. Sparse kernels charge by the
/// *actual* non-zero count of their operand, which is what makes identically
/// sized batches cost different amounts of time — the data-dependent
/// heterogeneity source of §I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Sparse × dense: `C[m×n] = A[m×k]·B`, `A` with `nnz` stored entries.
    SpMm { nnz: usize, n: usize },
    /// Transposed sparse accumulate: `C += Aᵀ·G` with `nnz` entries, `n` cols.
    SpMmTn { nnz: usize, n: usize },
    /// Dense GEMM `m×k · k×n`.
    Gemm { m: usize, k: usize, n: usize },
    /// Element-wise map over `elems` values (ReLU, bias, axpy, scaling, …).
    Elementwise { elems: usize },
    /// Row-wise softmax over a `rows × cols` matrix.
    Softmax { rows: usize, cols: usize },
    /// Reduction over `elems` values (losses, norms).
    Reduce { elems: usize },
    /// Per-row top-`k` selection over a `rows × cols` matrix (inference
    /// result extraction). Memory-bound: one streaming pass over the scores
    /// plus a small per-row heap.
    TopK { rows: usize, cols: usize, k: usize },
    /// Host-to-device copy.
    H2d { bytes: usize },
    /// Device-to-host copy.
    D2h { bytes: usize },
    /// Device-to-device (peer) copy.
    P2p { bytes: usize },
}

impl KernelKind {
    /// Floating-point operations this kernel performs (0 for pure copies).
    pub fn flops(&self) -> f64 {
        match *self {
            KernelKind::SpMm { nnz, n } | KernelKind::SpMmTn { nnz, n } => {
                2.0 * nnz as f64 * n as f64
            }
            KernelKind::Gemm { m, k, n } => 2.0 * m as f64 * k as f64 * n as f64,
            KernelKind::Elementwise { elems } => elems as f64,
            // exp + add + div per element, plus the max scan.
            KernelKind::Softmax { rows, cols } => 4.0 * rows as f64 * cols as f64,
            KernelKind::Reduce { elems } => elems as f64,
            // One comparison per score, plus log(k) heap work on the few
            // entries that displace — dominated by the scan.
            KernelKind::TopK { rows, cols, .. } => rows as f64 * cols as f64,
            KernelKind::H2d { .. } | KernelKind::D2h { .. } | KernelKind::P2p { .. } => 0.0,
        }
    }

    /// Bytes moved across the relevant interface.
    pub fn bytes(&self) -> f64 {
        match *self {
            // 4-byte values + 4-byte indices in, 4-byte accumulators out.
            KernelKind::SpMm { nnz, n } | KernelKind::SpMmTn { nnz, n } => {
                (8 * nnz + 4 * nnz * n.min(8)) as f64
            }
            KernelKind::Gemm { m, k, n } => (4 * (m * k + k * n + m * n)) as f64,
            KernelKind::Elementwise { elems } => 8.0 * elems as f64,
            KernelKind::Softmax { rows, cols } => 8.0 * rows as f64 * cols as f64,
            KernelKind::Reduce { elems } => 4.0 * elems as f64,
            // Read every score once; write k (index, score) pairs per row.
            KernelKind::TopK { rows, cols, k } => (4 * rows * cols + 8 * rows * k) as f64,
            KernelKind::H2d { bytes } | KernelKind::D2h { bytes } | KernelKind::P2p { bytes } => {
                bytes as f64
            }
        }
    }

    /// Whether this kernel is a data transfer rather than compute.
    pub fn is_transfer(&self) -> bool {
        matches!(
            self,
            KernelKind::H2d { .. } | KernelKind::D2h { .. } | KernelKind::P2p { .. }
        )
    }
}

/// Converts a kernel into unperturbed virtual seconds on a device.
///
/// The model is the classic roofline-with-latency form:
///
/// ```text
/// t = launch_overhead + max(flops / throughput, bytes / bandwidth)
/// ```
///
/// divided by the device's `speed_factor`. Compute kernels choose their
/// throughput by kind (dense vs sparse vs memory-bound); transfers use the
/// corresponding link bandwidth and pay no launch overhead.
pub fn kernel_time(profile: &DeviceProfile, kind: KernelKind) -> f64 {
    let t = match kind {
        KernelKind::SpMm { .. } | KernelKind::SpMmTn { .. } => {
            profile.launch_overhead_s
                + (kind.flops() / (profile.sparse_gflops * 1e9))
                    .max(kind.bytes() / (profile.mem_bandwidth_gbs * 1e9))
        }
        KernelKind::Gemm { .. } => {
            profile.launch_overhead_s
                + (kind.flops() / (profile.dense_gflops * 1e9))
                    .max(kind.bytes() / (profile.mem_bandwidth_gbs * 1e9))
        }
        KernelKind::Elementwise { .. }
        | KernelKind::Softmax { .. }
        | KernelKind::Reduce { .. }
        | KernelKind::TopK { .. } => {
            profile.launch_overhead_s + kind.bytes() / (profile.mem_bandwidth_gbs * 1e9)
        }
        KernelKind::H2d { bytes } | KernelKind::D2h { bytes } => {
            bytes as f64 / (profile.h2d_bandwidth_gbs * 1e9)
        }
        KernelKind::P2p { bytes } => bytes as f64 / (profile.p2p_bandwidth_gbs * 1e9),
    };
    t / profile.speed_factor
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{DeviceProfile, JitterModel};

    fn quiet_v100() -> DeviceProfile {
        DeviceProfile::v100("t").with_jitter(JitterModel::NONE)
    }

    #[test]
    fn flop_accounting() {
        assert_eq!(KernelKind::Gemm { m: 2, k: 3, n: 4 }.flops(), 48.0);
        assert_eq!(KernelKind::SpMm { nnz: 10, n: 5 }.flops(), 100.0);
        assert_eq!(KernelKind::H2d { bytes: 100 }.flops(), 0.0);
    }

    #[test]
    fn more_nnz_costs_more_time() {
        let p = quiet_v100();
        let small = kernel_time(&p, KernelKind::SpMm { nnz: 1_000, n: 128 });
        let large = kernel_time(
            &p,
            KernelKind::SpMm {
                nnz: 100_000,
                n: 128,
            },
        );
        assert!(large > small);
    }

    #[test]
    fn slower_device_takes_longer() {
        let fast = quiet_v100();
        let slow = quiet_v100().with_speed(0.76);
        let k = KernelKind::Gemm {
            m: 64,
            k: 128,
            n: 1024,
        };
        let tf = kernel_time(&fast, k);
        let ts = kernel_time(&slow, k);
        assert!((ts / tf - 1.0 / 0.76).abs() < 1e-9);
    }

    #[test]
    fn launch_overhead_floors_tiny_kernels() {
        let p = quiet_v100();
        let t = kernel_time(&p, KernelKind::Elementwise { elems: 1 });
        assert!(t >= p.launch_overhead_s);
    }

    #[test]
    fn transfers_pay_no_launch_overhead() {
        let p = quiet_v100();
        let t = kernel_time(&p, KernelKind::H2d { bytes: 12_000 });
        let want = 12_000.0 / (p.h2d_bandwidth_gbs * 1e9);
        assert!((t - want).abs() < 1e-15);
    }

    #[test]
    fn p2p_slower_than_local_memory() {
        let p = quiet_v100();
        let p2p = kernel_time(&p, KernelKind::P2p { bytes: 1 << 20 });
        let local = kernel_time(&p, KernelKind::Reduce { elems: 1 << 18 });
        assert!(p2p > local - p.launch_overhead_s);
    }

    #[test]
    fn transfer_predicate() {
        assert!(KernelKind::P2p { bytes: 1 }.is_transfer());
        assert!(!KernelKind::Reduce { elems: 1 }.is_transfer());
        assert!(!KernelKind::TopK {
            rows: 1,
            cols: 2,
            k: 1
        }
        .is_transfer());
    }

    #[test]
    fn topk_cost_scales_with_scores_scanned() {
        let p = quiet_v100();
        let small = kernel_time(
            &p,
            KernelKind::TopK {
                rows: 8,
                cols: 1_000,
                k: 5,
            },
        );
        let wide = kernel_time(
            &p,
            KernelKind::TopK {
                rows: 8,
                cols: 100_000,
                k: 5,
            },
        );
        let tall = kernel_time(
            &p,
            KernelKind::TopK {
                rows: 512,
                cols: 1_000,
                k: 5,
            },
        );
        assert!(wide > small);
        assert!(tall > small);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::profile::{DeviceProfile, JitterModel};
    use proptest::prelude::*;

    fn any_kernel() -> impl Strategy<Value = KernelKind> {
        prop_oneof![
            (1usize..1_000_000, 1usize..512).prop_map(|(nnz, n)| KernelKind::SpMm { nnz, n }),
            (1usize..1_000_000, 1usize..512).prop_map(|(nnz, n)| KernelKind::SpMmTn { nnz, n }),
            (1usize..512, 1usize..512, 1usize..4096).prop_map(|(m, k, n)| KernelKind::Gemm {
                m,
                k,
                n
            }),
            (1usize..10_000_000).prop_map(|elems| KernelKind::Elementwise { elems }),
            (1usize..1024, 1usize..100_000)
                .prop_map(|(rows, cols)| KernelKind::Softmax { rows, cols }),
            (1usize..10_000_000).prop_map(|elems| KernelKind::Reduce { elems }),
            (1usize..1024, 1usize..100_000, 1usize..64)
                .prop_map(|(rows, cols, k)| KernelKind::TopK { rows, cols, k }),
            (1usize..100_000_000).prop_map(|bytes| KernelKind::H2d { bytes }),
            (1usize..100_000_000).prop_map(|bytes| KernelKind::D2h { bytes }),
            (1usize..100_000_000).prop_map(|bytes| KernelKind::P2p { bytes }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn every_kernel_costs_positive_finite_time(k in any_kernel()) {
            let p = DeviceProfile::v100("p").with_jitter(JitterModel::NONE);
            let t = kernel_time(&p, k);
            prop_assert!(t > 0.0 && t.is_finite(), "{k:?} -> {t}");
        }

        #[test]
        fn faster_device_is_never_slower(k in any_kernel(), s in 0.1f64..1.0) {
            let fast = DeviceProfile::v100("f").with_jitter(JitterModel::NONE);
            let slow = fast.clone().with_speed(s);
            prop_assert!(kernel_time(&slow, k) >= kernel_time(&fast, k));
        }

        #[test]
        fn spmm_time_monotone_in_nnz(nnz in 1usize..500_000, extra in 1usize..500_000, n in 1usize..256) {
            let p = DeviceProfile::v100("p").with_jitter(JitterModel::NONE);
            let small = kernel_time(&p, KernelKind::SpMm { nnz, n });
            let large = kernel_time(&p, KernelKind::SpMm { nnz: nnz + extra, n });
            prop_assert!(large >= small);
        }

        #[test]
        fn flops_and_bytes_are_nonnegative(k in any_kernel()) {
            prop_assert!(k.flops() >= 0.0);
            prop_assert!(k.bytes() >= 0.0);
        }
    }
}
