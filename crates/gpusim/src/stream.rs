//! Per-device execution streams and completion events.
//!
//! The paper's all-reduce splits each model into partitions and assigns each
//! partition to a separate CUDA stream, so transfers and reduction compute
//! overlap. We model a stream as an independent timeline *within* a device:
//! work on different streams of the same device overlaps fully (streams are
//! assumed not to saturate a shared engine — the same idealization the
//! paper's measurement of "complete overlap between data transfer and
//! computation" implies), while work within one stream serializes.

use crate::cost::{kernel_time, KernelKind};
use crate::profile::DeviceProfile;
use crate::SimTime;

/// A completion marker on a stream — the simulated analogue of a CUDA event.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Event {
    /// Virtual time at which the producing work completes.
    pub at: SimTime,
}

/// A set of independent timelines belonging to one device.
///
/// Unlike [`crate::Device`], `StreamSet` does not apply jitter: the all-reduce
/// schedule is a deterministic function of partition sizes, matching the
/// paper's description of its tuned collective. (Jitter belongs to the
/// compute epochs, which dominate.)
#[derive(Debug, Clone)]
pub struct StreamSet {
    profile: DeviceProfile,
    busy_until: Vec<SimTime>,
}

impl StreamSet {
    /// Creates `n_streams` empty streams for a device with `profile`,
    /// starting at time `start` (usually the device clock at merge entry).
    pub fn new(profile: DeviceProfile, n_streams: usize, start: SimTime) -> Self {
        assert!(n_streams > 0, "need at least one stream");
        Self {
            profile,
            busy_until: vec![start; n_streams],
        }
    }

    /// Number of streams.
    pub fn len(&self) -> usize {
        self.busy_until.len()
    }

    /// Whether the set has no streams (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.busy_until.is_empty()
    }

    /// Enqueues `kind` on `stream`, not starting before `after` (dependency
    /// event from another stream/device). Returns the completion event.
    pub fn enqueue(&mut self, stream: usize, kind: KernelKind, after: Option<Event>) -> Event {
        let ready = self.busy_until[stream];
        let start = match after {
            Some(e) => ready.max(e.at),
            None => ready,
        };
        let dt = kernel_time(&self.profile, kind);
        let done = start + dt;
        self.busy_until[stream] = done;
        Event { at: done }
    }

    /// When `stream` becomes idle.
    pub fn stream_done(&self, stream: usize) -> Event {
        Event {
            at: self.busy_until[stream],
        }
    }

    /// When *all* streams become idle — the device-wide sync point.
    pub fn all_done(&self) -> Event {
        Event {
            at: self
                .busy_until
                .iter()
                .cloned()
                .fold(SimTime::ZERO, SimTime::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{DeviceProfile, JitterModel};

    fn profile() -> DeviceProfile {
        DeviceProfile::v100("s").with_jitter(JitterModel::NONE)
    }

    #[test]
    fn single_stream_serializes() {
        let mut s = StreamSet::new(profile(), 1, SimTime::ZERO);
        let k = KernelKind::P2p { bytes: 1 << 20 };
        let e1 = s.enqueue(0, k, None);
        let e2 = s.enqueue(0, k, None);
        assert!((e2.at.secs() - 2.0 * e1.at.secs()).abs() < 1e-12);
    }

    #[test]
    fn parallel_streams_overlap() {
        let mut s = StreamSet::new(profile(), 4, SimTime::ZERO);
        let k = KernelKind::P2p { bytes: 1 << 20 };
        for st in 0..4 {
            s.enqueue(st, k, None);
        }
        let one = kernel_time(&profile(), k);
        // All four transfers finish at the single-transfer time.
        assert!((s.all_done().at.secs() - one).abs() < 1e-12);
    }

    #[test]
    fn dependencies_delay_start() {
        let mut s = StreamSet::new(profile(), 2, SimTime::ZERO);
        let k = KernelKind::Reduce { elems: 1 << 20 };
        let e1 = s.enqueue(0, k, None);
        let e2 = s.enqueue(1, k, Some(e1));
        assert!((e2.at.secs() - 2.0 * e1.at.secs()).abs() < 1e-12);
    }

    #[test]
    fn start_offset_respected() {
        let mut s = StreamSet::new(profile(), 1, SimTime(5.0));
        let e = s.enqueue(0, KernelKind::Reduce { elems: 10 }, None);
        assert!(e.at.secs() > 5.0);
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_streams_panics() {
        let _ = StreamSet::new(profile(), 0, SimTime::ZERO);
    }
}
