//! Interconnect topology: host↔device and peer-to-peer link timing.

use crate::device::DeviceId;

/// Link bandwidths of a single-server multi-GPU interconnect.
///
/// The paper's scope is a single server (its all-reduce explicitly rejects
/// NCCL's multi-server optimizations), so the topology is flat: every GPU has
/// one host link and direct peer links of uniform bandwidth. Per-transfer
/// latency is modelled as a fixed setup cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    n_devices: usize,
    h2d_gbs: f64,
    p2p_gbs: f64,
    setup_s: f64,
}

impl Topology {
    /// PCIe-generation defaults matching [`crate::profile::DeviceProfile::v100`].
    pub fn pcie(n_devices: usize) -> Self {
        Self {
            n_devices,
            h2d_gbs: 12.0,
            p2p_gbs: 9.0,
            setup_s: 8e-6,
        }
    }

    /// NVLink-style topology: much faster peer links.
    pub fn nvlink(n_devices: usize) -> Self {
        Self {
            n_devices,
            h2d_gbs: 12.0,
            p2p_gbs: 45.0,
            setup_s: 5e-6,
        }
    }

    /// Number of devices in the server.
    pub fn n_devices(&self) -> usize {
        self.n_devices
    }

    /// Scales the per-transfer setup latency by `s` (builder-style) — the
    /// transfer analogue of
    /// [`crate::profile::DeviceProfile::with_overhead_scale`].
    pub fn with_setup_scale(mut self, s: f64) -> Self {
        assert!(s > 0.0, "setup scale must be positive");
        self.setup_s *= s;
        self
    }

    /// Seconds to move `bytes` from host to device `dst`.
    pub fn h2d_time(&self, dst: DeviceId, bytes: usize) -> f64 {
        self.check(dst);
        self.setup_s + bytes as f64 / (self.h2d_gbs * 1e9)
    }

    /// Seconds to move `bytes` from device `src` to host.
    pub fn d2h_time(&self, src: DeviceId, bytes: usize) -> f64 {
        self.check(src);
        self.setup_s + bytes as f64 / (self.h2d_gbs * 1e9)
    }

    /// Seconds to move `bytes` from device `src` to device `dst`.
    /// A self-transfer is free (the all-reduce skips it anyway).
    pub fn p2p_time(&self, src: DeviceId, dst: DeviceId, bytes: usize) -> f64 {
        self.check(src);
        self.check(dst);
        if src == dst {
            return 0.0;
        }
        self.setup_s + bytes as f64 / (self.p2p_gbs * 1e9)
    }

    fn check(&self, d: DeviceId) {
        assert!(d.0 < self.n_devices, "device {d} outside topology");
    }

    /// The same link parameters over a different device count — used when a
    /// per-server link template is stretched over a whole fleet (cluster
    /// contexts) or shrunk to a survivor subset.
    pub fn resized(&self, n_devices: usize) -> Topology {
        let mut t = self.clone();
        t.n_devices = n_devices;
        t
    }
}

/// Where a flat device index lives inside a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceLocation {
    /// Server (node) index.
    pub server: usize,
    /// Device index within the server.
    pub local: usize,
}

/// An `N`-server × `M`-device fleet: per-server interconnects (fast, from
/// [`Topology`]) plus one shared inter-node link class (slow — higher setup
/// latency, lower bandwidth).
///
/// Device numbering is **server-major and fixed**: flat id `s·M + l` is
/// device `l` of server `s`. Every consumer of the cluster (collectives,
/// fault plans, the trainer's eviction path) uses this one ordering, which is
/// what makes cluster runs bit-deterministic: no schedule interleaving can
/// reorder the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterTopology {
    intra: Topology,
    servers: usize,
    devices_per_server: usize,
    inter_gbs: f64,
    inter_setup_s: f64,
}

impl ClusterTopology {
    /// PCIe servers joined by a 25GbE-class fabric: intra-node links from
    /// [`Topology::pcie`], inter-node at 3 GB/s with 30 µs setup. The default
    /// cluster of the experiment harness — inter-node bandwidth is a third of
    /// the intra-node peer links, the regime where hierarchical merging pays.
    pub fn ethernet(servers: usize, devices_per_server: usize) -> Self {
        Self::new(
            Topology::pcie(devices_per_server),
            servers,
            devices_per_server,
            3.0,
            30e-6,
        )
    }

    /// NVLink servers joined by an HDR InfiniBand-class fabric: intra-node
    /// links from [`Topology::nvlink`], inter-node at 12.5 GB/s with 6 µs
    /// setup.
    pub fn infiniband(servers: usize, devices_per_server: usize) -> Self {
        Self::new(
            Topology::nvlink(devices_per_server),
            servers,
            devices_per_server,
            12.5,
            6e-6,
        )
    }

    /// A cluster from explicit parts.
    pub fn new(
        intra: Topology,
        servers: usize,
        devices_per_server: usize,
        inter_gbs: f64,
        inter_setup_s: f64,
    ) -> Self {
        assert!(servers >= 1, "need at least one server");
        assert!(devices_per_server >= 1, "need at least one device/server");
        assert!(inter_gbs > 0.0, "inter-node bandwidth must be positive");
        assert!(
            inter_setup_s >= 0.0,
            "inter-node setup must be non-negative"
        );
        Self {
            intra: intra.resized(devices_per_server),
            servers,
            devices_per_server,
            inter_gbs,
            inter_setup_s,
        }
    }

    /// Overrides the inter-node link (builder-style).
    pub fn with_inter_link(mut self, gbs: f64, setup_s: f64) -> Self {
        assert!(gbs > 0.0, "inter-node bandwidth must be positive");
        assert!(setup_s >= 0.0, "inter-node setup must be non-negative");
        self.inter_gbs = gbs;
        self.inter_setup_s = setup_s;
        self
    }

    /// Scales every per-transfer setup latency — intra and inter — by `s`
    /// (the cluster analogue of [`Topology::with_setup_scale`]).
    pub fn with_setup_scale(mut self, s: f64) -> Self {
        self.intra = self.intra.with_setup_scale(s);
        self.inter_setup_s *= s;
        self
    }

    /// Number of servers (nodes).
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Devices per server.
    pub fn devices_per_server(&self) -> usize {
        self.devices_per_server
    }

    /// Total devices in the fleet.
    pub fn n_devices(&self) -> usize {
        self.servers * self.devices_per_server
    }

    /// The per-server interconnect (sized to one server).
    pub fn intra(&self) -> &Topology {
        &self.intra
    }

    /// Inter-node bandwidth in GB/s.
    pub fn inter_gbs(&self) -> f64 {
        self.inter_gbs
    }

    /// Inter-node per-transfer setup latency in seconds.
    pub fn inter_setup_s(&self) -> f64 {
        self.inter_setup_s
    }

    /// Flat device id of `(server, local)`.
    pub fn flat(&self, server: usize, local: usize) -> usize {
        assert!(server < self.servers, "server {server} outside cluster");
        assert!(
            local < self.devices_per_server,
            "local device {local} outside server"
        );
        server * self.devices_per_server + local
    }

    /// `(server, local)` of a flat device id.
    pub fn locate(&self, flat: usize) -> DeviceLocation {
        assert!(flat < self.n_devices(), "device {flat} outside cluster");
        DeviceLocation {
            server: flat / self.devices_per_server,
            local: flat % self.devices_per_server,
        }
    }

    /// Server of a flat device id.
    pub fn server_of(&self, flat: usize) -> usize {
        self.locate(flat).server
    }

    /// Seconds to move `bytes` over the inter-node link (one hop).
    pub fn inter_time(&self, bytes: usize) -> f64 {
        self.inter_setup_s + bytes as f64 / (self.inter_gbs * 1e9)
    }

    /// Seconds to move `bytes` between two flat device ids: free to self,
    /// the intra-node link within a server, the inter-node link across.
    pub fn p2p_time_flat(&self, src: usize, dst: usize, bytes: usize) -> f64 {
        if src == dst {
            return 0.0;
        }
        let (s, d) = (self.locate(src), self.locate(dst));
        if s.server == d.server {
            self.intra
                .p2p_time(DeviceId(s.local), DeviceId(d.local), bytes)
        } else {
            self.inter_time(bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_self_transfer_is_free() {
        let t = Topology::pcie(4);
        assert_eq!(t.p2p_time(DeviceId(1), DeviceId(1), 1 << 20), 0.0);
    }

    #[test]
    fn bigger_transfers_take_longer() {
        let t = Topology::pcie(4);
        assert!(
            t.p2p_time(DeviceId(0), DeviceId(1), 2 << 20)
                > t.p2p_time(DeviceId(0), DeviceId(1), 1 << 20)
        );
    }

    #[test]
    fn nvlink_p2p_faster_than_pcie() {
        let big = 64 << 20;
        let pcie = Topology::pcie(4).p2p_time(DeviceId(0), DeviceId(1), big);
        let nvl = Topology::nvlink(4).p2p_time(DeviceId(0), DeviceId(1), big);
        assert!(nvl < pcie);
    }

    #[test]
    fn h2d_and_d2h_symmetric() {
        let t = Topology::pcie(2);
        let b = 10 << 20;
        assert_eq!(t.h2d_time(DeviceId(0), b), t.d2h_time(DeviceId(0), b));
    }

    #[test]
    #[should_panic(expected = "outside topology")]
    fn out_of_range_device_panics() {
        let t = Topology::pcie(2);
        let _ = t.h2d_time(DeviceId(5), 1);
    }

    #[test]
    fn cluster_flat_and_locate_roundtrip() {
        let c = ClusterTopology::ethernet(3, 4);
        assert_eq!(c.n_devices(), 12);
        for flat in 0..c.n_devices() {
            let loc = c.locate(flat);
            assert_eq!(c.flat(loc.server, loc.local), flat);
        }
        assert_eq!(
            c.locate(7),
            DeviceLocation {
                server: 1,
                local: 3
            }
        );
        assert_eq!(c.server_of(8), 2);
    }

    #[test]
    fn cluster_inter_link_is_slower_than_intra() {
        let c = ClusterTopology::ethernet(2, 4);
        let bytes = 16 << 20;
        // Same server: intra link. Different server: the slow fabric.
        let intra = c.p2p_time_flat(0, 1, bytes);
        let inter = c.p2p_time_flat(0, 4, bytes);
        assert!(inter > intra, "inter {inter} must exceed intra {intra}");
        assert_eq!(c.p2p_time_flat(5, 5, bytes), 0.0);
    }

    #[test]
    fn cluster_setup_scale_applies_to_both_links() {
        let base = ClusterTopology::ethernet(2, 2);
        let scaled = base.clone().with_setup_scale(0.5);
        // Zero-byte transfers expose the pure setup latency.
        assert!(scaled.inter_time(0) < base.inter_time(0));
        assert!(scaled.p2p_time_flat(0, 1, 0) < base.p2p_time_flat(0, 1, 0));
    }

    #[test]
    fn cluster_inter_link_override() {
        let c = ClusterTopology::ethernet(2, 2).with_inter_link(10.0, 1e-6);
        assert_eq!(c.inter_gbs(), 10.0);
        assert_eq!(c.inter_setup_s(), 1e-6);
    }

    #[test]
    #[should_panic(expected = "outside cluster")]
    fn cluster_out_of_range_device_panics() {
        let _ = ClusterTopology::ethernet(2, 2).locate(4);
    }

    #[test]
    fn resized_topology_keeps_link_parameters() {
        let t = Topology::pcie(2).resized(8);
        assert_eq!(t.n_devices(), 8);
        let b = 1 << 20;
        assert_eq!(
            t.p2p_time(DeviceId(0), DeviceId(7), b),
            Topology::pcie(8).p2p_time(DeviceId(0), DeviceId(7), b)
        );
    }
}
