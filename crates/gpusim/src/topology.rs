//! Interconnect topology: host↔device and peer-to-peer link timing.

use crate::device::DeviceId;

/// Link bandwidths of a single-server multi-GPU interconnect.
///
/// The paper's scope is a single server (its all-reduce explicitly rejects
/// NCCL's multi-server optimizations), so the topology is flat: every GPU has
/// one host link and direct peer links of uniform bandwidth. Per-transfer
/// latency is modelled as a fixed setup cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    n_devices: usize,
    h2d_gbs: f64,
    p2p_gbs: f64,
    setup_s: f64,
}

impl Topology {
    /// PCIe-generation defaults matching [`crate::profile::DeviceProfile::v100`].
    pub fn pcie(n_devices: usize) -> Self {
        Self {
            n_devices,
            h2d_gbs: 12.0,
            p2p_gbs: 9.0,
            setup_s: 8e-6,
        }
    }

    /// NVLink-style topology: much faster peer links.
    pub fn nvlink(n_devices: usize) -> Self {
        Self {
            n_devices,
            h2d_gbs: 12.0,
            p2p_gbs: 45.0,
            setup_s: 5e-6,
        }
    }

    /// Number of devices in the server.
    pub fn n_devices(&self) -> usize {
        self.n_devices
    }

    /// Scales the per-transfer setup latency by `s` (builder-style) — the
    /// transfer analogue of
    /// [`crate::profile::DeviceProfile::with_overhead_scale`].
    pub fn with_setup_scale(mut self, s: f64) -> Self {
        assert!(s > 0.0, "setup scale must be positive");
        self.setup_s *= s;
        self
    }

    /// Seconds to move `bytes` from host to device `dst`.
    pub fn h2d_time(&self, dst: DeviceId, bytes: usize) -> f64 {
        self.check(dst);
        self.setup_s + bytes as f64 / (self.h2d_gbs * 1e9)
    }

    /// Seconds to move `bytes` from device `src` to host.
    pub fn d2h_time(&self, src: DeviceId, bytes: usize) -> f64 {
        self.check(src);
        self.setup_s + bytes as f64 / (self.h2d_gbs * 1e9)
    }

    /// Seconds to move `bytes` from device `src` to device `dst`.
    /// A self-transfer is free (the all-reduce skips it anyway).
    pub fn p2p_time(&self, src: DeviceId, dst: DeviceId, bytes: usize) -> f64 {
        self.check(src);
        self.check(dst);
        if src == dst {
            return 0.0;
        }
        self.setup_s + bytes as f64 / (self.p2p_gbs * 1e9)
    }

    fn check(&self, d: DeviceId) {
        assert!(d.0 < self.n_devices, "device {d} outside topology");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_self_transfer_is_free() {
        let t = Topology::pcie(4);
        assert_eq!(t.p2p_time(DeviceId(1), DeviceId(1), 1 << 20), 0.0);
    }

    #[test]
    fn bigger_transfers_take_longer() {
        let t = Topology::pcie(4);
        assert!(
            t.p2p_time(DeviceId(0), DeviceId(1), 2 << 20)
                > t.p2p_time(DeviceId(0), DeviceId(1), 1 << 20)
        );
    }

    #[test]
    fn nvlink_p2p_faster_than_pcie() {
        let big = 64 << 20;
        let pcie = Topology::pcie(4).p2p_time(DeviceId(0), DeviceId(1), big);
        let nvl = Topology::nvlink(4).p2p_time(DeviceId(0), DeviceId(1), big);
        assert!(nvl < pcie);
    }

    #[test]
    fn h2d_and_d2h_symmetric() {
        let t = Topology::pcie(2);
        let b = 10 << 20;
        assert_eq!(t.h2d_time(DeviceId(0), b), t.d2h_time(DeviceId(0), b));
    }

    #[test]
    #[should_panic(expected = "outside topology")]
    fn out_of_range_device_panics() {
        let t = Topology::pcie(2);
        let _ = t.h2d_time(DeviceId(5), 1);
    }
}
