//! Device memory tracking.
//!
//! The paper sets the initial batch size to `b_max`, "chosen such that the
//! GPU memory — and utilization — are maximized" (§V-A), and notes that the
//! GPU manager keeps intermediate kernel outputs resident "in order to
//! reduce data movement" (§IV). This module provides the allocation
//! bookkeeping those decisions rest on: a per-device [`MemoryTracker`] with
//! labelled allocations and out-of-memory detection.

/// Error returned when an allocation exceeds the remaining capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Requested bytes.
    pub requested: u64,
    /// Bytes still available.
    pub available: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of device memory: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Handle to one live allocation (freeing requires the handle, preventing
/// double frees by construction).
#[derive(Debug, PartialEq, Eq)]
pub struct Allocation {
    id: u64,
    bytes: u64,
}

impl Allocation {
    /// Size of this allocation.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// Tracks labelled allocations against a fixed capacity.
#[derive(Debug, Clone)]
pub struct MemoryTracker {
    capacity: u64,
    used: u64,
    next_id: u64,
    live: Vec<(u64, &'static str, u64)>,
    peak: u64,
}

impl MemoryTracker {
    /// A tracker over `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: 0,
            next_id: 0,
            live: Vec::new(),
            peak: 0,
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        self.capacity - self.used
    }

    /// High-water mark.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.used as f64 / self.capacity as f64
        }
    }

    /// Allocates `bytes` under `label`.
    pub fn alloc(&mut self, label: &'static str, bytes: u64) -> Result<Allocation, OutOfMemory> {
        if bytes > self.available() {
            return Err(OutOfMemory {
                requested: bytes,
                available: self.available(),
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        self.live.push((id, label, bytes));
        Ok(Allocation { id, bytes })
    }

    /// Frees an allocation.
    pub fn free(&mut self, allocation: Allocation) {
        let pos = self
            .live
            .iter()
            .position(|&(id, _, _)| id == allocation.id)
            .expect("allocation not tracked — freed on the wrong device?");
        let (_, _, bytes) = self.live.remove(pos);
        debug_assert_eq!(bytes, allocation.bytes);
        self.used -= bytes;
    }

    /// Live allocations as `(label, bytes)` pairs (diagnostics).
    pub fn live_allocations(&self) -> Vec<(&'static str, u64)> {
        self.live.iter().map(|&(_, l, b)| (l, b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut m = MemoryTracker::new(1000);
        let a = m.alloc("model", 600).unwrap();
        assert_eq!(m.used(), 600);
        assert_eq!(m.available(), 400);
        assert!((m.utilization() - 0.6).abs() < 1e-12);
        m.free(a);
        assert_eq!(m.used(), 0);
        assert_eq!(m.peak(), 600);
    }

    #[test]
    fn oom_is_reported_not_panicked() {
        let mut m = MemoryTracker::new(100);
        let _keep = m.alloc("model", 80).unwrap();
        let err = m.alloc("batch", 30).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.available, 20);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut m = MemoryTracker::new(1000);
        let a = m.alloc("a", 500).unwrap();
        let b = m.alloc("b", 300).unwrap();
        m.free(a);
        let _c = m.alloc("c", 100).unwrap();
        m.free(b);
        assert_eq!(m.peak(), 800);
    }

    #[test]
    fn live_allocations_are_labelled() {
        let mut m = MemoryTracker::new(1000);
        let _a = m.alloc("model", 10).unwrap();
        let _b = m.alloc("batch", 20).unwrap();
        assert_eq!(m.live_allocations(), vec![("model", 10), ("batch", 20)]);
    }

    #[test]
    #[should_panic(expected = "not tracked")]
    fn freeing_on_wrong_tracker_panics() {
        let mut a = MemoryTracker::new(100);
        let mut b = MemoryTracker::new(100);
        let alloc = a.alloc("x", 10).unwrap();
        b.free(alloc);
    }

    #[test]
    fn zero_capacity_is_always_oom() {
        let mut m = MemoryTracker::new(0);
        assert!(m.alloc("x", 1).is_err());
        assert_eq!(m.utilization(), 0.0);
    }
}
