//! Execution traces: who ran what, when (Fig. 2-style timelines).

use crate::device::DeviceId;
use crate::SimTime;
use parking_lot::Mutex;
use std::sync::Arc;

/// One traced span on a device timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Device the span ran on.
    pub device: DeviceId,
    /// Span start, virtual time.
    pub start: SimTime,
    /// Span end, virtual time.
    pub end: SimTime,
    /// Free-form label, e.g. `"batch 7 (size 512, nnz 40133)"`.
    pub label: String,
}

/// A shared, thread-safe trace sink.
///
/// GPU-manager threads record into it concurrently; [`TraceLog::sorted`]
/// produces a deterministic ordering (by start time, then device) for
/// rendering the dispatch timeline. Tracing can be disabled to make
/// recording free in production runs.
#[derive(Debug, Clone)]
pub struct TraceLog {
    inner: Arc<Mutex<Vec<TraceEvent>>>,
    enabled: bool,
}

impl TraceLog {
    /// An enabled, empty log.
    pub fn enabled() -> Self {
        Self {
            inner: Arc::new(Mutex::new(Vec::new())),
            enabled: true,
        }
    }

    /// A disabled log: `record` is a no-op.
    pub fn disabled() -> Self {
        Self {
            inner: Arc::new(Mutex::new(Vec::new())),
            enabled: false,
        }
    }

    /// Whether events are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one span (no-op when disabled).
    pub fn record(&self, device: DeviceId, start: SimTime, end: SimTime, label: impl Into<String>) {
        if !self.enabled {
            return;
        }
        self.inner.lock().push(TraceEvent {
            device,
            start,
            end,
            label: label.into(),
        });
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// All events sorted by `(start, device)` — deterministic regardless of
    /// recording interleaving.
    pub fn sorted(&self) -> Vec<TraceEvent> {
        let mut events = self.inner.lock().clone();
        events.sort_by(|a, b| {
            a.start
                .partial_cmp(&b.start)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.device.cmp(&b.device))
        });
        events
    }

    /// Exports the trace in Chrome tracing format (`chrome://tracing` /
    /// Perfetto): a JSON array of complete (`"ph":"X"`) events, one per
    /// span, with the device as the thread id and microsecond timestamps.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[\n");
        let events = self.sorted();
        for (i, e) in events.iter().enumerate() {
            let name: String = e
                .label
                .chars()
                .map(|c| if c == '"' || c == '\\' { '\'' } else { c })
                .collect();
            out.push_str(&format!(
                "  {{\"name\": \"{}\", \"ph\": \"X\", \"pid\": 0, \"tid\": {}, \
                 \"ts\": {:.3}, \"dur\": {:.3}}}{}\n",
                name,
                e.device.0,
                e.start.secs() * 1e6,
                (e.end - e.start) * 1e6,
                if i + 1 == events.len() { "" } else { "," }
            ));
        }
        out.push(']');
        out
    }

    /// Renders a compact text timeline, one line per event.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.sorted() {
            out.push_str(&format!(
                "[{:>10.6} - {:>10.6}] {} {}\n",
                e.start.secs(),
                e.end.secs(),
                e.device,
                e.label
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_sorts() {
        let log = TraceLog::enabled();
        log.record(DeviceId(1), SimTime(2.0), SimTime(3.0), "b");
        log.record(DeviceId(0), SimTime(1.0), SimTime(2.0), "a");
        log.record(DeviceId(0), SimTime(2.0), SimTime(2.5), "c");
        let s = log.sorted();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].label, "a");
        assert_eq!(s[1].label, "c"); // same start as "b" but device 0 < 1
        assert_eq!(s[2].label, "b");
    }

    #[test]
    fn disabled_log_records_nothing() {
        let log = TraceLog::disabled();
        log.record(DeviceId(0), SimTime(0.0), SimTime(1.0), "x");
        assert!(log.is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn clones_share_storage() {
        let log = TraceLog::enabled();
        let clone = log.clone();
        clone.record(DeviceId(0), SimTime(0.0), SimTime(1.0), "x");
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn chrome_json_is_wellformed_and_complete() {
        let log = TraceLog::enabled();
        log.record(DeviceId(0), SimTime(0.0), SimTime(0.001), "batch 0");
        log.record(DeviceId(1), SimTime(0.0005), SimTime(0.002), "batch \"1\"");
        let json = log.to_chrome_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 2);
        assert!(json.contains("\"tid\": 1"));
        // Quotes in labels are sanitized so the JSON stays parseable.
        assert!(!json.contains("batch \"1\""));
        assert!(json.contains("batch '1'"));
        // Durations are microseconds.
        assert!(json.contains("\"dur\": 1000.000"));
    }

    #[test]
    fn chrome_json_empty_trace() {
        assert_eq!(TraceLog::enabled().to_chrome_json(), "[\n]");
    }

    #[test]
    fn render_contains_labels() {
        let log = TraceLog::enabled();
        log.record(DeviceId(2), SimTime(0.5), SimTime(1.0), "batch 7");
        let text = log.render();
        assert!(text.contains("gpu2"));
        assert!(text.contains("batch 7"));
    }
}
