//! Kernel-launch accounting with and without kernel fusion.
//!
//! §IV of the paper: multiple GPU managers launching CUDA kernels
//! simultaneously contend in the shared CUDA environment scheduler, inflating
//! kernel startup overhead — and the inflation grows with the number of GPUs.
//! HeteroGPU's mitigation is to fuse small element-wise kernels into one
//! launch issued on an independent stream with event-based completion.
//!
//! This module models exactly that: a [`LaunchModel`] computes the effective
//! per-launch overhead given the number of concurrently launching managers,
//! and [`plan_epoch`] turns a list of kernels into the launch sequence a
//! fused or unfused execution would issue.

use crate::cost::KernelKind;

/// Whether small element-wise kernels are fused into a single launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusionPolicy {
    /// Every primitive is its own kernel launch (the naive baseline).
    Unfused,
    /// Consecutive element-wise/softmax/reduce primitives are grouped into
    /// one launch that bypasses the contended global environment.
    Fused,
}

/// Effective launch-overhead model under cross-GPU contention.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchModel {
    /// Uncontended per-launch overhead, seconds.
    pub base_overhead_s: f64,
    /// Additional overhead per *other* concurrently launching manager,
    /// as a fraction of the base (the paper observes super-linear growth;
    /// we use a quadratic-in-contenders form that matches its trend).
    pub contention_factor: f64,
}

impl LaunchModel {
    /// Default calibrated so 4 contending managers roughly double overhead.
    pub fn default_cuda() -> Self {
        LaunchModel {
            base_overhead_s: 6e-6,
            contention_factor: 0.18,
        }
    }

    /// Per-launch overhead when `concurrent_managers` managers are launching.
    pub fn overhead(&self, concurrent_managers: usize) -> f64 {
        let others = concurrent_managers.saturating_sub(1) as f64;
        self.base_overhead_s * (1.0 + self.contention_factor * others * (1.0 + 0.5 * others))
    }
}

/// A planned launch: how many primitives it covers (for bookkeeping) and
/// whether it went through the contended global path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Launch {
    /// Number of primitive kernels folded into this launch.
    pub primitives: usize,
    /// Fused launches use private streams + events and bypass contention.
    pub bypasses_contention: bool,
}

/// Whether a kernel is a fusion candidate (small element-wise primitive).
fn fusible(kind: &KernelKind) -> bool {
    matches!(
        kind,
        KernelKind::Elementwise { .. } | KernelKind::Reduce { .. } | KernelKind::Softmax { .. }
    )
}

/// Groups an epoch's kernel list into launches under the given policy.
///
/// Under [`FusionPolicy::Fused`], maximal runs of fusible kernels become one
/// launch; matrix products and transfers always launch individually (they
/// are cuSPARSE/cuBLAS calls in the real system).
pub fn plan_epoch(kernels: &[KernelKind], policy: FusionPolicy) -> Vec<Launch> {
    let mut launches = Vec::new();
    match policy {
        FusionPolicy::Unfused => {
            for _ in kernels {
                launches.push(Launch {
                    primitives: 1,
                    bypasses_contention: false,
                });
            }
        }
        FusionPolicy::Fused => {
            let mut run = 0usize;
            for k in kernels {
                if fusible(k) {
                    run += 1;
                } else {
                    if run > 0 {
                        launches.push(Launch {
                            primitives: run,
                            bypasses_contention: true,
                        });
                        run = 0;
                    }
                    launches.push(Launch {
                        primitives: 1,
                        bypasses_contention: false,
                    });
                }
            }
            if run > 0 {
                launches.push(Launch {
                    primitives: run,
                    bypasses_contention: true,
                });
            }
        }
    }
    launches
}

/// Total launch overhead of an epoch: each launch pays the (possibly
/// contended) overhead once; fused launches pay the *uncontended* base.
pub fn epoch_launch_overhead(
    kernels: &[KernelKind],
    policy: FusionPolicy,
    model: &LaunchModel,
    concurrent_managers: usize,
) -> f64 {
    plan_epoch(kernels, policy)
        .iter()
        .map(|l| {
            if l.bypasses_contention {
                model.base_overhead_s
            } else {
                model.overhead(concurrent_managers)
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch() -> Vec<KernelKind> {
        vec![
            KernelKind::H2d { bytes: 1024 },
            KernelKind::SpMm { nnz: 100, n: 8 },
            KernelKind::Elementwise { elems: 64 },
            KernelKind::Elementwise { elems: 64 },
            KernelKind::Gemm { m: 4, k: 8, n: 16 },
            KernelKind::Softmax { rows: 4, cols: 16 },
            KernelKind::Reduce { elems: 64 },
            KernelKind::Elementwise { elems: 64 },
        ]
    }

    #[test]
    fn unfused_one_launch_per_kernel() {
        let plan = plan_epoch(&epoch(), FusionPolicy::Unfused);
        assert_eq!(plan.len(), 8);
        assert!(plan
            .iter()
            .all(|l| l.primitives == 1 && !l.bypasses_contention));
    }

    #[test]
    fn fused_groups_elementwise_runs() {
        let plan = plan_epoch(&epoch(), FusionPolicy::Fused);
        // h2d, spmm, [ew,ew], gemm, [softmax,reduce,ew] => 5 launches.
        assert_eq!(plan.len(), 5);
        let fused: Vec<_> = plan.iter().filter(|l| l.bypasses_contention).collect();
        assert_eq!(fused.len(), 2);
        assert_eq!(fused[0].primitives, 2);
        assert_eq!(fused[1].primitives, 3);
        // Primitive count is preserved.
        assert_eq!(plan.iter().map(|l| l.primitives).sum::<usize>(), 8);
    }

    #[test]
    fn contention_grows_with_managers() {
        let m = LaunchModel::default_cuda();
        let o1 = m.overhead(1);
        let o2 = m.overhead(2);
        let o4 = m.overhead(4);
        assert_eq!(o1, m.base_overhead_s);
        assert!(o2 > o1);
        assert!(o4 > o2);
        // Superlinear: marginal cost of managers 3-4 exceeds manager 2's.
        assert!(o4 - o2 > o2 - o1);
    }

    #[test]
    fn fusion_saves_overhead_and_savings_grow_with_gpus() {
        let m = LaunchModel::default_cuda();
        let k = epoch();
        for managers in [1usize, 2, 4, 8] {
            let unfused = epoch_launch_overhead(&k, FusionPolicy::Unfused, &m, managers);
            let fused = epoch_launch_overhead(&k, FusionPolicy::Fused, &m, managers);
            assert!(fused < unfused, "managers={managers}");
        }
        let save2 = epoch_launch_overhead(&k, FusionPolicy::Unfused, &m, 2)
            - epoch_launch_overhead(&k, FusionPolicy::Fused, &m, 2);
        let save8 = epoch_launch_overhead(&k, FusionPolicy::Unfused, &m, 8)
            - epoch_launch_overhead(&k, FusionPolicy::Fused, &m, 8);
        assert!(save8 > save2);
    }

    #[test]
    fn all_fusible_epoch_is_one_launch() {
        let k = vec![KernelKind::Elementwise { elems: 8 }; 5];
        let plan = plan_epoch(&k, FusionPolicy::Fused);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].primitives, 5);
    }

    #[test]
    fn empty_epoch_has_no_launches() {
        assert!(plan_epoch(&[], FusionPolicy::Fused).is_empty());
        assert!(plan_epoch(&[], FusionPolicy::Unfused).is_empty());
    }
}
