//! Deterministic fault injection: seeded, reproducible fault plans.
//!
//! Elastic training treats mid-run resource *change* — stragglers, device
//! loss, shrink/grow — as the defining scenario (Adaptive Elastic Training,
//! arXiv:2110.07029; Dynamic Mini-batch SGD, arXiv:1904.12043). A
//! [`FaultPlan`] schedules such events against the *virtual* execution of a
//! training run: every event fires at a `(mega-batch index, batch ordinal)`
//! point of the scheduler's deterministic loop, so a run under faults is a
//! pure function of `(run seed, fault seed)` — the same plan replayed at any
//! `ASGD_THREADS` produces bit-identical results, which is what makes chaos
//! failures reproducible from a single logged seed.
//!
//! The fault *vocabulary* lives here, next to the device model it perturbs;
//! the *reaction* (re-dispatch, replica eviction, merge fallback) is the
//! trainer's job (`asgd-core::trainer`).

use rand::{rngs::StdRng, Rng, SeedableRng};

/// What happens when a fault event fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The device's speed factor changes (straggler spike when `factor < 1`,
    /// recovery when it returns to the profile's nominal speed). Applied
    /// *from the firing sim time onward* — never retroactively to work the
    /// device already executed (see [`crate::Device::schedule_speed_factor`]).
    SpeedChange {
        /// New speed factor (must be positive).
        factor: f64,
    },
    /// A transient stall: the device freezes for `seconds` of sim time
    /// (driver hiccup, ECC scrub, co-tenant burst). The virtual clock jumps
    /// forward; dynamic dispatch routes batches around the stalled device
    /// until it catches up.
    Stall {
        /// Stall duration in simulated seconds.
        seconds: f64,
    },
    /// Permanent device loss. The trainer must re-dispatch the replica's
    /// in-flight batches, evict it from merging (renormalizing `α_i` over
    /// survivors), and re-target batch-size scaling to the surviving set.
    DeviceLoss,
    /// Merge-time out-of-memory on the merge arena's pooled scratch
    /// allocation: the merge must degrade to the serial (non-pooled)
    /// reduction path instead of aborting. `gpu` is ignored for this kind.
    MergeOom,
    /// Permanent loss of an entire server (node): every device of the server
    /// dies at once — power loss, kernel panic, a fabric partition declared
    /// permanent. The trainer evicts all member replicas (in ascending local
    /// order), re-dispatches their in-flight batches to survivors, and
    /// renormalizes `α_i` across the surviving nodes. For this kind the
    /// event's `gpu` field holds the *server* index.
    ServerLoss,
    /// A transient inter-node stall: the server's uplink degrades and every
    /// device of the server freezes for `seconds` of sim time (network
    /// partition that heals, switch buffer exhaustion, a routing flap).
    /// For this kind the event's `gpu` field holds the *server* index.
    InterNodeStall {
        /// Stall duration in simulated seconds.
        seconds: f64,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Mega-batch (in-run index, 0-based) in which the event fires.
    pub at_mega: usize,
    /// Batch ordinal *within* the mega-batch at which the event fires:
    /// the event triggers just before the `after_batches`-th dispatch of
    /// that mega-batch (`0` = at the boundary, before any dispatch). Events
    /// whose ordinal exceeds the mega-batch's dispatch count fire at the
    /// merge boundary instead — no event is ever silently dropped.
    /// [`FaultKind::MergeOom`] ignores this field and fires at the merge.
    pub after_batches: usize,
    /// Target device (ignored by [`FaultKind::MergeOom`]; holds the *server*
    /// index for [`FaultKind::ServerLoss`] and [`FaultKind::InterNodeStall`]).
    pub gpu: usize,
    /// The fault itself.
    pub kind: FaultKind,
}

/// A reproducible schedule of fault events, sorted by firing point.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an arbitrary event (builder-style).
    pub fn with_event(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self.sort();
        self
    }

    /// Schedules a speed-factor change.
    pub fn speed_change(
        self,
        at_mega: usize,
        after_batches: usize,
        gpu: usize,
        factor: f64,
    ) -> Self {
        assert!(factor > 0.0, "speed factor must be positive");
        self.with_event(FaultEvent {
            at_mega,
            after_batches,
            gpu,
            kind: FaultKind::SpeedChange { factor },
        })
    }

    /// Schedules a transient stall.
    pub fn stall(self, at_mega: usize, after_batches: usize, gpu: usize, seconds: f64) -> Self {
        assert!(seconds >= 0.0, "stall duration must be non-negative");
        self.with_event(FaultEvent {
            at_mega,
            after_batches,
            gpu,
            kind: FaultKind::Stall { seconds },
        })
    }

    /// Schedules a permanent device loss.
    pub fn device_loss(self, at_mega: usize, after_batches: usize, gpu: usize) -> Self {
        self.with_event(FaultEvent {
            at_mega,
            after_batches,
            gpu,
            kind: FaultKind::DeviceLoss,
        })
    }

    /// Schedules the permanent loss of a whole server.
    pub fn server_loss(self, at_mega: usize, after_batches: usize, server: usize) -> Self {
        self.with_event(FaultEvent {
            at_mega,
            after_batches,
            gpu: server,
            kind: FaultKind::ServerLoss,
        })
    }

    /// Schedules a transient inter-node stall on a server's uplink.
    pub fn inter_node_stall(
        self,
        at_mega: usize,
        after_batches: usize,
        server: usize,
        seconds: f64,
    ) -> Self {
        assert!(seconds >= 0.0, "stall duration must be non-negative");
        self.with_event(FaultEvent {
            at_mega,
            after_batches,
            gpu: server,
            kind: FaultKind::InterNodeStall { seconds },
        })
    }

    /// Schedules a merge-time arena OOM at the given mega-batch's merge.
    pub fn merge_oom(self, at_mega: usize) -> Self {
        self.with_event(FaultEvent {
            at_mega,
            after_batches: 0,
            gpu: 0,
            kind: FaultKind::MergeOom,
        })
    }

    /// Generates a reproducible mixed plan for an `n_gpus`-device run of
    /// `megas` mega-batches: a straggler spike with later recovery, a
    /// transient stall, one merge-OOM, and — when the server has at least
    /// three devices and the run is long enough — one permanent device loss
    /// (never the last survivor; at most one loss so at least two replicas
    /// keep exercising the merge path).
    ///
    /// The same `(seed, n_gpus, megas)` always yields the same plan.
    pub fn random(seed: u64, n_gpus: usize, megas: usize) -> Self {
        assert!(n_gpus >= 1, "need at least one device");
        assert!(megas >= 1, "need at least one mega-batch");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A5_F001_DE7E_C7ED);
        let mut plan = FaultPlan::new();
        let mega = |rng: &mut StdRng, lo: usize| -> usize {
            if megas <= lo + 1 {
                megas - 1
            } else {
                rng.gen_range(lo..megas)
            }
        };
        if n_gpus >= 2 {
            // Straggler spike: throttle hard, recover a few megas later.
            let victim = rng.gen_range(0..n_gpus);
            let drop_at = mega(&mut rng, 0);
            let factor = 0.2 + 0.3 * rng.gen_range(0.0..1.0);
            plan = plan.speed_change(drop_at, rng.gen_range(0..8), victim, factor);
            if drop_at + 1 < megas {
                plan = plan.speed_change(
                    mega(&mut rng, drop_at + 1),
                    rng.gen_range(0..8),
                    victim,
                    1.0,
                );
            }
            // Transient stall on some device.
            let stalled = rng.gen_range(0..n_gpus);
            plan = plan.stall(
                mega(&mut rng, 0),
                rng.gen_range(0..8),
                stalled,
                0.05 + rng.gen_range(0.0..0.2),
            );
        }
        // Merge-time arena OOM.
        plan = plan.merge_oom(mega(&mut rng, 0));
        if n_gpus >= 3 && megas >= 3 {
            // Permanent loss of one device, mid-run and mid-mega.
            let lost = rng.gen_range(0..n_gpus);
            plan = plan.device_loss(mega(&mut rng, 1), 1 + rng.gen_range(0..6usize), lost);
        }
        plan
    }

    /// [`FaultPlan::random`] for an `servers × devices_per_server` cluster:
    /// every device-targeted victim is drawn as a `(server, local-device)`
    /// pair and mapped to its flat id through the fixed server-major
    /// ordering — the same event list is valid for any context that agrees
    /// on the shape (the topology-aware replacement for `random`'s flat-id
    /// draws). On top of the single-server vocabulary it schedules, when the
    /// cluster is big enough to survive them, one transient inter-node stall
    /// (`servers ≥ 2`) and one whole-server loss (`servers ≥ 3`, so at least
    /// two nodes keep exercising the hierarchical merge).
    ///
    /// The same `(seed, servers, devices_per_server, megas)` always yields
    /// the same plan.
    pub fn random_cluster(
        seed: u64,
        servers: usize,
        devices_per_server: usize,
        megas: usize,
    ) -> Self {
        assert!(servers >= 1, "need at least one server");
        assert!(devices_per_server >= 1, "need at least one device/server");
        assert!(megas >= 1, "need at least one mega-batch");
        let n_gpus = servers * devices_per_server;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5E2F_C1A9_0B3D_77E5);
        let mut plan = FaultPlan::new();
        let mega = |rng: &mut StdRng, lo: usize| -> usize {
            if megas <= lo + 1 {
                megas - 1
            } else {
                rng.gen_range(lo..megas)
            }
        };
        // Victims are (server, local) pairs, never raw flat indices: the draw
        // stays meaningful if the same plan is replayed against a context
        // that knows the shape.
        let device = |rng: &mut StdRng| -> usize {
            let s = rng.gen_range(0..servers);
            let l = rng.gen_range(0..devices_per_server);
            s * devices_per_server + l
        };
        if n_gpus >= 2 {
            let victim = device(&mut rng);
            let drop_at = mega(&mut rng, 0);
            let factor = 0.2 + 0.3 * rng.gen_range(0.0..1.0);
            plan = plan.speed_change(drop_at, rng.gen_range(0..8), victim, factor);
            if drop_at + 1 < megas {
                plan = plan.speed_change(
                    mega(&mut rng, drop_at + 1),
                    rng.gen_range(0..8),
                    victim,
                    1.0,
                );
            }
            let stalled = device(&mut rng);
            plan = plan.stall(
                mega(&mut rng, 0),
                rng.gen_range(0..8),
                stalled,
                0.05 + rng.gen_range(0.0..0.2),
            );
        }
        plan = plan.merge_oom(mega(&mut rng, 0));
        if n_gpus >= 3 && megas >= 3 {
            let lost = device(&mut rng);
            plan = plan.device_loss(mega(&mut rng, 1), 1 + rng.gen_range(0..6usize), lost);
        }
        if servers >= 2 && megas >= 2 {
            let server = rng.gen_range(0..servers);
            plan = plan.inter_node_stall(
                mega(&mut rng, 1),
                rng.gen_range(0..8),
                server,
                0.1 + rng.gen_range(0.0..0.3),
            );
        }
        if servers >= 3 && megas >= 3 {
            let server = rng.gen_range(0..servers);
            plan = plan.server_loss(mega(&mut rng, 1), 1 + rng.gen_range(0..6usize), server);
        }
        plan
    }

    /// All scheduled events, sorted by `(at_mega, after_batches, gpu)`.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan contains any event that permanently kills replicas
    /// ([`FaultKind::DeviceLoss`] or [`FaultKind::ServerLoss`]) — the
    /// trainer uses this to decide whether in-flight batch bookkeeping is
    /// needed at all.
    pub fn has_device_loss(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::DeviceLoss | FaultKind::ServerLoss))
    }

    /// Whether a [`FaultKind::MergeOom`] fires at mega-batch `at_mega`.
    pub fn merge_oom_at(&self, at_mega: usize) -> bool {
        self.events
            .iter()
            .any(|e| e.at_mega == at_mega && e.kind == FaultKind::MergeOom)
    }

    /// Events (excluding [`FaultKind::MergeOom`], which is merge-phase-only)
    /// that fire in mega-batch `at_mega` once `dispatched` batches have been
    /// dispatched within it: every event with `after_batches` in
    /// `(prev_dispatched, dispatched]`-style windows is the caller's to
    /// manage; this helper returns those with `after_batches == dispatched`
    /// exactly, plus — when `at_merge` is set — all not-yet-fired stragglers
    /// of the mega (events whose ordinal was never reached).
    pub fn due(&self, at_mega: usize, dispatched: usize, at_merge: bool) -> Vec<FaultEvent> {
        self.events
            .iter()
            .filter(|e| {
                e.at_mega == at_mega
                    && e.kind != FaultKind::MergeOom
                    && if at_merge {
                        e.after_batches >= dispatched
                    } else {
                        e.after_batches == dispatched
                    }
            })
            .copied()
            .collect()
    }

    fn sort(&mut self) {
        self.events
            .sort_by_key(|e| (e.at_mega, e.after_batches, e.gpu));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_keeps_events_sorted() {
        let plan = FaultPlan::new()
            .stall(3, 0, 1, 0.5)
            .speed_change(0, 2, 0, 0.5)
            .device_loss(1, 4, 2);
        let megas: Vec<usize> = plan.events().iter().map(|e| e.at_mega).collect();
        assert_eq!(megas, vec![0, 1, 3]);
        assert!(plan.has_device_loss());
    }

    #[test]
    fn random_plan_is_deterministic() {
        let a = FaultPlan::random(7, 4, 12);
        let b = FaultPlan::random(7, 4, 12);
        assert_eq!(a, b);
        let c = FaultPlan::random(8, 4, 12);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn random_plan_stays_in_range() {
        for seed in 0..50 {
            for (n, megas) in [(1usize, 1usize), (2, 3), (3, 8), (4, 20)] {
                let plan = FaultPlan::random(seed, n, megas);
                for e in plan.events() {
                    assert!(e.at_mega < megas, "event beyond run length: {e:?}");
                    assert!(e.gpu < n, "event on unknown gpu: {e:?}");
                }
                // Never more than one loss, and none on tiny servers.
                let losses = plan
                    .events()
                    .iter()
                    .filter(|e| e.kind == FaultKind::DeviceLoss)
                    .count();
                assert!(losses <= 1);
                if n < 3 {
                    assert_eq!(losses, 0, "loss scheduled with < 3 devices");
                }
            }
        }
    }

    #[test]
    fn due_matches_exact_dispatch_points_and_sweeps_at_merge() {
        let plan = FaultPlan::new()
            .speed_change(2, 0, 0, 0.5)
            .stall(2, 3, 1, 0.1)
            .device_loss(2, 99, 0)
            .merge_oom(2);
        assert_eq!(plan.due(2, 0, false).len(), 1);
        assert_eq!(plan.due(2, 1, false).len(), 0);
        assert_eq!(plan.due(2, 3, false).len(), 1);
        // Merge sweep catches the never-reached ordinal but not MergeOom.
        let at_merge = plan.due(2, 10, true);
        assert_eq!(at_merge.len(), 1);
        assert_eq!(at_merge[0].kind, FaultKind::DeviceLoss);
        assert!(plan.merge_oom_at(2));
        assert!(!plan.merge_oom_at(1));
        assert!(plan.due(1, 0, false).is_empty());
    }

    #[test]
    #[should_panic(expected = "speed factor must be positive")]
    fn non_positive_speed_factor_panics() {
        let _ = FaultPlan::new().speed_change(0, 0, 0, 0.0);
    }

    #[test]
    fn random_cluster_plan_is_deterministic_and_shape_aware() {
        let a = FaultPlan::random_cluster(7, 4, 4, 12);
        let b = FaultPlan::random_cluster(7, 4, 4, 12);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::random_cluster(8, 4, 4, 12));
        // A different shape redraws the victims even at the same seed.
        assert_ne!(a, FaultPlan::random_cluster(7, 2, 8, 12));
    }

    #[test]
    fn random_cluster_events_stay_in_range() {
        for seed in 0..40 {
            for (servers, m, megas) in [(1usize, 1usize, 1usize), (2, 4, 3), (3, 2, 8), (8, 4, 12)]
            {
                let plan = FaultPlan::random_cluster(seed, servers, m, megas);
                for e in plan.events() {
                    assert!(e.at_mega < megas, "event beyond run length: {e:?}");
                    match e.kind {
                        FaultKind::ServerLoss | FaultKind::InterNodeStall { .. } => {
                            assert!(e.gpu < servers, "event on unknown server: {e:?}");
                        }
                        _ => assert!(e.gpu < servers * m, "event on unknown gpu: {e:?}"),
                    }
                }
                let server_losses = plan
                    .events()
                    .iter()
                    .filter(|e| e.kind == FaultKind::ServerLoss)
                    .count();
                assert!(server_losses <= 1);
                if servers < 3 {
                    assert_eq!(server_losses, 0, "server loss scheduled with < 3 servers");
                }
            }
        }
    }

    #[test]
    fn random_cluster_device_losses_map_to_consistent_locations() {
        // The topology-aware draw must keep every device-targeted victim
        // decomposable as (server, local) of the generating shape.
        for seed in 0..40 {
            let (servers, m) = (4usize, 3usize);
            let plan = FaultPlan::random_cluster(seed, servers, m, 10);
            for e in plan.events() {
                if matches!(
                    e.kind,
                    FaultKind::DeviceLoss | FaultKind::SpeedChange { .. } | FaultKind::Stall { .. }
                ) {
                    let (s, l) = (e.gpu / m, e.gpu % m);
                    assert!(
                        s < servers && l < m,
                        "victim {} has no (server, local)",
                        e.gpu
                    );
                }
            }
        }
    }

    #[test]
    fn server_loss_and_inter_node_stall_builders() {
        let plan = FaultPlan::new()
            .server_loss(2, 1, 1)
            .inter_node_stall(0, 3, 0, 0.25);
        assert!(plan.has_device_loss(), "server loss implies replica loss");
        assert_eq!(
            plan.events()[0].kind,
            FaultKind::InterNodeStall { seconds: 0.25 }
        );
        assert_eq!(plan.events()[1].kind, FaultKind::ServerLoss);
        assert!(!FaultPlan::new()
            .inter_node_stall(0, 0, 0, 0.1)
            .has_device_loss());
    }
}
