//! The simulated device: a virtual clock plus a seeded jitter process.

use crate::cost::{kernel_time, KernelKind};
use crate::profile::DeviceProfile;
use crate::SimTime;
use asgd_stats::dist::standard_normal;
use rand::{rngs::StdRng, SeedableRng};

/// Identifier of a device within a server (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub usize);

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

/// A simulated GPU: profile + virtual clock + jitter state.
///
/// `execute` charges a kernel: it computes the analytic duration from the
/// profile, perturbs it with the device's jitter process, advances the clock,
/// and returns the perturbed duration. The jitter RNG is seeded from
/// `(server seed, device id)`, so a fixed seed reproduces the exact timing
/// trace regardless of how threads interleave in real time.
#[derive(Debug)]
pub struct Device {
    id: DeviceId,
    profile: DeviceProfile,
    clock: SimTime,
    kernels_executed: u64,
    rng: StdRng,
    phase: f64,
    /// Speed changes scheduled for a future sim time, sorted by time
    /// ascending (see [`Device::schedule_speed_factor`]).
    pending_speed: Vec<(SimTime, f64)>,
}

impl Device {
    /// Creates a device with its own jitter stream derived from `seed`.
    pub fn new(id: DeviceId, profile: DeviceProfile, seed: u64) -> Self {
        let mut rng =
            StdRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64).wrapping_mul(id.0 as u64 + 1));
        // A random phase decorrelates the slow drift across devices.
        let phase = rand::Rng::gen_range(&mut rng, 0.0..std::f64::consts::TAU);
        Self {
            id,
            profile,
            clock: SimTime::ZERO,
            kernels_executed: 0,
            rng,
            phase,
            pending_speed: Vec::new(),
        }
    }

    /// Device id.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// Capability profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Total kernels charged so far.
    pub fn kernels_executed(&self) -> u64 {
        self.kernels_executed
    }

    /// The multiplicative jitter factor for the next kernel, consuming one
    /// RNG draw. Always positive; 1.0 when the jitter model is `NONE`.
    fn next_jitter(&mut self) -> f64 {
        let j = &self.profile.jitter;
        let osc = if j.osc_amplitude > 0.0 {
            1.0 + j.osc_amplitude
                * (std::f64::consts::TAU * self.kernels_executed as f64 / j.osc_period + self.phase)
                    .sin()
        } else {
            1.0
        };
        let noise = if j.lognormal_sigma > 0.0 {
            (j.lognormal_sigma * standard_normal(&mut self.rng)).exp()
        } else {
            1.0
        };
        osc * noise
    }

    /// Applies every pending speed change whose scheduled time is at or
    /// before `now` (the start of the next kernel). Later changes win when
    /// several are due at once.
    fn apply_due_speed_changes(&mut self, now: SimTime) {
        while let Some(&(at, factor)) = self.pending_speed.first() {
            if at.secs() > now.secs() {
                break;
            }
            self.profile.speed_factor = factor;
            self.pending_speed.remove(0);
        }
    }

    /// Charges one kernel: advances the clock by the perturbed duration and
    /// returns that duration in seconds.
    pub fn execute(&mut self, kind: KernelKind) -> f64 {
        if !self.pending_speed.is_empty() {
            self.apply_due_speed_changes(self.clock);
        }
        let base = kernel_time(&self.profile, kind);
        let jitter = self.next_jitter();
        self.kernels_executed += 1;
        let dt = base * jitter;
        self.clock = self.clock + dt;
        dt
    }

    /// Charges a batch of kernels issued back-to-back, returning the total
    /// duration. Equivalent to calling [`Device::execute`] on each.
    pub fn execute_all(&mut self, kinds: &[KernelKind]) -> f64 {
        kinds.iter().map(|&k| self.execute(k)).sum()
    }

    /// Charges a whole epoch of kernels at once with a framework-level
    /// duration `multiplier` (e.g. TensorFlow's slower epoch execution) and
    /// an additive `extra` launch-overhead delta (kernel fusion savings are
    /// negative, cross-manager contention positive). The jitter stream is
    /// consumed exactly as per-kernel execution would; the clock advances by
    /// `max(0, Σ perturbed durations · multiplier + extra)`, which is
    /// returned.
    pub fn charge_epoch(&mut self, kinds: &[KernelKind], multiplier: f64, extra: f64) -> f64 {
        let mut total = 0.0;
        for &k in kinds {
            if !self.pending_speed.is_empty() {
                // A scheduled speed change landing mid-epoch applies from
                // the first kernel *starting* at or after its time — the
                // kernel in flight when the change fires keeps its old
                // price, it is never re-charged retroactively. Boundary
                // times track compute progress (`total · multiplier`); the
                // additive launch-overhead `extra` is charged at epoch end
                // as before.
                self.apply_due_speed_changes(self.clock + total * multiplier);
            }
            let base = kernel_time(&self.profile, k);
            let jitter = self.next_jitter();
            self.kernels_executed += 1;
            total += base * jitter;
        }
        let dt = (total * multiplier + extra).max(0.0);
        self.clock = self.clock + dt;
        dt
    }

    /// Advances the clock to `t` if `t` is later (e.g. waiting at a barrier
    /// or for a peer transfer to complete). Returns the wait duration (≥ 0).
    ///
    /// Waiting through a scheduled speed change activates it: any pending
    /// change whose time is at or before the new clock takes effect for the
    /// kernels that follow.
    pub fn advance_to(&mut self, t: SimTime) -> f64 {
        let wait = (t - self.clock).max(0.0);
        self.clock = self.clock.max(t);
        if !self.pending_speed.is_empty() {
            self.apply_due_speed_changes(self.clock);
        }
        wait
    }

    /// Rolls the clock back to `t` if `t` is earlier — the cancellation
    /// primitive: work already *charged* to the device is revoked from `t`
    /// onward and the device frees at `t` instead (a hedged request's losing
    /// replica stops computing the moment the winner completes). Jitter
    /// state stays consumed — a cancelled kernel still advanced the RNG, so
    /// the timing trace remains a pure function of the kernel sequence, not
    /// of which results were kept. Returns the reclaimed seconds (≥ 0).
    pub fn rollback_to(&mut self, t: SimTime) -> f64 {
        let reclaimed = (self.clock - t).max(0.0);
        self.clock = SimTime(self.clock.secs().min(t.secs().max(0.0)));
        reclaimed
    }

    /// Resets the virtual clock to zero (jitter state is preserved).
    pub fn reset_clock(&mut self) {
        self.clock = SimTime::ZERO;
    }

    /// Changes the device's speed factor at runtime — models thermal
    /// throttling, DVFS state changes, or co-tenant interference. Takes
    /// effect for every subsequently charged kernel, **from the device's
    /// current sim time**: work already charged keeps its price. Callers
    /// whose "now" is not this device's clock (e.g. a scheduler whose
    /// decision time lags the device's last charge) should use
    /// [`Device::schedule_speed_factor`] instead, which anchors the change
    /// to an explicit sim time.
    pub fn set_speed_factor(&mut self, factor: f64) {
        assert!(factor > 0.0, "speed factor must be positive");
        self.profile.speed_factor = factor;
    }

    /// Schedules a speed-factor change at sim time `at`.
    ///
    /// The change takes effect for the first kernel *starting* at or after
    /// `at` — never retroactively: a kernel (or epoch portion) already in
    /// flight when `at` passes keeps its original duration. If the clock is
    /// already past `at`, the change applies from the current time (the next
    /// charged kernel), which is the non-retroactive reading of "change the
    /// speed now".
    pub fn schedule_speed_factor(&mut self, at: SimTime, factor: f64) {
        assert!(factor > 0.0, "speed factor must be positive");
        self.pending_speed.push((at, factor));
        self.pending_speed
            .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    }
}

/// Builds the devices of a server from profiles, all jitter streams derived
/// from one `seed`.
pub fn build_server(profiles: &[DeviceProfile], seed: u64) -> Vec<Device> {
    profiles
        .iter()
        .enumerate()
        .map(|(i, p)| Device::new(DeviceId(i), p.clone(), seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{heterogeneous_server, DeviceProfile, JitterModel};

    fn quiet(id: usize, speed: f64) -> Device {
        Device::new(
            DeviceId(id),
            DeviceProfile::v100(format!("g{id}"))
                .with_jitter(JitterModel::NONE)
                .with_speed(speed),
            7,
        )
    }

    #[test]
    fn clock_advances_by_execution() {
        let mut d = quiet(0, 1.0);
        let k = KernelKind::Gemm {
            m: 64,
            k: 128,
            n: 256,
        };
        let dt = d.execute(k);
        assert!(dt > 0.0);
        assert!((d.now().secs() - dt).abs() < 1e-15);
        assert_eq!(d.kernels_executed(), 1);
    }

    #[test]
    fn jitterless_device_is_exactly_analytic() {
        let mut d = quiet(0, 1.0);
        let k = KernelKind::SpMm { nnz: 5000, n: 128 };
        let want = crate::cost::kernel_time(d.profile(), k);
        assert_eq!(d.execute(k), want);
        assert_eq!(d.execute(k), want);
    }

    #[test]
    fn rollback_reclaims_cancelled_work_but_keeps_jitter_state() {
        let k = KernelKind::Gemm {
            m: 32,
            k: 32,
            n: 32,
        };
        // Two identical devices; one has a kernel cancelled mid-flight.
        let mut kept = Device::new(DeviceId(0), DeviceProfile::v100("a"), 9);
        let mut cancelled = Device::new(DeviceId(0), DeviceProfile::v100("b"), 9);
        let t0 = kept.execute(k);
        let _ = cancelled.execute(k);
        let cancel_at = SimTime(t0 * 0.25);
        let reclaimed = cancelled.rollback_to(cancel_at);
        assert!((reclaimed - t0 * 0.75).abs() < 1e-15);
        assert_eq!(cancelled.now(), cancel_at);
        // Rolling back to a later time is a no-op.
        assert_eq!(cancelled.rollback_to(SimTime(100.0)), 0.0);
        assert_eq!(cancelled.now(), cancel_at);
        // The jitter stream was consumed by the cancelled kernel: the next
        // kernel on both devices draws the same (second) jitter value.
        let a = kept.execute(k);
        let b = cancelled.execute(k);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn advance_to_only_moves_forward() {
        let mut d = quiet(0, 1.0);
        d.execute(KernelKind::Elementwise { elems: 1000 });
        let now = d.now();
        assert_eq!(d.advance_to(SimTime(now.secs() - 1.0)), 0.0);
        assert_eq!(d.now(), now);
        let wait = d.advance_to(now + 0.5);
        assert!((wait - 0.5).abs() < 1e-12);
    }

    #[test]
    fn same_seed_same_trace() {
        let run = || {
            let mut d = Device::new(DeviceId(2), DeviceProfile::v100("g"), 42);
            (0..50)
                .map(|i| {
                    d.execute(KernelKind::SpMm {
                        nnz: 100 * (i + 1),
                        n: 64,
                    })
                })
                .collect::<Vec<f64>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_devices_have_different_jitter() {
        let mut a = Device::new(DeviceId(0), DeviceProfile::v100("a"), 42);
        let mut b = Device::new(DeviceId(1), DeviceProfile::v100("b"), 42);
        let k = KernelKind::Gemm {
            m: 32,
            k: 32,
            n: 32,
        };
        let ta: Vec<f64> = (0..10).map(|_| a.execute(k)).collect();
        let tb: Vec<f64> = (0..10).map(|_| b.execute(k)).collect();
        assert_ne!(ta, tb);
    }

    #[test]
    fn heterogeneous_server_reproduces_fig1_gap() {
        // Same identical batch on every GPU of the 4-V100 server: the
        // fastest-to-slowest epoch gap should be ≈32% (±jitter).
        let devices = &mut build_server(&heterogeneous_server(4), 1234);
        let batch: Vec<KernelKind> = vec![
            KernelKind::H2d { bytes: 1 << 20 },
            KernelKind::SpMm {
                nnz: 20_000,
                n: 128,
            },
            KernelKind::Gemm {
                m: 256,
                k: 128,
                n: 6700,
            },
            KernelKind::Softmax {
                rows: 256,
                cols: 6700,
            },
            KernelKind::Gemm {
                m: 128,
                k: 256,
                n: 6700,
            },
            KernelKind::SpMmTn {
                nnz: 20_000,
                n: 128,
            },
            KernelKind::Elementwise { elems: 1 << 20 },
        ];
        let mut times = Vec::new();
        for d in devices.iter_mut() {
            let mut total = 0.0;
            for _ in 0..50 {
                total += d.execute_all(&batch);
            }
            times.push(total);
        }
        let min = times.iter().cloned().fold(f64::MAX, f64::min);
        let max = times.iter().cloned().fold(f64::MIN, f64::max);
        let gap = (max - min) / min;
        assert!((0.25..0.40).contains(&gap), "gap {gap}");
    }

    #[test]
    fn charge_epoch_equals_execute_all_at_unit_multiplier() {
        let kinds = [
            KernelKind::SpMm { nnz: 500, n: 64 },
            KernelKind::Gemm {
                m: 32,
                k: 64,
                n: 128,
            },
            KernelKind::Elementwise { elems: 4096 },
        ];
        let mut a = Device::new(DeviceId(0), DeviceProfile::v100("a"), 5);
        let mut b = Device::new(DeviceId(0), DeviceProfile::v100("b"), 5);
        let ta = a.execute_all(&kinds);
        let tb = b.charge_epoch(&kinds, 1.0, 0.0);
        assert!((ta - tb).abs() < 1e-15);
        assert!((a.now().secs() - b.now().secs()).abs() < 1e-15);
    }

    #[test]
    fn charge_epoch_applies_multiplier_and_extra() {
        let kinds = [KernelKind::Gemm {
            m: 16,
            k: 16,
            n: 16,
        }];
        let mut a = quiet(0, 1.0);
        let base = crate::cost::kernel_time(a.profile(), kinds[0]);
        let dt = a.charge_epoch(&kinds, 1.5, 2e-6);
        assert!((dt - (base * 1.5 + 2e-6)).abs() < 1e-15);
        // Negative extra can never move time backwards.
        let mut b = quiet(1, 1.0);
        let dt = b.charge_epoch(&kinds, 1.0, -1.0);
        assert_eq!(dt, 0.0);
    }

    /// Regression for the `set_speed_factor`/`advance_to` audit: a speed
    /// change scheduled mid-epoch must apply from its sim time onward, not
    /// retroactively to kernels already charged (the in-flight work).
    #[test]
    fn scheduled_speed_change_is_not_retroactive_within_an_epoch() {
        let k = KernelKind::Gemm {
            m: 64,
            k: 64,
            n: 64,
        };
        let base = crate::cost::kernel_time(quiet(0, 1.0).profile(), k);
        // Four identical kernels; the change lands between kernel 2 and 3.
        let mut d = quiet(0, 1.0);
        d.schedule_speed_factor(SimTime(base * 1.5), 0.5);
        let dt = d.charge_epoch(&[k, k, k, k], 1.0, 0.0);
        // Kernels 0 and 1 start before 1.5·base: old speed. Kernels 2 and 3
        // start at 2·base and later: half speed, double duration.
        assert!(
            (dt - (2.0 * base + 2.0 * 2.0 * base)).abs() < 1e-12,
            "dt {dt} vs expected {}",
            6.0 * base
        );
        // The retroactive (wrong) answer would have been 8·base;
        // the ignore-until-next-epoch answer 4·base.
    }

    #[test]
    fn scheduled_speed_change_in_the_past_applies_from_now() {
        let k = KernelKind::Gemm {
            m: 32,
            k: 32,
            n: 32,
        };
        let mut d = quiet(0, 1.0);
        let base = crate::cost::kernel_time(d.profile(), k);
        let t0 = d.execute(k);
        assert!((t0 - base).abs() < 1e-15);
        // Scheduled before the clock: the already-executed kernel keeps its
        // price, the next one runs at the new speed.
        d.schedule_speed_factor(SimTime::ZERO, 2.0);
        let t1 = d.execute(k);
        assert!((t1 - base / 2.0).abs() < 1e-15);
        assert!((d.now().secs() - (base + base / 2.0)).abs() < 1e-15);
    }

    #[test]
    fn advance_to_through_a_scheduled_change_activates_it() {
        let k = KernelKind::Elementwise { elems: 1 << 16 };
        let mut d = quiet(0, 1.0);
        let base = crate::cost::kernel_time(d.profile(), k);
        d.schedule_speed_factor(SimTime(1.0), 0.25);
        // Waiting at a barrier past t = 1 activates the throttle.
        d.advance_to(SimTime(2.0));
        assert_eq!(d.profile().speed_factor, 0.25);
        let dt = d.execute(k);
        assert!((dt - base * 4.0).abs() < 1e-15);
    }

    #[test]
    fn multiple_scheduled_changes_apply_in_time_order() {
        let k = KernelKind::Gemm {
            m: 16,
            k: 16,
            n: 16,
        };
        let mut d = quiet(0, 1.0);
        // Inserted out of order; both due at once — the latest wins.
        d.schedule_speed_factor(SimTime(0.5), 2.0);
        d.schedule_speed_factor(SimTime(0.1), 0.5);
        d.advance_to(SimTime(1.0));
        assert_eq!(d.profile().speed_factor, 2.0);
        let _ = d.execute(k);
    }

    #[test]
    fn speed_factor_scales_whole_epoch() {
        let mut fast = quiet(0, 1.0);
        let mut slow = quiet(1, 0.5);
        let k = KernelKind::Gemm {
            m: 64,
            k: 64,
            n: 64,
        };
        assert!((slow.execute(k) / fast.execute(k) - 2.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::profile::DeviceProfile;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn clock_is_monotone_under_any_kernel_sequence(
            seed in 0u64..10_000,
            sizes in proptest::collection::vec(1usize..100_000, 1..50),
        ) {
            let mut d = Device::new(DeviceId(0), DeviceProfile::v100("p"), seed);
            let mut prev = d.now();
            for s in sizes {
                d.execute(KernelKind::Elementwise { elems: s });
                prop_assert!(d.now() >= prev);
                prev = d.now();
            }
        }

        #[test]
        fn jitter_stays_near_unity(seed in 0u64..10_000) {
            // Drift ±4% and sigma 3%: durations must stay within a broad
            // but bounded band of the analytic time.
            let profile = DeviceProfile::v100("p");
            let analytic =
                crate::cost::kernel_time(&profile, KernelKind::Gemm { m: 64, k: 64, n: 64 });
            let mut d = Device::new(DeviceId(0), profile, seed);
            for _ in 0..200 {
                let t = d.execute(KernelKind::Gemm { m: 64, k: 64, n: 64 });
                prop_assert!(t > analytic * 0.7 && t < analytic * 1.4, "t {t} vs {analytic}");
            }
        }

        #[test]
        fn advance_to_never_rewinds(seed in 0u64..1_000, t1 in 0.0f64..10.0, t2 in 0.0f64..10.0) {
            let mut d = Device::new(DeviceId(0), DeviceProfile::v100("p"), seed);
            d.advance_to(SimTime(t1));
            let now = d.now();
            d.advance_to(SimTime(t2));
            prop_assert!(d.now() >= now);
            prop_assert!(d.now().secs() >= t1.max(t2) - 1e-12);
        }
    }
}
