//! Deterministic virtual-time simulator of a heterogeneous multi-GPU server.
//!
//! The paper's experiments run on a server with 4 NVIDIA V100s whose
//! *observed* performance differs — both across devices ("the gap between the
//! fastest and slowest GPU is as large as 32%", Fig. 1) and across batches
//! (sparse kernels are sensitive to the non-zero count of their input). This
//! crate replaces that hardware with an analytic model:
//!
//! * [`DeviceProfile`] — static capability description (dense/sparse
//!   throughput, memory bandwidth, kernel launch overhead, link bandwidth)
//!   plus a relative `speed_factor` and a [`JitterModel`];
//! * [`KernelKind`] — the workload taxonomy (SpMM, GEMM, element-wise,
//!   softmax, transfers, …) with an exact work accounting in flops/bytes;
//! * [`Device`] — a virtual clock that advances by the modelled duration of
//!   every kernel executed on it, perturbed by a *seeded* jitter process
//!   (slow sinusoidal drift × per-kernel log-normal noise), so heterogeneity
//!   is reproducible bit-for-bit;
//! * [`stream`] — per-device execution streams with events, used by the
//!   multi-stream all-reduce to model transfer/compute overlap;
//! * [`fusion`] — kernel-launch accounting with and without kernel fusion,
//!   including the CUDA-environment contention the paper observes when many
//!   GPU managers launch kernels concurrently;
//! * [`topology`] — host↔device and peer-to-peer link timing;
//! * [`trace`] — optional event traces (Fig. 2-style dispatch timelines);
//! * [`faults`] — seeded, reproducible fault plans (straggler spikes,
//!   transient stalls, permanent device loss, merge-time OOM) keyed to the
//!   deterministic scheduling loop, for chaos testing the trainer.
//!
//! Numerical work is **not** done here — callers run the real math on the CPU
//! and charge the corresponding [`KernelKind`] to a device. Scheduling
//! decisions in the training framework consume only virtual clocks, so the
//! entire training pipeline is a deterministic function of its seeds.

pub mod cost;
pub mod device;
pub mod faults;
pub mod fusion;
pub mod memory;
pub mod profile;
pub mod stream;
pub mod topology;
pub mod trace;

pub use cost::KernelKind;
pub use device::{Device, DeviceId};
pub use faults::{FaultEvent, FaultKind, FaultPlan};
pub use profile::{DeviceProfile, JitterModel};
pub use topology::{ClusterTopology, DeviceLocation, Topology};
pub use trace::{TraceEvent, TraceLog};

/// Simulated time in seconds. A plain `f64` newtype with explicit ordering
/// helpers; all simulator APIs deal in `SimTime`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(pub f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Seconds as `f64`.
    #[inline]
    pub fn secs(self) -> f64 {
        self.0
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl std::ops::Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: f64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl std::ops::Sub for SimTime {
    type Output = f64;
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_arithmetic() {
        let t = SimTime::ZERO + 1.5;
        assert_eq!(t.secs(), 1.5);
        assert_eq!(t.max(SimTime(0.7)).secs(), 1.5);
        assert!((SimTime(2.0) - SimTime(0.5) - 1.5).abs() < 1e-12);
        assert_eq!(format!("{}", SimTime(0.25)), "0.250000s");
    }
}
