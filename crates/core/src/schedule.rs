//! Scaling-frequency adaptation and staleness-bound analysis.
//!
//! Two secondary mechanisms the paper describes around Algorithm 1:
//!
//! * §III-A: "By default, the algorithm is executed after every mega-batch.
//!   However, if stability is achieved or the system enters an oscillatory
//!   state, the frequency at which scaling is performed can be increased"
//!   — i.e. the *interval* between scaling invocations grows once the batch
//!   sizes have settled or started ping-ponging. [`ScalingScheduler`]
//!   implements that detector.
//! * §III-A: "b_min and b_max … impose bounds on replica staleness, allowing
//!   the application of convergence results from stale synchronous SGD."
//!   [`StalenessBound`] computes those bounds from the scaling parameters
//!   and verifies observed update counts against them.

use crate::hyper::ScalingParams;

/// Trajectory classification of one GPU's batch size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trajectory {
    /// Not enough history yet.
    Unknown,
    /// Changes are below the stability tolerance.
    Stable,
    /// Successive changes keep alternating sign (ping-pong around the
    /// fixed point).
    Oscillating,
    /// Still moving in a consistent direction.
    Converging,
}

/// Detects stability/oscillation of the batch-size trajectories and adapts
/// the scaling interval.
///
/// The scheduler watches the per-GPU batch sizes after every merge. While
/// trajectories are converging it keeps scaling at every mega-batch; once
/// *all* GPUs are stable or oscillating, the interval doubles (capped), and
/// any disturbance (a trajectory moving again) resets it to 1.
#[derive(Debug, Clone)]
pub struct ScalingScheduler {
    /// Relative change below which a step counts as "no movement".
    tolerance: f64,
    /// Maximum interval between scaling invocations, in mega-batches.
    max_interval: usize,
    interval: usize,
    since_last: usize,
    history: Vec<Vec<f64>>,
}

impl ScalingScheduler {
    /// Creates a scheduler; `tolerance` is relative (e.g. `0.02` = 2%).
    pub fn new(tolerance: f64, max_interval: usize) -> Self {
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        assert!(max_interval >= 1, "interval cap must be at least 1");
        Self {
            tolerance,
            max_interval,
            interval: 1,
            since_last: 0,
            history: Vec::new(),
        }
    }

    /// Classifies GPU `g`'s trajectory from the recorded history.
    pub fn trajectory(&self, g: usize) -> Trajectory {
        if self.history.len() < 3 {
            return Trajectory::Unknown;
        }
        let last = &self.history[self.history.len() - 3..];
        let d1 = last[1][g] - last[0][g];
        let d2 = last[2][g] - last[1][g];
        let scale = last[2][g].abs().max(1.0);
        let small = |d: f64| d.abs() <= self.tolerance * scale;
        if small(d1) && small(d2) {
            Trajectory::Stable
        } else if d1 * d2 < 0.0 {
            Trajectory::Oscillating
        } else {
            Trajectory::Converging
        }
    }

    /// Records the post-merge batch sizes and reports whether Algorithm 1
    /// should run at this mega-batch boundary.
    pub fn observe_and_decide(&mut self, batch_sizes: &[f64]) -> bool {
        self.history.push(batch_sizes.to_vec());
        if self.history.len() > 8 {
            self.history.remove(0);
        }
        let n = batch_sizes.len();
        let all_settled = self.history.len() >= 3
            && (0..n).all(|g| {
                matches!(
                    self.trajectory(g),
                    Trajectory::Stable | Trajectory::Oscillating
                )
            });
        if all_settled {
            self.interval = (self.interval * 2).min(self.max_interval);
        } else {
            self.interval = 1;
        }
        self.since_last += 1;
        if self.since_last >= self.interval {
            self.since_last = 0;
            true
        } else {
            false
        }
    }

    /// Current interval between scaling invocations.
    pub fn interval(&self) -> usize {
        self.interval
    }
}

/// The staleness bound implied by `[b_min, b_max]` (§III-A).
///
/// Within one mega-batch of `M` samples, a GPU with batch size `b` performs
/// between `share·M/b_max` and `share·M/b_min` updates, where the sample
/// share itself is bounded by the batch-size clamps. The *staleness* between
/// two replicas (difference in update counts at the merge point) is
/// therefore bounded by `M/b_min − M/(n·b_max)`-style expressions; this type
/// exposes the conservative per-mega-batch bound and a checker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StalenessBound {
    /// Most updates any replica can perform in one mega-batch.
    pub max_updates: f64,
    /// Fewest updates a participating replica can perform (≥ 0).
    pub min_updates: f64,
}

impl StalenessBound {
    /// Derives the bound for `n_gpus` GPUs and a mega-batch of
    /// `mega_batch_size` samples.
    pub fn derive(params: &ScalingParams, mega_batch_size: usize, n_gpus: usize) -> Self {
        assert!(n_gpus >= 1);
        let m = mega_batch_size as f64;
        // Worst case: one GPU consumes everything at the smallest batch.
        let max_updates = (m / params.b_min).ceil();
        // Best-guaranteed case for a straggler: the dynamic scheduler still
        // hands it at least one batch per mega-batch (it is available at the
        // start), so the floor is 1 when the mega-batch has ≥ n_gpus batches.
        let min_updates = if m >= params.b_max * n_gpus as f64 {
            1.0
        } else {
            0.0
        };
        StalenessBound {
            max_updates,
            min_updates,
        }
    }

    /// Maximum update-count difference between any two replicas at a merge.
    pub fn max_staleness(&self) -> f64 {
        self.max_updates - self.min_updates
    }

    /// Checks an observed per-GPU update-count vector against the bound.
    pub fn check(&self, updates: &[u64]) -> bool {
        updates
            .iter()
            .all(|&u| (u as f64) <= self.max_updates && (u as f64) >= self.min_updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_scales_every_mega_batch_while_converging() {
        let mut s = ScalingScheduler::new(0.02, 8);
        // Monotone trajectory: always scale.
        for step in 0..6 {
            let b = 192.0 - step as f64 * 10.0;
            assert!(s.observe_and_decide(&[b, b + 5.0]));
            assert_eq!(s.interval(), 1);
        }
    }

    #[test]
    fn scheduler_backs_off_when_stable() {
        let mut s = ScalingScheduler::new(0.02, 8);
        let mut fired = Vec::new();
        for _ in 0..12 {
            fired.push(s.observe_and_decide(&[100.0, 150.0]));
        }
        // After the first three observations the trajectory is Stable, the
        // interval doubles repeatedly, so later invocations get skipped.
        assert!(s.interval() > 1);
        assert!(fired.iter().filter(|&&f| !f).count() >= 3, "{fired:?}");
    }

    #[test]
    fn oscillation_also_backs_off() {
        let mut s = ScalingScheduler::new(0.001, 8);
        let mut skipped = 0;
        for i in 0..14 {
            let wiggle = if i % 2 == 0 { 20.0 } else { -20.0 };
            if !s.observe_and_decide(&[100.0 + wiggle]) {
                skipped += 1;
            }
        }
        assert!(skipped > 0, "oscillating trajectory never backed off");
    }

    #[test]
    fn disturbance_resets_interval() {
        let mut s = ScalingScheduler::new(0.02, 8);
        for _ in 0..8 {
            s.observe_and_decide(&[100.0]);
        }
        assert!(s.interval() > 1);
        // A real move resets the cadence.
        s.observe_and_decide(&[160.0]);
        s.observe_and_decide(&[220.0]);
        assert_eq!(s.interval(), 1);
    }

    #[test]
    fn trajectory_classification() {
        let mut s = ScalingScheduler::new(0.02, 8);
        s.observe_and_decide(&[100.0]);
        assert_eq!(s.trajectory(0), Trajectory::Unknown);
        s.observe_and_decide(&[120.0]);
        s.observe_and_decide(&[140.0]);
        assert_eq!(s.trajectory(0), Trajectory::Converging);
        s.observe_and_decide(&[120.0]);
        assert_eq!(s.trajectory(0), Trajectory::Oscillating);
        s.observe_and_decide(&[120.5]);
        s.observe_and_decide(&[120.0]);
        assert_eq!(s.trajectory(0), Trajectory::Stable);
    }

    #[test]
    fn staleness_bound_derivation() {
        let params = ScalingParams::paper_defaults(1024); // b_min = 128
        let bound = StalenessBound::derive(&params, 1024 * 100, 4);
        assert_eq!(bound.max_updates, 800.0); // 102400 / 128
        assert_eq!(bound.min_updates, 1.0);
        assert_eq!(bound.max_staleness(), 799.0);
    }

    #[test]
    fn staleness_check_accepts_valid_and_rejects_invalid() {
        let params = ScalingParams::paper_defaults(1024);
        let bound = StalenessBound::derive(&params, 1024 * 100, 4);
        assert!(bound.check(&[25, 25, 25, 25]));
        assert!(bound.check(&[800, 1, 1, 1]));
        assert!(!bound.check(&[801, 1, 1, 1]));
        assert!(!bound.check(&[25, 25, 25, 0]));
    }

    #[test]
    fn tiny_mega_batch_floors_min_updates_at_zero() {
        let params = ScalingParams::paper_defaults(1024);
        // Mega-batch smaller than n·b_max: a GPU may legitimately sit out.
        let bound = StalenessBound::derive(&params, 2048, 4);
        assert_eq!(bound.min_updates, 0.0);
        assert!(bound.check(&[2, 0, 0, 0]));
    }

    #[test]
    fn interval_growth_is_capped_at_max_interval() {
        let mut s = ScalingScheduler::new(0.02, 4);
        for _ in 0..40 {
            s.observe_and_decide(&[100.0]);
        }
        assert_eq!(s.interval(), 4, "interval must saturate at the cap");
    }

    #[test]
    fn interval_doubles_geometrically_while_settled() {
        let mut s = ScalingScheduler::new(0.02, 64);
        let mut seen = Vec::new();
        for _ in 0..10 {
            s.observe_and_decide(&[100.0]);
            seen.push(s.interval());
        }
        // First two observations can't classify (Unknown): interval stays 1.
        assert_eq!(&seen[..2], &[1, 1]);
        // From the third on: 2, 4, 8, ... pure doubling under stability.
        assert_eq!(&seen[2..7], &[2, 4, 8, 16, 32]);
    }

    #[test]
    fn backed_off_scheduler_fires_exactly_on_cadence() {
        let mut s = ScalingScheduler::new(0.02, 2);
        let fired: Vec<bool> = (0..10).map(|_| s.observe_and_decide(&[100.0])).collect();
        // Once the interval saturates at 2, decisions alternate skip/fire —
        // never two skips in a row.
        for w in fired.windows(2) {
            assert!(
                w[0] || w[1],
                "two consecutive skips at interval 2: {fired:?}"
            );
        }
        assert!(fired.iter().filter(|&&f| !f).count() >= 3);
    }

    #[test]
    #[should_panic(expected = "tolerance must be non-negative")]
    fn negative_tolerance_panics() {
        let _ = ScalingScheduler::new(-0.1, 4);
    }

    #[test]
    #[should_panic(expected = "interval cap must be at least 1")]
    fn zero_interval_cap_panics() {
        let _ = ScalingScheduler::new(0.02, 0);
    }

    #[test]
    fn trajectory_uses_only_recent_history() {
        // Long-gone movement must not keep a now-stable GPU classified as
        // Converging: only the last three observations matter.
        let mut s = ScalingScheduler::new(0.02, 8);
        for b in [100.0, 300.0, 500.0, 700.0] {
            s.observe_and_decide(&[b]);
        }
        assert_eq!(s.trajectory(0), Trajectory::Converging);
        for _ in 0..3 {
            s.observe_and_decide(&[700.0]);
        }
        assert_eq!(s.trajectory(0), Trajectory::Stable);
    }

    #[test]
    fn staleness_bound_shrinks_with_fewer_survivors() {
        // Evicting a replica (device loss) re-derives the bound over the
        // survivor count: with fewer GPUs the same mega-batch guarantees the
        // straggler floor at a smaller mega-batch size.
        let params = ScalingParams::paper_defaults(1024);
        let four = StalenessBound::derive(&params, 3072, 4);
        let three = StalenessBound::derive(&params, 3072, 3);
        assert_eq!(four.min_updates, 0.0);
        assert_eq!(three.min_updates, 1.0);
        assert!(three.max_staleness() < four.max_staleness());
        // max_updates is survivor-count independent (one GPU could still
        // consume the whole mega-batch at b_min).
        assert_eq!(four.max_updates, three.max_updates);
    }

    #[test]
    fn staleness_check_on_empty_slice_is_vacuously_true() {
        let params = ScalingParams::paper_defaults(1024);
        let bound = StalenessBound::derive(&params, 4096, 2);
        assert!(bound.check(&[]));
    }

    #[test]
    fn single_gpu_bound_is_consistent() {
        let params = ScalingParams::paper_defaults(256); // b_min = 32
        let bound = StalenessBound::derive(&params, 256, 1);
        assert_eq!(bound.max_updates, 8.0);
        assert_eq!(bound.min_updates, 1.0);
        assert!(bound.check(&[8]));
        assert!(!bound.check(&[9]));
    }
}
