//! **Adaptive SGD** — the paper's contribution, implemented in a Rust port of
//! the HeteroGPU framework over a simulated heterogeneous multi-GPU server.
//!
//! The crate provides:
//!
//! * [`hyper`] — per-GPU hyperparameter state and **Algorithm 1** (batch
//!   size scaling with the linear update rule, `b_min`/`b_max` clamps, and
//!   the linear learning-rate scaling rule).
//! * [`merging`] — **Algorithm 2** (normalized model merging: update-count /
//!   batch-size weight normalization, regularization-gated perturbation, and
//!   the momentum global-model update).
//! * [`trainer`] — the HeteroGPU architecture of Fig. 3: a central dynamic
//!   scheduler owning the simulated devices and the sample stream, plus one
//!   *GPU manager thread per device* doing the real numeric work,
//!   communicating via std mpsc channels. Scheduling decisions consume
//!   only virtual device clocks, so runs are deterministic and
//!   thread-parallel at once.
//! * [`algorithms`] — ready-made [`trainer::TrainerSpec`]s for the five
//!   systems of the evaluation: **Adaptive SGD**, **Elastic SGD**,
//!   **TensorFlow-mirrored** (synchronous gradient aggregation),
//!   **CROSSBOW-style** synchronous model averaging.
//! * [`slide`] — the SLIDE CPU baseline trainer (per-sample LSH-sampled
//!   updates over the shared `asgd-slide` hash tables).
//! * [`metrics`] — time-to-accuracy / statistical-efficiency recording.
//!
//! # Example
//!
//! ```
//! use asgd_core::{algorithms, trainer::{RunConfig, Trainer}};
//! use asgd_data::{generate, DatasetSpec};
//! use asgd_gpusim::profile::heterogeneous_server;
//!
//! let dataset = generate(&DatasetSpec::tiny("quick"), 7);
//! let mut config = RunConfig::paper_defaults(64, 2);
//! config.mega_batch_limit = Some(3);
//! config.hidden = 16;
//! let spec = algorithms::adaptive_sgd();
//! let result = Trainer::new(spec, heterogeneous_server(2), config).run(&dataset);
//! assert!(!result.records.is_empty());
//! ```

pub mod algorithms;
pub mod checkpoint;
pub mod hyper;
pub mod merging;
pub mod metrics;
pub mod schedule;
pub mod slide;
pub mod trainer;

pub use checkpoint::{load_model, TrainingState};
pub use hyper::{scale_batch_sizes, scale_batch_sizes_with, GpuHyper, ScalingParams, ScalingRule};
pub use merging::{compute_merge_weights, MergeDecision, MergeParams, Normalization};
pub use metrics::{MergeRecord, RunRecorder, RunResult};
pub use schedule::{ScalingScheduler, StalenessBound, Trajectory};
pub use trainer::chaos::{AppliedFault, ChaosStats};
pub use trainer::ClusterConfig;
