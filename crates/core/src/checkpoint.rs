//! Training-state checkpointing: pause and resume multi-GPU runs.
//!
//! A checkpoint captures everything Algorithm 1/2 need to continue — the
//! global model, the previous global model (the momentum term's memory),
//! and the per-GPU hyperparameter state — plus the mega-batch count for
//! bookkeeping. Device clocks and the shuffle position are *not* part of
//! the state: a resumed run continues the optimization, it does not replay
//! the original timing trace.
//!
//! Binary format (little-endian): `"ASGC" | version u32 | mega u64 |
//! n_gpus u64 | param_len u64 | global f32* | prev f32* |
//! (batch f64, lr f64, updates u64)*`.

use crate::hyper::GpuHyper;
use asgd_model::{checkpoint as model_checkpoint, Mlp, MlpConfig};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"ASGC";
const VERSION: u32 = 1;

/// Resumable snapshot of a training run at a mega-batch boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingState {
    /// The global model (flat layout, see `asgd_model::Mlp::to_flat`).
    pub global: Vec<f32>,
    /// The previous global model (`w_prev` in Algorithm 2).
    pub prev_global: Vec<f32>,
    /// Per-GPU hyperparameter state.
    pub hypers: Vec<GpuHyper>,
    /// Mega-batches completed before this snapshot.
    pub megas_done: u64,
}

/// Checkpoint decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// Wrong magic bytes.
    BadMagic,
    /// Unsupported version.
    BadVersion(u32),
    /// Payload shorter than the header claims.
    Truncated,
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::BadMagic => write!(f, "bad training-state magic"),
            StateError::BadVersion(v) => write!(f, "unsupported training-state version {v}"),
            StateError::Truncated => write!(f, "truncated training state"),
        }
    }
}

impl std::error::Error for StateError {}

impl TrainingState {
    /// Serializes the state.
    pub fn encode(&self) -> Bytes {
        let mut buf =
            BytesMut::with_capacity(4 + 4 + 24 + 8 * self.global.len() + 24 * self.hypers.len());
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u64_le(self.megas_done);
        buf.put_u64_le(self.hypers.len() as u64);
        buf.put_u64_le(self.global.len() as u64);
        for &v in &self.global {
            buf.put_f32_le(v);
        }
        for &v in &self.prev_global {
            buf.put_f32_le(v);
        }
        for h in &self.hypers {
            buf.put_f64_le(h.batch_size);
            buf.put_f64_le(h.lr);
            buf.put_u64_le(h.updates);
        }
        buf.freeze()
    }

    /// Exports the snapshot's *global model* as a standalone, serveable
    /// model checkpoint (the `asgd_model::checkpoint` "ASGD" format): the
    /// handoff from training to the serving tier. Only the model crosses —
    /// optimizer memory (`prev_global`) and per-GPU hyperparameter state
    /// stay behind, because inference needs neither.
    ///
    /// # Panics
    /// Panics when the architecture does not match the stored flat model.
    pub fn export_model(&self, config: &MlpConfig) -> Bytes {
        self.export_model_with(config, asgd_tensor::Precision::F32)
    }

    /// [`TrainingState::export_model`] at an explicit storage precision —
    /// the versioned-model export path of the serving registry:
    /// [`asgd_tensor::Precision::F32`] emits the legacy v1 layout
    /// byte-for-byte, [`asgd_tensor::Precision::Bf16`] the half-size v2
    /// layout (one round-to-nearest-even narrowing per weight), so a fleet
    /// can stream checkpoint versions at either storage tier.
    ///
    /// # Panics
    /// Panics when the architecture does not match the stored flat model.
    pub fn export_model_with(
        &self,
        config: &MlpConfig,
        precision: asgd_tensor::Precision,
    ) -> Bytes {
        assert_eq!(
            self.global.len(),
            config.param_len(),
            "training state / architecture mismatch"
        );
        let mut model = Mlp::zeros(config);
        model.load_flat(&self.global);
        model_checkpoint::encode_with(&model, precision)
    }

    /// Deserializes a state produced by [`TrainingState::encode`].
    pub fn decode(mut data: Bytes) -> Result<Self, StateError> {
        if data.remaining() < 8 + 24 {
            return Err(StateError::Truncated);
        }
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(StateError::BadMagic);
        }
        let version = data.get_u32_le();
        if version != VERSION {
            return Err(StateError::BadVersion(version));
        }
        let megas_done = data.get_u64_le();
        let n_gpus = data.get_u64_le() as usize;
        let param_len = data.get_u64_le() as usize;
        if data.remaining() < 8 * param_len + 24 * n_gpus {
            return Err(StateError::Truncated);
        }
        let mut read_vec = |n: usize| -> Vec<f32> {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(data.get_f32_le());
            }
            v
        };
        let global = read_vec(param_len);
        let prev_global = read_vec(param_len);
        let hypers = (0..n_gpus)
            .map(|_| GpuHyper {
                batch_size: data.get_f64_le(),
                lr: data.get_f64_le(),
                updates: data.get_u64_le(),
            })
            .collect();
        Ok(TrainingState {
            global,
            prev_global,
            hypers,
            megas_done,
        })
    }
}

/// Loads a serveable model from the bytes produced by
/// [`TrainingState::export_model`] (or `asgd_model::checkpoint::encode`
/// directly) — the read side of the train→serve handoff, used by
/// `asgd-serve` to boot its replicas.
pub fn load_model(data: Bytes) -> Result<Mlp, model_checkpoint::CheckpointError> {
    model_checkpoint::decode(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainingState {
        TrainingState {
            global: vec![1.0, -2.5, 3.25],
            prev_global: vec![0.5, -2.0, 3.0],
            hypers: vec![
                GpuHyper {
                    batch_size: 192.0,
                    lr: 0.1,
                    updates: 7,
                },
                GpuHyper {
                    batch_size: 96.5,
                    lr: 0.05,
                    updates: 9,
                },
            ],
            megas_done: 14,
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let s = sample();
        let back = TrainingState::decode(s.encode()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_corruption() {
        let s = sample();
        let mut raw = s.encode().to_vec();
        raw[0] = b'X';
        assert_eq!(
            TrainingState::decode(Bytes::from(raw)),
            Err(StateError::BadMagic)
        );
        let raw = s.encode();
        let cut = raw.slice(0..raw.len() - 3);
        assert_eq!(TrainingState::decode(cut), Err(StateError::Truncated));
        let mut raw = s.encode().to_vec();
        raw[4] = 200;
        assert!(matches!(
            TrainingState::decode(Bytes::from(raw)),
            Err(StateError::BadVersion(_))
        ));
    }

    #[test]
    fn export_model_roundtrips_through_load_model() {
        let config = MlpConfig {
            num_features: 6,
            hidden: 4,
            num_classes: 3,
        };
        let trained = Mlp::init(&config, 99);
        let state = TrainingState {
            global: trained.to_flat(),
            prev_global: vec![0.0; config.param_len()],
            hypers: vec![],
            megas_done: 2,
        };
        let served = load_model(state.export_model(&config)).unwrap();
        assert_eq!(served, trained, "train→serve handoff must be lossless");
    }

    #[test]
    fn export_model_with_bf16_is_the_quantized_model() {
        let config = MlpConfig {
            num_features: 6,
            hidden: 4,
            num_classes: 3,
        };
        let trained = Mlp::init(&config, 7);
        let state = TrainingState {
            global: trained.to_flat(),
            prev_global: vec![0.0; config.param_len()],
            hypers: vec![],
            megas_done: 1,
        };
        use asgd_tensor::Precision;
        // f32 export is the legacy path byte-for-byte.
        assert_eq!(
            state.export_model(&config),
            state.export_model_with(&config, Precision::F32)
        );
        // bf16 export decodes to exactly one RNE narrowing of the model.
        let served = load_model(state.export_model_with(&config, Precision::Bf16)).unwrap();
        assert_eq!(served, trained.quantized(Precision::Bf16));
    }

    #[test]
    #[should_panic(expected = "architecture mismatch")]
    fn export_model_rejects_wrong_architecture() {
        let state = TrainingState {
            global: vec![0.0; 10],
            prev_global: vec![],
            hypers: vec![],
            megas_done: 0,
        };
        let config = MlpConfig {
            num_features: 6,
            hidden: 4,
            num_classes: 3,
        };
        let _ = state.export_model(&config);
    }

    #[test]
    fn empty_state_roundtrips() {
        let s = TrainingState {
            global: vec![],
            prev_global: vec![],
            hypers: vec![],
            megas_done: 0,
        };
        assert_eq!(TrainingState::decode(s.encode()).unwrap(), s);
    }
}
