//! Chaos-mode scheduler extensions: applying a seeded [`FaultPlan`] and
//! degrading gracefully.
//!
//! The fault *vocabulary* lives in `asgd_gpusim::faults`; this module is the
//! trainer's *reaction*. Everything here runs on the scheduler thread and
//! consumes only virtual clocks and plan state, so a faulted run stays a
//! deterministic function of `(run seed, fault plan)` at any `ASGD_THREADS`.
//!
//! Degradation semantics (see `DESIGN.md`, "Fault model & degradation
//! semantics"):
//!
//! * **Speed change** — scheduled on the device from the current dispatch
//!   frontier onward (never retroactive to in-flight work); dynamic dispatch
//!   and Algorithm 1 re-balance around it.
//! * **Stall** — the device's virtual clock jumps forward; dynamic dispatch
//!   routes batches elsewhere until it catches up.
//! * **Device loss** — the replica's un-merged batches are re-dispatched to
//!   survivors (no sample lost, none double-counted), the dead replica is
//!   evicted from Algorithm 2 merging with `α_i` renormalized over the
//!   survivors, and batch-size scaling re-targets the surviving set.
//! * **Merge OOM** — the pooled reduction's scratch allocation fails and the
//!   merge falls back to the serial (non-pooled) all-reduce, which is
//!   bit-identical in results and simulated timing.

use super::messages::ToManager;
use super::{copy_to_global, MergeRule, SchedulerState};
use crate::hyper::GpuHyper;
use crate::merging::{
    apply_global_update_flat, compute_merge_weights, redistribute_global, MergeDecision,
};
use asgd_collective::AllReduceTiming;
use asgd_collective::{
    allreduce_flat, allreduce_flat_serial, hierarchical_allreduce_flat,
    hierarchical_allreduce_flat_serial, Algorithm, CollectiveContext, InterNode,
};
use asgd_gpusim::memory::MemoryTracker;
use asgd_gpusim::{DeviceId, DeviceProfile, FaultKind, FaultPlan, SimTime, Topology};
use asgd_tensor::FlatVec;
use std::sync::mpsc::{Receiver, Sender};

use super::messages::FromManager;

/// One fault the scheduler actually applied (the plan's events resolved to
/// concrete sim times and reactions). The log is deterministic for a fixed
/// `(run seed, fault plan)`.
#[derive(Debug, Clone, PartialEq)]
pub enum AppliedFault {
    /// A speed-factor change took effect.
    SpeedChange {
        /// Mega-batch in which it fired.
        mega: usize,
        /// Target device.
        gpu: usize,
        /// New speed factor.
        factor: f64,
        /// Sim time it was scheduled from (the dispatch frontier).
        at: f64,
    },
    /// A transient stall froze a device.
    Stall {
        /// Mega-batch in which it fired.
        mega: usize,
        /// Target device.
        gpu: usize,
        /// Stall duration in simulated seconds.
        seconds: f64,
        /// Sim time the stall began (the device's clock).
        at: f64,
    },
    /// A device was lost permanently and its in-flight work re-dispatched.
    DeviceLoss {
        /// Mega-batch in which it fired.
        mega: usize,
        /// The dead device.
        gpu: usize,
        /// Batches re-dispatched to survivors.
        redispatched: u64,
        /// Sim time of death (the device's clock).
        at: f64,
    },
    /// The pooled merge scratch allocation failed; the merge degraded to the
    /// serial reduction path.
    MergeOomFallback {
        /// Mega-batch whose merge degraded.
        mega: usize,
        /// Bytes the pooled path requested.
        requested: u64,
        /// Bytes that were available.
        available: u64,
    },
    /// An entire server died; every member replica was evicted (each also
    /// logs its own [`AppliedFault::DeviceLoss`] line).
    ServerLoss {
        /// Mega-batch in which it fired.
        mega: usize,
        /// The dead server.
        server: usize,
        /// Member devices actually evicted (already-dead members and a
        /// refused last survivor are excluded).
        lost: Vec<usize>,
        /// Batches re-dispatched off the dead server.
        redispatched: u64,
    },
    /// A transient inter-node stall froze every device of one server.
    InterNodeStall {
        /// Mega-batch in which it fired.
        mega: usize,
        /// The stalled server.
        server: usize,
        /// Stall duration in simulated seconds.
        seconds: f64,
        /// Sim time the stall began (the earliest member clock).
        at: f64,
    },
}

/// Accounting of everything chaos-related that happened in a run. Populated
/// only when [`super::RunConfig::fault_plan`] is set (a plain run reports the
/// `Default`), so the fault-free hot path stays untouched.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosStats {
    /// Faults applied, in firing order.
    pub faults: Vec<AppliedFault>,
    /// Devices permanently lost, in death order.
    pub lost_gpus: Vec<usize>,
    /// Batches re-dispatched from dead replicas to survivors.
    pub redispatched_batches: u64,
    /// Batches whose trained-but-unmerged effect died with a replica (these
    /// are exactly the re-dispatched ones: discarded from the dead replica,
    /// re-run on a survivor).
    pub discarded_batches: u64,
    /// Merges that degraded to the serial (non-pooled) reduction.
    pub serial_fallback_merges: u64,
    /// Batches whose updates made it into a merge (summed over surviving
    /// replicas at every merge boundary).
    pub batches_committed: u64,
    /// Samples covered by `batches_committed`.
    pub samples_committed: u64,
}

impl ChaosStats {
    /// Whether nothing chaos-related happened.
    pub fn is_quiet(&self) -> bool {
        self.faults.is_empty()
    }

    /// Deterministic plain-text rendering (one line per fault plus the
    /// accounting summary) — the chaos CI gate byte-diffs this across
    /// `ASGD_THREADS` settings.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.faults {
            match f {
                AppliedFault::SpeedChange {
                    mega,
                    gpu,
                    factor,
                    at,
                } => out.push_str(&format!(
                    "mega {mega} gpu {gpu} speed-change factor {factor:.6} at {at:.9}\n"
                )),
                AppliedFault::Stall {
                    mega,
                    gpu,
                    seconds,
                    at,
                } => out.push_str(&format!(
                    "mega {mega} gpu {gpu} stall {seconds:.6}s at {at:.9}\n"
                )),
                AppliedFault::DeviceLoss {
                    mega,
                    gpu,
                    redispatched,
                    at,
                } => out.push_str(&format!(
                    "mega {mega} gpu {gpu} device-loss redispatched {redispatched} at {at:.9}\n"
                )),
                AppliedFault::MergeOomFallback {
                    mega,
                    requested,
                    available,
                } => out.push_str(&format!(
                    "mega {mega} merge-oom requested {requested} available {available} -> serial\n"
                )),
                AppliedFault::ServerLoss {
                    mega,
                    server,
                    lost,
                    redispatched,
                } => out.push_str(&format!(
                    "mega {mega} server {server} server-loss lost {lost:?} redispatched {redispatched}\n"
                )),
                AppliedFault::InterNodeStall {
                    mega,
                    server,
                    seconds,
                    at,
                } => out.push_str(&format!(
                    "mega {mega} server {server} inter-node-stall {seconds:.6}s at {at:.9}\n"
                )),
            }
        }
        out.push_str(&format!(
            "lost {:?} redispatched {} discarded {} serial_merges {} committed {} batches / {} samples\n",
            self.lost_gpus,
            self.redispatched_batches,
            self.discarded_batches,
            self.serial_fallback_merges,
            self.batches_committed,
            self.samples_committed,
        ));
        out
    }
}

/// Runs the all-reduce through the merge memory tracker: the pooled path
/// needs a scratch allocation; when it fails (an OOM fault hogged the
/// capacity) the merge degrades to [`allreduce_serial`] instead of aborting.
/// Free function over disjoint scheduler fields so callers can split borrows.
#[allow(clippy::too_many_arguments)]
pub(super) fn reduce_with_oom_fallback(
    memory: &mut MemoryTracker,
    chaos: &mut ChaosStats,
    plan: Option<&FaultPlan>,
    algo: Algorithm,
    inter: Option<InterNode>,
    bufs: &mut [FlatVec],
    weights: &[f64],
    ctx: &CollectiveContext,
    arrivals: &[SimTime],
    mega: usize,
) -> AllReduceTiming {
    // Scratch at the buffers' storage width: bf16 merges request half the
    // bytes of f32 ones, so an identically-sized tracker OOMs later.
    let scratch_bytes = (bufs.len() * bufs[0].byte_len()) as u64;
    // A scheduled MergeOom manifests as a co-tenant burst eating the whole
    // remaining capacity, so the pooled scratch request below genuinely
    // fails through the memory tracker.
    let hog = plan.filter(|p| p.merge_oom_at(mega)).map(|_| {
        memory
            .alloc("chaos-oom-cotenant", memory.available())
            .expect("hogging the available bytes cannot fail")
    });
    // Cluster runs reduce through the hierarchical schedule; bits are
    // identical to the flat path either way (the reduction contract), only
    // the simulated timing differs.
    let timing = match memory.alloc("merge-pool-scratch", scratch_bytes) {
        Ok(scratch) => {
            let t = match inter {
                Some(i) => hierarchical_allreduce_flat(bufs, weights, algo, i, ctx, arrivals),
                None => allreduce_flat(bufs, weights, algo, ctx, arrivals),
            };
            memory.free(scratch);
            t
        }
        Err(oom) => {
            chaos.serial_fallback_merges += 1;
            chaos.faults.push(AppliedFault::MergeOomFallback {
                mega,
                requested: oom.requested,
                available: oom.available,
            });
            match inter {
                Some(i) => {
                    hierarchical_allreduce_flat_serial(bufs, weights, algo, i, ctx, arrivals)
                }
                None => allreduce_flat_serial(bufs, weights, algo, ctx, arrivals),
            }
        }
    };
    if let Some(h) = hog {
        memory.free(h);
    }
    timing
}

impl SchedulerState<'_> {
    /// The dispatch frontier: the earliest point the scheduler can still
    /// influence — the minimum virtual clock over surviving devices.
    fn frontier(&self) -> SimTime {
        self.devices
            .iter()
            .zip(&self.alive)
            .filter(|(_, &a)| a)
            .map(|(d, _)| d.now())
            .fold(SimTime(f64::INFINITY), |acc, t| {
                if t.secs() < acc.secs() {
                    t
                } else {
                    acc
                }
            })
    }

    /// Fires every plan event due at `(mega, dispatched)` (or, `at_merge`,
    /// every not-yet-reached ordinal of the mega-batch). Returns the number
    /// of extra `Train` messages sent (loss re-dispatches), which the caller
    /// must add to its drain count.
    pub(super) fn fire_due_faults(
        &mut self,
        to: &[Sender<ToManager>],
        mega: usize,
        dispatched: usize,
        at_merge: bool,
        interval_updates: &mut [u64],
        interval_samples: &mut [u64],
    ) -> usize {
        let Some(plan) = self.cfg.fault_plan.as_ref() else {
            return 0;
        };
        let events = plan.due(mega, dispatched, at_merge);
        let mut extra = 0usize;
        for e in events {
            match e.kind {
                FaultKind::SpeedChange { factor } => {
                    let at = self.frontier();
                    self.devices[e.gpu].schedule_speed_factor(at, factor);
                    self.chaos.faults.push(AppliedFault::SpeedChange {
                        mega,
                        gpu: e.gpu,
                        factor,
                        at: at.secs(),
                    });
                }
                FaultKind::Stall { seconds } => {
                    let from = self.devices[e.gpu].now();
                    self.devices[e.gpu].advance_to(from + seconds);
                    self.chaos.faults.push(AppliedFault::Stall {
                        mega,
                        gpu: e.gpu,
                        seconds,
                        at: from.secs(),
                    });
                }
                FaultKind::DeviceLoss => {
                    extra += self.lose_device(e.gpu, mega, to, interval_updates, interval_samples);
                }
                FaultKind::ServerLoss => {
                    extra += self.lose_server(e.gpu, mega, to, interval_updates, interval_samples);
                }
                FaultKind::InterNodeStall { seconds } => {
                    self.inter_node_stall(e.gpu, seconds, mega);
                }
                FaultKind::MergeOom => unreachable!("MergeOom is filtered out of FaultPlan::due"),
            }
        }
        extra
    }

    /// Kills device `g`: evicts it from dispatch and merging and re-dispatches
    /// its un-merged batches to survivors. A loss targeting an already-dead
    /// device or the last survivor is ignored (the run must stay able to
    /// finish). Returns the number of re-dispatched batches.
    fn lose_device(
        &mut self,
        g: usize,
        mega: usize,
        to: &[Sender<ToManager>],
        interval_updates: &mut [u64],
        interval_samples: &mut [u64],
    ) -> usize {
        if !self.alive[g] || self.alive.iter().filter(|&&a| a).count() == 1 {
            return 0;
        }
        self.alive[g] = false;
        let at = self.devices[g].now().secs();
        // The manager drains its queued work (replying `Trained` for each
        // batch — the accounting below discards those results) and exits.
        let _ = to[g].send(ToManager::Stop);
        // Everything the replica trained since the last merge dies with it:
        // zero its accounting and hand the exact same sample batches to
        // survivors, so no sample is lost and none is double-counted.
        let in_flight = std::mem::take(&mut self.in_flight[g]);
        interval_updates[g] = 0;
        interval_samples[g] = 0;
        self.hypers[g].updates = 0;
        let redispatched = in_flight.len() as u64;
        for ids in in_flight {
            let s = self.pick_gpu();
            interval_updates[s] += 1;
            interval_samples[s] += ids.len() as u64;
            self.charge_and_send(s, ids, to);
        }
        self.chaos.redispatched_batches += redispatched;
        self.chaos.discarded_batches += redispatched;
        self.chaos.lost_gpus.push(g);
        self.chaos.faults.push(AppliedFault::DeviceLoss {
            mega,
            gpu: g,
            redispatched,
            at,
        });
        redispatched as usize
    }

    /// `(servers, devices_per_server)` of the run — `(1, n)` when no cluster
    /// is configured, so server-indexed faults still resolve sensibly.
    fn cluster_shape(&self) -> (usize, usize) {
        match &self.cfg.cluster {
            Some(cl) => (cl.servers, cl.devices_per_server),
            None => (1, self.n()),
        }
    }

    /// Kills every device of server `server`, in ascending local order: each
    /// member goes through the [`Self::lose_device`] eviction (re-dispatch,
    /// merge eviction, scaling re-target), then one summary fault records
    /// the node-level loss. The last fleet survivor is still refused, so a
    /// run can always finish. Returns the total re-dispatched batch count.
    fn lose_server(
        &mut self,
        server: usize,
        mega: usize,
        to: &[Sender<ToManager>],
        interval_updates: &mut [u64],
        interval_samples: &mut [u64],
    ) -> usize {
        let (servers, m) = self.cluster_shape();
        if server >= servers {
            return 0;
        }
        let mut redispatched = 0usize;
        let mut lost = Vec::new();
        for g in server * m..(server + 1) * m {
            let was_alive = self.alive[g];
            redispatched += self.lose_device(g, mega, to, interval_updates, interval_samples);
            if was_alive && !self.alive[g] {
                lost.push(g);
            }
        }
        self.chaos.faults.push(AppliedFault::ServerLoss {
            mega,
            server,
            lost,
            redispatched: redispatched as u64,
        });
        redispatched
    }

    /// A transient inter-node stall: every surviving device of the server
    /// freezes for `seconds` (the uplink is gone; nothing useful can be
    /// dispatched to or drained from the node until it heals). Dynamic
    /// dispatch routes batches to other servers until the clocks catch up.
    fn inter_node_stall(&mut self, server: usize, seconds: f64, mega: usize) {
        let (servers, m) = self.cluster_shape();
        if server >= servers {
            return;
        }
        let members: Vec<usize> = (server * m..(server + 1) * m)
            .filter(|&g| self.alive[g])
            .collect();
        if members.is_empty() {
            return;
        }
        let at = members
            .iter()
            .map(|&g| self.devices[g].now().secs())
            .fold(f64::INFINITY, f64::min);
        for &g in &members {
            let from = self.devices[g].now();
            self.devices[g].advance_to(from + seconds);
        }
        self.chaos.faults.push(AppliedFault::InterNodeStall {
            mega,
            server,
            seconds,
            at,
        });
    }

    /// The merge stage after one or more device losses: gathers only from
    /// survivors, renormalizes `α_i` over them (Σα = 1 by construction),
    /// reduces over a survivor-sized collective context, and redistributes
    /// to survivors only. Dead devices' clocks freeze and their slots report
    /// weight 0 in the record.
    pub(super) fn merge_survivors(
        &mut self,
        to: &[Sender<ToManager>],
        from: &Receiver<FromManager>,
        mega: usize,
    ) -> MergeDecision {
        let alive_idx: Vec<usize> = (0..self.n()).filter(|&g| self.alive[g]).collect();
        let k = alive_idx.len();
        assert!(k >= 1, "no surviving device to merge");

        if let Some(arena) = self.delta_arena.as_mut() {
            // Sparse gather from survivors only: the union (and thus the
            // charged schedule) is over the survivor subset's row sets.
            for &g in &alive_idx {
                let (rows, payload) = arena.lend(g);
                to[g]
                    .send(ToManager::GetDelta { rows, payload })
                    .expect("manager channel closed");
            }
        } else {
            for &g in &alive_idx {
                to[g]
                    .send(ToManager::GetModel {
                        buf: self.arena.lend(g),
                    })
                    .expect("manager channel closed");
            }
        }
        let mut norms_full = vec![0.0f64; self.n()];
        let mut received = 0usize;
        while received < k {
            match from.recv().expect("manager channel closed") {
                FromManager::Model {
                    gpu,
                    flat,
                    norm_per_param,
                } => {
                    self.arena.restore(gpu, flat);
                    norms_full[gpu] = norm_per_param;
                    received += 1;
                }
                FromManager::Delta {
                    gpu,
                    rows,
                    payload,
                    norm_per_param,
                } => {
                    let mut base = self.arena.lend(gpu);
                    asgd_collective::scatter_delta(&self.sparse_layout, &rows, &payload, &mut base);
                    self.arena.restore(gpu, base);
                    self.delta_arena
                        .as_mut()
                        .expect("Delta reply without a delta arena")
                        .restore(gpu, rows, payload);
                    norms_full[gpu] = norm_per_param;
                    received += 1;
                }
                FromManager::Trained { .. } | FromManager::Redistributed { .. } => {
                    unreachable!("non-gather reply during the merge gather")
                }
            }
        }

        // The merge sub-problem over survivors, in device-index order.
        let sub_hypers: Vec<GpuHyper> = alive_idx.iter().map(|&g| self.hypers[g].clone()).collect();
        let sub_norms: Vec<f64> = alive_idx.iter().map(|&g| norms_full[g]).collect();
        let decision = match self.spec.merge_rule {
            MergeRule::Normalized(params) => {
                compute_merge_weights(&sub_hypers, &sub_norms, &params)
            }
            MergeRule::Average { .. } | MergeRule::Crossbow { .. } => MergeDecision {
                weights: vec![1.0 / k as f64; k],
                by_updates: false,
                perturbed: false,
            },
        };
        // Cluster runs subset the cluster context (survivors keep their
        // original server assignments, so cross-server hops still pay the
        // inter-node link); single-server runs keep the pre-cluster
        // construction bit for bit.
        let sub_ctx = if self.cfg.cluster.is_some() {
            self.ctx.subset(&alive_idx)
        } else {
            let sub_profiles: Vec<DeviceProfile> = alive_idx
                .iter()
                .map(|&g| self.profiles[g].clone())
                .collect();
            CollectiveContext::new(
                Topology::pcie(k).with_setup_scale(self.cfg.overhead_scale),
                &sub_profiles,
            )
        };
        let arrivals: Vec<SimTime> = alive_idx.iter().map(|&g| self.devices[g].now()).collect();
        let mut bufs: Vec<FlatVec> = alive_idx.iter().map(|&g| self.arena.lend(g)).collect();
        let timing = reduce_with_oom_fallback(
            &mut self.merge_memory,
            &mut self.chaos,
            self.cfg.fault_plan.as_ref(),
            self.spec.allreduce,
            self.cfg.cluster.as_ref().map(|cl| cl.inter),
            &mut bufs,
            &decision.weights,
            &sub_ctx,
            &arrivals,
            mega,
        );
        let timing = match &self.delta_arena {
            None => timing,
            Some(da) => super::sparse_timing_or_dense(
                da,
                &self.sparse_layout,
                &mut self.sparse_stats,
                &asgd_collective::SparseMergePlan {
                    algo: self.spec.allreduce,
                    inter: self.cfg.cluster.as_ref().map(|cl| cl.inter),
                    elem_bytes: self.cfg.precision.bytes(),
                    max_density: self.cfg.sparse_max_density,
                },
                &alive_idx,
                &sub_ctx,
                &arrivals,
                timing,
            ),
        };

        match self.spec.merge_rule {
            MergeRule::Normalized(params) => {
                apply_global_update_flat(
                    &bufs[0],
                    &mut self.global,
                    &mut self.prev_global,
                    params.gamma,
                );
                redistribute_global(&self.global, &mut bufs);
                for (&g, buf) in alive_idx.iter().zip(bufs.drain(..)) {
                    to[g]
                        .send(ToManager::SetModel(buf))
                        .expect("manager channel closed");
                }
            }
            MergeRule::Average { gamma } => {
                apply_global_update_flat(&bufs[0], &mut self.global, &mut self.prev_global, gamma);
                redistribute_global(&self.global, &mut bufs);
                for (&g, buf) in alive_idx.iter().zip(bufs.drain(..)) {
                    to[g]
                        .send(ToManager::SetModel(buf))
                        .expect("manager channel closed");
                }
            }
            MergeRule::Crossbow { pull } => {
                copy_to_global(&bufs[0], &mut self.global);
                for (&g, buf) in alive_idx.iter().zip(bufs.drain(..)) {
                    to[g]
                        .send(ToManager::Blend {
                            target: buf,
                            pull: pull as f32,
                        })
                        .expect("manager channel closed");
                }
            }
        }

        let mut returned = 0usize;
        while returned < k {
            match from.recv().expect("manager channel closed") {
                FromManager::Redistributed { gpu, buf } => {
                    self.arena.restore(gpu, buf);
                    returned += 1;
                }
                FromManager::Trained { .. }
                | FromManager::Model { .. }
                | FromManager::Delta { .. } => {
                    unreachable!("non-Redistributed reply during redistribution")
                }
            }
        }

        for &g in &alive_idx {
            self.devices[g].advance_to(timing.end);
        }
        // Sampled mode: survivors re-hash the output neurons post-sync.
        self.charge_lsh_rebuild();
        // Full-length weights for the record: dead slots carry weight 0.
        let mut weights_full = vec![0.0f64; self.n()];
        for (&g, &w) in alive_idx.iter().zip(&decision.weights) {
            weights_full[g] = w;
        }
        self.trace.record(
            DeviceId(alive_idx[0]),
            timing.start,
            timing.end,
            format!(
                "merge (survivors {:?}, weights {:?}, perturbed {})",
                alive_idx,
                weights_full
                    .iter()
                    .map(|w| (w * 1000.0).round() / 1000.0)
                    .collect::<Vec<_>>(),
                decision.perturbed
            ),
        );
        MergeDecision {
            weights: weights_full,
            by_updates: decision.by_updates,
            perturbed: decision.perturbed,
        }
    }
}
