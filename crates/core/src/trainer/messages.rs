//! Event messages between the dynamic scheduler and the GPU managers
//! (the "event messages" of the HeteroGPU architecture, Fig. 3).
//!
//! Model-sized payloads travel in scheduler-owned arena buffers (see
//! [`super::arena::MergeArena`]): `GetModel` lends a buffer out, `Model`
//! returns it filled, and `SetModel`/`Blend` lend it out again for
//! redistribution, with `Redistributed` bringing it home. After the first
//! merge no message allocates. Payloads are [`FlatVec`]s carrying the
//! run's storage precision (f32 or bf16).

use asgd_tensor::FlatVec;

/// Scheduler → GPU manager commands. Each manager processes its queue in
/// FIFO order, so a `GetModel` enqueued after a run of `Train`s acts as a
/// natural drain barrier without extra synchronization.
#[derive(Debug)]
pub(crate) enum ToManager {
    /// Run one SGD epoch on the given training-sample ids.
    Train {
        /// Row ids into the training split.
        batch_ids: Vec<usize>,
        /// The learning rate for this batch (already linear-scaled).
        lr: f32,
        /// Seed of the sampled-softmax candidate selection, derived from the
        /// batch ids alone — a batch re-dispatched after a device loss
        /// carries the same seed and reproduces its candidate set exactly.
        /// Ignored on the dense path.
        sample_seed: u64,
    },
    /// Send the current replica (flat) and its L2-norm-per-parameter back.
    GetModel {
        /// Arena buffer the manager writes its flat replica into; returned
        /// via [`FromManager::Model`].
        buf: FlatVec,
    },
    /// Replace the replica with the given flat parameters; the buffer is
    /// returned via [`FromManager::Redistributed`].
    SetModel(FlatVec),
    /// CROSSBOW-style partial pull: `w ← w + pull·(target − w)`; the buffer
    /// is returned via [`FromManager::Redistributed`].
    Blend {
        /// The central average model.
        target: FlatVec,
        /// Pull strength in `[0, 1]`.
        pull: f32,
    },
    /// Sparse-merge alternative to `GetModel`: send the sorted set of rows
    /// dirtied since the last `SetModel` plus their delta payload (the
    /// `asgd_collective::sparse` wire format) instead of the dense model.
    /// Both vectors are scheduler-owned recycled buffers (see
    /// [`super::arena::DeltaArena`]), returned via [`FromManager::Delta`].
    GetDelta {
        /// Recycled row-id buffer the manager fills (sorted ascending).
        rows: Vec<u32>,
        /// Recycled payload buffer the manager fills via
        /// `Mlp::write_delta_buf`.
        payload: FlatVec,
    },
    /// Terminate the manager thread.
    Stop,
}

/// GPU manager → scheduler replies.
#[derive(Debug)]
pub(crate) enum FromManager {
    /// One `Train` command completed.
    Trained {
        /// Manager/device index.
        gpu: usize,
        /// Batch loss.
        loss: f64,
        /// Samples in the batch.
        batch_size: usize,
    },
    /// Reply to `GetModel`.
    Model {
        /// Manager/device index.
        gpu: usize,
        /// Flat replica parameters, in the buffer `GetModel` lent out.
        flat: FlatVec,
        /// `‖w‖₂ / |w|` — Algorithm 2's regularization measure.
        norm_per_param: f64,
    },
    /// Reply to `SetModel`/`Blend`: the replica was updated and the
    /// borrowed arena buffer comes back to the scheduler.
    Redistributed {
        /// Manager/device index.
        gpu: usize,
        /// The arena buffer being returned.
        buf: FlatVec,
    },
    /// Reply to `GetDelta`.
    Delta {
        /// Manager/device index.
        gpu: usize,
        /// Rows dirtied since the last sync, sorted ascending.
        rows: Vec<u32>,
        /// Delta payload over `rows` (`Mlp::write_delta_buf` format), in
        /// the buffer `GetDelta` lent out.
        payload: FlatVec,
        /// `‖w‖₂ / |w|` — same regularization measure `Model` carries.
        norm_per_param: f64,
    },
}
