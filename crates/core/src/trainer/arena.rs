//! The merge arena: per-replica flat model buffers owned by the scheduler
//! and recycled across merges.
//!
//! Ownership rule: **the scheduler owns the arena; a manager borrows at most
//! one buffer at a time** (lent out inside a `GetModel`, `SetModel`, or
//! `Blend` message and always sent back in the reply). Between merges every
//! buffer is home, so the whole merge stage — gather, all-reduce,
//! redistribution — reuses the same `n` allocations for the run's lifetime:
//! after the first merge sizes them, no model-sized allocation ever happens
//! again.

/// Per-replica flat buffers, recycled across merges.
#[derive(Debug)]
pub struct MergeArena {
    param_len: usize,
    /// `slots[g]` is GPU `g`'s buffer; an empty `Vec` marks it as on loan
    /// (a filled buffer always has `param_len > 0` elements).
    slots: Vec<Vec<f32>>,
}

impl MergeArena {
    /// An arena for `n` replicas of `param_len` parameters. Buffers start
    /// empty: the first `Mlp::write_flat_into` sizes them.
    pub fn new(n: usize, param_len: usize) -> Self {
        assert!(param_len > 0, "empty model");
        Self {
            param_len,
            slots: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    /// Number of replica slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the arena holds no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Takes GPU `g`'s buffer out of the arena to lend it to a manager.
    ///
    /// # Panics
    /// Panics if the buffer is already on loan (after the first merge a
    /// home buffer is never empty).
    pub fn lend(&mut self, g: usize) -> Vec<f32> {
        let buf = std::mem::take(&mut self.slots[g]);
        assert!(
            buf.capacity() == 0 || buf.len() == self.param_len,
            "arena slot {g} lent while on loan"
        );
        buf
    }

    /// Returns a lent buffer to GPU `g`'s slot.
    ///
    /// # Panics
    /// Panics on a length mismatch or if the slot is already occupied.
    pub fn restore(&mut self, g: usize, buf: Vec<f32>) {
        assert_eq!(buf.len(), self.param_len, "arena buffer length");
        assert!(self.slots[g].is_empty(), "arena slot {g} restored twice");
        self.slots[g] = buf;
    }

    /// All buffers at once, for the in-place all-reduce.
    ///
    /// # Panics
    /// Panics if any buffer is on loan.
    pub fn buffers_mut(&mut self) -> &mut [Vec<f32>] {
        assert!(
            self.slots.iter().all(|s| s.len() == self.param_len),
            "all-reduce with arena buffers on loan"
        );
        &mut self.slots
    }

    /// GPU `g`'s buffer, read-only.
    ///
    /// # Panics
    /// Panics if the buffer is on loan.
    pub fn buffer(&self, g: usize) -> &[f32] {
        assert_eq!(
            self.slots[g].len(),
            self.param_len,
            "arena slot {g} on loan"
        );
        &self.slots[g]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lend_restore_cycle_is_pointer_stable() {
        let mut arena = MergeArena::new(2, 8);
        // First cycle sizes the buffers.
        let mut a = arena.lend(0);
        a.resize(8, 1.0);
        let ptr = a.as_ptr();
        arena.restore(0, a);
        // Every later cycle reuses the same allocation.
        for round in 0..5 {
            let mut b = arena.lend(0);
            assert_eq!(b.as_ptr(), ptr, "round {round} reallocated");
            b.clear();
            b.resize(8, round as f32);
            assert_eq!(b.as_ptr(), ptr, "round {round} refill reallocated");
            arena.restore(0, b);
        }
        assert_eq!(arena.buffer(0).as_ptr(), ptr);
    }

    #[test]
    fn buffers_mut_exposes_all_slots() {
        let mut arena = MergeArena::new(3, 4);
        for g in 0..3 {
            let mut b = arena.lend(g);
            b.resize(4, g as f32);
            arena.restore(g, b);
        }
        assert_eq!(arena.len(), 3);
        assert!(!arena.is_empty());
        let bufs = arena.buffers_mut();
        assert_eq!(bufs.len(), 3);
        assert_eq!(bufs[2], vec![2.0; 4]);
    }

    #[test]
    #[should_panic(expected = "arena buffer length")]
    fn restoring_wrong_length_panics() {
        let mut arena = MergeArena::new(1, 4);
        arena.restore(0, vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "on loan")]
    fn reading_a_lent_buffer_panics() {
        let mut arena = MergeArena::new(1, 4);
        let _b = arena.lend(0);
        let _ = arena.buffer(0);
    }
}
