//! The merge arena: per-replica flat model buffers owned by the scheduler
//! and recycled across merges.
//!
//! Ownership rule: **the scheduler owns the arena; a manager borrows at most
//! one buffer at a time** (lent out inside a `GetModel`, `SetModel`, or
//! `Blend` message and always sent back in the reply). Between merges every
//! buffer is home, so the whole merge stage — gather, all-reduce,
//! redistribution — reuses the same `n` allocations for the run's lifetime:
//! after the first merge sizes them, no model-sized allocation ever happens
//! again.
//!
//! Buffers are [`FlatVec`]s: the arena is constructed at the run's storage
//! [`Precision`] and every slot carries that tag, so managers fill a lent
//! buffer at the right width without consulting the scheduler.

use asgd_tensor::{FlatVec, Precision};

/// Per-replica flat buffers, recycled across merges.
#[derive(Debug)]
pub struct MergeArena {
    param_len: usize,
    precision: Precision,
    /// `slots[g]` is GPU `g`'s buffer; an empty buffer marks it as on loan
    /// (a filled buffer always has `param_len > 0` elements).
    slots: Vec<FlatVec>,
}

impl MergeArena {
    /// An arena for `n` replicas of `param_len` parameters stored at
    /// `precision`. Buffers start empty: the first `Mlp::write_flat_buf`
    /// sizes them.
    pub fn new(n: usize, param_len: usize, precision: Precision) -> Self {
        assert!(param_len > 0, "empty model");
        Self {
            param_len,
            precision,
            slots: (0..n).map(|_| FlatVec::empty(precision)).collect(),
        }
    }

    /// Number of replica slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the arena holds no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The storage precision every slot carries.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Takes GPU `g`'s buffer out of the arena to lend it to a manager.
    ///
    /// # Panics
    /// Panics if the buffer is already on loan (after the first merge a
    /// home buffer is never empty).
    pub fn lend(&mut self, g: usize) -> FlatVec {
        let buf = std::mem::replace(&mut self.slots[g], FlatVec::empty(self.precision));
        assert!(
            buf.capacity() == 0 || buf.len() == self.param_len,
            "arena slot {g} lent while on loan"
        );
        buf
    }

    /// Returns a lent buffer to GPU `g`'s slot.
    ///
    /// # Panics
    /// Panics on a length or precision mismatch, or if the slot is already
    /// occupied.
    pub fn restore(&mut self, g: usize, buf: FlatVec) {
        assert_eq!(buf.len(), self.param_len, "arena buffer length");
        assert_eq!(buf.precision(), self.precision, "arena buffer precision");
        assert!(self.slots[g].is_empty(), "arena slot {g} restored twice");
        self.slots[g] = buf;
    }

    /// All buffers at once, for the in-place all-reduce.
    ///
    /// # Panics
    /// Panics if any buffer is on loan.
    pub fn buffers_mut(&mut self) -> &mut [FlatVec] {
        assert!(
            self.slots.iter().all(|s| s.len() == self.param_len),
            "all-reduce with arena buffers on loan"
        );
        &mut self.slots
    }

    /// GPU `g`'s buffer, read-only.
    ///
    /// # Panics
    /// Panics if the buffer is on loan.
    pub fn buffer(&self, g: usize) -> &FlatVec {
        assert_eq!(
            self.slots[g].len(),
            self.param_len,
            "arena slot {g} on loan"
        );
        &self.slots[g]
    }
}

/// Per-replica `(rows, payload)` buffers for the sparse delta merge,
/// recycled across merges exactly like [`MergeArena`] slots.
///
/// Ownership follows the same rule: the scheduler owns the arena, a
/// manager borrows one pair inside a `GetDelta` and returns it in the
/// `Delta` reply. Deltas are variable-length, so slots are only
/// length-checked against the layout by the consumer, not here.
#[derive(Debug)]
pub struct DeltaArena {
    precision: Precision,
    slots: Vec<Option<(Vec<u32>, FlatVec)>>,
}

impl DeltaArena {
    /// An arena of `n` empty delta slots at the run's storage precision.
    pub fn new(n: usize, precision: Precision) -> Self {
        Self {
            precision,
            slots: (0..n)
                .map(|_| Some((Vec::new(), FlatVec::empty(precision))))
                .collect(),
        }
    }

    /// Takes GPU `g`'s `(rows, payload)` pair to lend it to a manager.
    ///
    /// # Panics
    /// Panics if the pair is already on loan.
    pub fn lend(&mut self, g: usize) -> (Vec<u32>, FlatVec) {
        self.slots[g]
            .take()
            .unwrap_or_else(|| panic!("delta slot {g} lent while on loan"))
    }

    /// Returns a lent pair to GPU `g`'s slot.
    ///
    /// # Panics
    /// Panics on a precision mismatch or if the slot is occupied.
    pub fn restore(&mut self, g: usize, rows: Vec<u32>, payload: FlatVec) {
        assert_eq!(payload.precision(), self.precision, "delta precision");
        assert!(self.slots[g].is_none(), "delta slot {g} restored twice");
        self.slots[g] = Some((rows, payload));
    }

    /// GPU `g`'s home pair, read-only.
    ///
    /// # Panics
    /// Panics if the pair is on loan.
    pub fn slot(&self, g: usize) -> (&[u32], &FlatVec) {
        let (rows, payload) = self.slots[g]
            .as_ref()
            .unwrap_or_else(|| panic!("delta slot {g} on loan"));
        (rows, payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_arena_recycles_allocations() {
        let mut arena = DeltaArena::new(2, Precision::F32);
        let (mut rows, payload) = arena.lend(1);
        rows.extend_from_slice(&[1, 5, 9]);
        let mut payload = match payload {
            FlatVec::F32(v) => v,
            other => panic!("f32 delta lent {other:?}"),
        };
        payload.resize(12, 2.0);
        let (rp, pp) = (rows.as_ptr() as usize, payload.as_ptr() as usize);
        arena.restore(1, rows, FlatVec::F32(payload));
        assert_eq!(arena.slot(1).0, &[1, 5, 9]);
        let (mut rows, payload) = arena.lend(1);
        rows.clear();
        assert!(rows.capacity() >= 3);
        assert_eq!(rows.as_ptr() as usize, rp, "row buffer reallocated");
        assert_eq!(payload.as_ptr_addr(), pp, "payload buffer reallocated");
        arena.restore(1, rows, payload);
    }

    #[test]
    #[should_panic(expected = "on loan")]
    fn delta_double_lend_panics() {
        let mut arena = DeltaArena::new(1, Precision::F32);
        let _a = arena.lend(0);
        let _b = arena.lend(0);
    }

    #[test]
    #[should_panic(expected = "delta precision")]
    fn delta_restore_wrong_precision_panics() {
        let mut arena = DeltaArena::new(1, Precision::Bf16);
        let (rows, _payload) = arena.lend(0);
        arena.restore(0, rows, FlatVec::F32(vec![0.0; 4]));
    }

    #[test]
    fn lend_restore_cycle_is_pointer_stable() {
        let mut arena = MergeArena::new(2, 8, Precision::F32);
        // First cycle sizes the buffers.
        let a = arena.lend(0);
        let mut a = match a {
            FlatVec::F32(v) => v,
            other => panic!("f32 arena lent {other:?}"),
        };
        a.resize(8, 1.0);
        let ptr = a.as_ptr() as usize;
        arena.restore(0, FlatVec::F32(a));
        // Every later cycle reuses the same allocation.
        for round in 0..5 {
            let b = arena.lend(0);
            assert_eq!(b.as_ptr_addr(), ptr, "round {round} reallocated");
            let mut v = match b {
                FlatVec::F32(v) => v,
                other => panic!("f32 arena lent {other:?}"),
            };
            v.clear();
            v.resize(8, round as f32);
            assert_eq!(v.as_ptr() as usize, ptr, "round {round} refill reallocated");
            arena.restore(0, FlatVec::F32(v));
        }
        assert_eq!(arena.buffer(0).as_ptr_addr(), ptr);
    }

    #[test]
    fn bf16_arena_lends_bf16_tagged_buffers() {
        let mut arena = MergeArena::new(2, 4, Precision::Bf16);
        assert_eq!(arena.precision(), Precision::Bf16);
        let buf = arena.lend(0);
        assert_eq!(buf.precision(), Precision::Bf16);
        let mut v = match buf {
            FlatVec::Bf16(v) => v,
            other => panic!("bf16 arena lent {other:?}"),
        };
        v.resize(4, asgd_tensor::bf16::narrow(1.5));
        let ptr = v.as_ptr() as usize;
        arena.restore(0, FlatVec::Bf16(v));
        let again = arena.lend(0);
        assert_eq!(again.as_ptr_addr(), ptr, "recycle must keep the allocation");
        arena.restore(0, again);
        assert_eq!(arena.buffer(0).get_f32(0), 1.5);
    }

    #[test]
    fn buffers_mut_exposes_all_slots() {
        let mut arena = MergeArena::new(3, 4, Precision::F32);
        for g in 0..3 {
            let mut b = match arena.lend(g) {
                FlatVec::F32(v) => v,
                other => panic!("f32 arena lent {other:?}"),
            };
            b.resize(4, g as f32);
            arena.restore(g, FlatVec::F32(b));
        }
        assert_eq!(arena.len(), 3);
        assert!(!arena.is_empty());
        let bufs = arena.buffers_mut();
        assert_eq!(bufs.len(), 3);
        assert_eq!(bufs[2], FlatVec::F32(vec![2.0; 4]));
    }

    #[test]
    #[should_panic(expected = "arena buffer length")]
    fn restoring_wrong_length_panics() {
        let mut arena = MergeArena::new(1, 4, Precision::F32);
        arena.restore(0, FlatVec::F32(vec![0.0; 3]));
    }

    #[test]
    #[should_panic(expected = "arena buffer precision")]
    fn restoring_wrong_precision_panics() {
        let mut arena = MergeArena::new(1, 4, Precision::Bf16);
        arena.restore(0, FlatVec::F32(vec![0.0; 4]));
    }

    #[test]
    #[should_panic(expected = "on loan")]
    fn reading_a_lent_buffer_panics() {
        let mut arena = MergeArena::new(1, 4, Precision::F32);
        let _b = arena.lend(0);
        let _ = arena.buffer(0);
    }
}
