//! The GPU manager: one worker thread per device doing the numeric work.
//!
//! In HeteroGPU the GPU manager coordinates transfers and launches CUDA
//! kernels; here it executes the *real* forward/backward/update math on the
//! CPU while the scheduler charges the corresponding kernels to the
//! simulated device (see [`super::Trainer`]). Keeping the cost accounting on
//! the scheduler is what makes dynamic dispatch deterministic: the
//! assignment of batch *k* depends only on virtual clocks, never on how fast
//! the host CPU happens to run a manager thread.

use super::messages::{FromManager, ToManager};
use super::SampledSoftmax;
use asgd_data::XmlDataset;
use asgd_model::{Mlp, Workspace};
use asgd_slide::CandidateSampler;
use asgd_tensor::{FlatVec, Matrix};
use std::sync::mpsc::{Receiver, Sender};

/// The sampled-softmax state one manager owns: the candidate sampler plus a
/// scratch `W₂` used to rebuild the LSH tables from a *blend target* (the
/// merged global model) instead of the post-blend replica — blended replicas
/// differ across managers, and candidate sets must not (see the determinism
/// contract in `asgd_slide::sampler`).
struct SampledState {
    sampler: CandidateSampler,
    /// Lazily sized `hidden × classes` scratch for blend-target rebuilds.
    w2_scratch: Matrix,
}

impl SampledState {
    /// Rebuilds the LSH tables from the global model carried in a `Blend`
    /// target: the `W₂` region of the flat layout (bf16 widens exactly, so
    /// every manager reads identical f32 bits).
    fn rebuild_from_flat(&mut self, target: &FlatVec, model: &Mlp) {
        let c = model.config();
        let (h, classes) = (c.hidden, c.num_classes);
        if self.w2_scratch.shape() != (h, classes) {
            self.w2_scratch = Matrix::zeros(h, classes);
        }
        let w2_off = c.num_features * h + h;
        let dst = self.w2_scratch.as_mut_slice();
        for (i, v) in dst.iter_mut().enumerate() {
            *v = target.get_f32(w2_off + i);
        }
        self.sampler.rebuild(&self.w2_scratch);
    }
}

/// Runs the manager loop until `Stop` (or a disconnected channel). Intended
/// to run on a scoped thread borrowing the shared dataset.
///
/// The manager owns one [`Workspace`] for its replica's lifetime, so
/// steady-state training steps reuse every activation/gradient buffer
/// instead of re-allocating them per batch.
///
/// With `sampled` set, training runs the LSH-sampled softmax: the manager
/// owns a [`CandidateSampler`] whose tables are rebuilt at every model-sync
/// point (startup, `SetModel`, `Blend`) from bytes identical on every
/// replica, so a batch's candidate set depends only on
/// `(LSH seed, synced model, batch labels, sample_seed)` — never on which
/// manager trains it.
pub(crate) fn run_manager(
    gpu: usize,
    mut replica: Mlp,
    dataset: &XmlDataset,
    rx: Receiver<ToManager>,
    tx: Sender<FromManager>,
    sampled: Option<SampledSoftmax>,
) {
    let mut ws = Workspace::new(replica.config());
    let mut sampled: Option<SampledState> = sampled.map(|s| {
        let mut sampler = CandidateSampler::new(
            s.tables,
            s.k_bits,
            replica.config().hidden,
            s.neg_samples,
            s.seed,
        );
        sampler.rebuild(replica.w2());
        SampledState {
            sampler,
            w2_scratch: Matrix::zeros(0, 0),
        }
    });
    // Reusable view of the batch's label slices: borrows from the shared
    // dataset instead of cloning every label vector per batch.
    let mut labels: Vec<&[u32]> = Vec::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            ToManager::Train {
                batch_ids,
                lr,
                sample_seed,
            } => {
                let x = dataset.train.features.select_rows(&batch_ids);
                labels.clear();
                labels.extend(
                    batch_ids
                        .iter()
                        .map(|&i| dataset.train.labels[i].as_slice()),
                );
                let out = match sampled.as_mut() {
                    Some(state) => {
                        let cand = state.sampler.select(&labels, sample_seed);
                        replica.train_batch_sampled_ws(&x, &labels, cand, lr, &mut ws)
                    }
                    None => replica.train_batch_ws(&x, &labels, lr, &mut ws),
                };
                if tx
                    .send(FromManager::Trained {
                        gpu,
                        loss: out.loss,
                        batch_size: out.batch_size,
                    })
                    .is_err()
                {
                    return;
                }
            }
            ToManager::GetModel { mut buf } => {
                replica.write_flat_buf(&mut buf);
                let norm_per_param = replica.l2_norm_per_param();
                if tx
                    .send(FromManager::Model {
                        gpu,
                        flat: buf,
                        norm_per_param,
                    })
                    .is_err()
                {
                    return;
                }
            }
            ToManager::SetModel(buf) => {
                replica.read_flat_buf(&buf);
                if let Some(state) = sampled.as_mut() {
                    // Every replica just became the same global model:
                    // rebuilding here keeps the tables bit-identical
                    // across managers.
                    state.sampler.rebuild(replica.w2());
                }
                if tx.send(FromManager::Redistributed { gpu, buf }).is_err() {
                    return;
                }
            }
            ToManager::Blend { target, pull } => {
                if let Some(state) = sampled.as_mut() {
                    // Blended replicas diverge per manager; hash the shared
                    // blend *target* instead so candidate selection stays
                    // replica-independent.
                    state.rebuild_from_flat(&target, &replica);
                }
                replica.blend_from_flat_buf(&target, pull);
                if tx
                    .send(FromManager::Redistributed { gpu, buf: target })
                    .is_err()
                {
                    return;
                }
            }
            ToManager::Stop => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgd_data::{generate, DatasetSpec};
    use asgd_model::MlpConfig;
    use asgd_tensor::{FlatVec, Precision};
    use std::sync::mpsc::channel;

    fn setup() -> (XmlDataset, Mlp) {
        let ds = generate(&DatasetSpec::tiny("m"), 3);
        let config = MlpConfig {
            num_features: ds.num_features,
            hidden: 8,
            num_classes: ds.num_labels,
        };
        (ds, Mlp::init(&config, 1))
    }

    /// Runs a manager on a scoped thread, feeding it `cmds`, returning all
    /// replies.
    fn drive(ds: &XmlDataset, model: Mlp, cmds: Vec<ToManager>) -> Vec<FromManager> {
        drive_mode(ds, model, cmds, None)
    }

    fn drive_mode(
        ds: &XmlDataset,
        model: Mlp,
        cmds: Vec<ToManager>,
        sampled: Option<SampledSoftmax>,
    ) -> Vec<FromManager> {
        let (to_tx, to_rx) = channel();
        let (from_tx, from_rx) = channel();
        let mut replies = Vec::new();
        std::thread::scope(|s| {
            s.spawn(|| run_manager(0, model, ds, to_rx, from_tx, sampled));
            for c in cmds {
                to_tx.send(c).unwrap();
            }
            to_tx.send(ToManager::Stop).unwrap();
            while let Ok(r) = from_rx.recv() {
                replies.push(r);
            }
        });
        replies
    }

    #[test]
    fn manager_trains_and_reports() {
        let (ds, model) = setup();
        let replies = drive(
            &ds,
            model,
            vec![
                ToManager::Train {
                    batch_ids: vec![0, 1, 2],
                    lr: 0.1,
                    sample_seed: 0,
                },
                ToManager::GetModel {
                    buf: FlatVec::empty(Precision::F32),
                },
            ],
        );
        assert_eq!(replies.len(), 2);
        match &replies[0] {
            FromManager::Trained {
                gpu,
                loss,
                batch_size,
            } => {
                assert_eq!(*gpu, 0);
                assert!(*loss > 0.0);
                assert_eq!(*batch_size, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &replies[1] {
            FromManager::Model {
                flat,
                norm_per_param,
                ..
            } => {
                assert!(!flat.is_empty());
                assert!(*norm_per_param > 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn set_model_roundtrips_through_get() {
        let (ds, model) = setup();
        let target = FlatVec::F32(Mlp::init(model.config(), 99).to_flat());
        let replies = drive(
            &ds,
            model,
            vec![
                ToManager::SetModel(target.clone()),
                ToManager::GetModel {
                    buf: FlatVec::empty(Precision::F32),
                },
            ],
        );
        match &replies[0] {
            FromManager::Redistributed { buf, .. } => assert_eq!(buf, &target),
            other => panic!("unexpected {other:?}"),
        }
        match &replies[1] {
            FromManager::Model { flat, .. } => assert_eq!(flat, &target),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// A bf16 gather/redistribute cycle keeps the replica at exactly one
    /// rounding of the model it was set to: `SetModel` widens bf16 exactly,
    /// so the next gather reproduces the same bits.
    #[test]
    fn bf16_set_model_roundtrips_bit_exactly() {
        let (ds, model) = setup();
        let source = Mlp::init(model.config(), 99);
        let mut target = FlatVec::empty(Precision::Bf16);
        source.write_flat_buf(&mut target);
        let replies = drive(
            &ds,
            model,
            vec![
                ToManager::SetModel(target.clone()),
                ToManager::GetModel {
                    buf: FlatVec::empty(Precision::Bf16),
                },
            ],
        );
        match &replies[1] {
            FromManager::Model { flat, .. } => assert_eq!(flat, &target),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn blend_moves_halfway() {
        let (ds, model) = setup();
        let start = model.to_flat();
        let target = FlatVec::F32(vec![0.0f32; start.len()]);
        let replies = drive(
            &ds,
            model,
            vec![
                ToManager::Blend { target, pull: 0.5 },
                ToManager::GetModel {
                    buf: FlatVec::empty(Precision::F32),
                },
            ],
        );
        match &replies[1] {
            FromManager::Model { flat, .. } => {
                for (i, want) in start.iter().enumerate() {
                    assert!((flat.get_f32(i) - want * 0.5).abs() < 1e-6);
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// The merge-protocol buffer cycle reuses one heap allocation: lend via
    /// `GetModel`, get it back via `Model`, lend via `SetModel`, get it back
    /// via `Redistributed` — pointer-stable after the first fill, and the
    /// contents stay bit-identical to a freshly allocated `to_flat`.
    #[test]
    fn merge_protocol_recycles_one_buffer_without_reallocating() {
        let (ds, model) = setup();
        let mut twin = model.clone();
        let mut tws = Workspace::new(twin.config());
        let (to_tx, to_rx) = channel();
        let (from_tx, from_rx) = channel();
        std::thread::scope(|s| {
            s.spawn(|| run_manager(0, model, &ds, to_rx, from_tx, None));

            // First round trip sizes the buffer (the one allowed allocation).
            to_tx
                .send(ToManager::GetModel {
                    buf: FlatVec::empty(Precision::F32),
                })
                .unwrap();
            let buf = match from_rx.recv().unwrap() {
                FromManager::Model { flat, .. } => flat,
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(buf, FlatVec::F32(twin.to_flat()));
            let ptr = buf.as_ptr_addr();

            // Redistribute and train, then gather again with the same buffer.
            to_tx.send(ToManager::SetModel(buf)).unwrap();
            let buf = match from_rx.recv().unwrap() {
                FromManager::Redistributed { buf, .. } => buf,
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(
                buf.as_ptr_addr(),
                ptr,
                "SetModel must return the same buffer"
            );
            let batch_ids = vec![0usize, 1, 2];
            to_tx
                .send(ToManager::Train {
                    batch_ids: batch_ids.clone(),
                    lr: 0.1,
                    sample_seed: 0,
                })
                .unwrap();
            let _ = from_rx.recv().unwrap();
            to_tx.send(ToManager::GetModel { buf }).unwrap();
            let buf = match from_rx.recv().unwrap() {
                FromManager::Model { flat, .. } => flat,
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(
                buf.as_ptr_addr(),
                ptr,
                "steady-state gather must not realloc"
            );

            // Replay the same step on the twin: the recycled buffer holds
            // exactly what a fresh allocation would.
            let x = ds.train.features.select_rows(&batch_ids);
            let labels: Vec<&[u32]> = batch_ids
                .iter()
                .map(|&i| ds.train.labels[i].as_slice())
                .collect();
            twin.train_batch_ws(&x, &labels, 0.1, &mut tws);
            assert_eq!(buf, FlatVec::F32(twin.to_flat()));

            to_tx.send(ToManager::Stop).unwrap();
        });
    }

    #[test]
    fn disconnected_channel_terminates_manager() {
        let (ds, model) = setup();
        let (to_tx, to_rx) = channel::<ToManager>();
        let (from_tx, _from_rx) = channel();
        std::thread::scope(|s| {
            s.spawn(|| run_manager(0, model, &ds, to_rx, from_tx, None));
            drop(to_tx);
        });
    }

    fn sampled_cfg() -> SampledSoftmax {
        SampledSoftmax {
            tables: 4,
            k_bits: 5,
            neg_samples: 8,
            seed: 7,
        }
    }

    /// Two managers given the same synced model and the same `Train` message
    /// must produce bit-identical losses and replicas — this is exactly the
    /// property the device-loss re-dispatch path relies on: the surviving
    /// manager reproduces the dead replica's candidate sets from the shared
    /// `(LSH seed, synced W₂, labels, sample_seed)` inputs alone.
    #[test]
    fn sampled_training_is_replica_independent() {
        let (ds, model) = setup();
        let synced = FlatVec::F32(Mlp::init(model.config(), 99).to_flat());
        let run = |model: Mlp| {
            drive_mode(
                &ds,
                model,
                vec![
                    ToManager::SetModel(synced.clone()),
                    ToManager::Train {
                        batch_ids: vec![0, 2, 4],
                        lr: 0.1,
                        sample_seed: 0xB00F,
                    },
                    ToManager::GetModel {
                        buf: FlatVec::empty(Precision::F32),
                    },
                ],
                Some(sampled_cfg()),
            )
        };
        // Different pre-sync replicas: the sync point must erase the
        // difference entirely.
        let a = run(Mlp::init(model.config(), 1));
        let b = run(Mlp::init(model.config(), 2));
        let loss_of = |r: &[FromManager]| match &r[1] {
            FromManager::Trained { loss, .. } => loss.to_bits(),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(loss_of(&a), loss_of(&b));
        let flat_of = |r: &[FromManager]| match &r[2] {
            FromManager::Model { flat, .. } => flat.clone(),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(flat_of(&a), flat_of(&b));
    }

    /// A blend rebuild hashes the shared blend *target*'s `W₂` region of the
    /// flat layout, not the per-manager blended replica: selecting after
    /// [`SampledState::rebuild_from_flat`] must match selecting after a
    /// direct rebuild from the target's dense `W₂` — for f32 and (exactly
    /// widened) bf16 targets alike.
    #[test]
    fn blend_rebuild_reads_the_target_w2_region() {
        let (_ds, model) = setup();
        let config = *model.config();
        let target_model = Mlp::init(&config, 99);
        let cfg = sampled_cfg();
        let mk = || {
            CandidateSampler::new(
                cfg.tables,
                cfg.k_bits,
                config.hidden,
                cfg.neg_samples,
                cfg.seed,
            )
        };
        let labels: Vec<&[u32]> = vec![&[1, 5], &[9]];

        // f32 target.
        let mut state = SampledState {
            sampler: mk(),
            w2_scratch: Matrix::zeros(0, 0),
        };
        state.rebuild_from_flat(&FlatVec::F32(target_model.to_flat()), &model);
        let mut reference = mk();
        reference.rebuild(target_model.w2());
        for seed in [0u64, 42, 0xB00F] {
            assert_eq!(
                state.sampler.select(&labels, seed).to_vec(),
                reference.select(&labels, seed),
                "f32 target rebuild diverged at seed {seed}"
            );
        }

        // bf16 target: widening is exact, so the tables must match a
        // rebuild from the widened replica's dense W₂.
        let mut bf16_target = FlatVec::empty(Precision::Bf16);
        target_model.write_flat_buf(&mut bf16_target);
        state.rebuild_from_flat(&bf16_target, &model);
        let mut widened = model.clone();
        widened.read_flat_buf(&bf16_target);
        reference.rebuild(widened.w2());
        for seed in [0u64, 42] {
            assert_eq!(
                state.sampler.select(&labels, seed).to_vec(),
                reference.select(&labels, seed),
                "bf16 target rebuild diverged at seed {seed}"
            );
        }
    }
}
