//! The GPU manager: one worker thread per device doing the numeric work.
//!
//! In HeteroGPU the GPU manager coordinates transfers and launches CUDA
//! kernels; here it executes the *real* forward/backward/update math on the
//! CPU while the scheduler charges the corresponding kernels to the
//! simulated device (see [`super::Trainer`]). Keeping the cost accounting on
//! the scheduler is what makes dynamic dispatch deterministic: the
//! assignment of batch *k* depends only on virtual clocks, never on how fast
//! the host CPU happens to run a manager thread.

use super::messages::{FromManager, ToManager};
use super::SampledSoftmax;
use asgd_data::XmlDataset;
use asgd_model::{Mlp, Workspace};
use asgd_slide::CandidateSampler;
use asgd_tensor::{FlatVec, Matrix};
use std::sync::mpsc::{Receiver, Sender};

/// The sampled-softmax state one manager owns: the candidate sampler plus a
/// scratch `W₂` used to rebuild the LSH tables from a *blend target* (the
/// merged global model) instead of the post-blend replica — blended replicas
/// differ across managers, and candidate sets must not (see the determinism
/// contract in `asgd_slide::sampler`).
struct SampledState {
    sampler: CandidateSampler,
    /// Lazily sized `hidden × classes` scratch for blend-target rebuilds.
    w2_scratch: Matrix,
}

impl SampledState {
    /// Rebuilds the LSH tables from the global model carried in a `Blend`
    /// target: the `W₂` region of the flat layout (bf16 widens exactly, so
    /// every manager reads identical f32 bits).
    fn rebuild_from_flat(&mut self, target: &FlatVec, model: &Mlp) {
        let c = model.config();
        let (h, classes) = (c.hidden, c.num_classes);
        if self.w2_scratch.shape() != (h, classes) {
            self.w2_scratch = Matrix::zeros(h, classes);
        }
        let w2_off = c.num_features * h + h;
        let dst = self.w2_scratch.as_mut_slice();
        for (i, v) in dst.iter_mut().enumerate() {
            *v = target.get_f32(w2_off + i);
        }
        self.sampler.rebuild(&self.w2_scratch);
    }
}

/// Tracks which sparse rows (W1 feature rows first, then output-class
/// columns) this replica has dirtied since its last model sync — the
/// dirty-set side of the sparse delta merge.
///
/// On the sampled-softmax path the set is *exact and free*: a training
/// step writes precisely the batch's CSR feature columns into `W₁` and an
/// update entry for **every** LSH candidate into `W₂`/`b₂` (even at zero
/// gradient), so marking `x.indices()` plus the candidate set reproduces
/// the touched-row set bit-for-bit. `b₁` updates densely every batch and
/// rides along in the delta's dense block instead.
struct DirtyRows {
    features: usize,
    num_rows: usize,
    bits: Vec<u64>,
}

impl DirtyRows {
    fn new(features: usize, classes: usize) -> Self {
        let num_rows = features + classes;
        Self {
            features,
            num_rows,
            bits: vec![0; num_rows.div_ceil(64)],
        }
    }

    fn mark_features(&mut self, idx: &[u32]) {
        for &f in idx {
            let r = f as usize;
            debug_assert!(r < self.features);
            self.bits[r / 64] |= 1 << (r % 64);
        }
    }

    fn mark_classes(&mut self, cand: &[u32]) {
        let features = self.features;
        for &c in cand {
            let r = features + c as usize;
            debug_assert!(r < self.num_rows);
            self.bits[r / 64] |= 1 << (r % 64);
        }
    }

    /// Everything dirty — a `Blend` pulls every parameter toward the
    /// target, so no sparsity survives it.
    fn mark_all(&mut self) {
        self.bits.fill(!0u64);
    }

    fn clear(&mut self) {
        self.bits.fill(0);
    }

    /// Collects the dirty rows, sorted ascending, into a recycled buffer.
    fn collect_into(&self, out: &mut Vec<u32>) {
        out.clear();
        for (w, &word) in self.bits.iter().enumerate() {
            let mut b = word;
            while b != 0 {
                let r = w * 64 + b.trailing_zeros() as usize;
                if r >= self.num_rows {
                    break;
                }
                out.push(r as u32);
                b &= b - 1;
            }
        }
    }
}

/// Runs the manager loop until `Stop` (or a disconnected channel). Intended
/// to run on a scoped thread borrowing the shared dataset.
///
/// The manager owns one [`Workspace`] for its replica's lifetime, so
/// steady-state training steps reuse every activation/gradient buffer
/// instead of re-allocating them per batch.
///
/// With `sampled` set, training runs the LSH-sampled softmax: the manager
/// owns a [`CandidateSampler`] whose tables are rebuilt at every model-sync
/// point (startup, `SetModel`, `Blend`) from bytes identical on every
/// replica, so a batch's candidate set depends only on
/// `(LSH seed, synced model, batch labels, sample_seed)` — never on which
/// manager trains it.
pub(crate) fn run_manager(
    gpu: usize,
    mut replica: Mlp,
    dataset: &XmlDataset,
    rx: Receiver<ToManager>,
    tx: Sender<FromManager>,
    sampled: Option<SampledSoftmax>,
) {
    let mut ws = Workspace::new(replica.config());
    let mut sampled: Option<SampledState> = sampled.map(|s| {
        let mut sampler = CandidateSampler::new(
            s.tables,
            s.k_bits,
            replica.config().hidden,
            s.neg_samples,
            s.seed,
        );
        sampler.rebuild(replica.w2());
        SampledState {
            sampler,
            w2_scratch: Matrix::zeros(0, 0),
        }
    });
    let mut dirty = DirtyRows::new(replica.config().num_features, replica.config().num_classes);
    // Dense training touches every `W₂` column, so a dirty-row delta after a
    // dense batch would silently under-report; the trainer only sends
    // `GetDelta` on the sampled path, and this flag turns a violation into a
    // loud failure instead of a wrong merge.
    let mut dense_trained = false;
    // Reusable view of the batch's label slices: borrows from the shared
    // dataset instead of cloning every label vector per batch.
    let mut labels: Vec<&[u32]> = Vec::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            ToManager::Train {
                batch_ids,
                lr,
                sample_seed,
            } => {
                let x = dataset.train.features.select_rows(&batch_ids);
                labels.clear();
                labels.extend(
                    batch_ids
                        .iter()
                        .map(|&i| dataset.train.labels[i].as_slice()),
                );
                let out = match sampled.as_mut() {
                    Some(state) => {
                        let cand = state.sampler.select(&labels, sample_seed);
                        // The candidate set *is* the exact W₂ touched set:
                        // every candidate column gets an update write.
                        dirty.mark_features(x.indices());
                        dirty.mark_classes(cand);
                        replica.train_batch_sampled_ws(&x, &labels, cand, lr, &mut ws)
                    }
                    None => {
                        dense_trained = true;
                        replica.train_batch_ws(&x, &labels, lr, &mut ws)
                    }
                };
                if tx
                    .send(FromManager::Trained {
                        gpu,
                        loss: out.loss,
                        batch_size: out.batch_size,
                    })
                    .is_err()
                {
                    return;
                }
            }
            ToManager::GetModel { mut buf } => {
                replica.write_flat_buf(&mut buf);
                let norm_per_param = replica.l2_norm_per_param();
                if tx
                    .send(FromManager::Model {
                        gpu,
                        flat: buf,
                        norm_per_param,
                    })
                    .is_err()
                {
                    return;
                }
            }
            ToManager::SetModel(buf) => {
                replica.read_flat_buf(&buf);
                // A model sync is the delta baseline: nothing dirty yet.
                dirty.clear();
                if let Some(state) = sampled.as_mut() {
                    // Every replica just became the same global model:
                    // rebuilding here keeps the tables bit-identical
                    // across managers.
                    state.sampler.rebuild(replica.w2());
                }
                if tx.send(FromManager::Redistributed { gpu, buf }).is_err() {
                    return;
                }
            }
            ToManager::Blend { target, pull } => {
                if let Some(state) = sampled.as_mut() {
                    // Blended replicas diverge per manager; hash the shared
                    // blend *target* instead so candidate selection stays
                    // replica-independent.
                    state.rebuild_from_flat(&target, &replica);
                }
                replica.blend_from_flat_buf(&target, pull);
                dirty.mark_all();
                if tx
                    .send(FromManager::Redistributed { gpu, buf: target })
                    .is_err()
                {
                    return;
                }
            }
            ToManager::GetDelta {
                mut rows,
                mut payload,
            } => {
                assert!(
                    !dense_trained,
                    "sparse deltas require the sampled-softmax path \
                     (dense training dirties every W2 column)"
                );
                dirty.collect_into(&mut rows);
                replica.write_delta_buf(&rows, &mut payload);
                let norm_per_param = replica.l2_norm_per_param();
                if tx
                    .send(FromManager::Delta {
                        gpu,
                        rows,
                        payload,
                        norm_per_param,
                    })
                    .is_err()
                {
                    return;
                }
            }
            ToManager::Stop => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgd_data::{generate, DatasetSpec};
    use asgd_model::MlpConfig;
    use asgd_tensor::{FlatVec, Precision};
    use std::sync::mpsc::channel;

    fn setup() -> (XmlDataset, Mlp) {
        let ds = generate(&DatasetSpec::tiny("m"), 3);
        let config = MlpConfig {
            num_features: ds.num_features,
            hidden: 8,
            num_classes: ds.num_labels,
        };
        (ds, Mlp::init(&config, 1))
    }

    /// Runs a manager on a scoped thread, feeding it `cmds`, returning all
    /// replies.
    fn drive(ds: &XmlDataset, model: Mlp, cmds: Vec<ToManager>) -> Vec<FromManager> {
        drive_mode(ds, model, cmds, None)
    }

    fn drive_mode(
        ds: &XmlDataset,
        model: Mlp,
        cmds: Vec<ToManager>,
        sampled: Option<SampledSoftmax>,
    ) -> Vec<FromManager> {
        let (to_tx, to_rx) = channel();
        let (from_tx, from_rx) = channel();
        let mut replies = Vec::new();
        std::thread::scope(|s| {
            s.spawn(|| run_manager(0, model, ds, to_rx, from_tx, sampled));
            for c in cmds {
                to_tx.send(c).unwrap();
            }
            to_tx.send(ToManager::Stop).unwrap();
            while let Ok(r) = from_rx.recv() {
                replies.push(r);
            }
        });
        replies
    }

    #[test]
    fn manager_trains_and_reports() {
        let (ds, model) = setup();
        let replies = drive(
            &ds,
            model,
            vec![
                ToManager::Train {
                    batch_ids: vec![0, 1, 2],
                    lr: 0.1,
                    sample_seed: 0,
                },
                ToManager::GetModel {
                    buf: FlatVec::empty(Precision::F32),
                },
            ],
        );
        assert_eq!(replies.len(), 2);
        match &replies[0] {
            FromManager::Trained {
                gpu,
                loss,
                batch_size,
            } => {
                assert_eq!(*gpu, 0);
                assert!(*loss > 0.0);
                assert_eq!(*batch_size, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &replies[1] {
            FromManager::Model {
                flat,
                norm_per_param,
                ..
            } => {
                assert!(!flat.is_empty());
                assert!(*norm_per_param > 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn set_model_roundtrips_through_get() {
        let (ds, model) = setup();
        let target = FlatVec::F32(Mlp::init(model.config(), 99).to_flat());
        let replies = drive(
            &ds,
            model,
            vec![
                ToManager::SetModel(target.clone()),
                ToManager::GetModel {
                    buf: FlatVec::empty(Precision::F32),
                },
            ],
        );
        match &replies[0] {
            FromManager::Redistributed { buf, .. } => assert_eq!(buf, &target),
            other => panic!("unexpected {other:?}"),
        }
        match &replies[1] {
            FromManager::Model { flat, .. } => assert_eq!(flat, &target),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// A bf16 gather/redistribute cycle keeps the replica at exactly one
    /// rounding of the model it was set to: `SetModel` widens bf16 exactly,
    /// so the next gather reproduces the same bits.
    #[test]
    fn bf16_set_model_roundtrips_bit_exactly() {
        let (ds, model) = setup();
        let source = Mlp::init(model.config(), 99);
        let mut target = FlatVec::empty(Precision::Bf16);
        source.write_flat_buf(&mut target);
        let replies = drive(
            &ds,
            model,
            vec![
                ToManager::SetModel(target.clone()),
                ToManager::GetModel {
                    buf: FlatVec::empty(Precision::Bf16),
                },
            ],
        );
        match &replies[1] {
            FromManager::Model { flat, .. } => assert_eq!(flat, &target),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn blend_moves_halfway() {
        let (ds, model) = setup();
        let start = model.to_flat();
        let target = FlatVec::F32(vec![0.0f32; start.len()]);
        let replies = drive(
            &ds,
            model,
            vec![
                ToManager::Blend { target, pull: 0.5 },
                ToManager::GetModel {
                    buf: FlatVec::empty(Precision::F32),
                },
            ],
        );
        match &replies[1] {
            FromManager::Model { flat, .. } => {
                for (i, want) in start.iter().enumerate() {
                    assert!((flat.get_f32(i) - want * 0.5).abs() < 1e-6);
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// The merge-protocol buffer cycle reuses one heap allocation: lend via
    /// `GetModel`, get it back via `Model`, lend via `SetModel`, get it back
    /// via `Redistributed` — pointer-stable after the first fill, and the
    /// contents stay bit-identical to a freshly allocated `to_flat`.
    #[test]
    fn merge_protocol_recycles_one_buffer_without_reallocating() {
        let (ds, model) = setup();
        let mut twin = model.clone();
        let mut tws = Workspace::new(twin.config());
        let (to_tx, to_rx) = channel();
        let (from_tx, from_rx) = channel();
        std::thread::scope(|s| {
            s.spawn(|| run_manager(0, model, &ds, to_rx, from_tx, None));

            // First round trip sizes the buffer (the one allowed allocation).
            to_tx
                .send(ToManager::GetModel {
                    buf: FlatVec::empty(Precision::F32),
                })
                .unwrap();
            let buf = match from_rx.recv().unwrap() {
                FromManager::Model { flat, .. } => flat,
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(buf, FlatVec::F32(twin.to_flat()));
            let ptr = buf.as_ptr_addr();

            // Redistribute and train, then gather again with the same buffer.
            to_tx.send(ToManager::SetModel(buf)).unwrap();
            let buf = match from_rx.recv().unwrap() {
                FromManager::Redistributed { buf, .. } => buf,
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(
                buf.as_ptr_addr(),
                ptr,
                "SetModel must return the same buffer"
            );
            let batch_ids = vec![0usize, 1, 2];
            to_tx
                .send(ToManager::Train {
                    batch_ids: batch_ids.clone(),
                    lr: 0.1,
                    sample_seed: 0,
                })
                .unwrap();
            let _ = from_rx.recv().unwrap();
            to_tx.send(ToManager::GetModel { buf }).unwrap();
            let buf = match from_rx.recv().unwrap() {
                FromManager::Model { flat, .. } => flat,
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(
                buf.as_ptr_addr(),
                ptr,
                "steady-state gather must not realloc"
            );

            // Replay the same step on the twin: the recycled buffer holds
            // exactly what a fresh allocation would.
            let x = ds.train.features.select_rows(&batch_ids);
            let labels: Vec<&[u32]> = batch_ids
                .iter()
                .map(|&i| ds.train.labels[i].as_slice())
                .collect();
            twin.train_batch_ws(&x, &labels, 0.1, &mut tws);
            assert_eq!(buf, FlatVec::F32(twin.to_flat()));

            to_tx.send(ToManager::Stop).unwrap();
        });
    }

    #[test]
    fn disconnected_channel_terminates_manager() {
        let (ds, model) = setup();
        let (to_tx, to_rx) = channel::<ToManager>();
        let (from_tx, _from_rx) = channel();
        std::thread::scope(|s| {
            s.spawn(|| run_manager(0, model, &ds, to_rx, from_tx, None));
            drop(to_tx);
        });
    }

    fn sampled_cfg() -> SampledSoftmax {
        SampledSoftmax {
            tables: 4,
            k_bits: 5,
            neg_samples: 8,
            seed: 7,
        }
    }

    /// Two managers given the same synced model and the same `Train` message
    /// must produce bit-identical losses and replicas — this is exactly the
    /// property the device-loss re-dispatch path relies on: the surviving
    /// manager reproduces the dead replica's candidate sets from the shared
    /// `(LSH seed, synced W₂, labels, sample_seed)` inputs alone.
    #[test]
    fn sampled_training_is_replica_independent() {
        let (ds, model) = setup();
        let synced = FlatVec::F32(Mlp::init(model.config(), 99).to_flat());
        let run = |model: Mlp| {
            drive_mode(
                &ds,
                model,
                vec![
                    ToManager::SetModel(synced.clone()),
                    ToManager::Train {
                        batch_ids: vec![0, 2, 4],
                        lr: 0.1,
                        sample_seed: 0xB00F,
                    },
                    ToManager::GetModel {
                        buf: FlatVec::empty(Precision::F32),
                    },
                ],
                Some(sampled_cfg()),
            )
        };
        // Different pre-sync replicas: the sync point must erase the
        // difference entirely.
        let a = run(Mlp::init(model.config(), 1));
        let b = run(Mlp::init(model.config(), 2));
        let loss_of = |r: &[FromManager]| match &r[1] {
            FromManager::Trained { loss, .. } => loss.to_bits(),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(loss_of(&a), loss_of(&b));
        let flat_of = |r: &[FromManager]| match &r[2] {
            FromManager::Model { flat, .. } => flat.clone(),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(flat_of(&a), flat_of(&b));
    }

    /// The delta protocol's core contract: after a sync and a sampled train
    /// step, `GetDelta`'s `(rows, payload)` must (a) bit-match gathering the
    /// same rows out of the dense `GetModel` buffer and (b) reconstruct that
    /// dense buffer bit-exactly when scattered over the synced base — the
    /// exactness the whole sparse merge path rests on.
    #[test]
    fn delta_reconstructs_the_replica_bit_exactly() {
        use asgd_collective::{gather_delta, scatter_delta, SparseLayout};
        let (ds, model) = setup();
        let config = *model.config();
        let synced = FlatVec::F32(Mlp::init(&config, 99).to_flat());
        let replies = drive_mode(
            &ds,
            model,
            vec![
                ToManager::SetModel(synced.clone()),
                ToManager::Train {
                    batch_ids: vec![0, 2, 4],
                    lr: 0.1,
                    sample_seed: 0xB00F,
                },
                ToManager::GetDelta {
                    rows: Vec::new(),
                    payload: FlatVec::empty(Precision::F32),
                },
                ToManager::GetModel {
                    buf: FlatVec::empty(Precision::F32),
                },
            ],
            Some(sampled_cfg()),
        );
        let (rows, payload) = match &replies[2] {
            FromManager::Delta { rows, payload, .. } => (rows, payload),
            other => panic!("unexpected {other:?}"),
        };
        let flat = match &replies[3] {
            FromManager::Model { flat, .. } => flat,
            other => panic!("unexpected {other:?}"),
        };
        assert!(!rows.is_empty(), "a sampled batch must dirty some rows");
        assert!(rows.windows(2).all(|w| w[0] < w[1]), "rows not ascending");
        let layout = SparseLayout::new(config.num_features, config.hidden, config.num_classes);
        let mut expect = FlatVec::empty(Precision::F32);
        gather_delta(&layout, rows, flat, &mut expect);
        assert_eq!(payload, &expect, "delta payload != dense gather");
        let mut base = synced.clone();
        scatter_delta(&layout, rows, payload, &mut base);
        assert_eq!(&base, flat, "scatter over base != replica");
    }

    /// `SetModel` is the delta baseline: a `GetDelta` straight after a sync
    /// reports no dirty rows and only the dense `b₁` block as payload.
    #[test]
    fn set_model_clears_the_dirty_set() {
        let (ds, model) = setup();
        let config = *model.config();
        let synced = FlatVec::F32(Mlp::init(&config, 99).to_flat());
        let replies = drive_mode(
            &ds,
            model,
            vec![
                ToManager::Train {
                    batch_ids: vec![0, 1],
                    lr: 0.1,
                    sample_seed: 3,
                },
                ToManager::SetModel(synced.clone()),
                ToManager::GetDelta {
                    rows: Vec::new(),
                    payload: FlatVec::empty(Precision::F32),
                },
            ],
            Some(sampled_cfg()),
        );
        let (rows, payload) = match &replies[2] {
            FromManager::Delta { rows, payload, .. } => (rows, payload),
            other => panic!("unexpected {other:?}"),
        };
        assert!(rows.is_empty(), "sync must clear the dirty set");
        assert_eq!(payload.len(), config.hidden, "empty delta carries only b1");
        let b1_off = config.num_features * config.hidden;
        for k in 0..config.hidden {
            assert_eq!(
                payload.get_f32(k).to_bits(),
                synced.get_f32(b1_off + k).to_bits()
            );
        }
    }

    /// A `Blend` pulls every parameter, so the following delta must cover
    /// every row — no sparsity survives a CROSSBOW-style merge.
    #[test]
    fn blend_dirties_every_row() {
        let (ds, model) = setup();
        let config = *model.config();
        let target = FlatVec::F32(Mlp::init(&config, 99).to_flat());
        let replies = drive_mode(
            &ds,
            model,
            vec![
                ToManager::Blend { target, pull: 0.5 },
                ToManager::GetDelta {
                    rows: Vec::new(),
                    payload: FlatVec::empty(Precision::F32),
                },
            ],
            Some(sampled_cfg()),
        );
        let rows = match &replies[1] {
            FromManager::Delta { rows, .. } => rows,
            other => panic!("unexpected {other:?}"),
        };
        let total = config.num_features + config.num_classes;
        assert_eq!(rows.len(), total);
        assert_eq!(rows.first(), Some(&0));
        assert_eq!(rows.last(), Some(&((total - 1) as u32)));
    }

    /// A blend rebuild hashes the shared blend *target*'s `W₂` region of the
    /// flat layout, not the per-manager blended replica: selecting after
    /// [`SampledState::rebuild_from_flat`] must match selecting after a
    /// direct rebuild from the target's dense `W₂` — for f32 and (exactly
    /// widened) bf16 targets alike.
    #[test]
    fn blend_rebuild_reads_the_target_w2_region() {
        let (_ds, model) = setup();
        let config = *model.config();
        let target_model = Mlp::init(&config, 99);
        let cfg = sampled_cfg();
        let mk = || {
            CandidateSampler::new(
                cfg.tables,
                cfg.k_bits,
                config.hidden,
                cfg.neg_samples,
                cfg.seed,
            )
        };
        let labels: Vec<&[u32]> = vec![&[1, 5], &[9]];

        // f32 target.
        let mut state = SampledState {
            sampler: mk(),
            w2_scratch: Matrix::zeros(0, 0),
        };
        state.rebuild_from_flat(&FlatVec::F32(target_model.to_flat()), &model);
        let mut reference = mk();
        reference.rebuild(target_model.w2());
        for seed in [0u64, 42, 0xB00F] {
            assert_eq!(
                state.sampler.select(&labels, seed).to_vec(),
                reference.select(&labels, seed),
                "f32 target rebuild diverged at seed {seed}"
            );
        }

        // bf16 target: widening is exact, so the tables must match a
        // rebuild from the widened replica's dense W₂.
        let mut bf16_target = FlatVec::empty(Precision::Bf16);
        target_model.write_flat_buf(&mut bf16_target);
        state.rebuild_from_flat(&bf16_target, &model);
        let mut widened = model.clone();
        widened.read_flat_buf(&bf16_target);
        reference.rebuild(widened.w2());
        for seed in [0u64, 42] {
            assert_eq!(
                state.sampler.select(&labels, seed).to_vec(),
                reference.select(&labels, seed),
                "bf16 target rebuild diverged at seed {seed}"
            );
        }
    }
}
