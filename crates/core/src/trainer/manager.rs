//! The GPU manager: one worker thread per device doing the numeric work.
//!
//! In HeteroGPU the GPU manager coordinates transfers and launches CUDA
//! kernels; here it executes the *real* forward/backward/update math on the
//! CPU while the scheduler charges the corresponding kernels to the
//! simulated device (see [`super::Trainer`]). Keeping the cost accounting on
//! the scheduler is what makes dynamic dispatch deterministic: the
//! assignment of batch *k* depends only on virtual clocks, never on how fast
//! the host CPU happens to run a manager thread.

use super::messages::{FromManager, ToManager};
use asgd_data::XmlDataset;
use asgd_model::{Mlp, Workspace};
use std::sync::mpsc::{Receiver, Sender};

/// Runs the manager loop until `Stop` (or a disconnected channel). Intended
/// to run on a scoped thread borrowing the shared dataset.
///
/// The manager owns one [`Workspace`] for its replica's lifetime, so
/// steady-state training steps reuse every activation/gradient buffer
/// instead of re-allocating them per batch.
pub(crate) fn run_manager(
    gpu: usize,
    mut replica: Mlp,
    dataset: &XmlDataset,
    rx: Receiver<ToManager>,
    tx: Sender<FromManager>,
) {
    let mut ws = Workspace::new(replica.config());
    // Reusable view of the batch's label slices: borrows from the shared
    // dataset instead of cloning every label vector per batch.
    let mut labels: Vec<&[u32]> = Vec::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            ToManager::Train { batch_ids, lr } => {
                let x = dataset.train.features.select_rows(&batch_ids);
                labels.clear();
                labels.extend(
                    batch_ids
                        .iter()
                        .map(|&i| dataset.train.labels[i].as_slice()),
                );
                let out = replica.train_batch_ws(&x, &labels, lr, &mut ws);
                if tx
                    .send(FromManager::Trained {
                        gpu,
                        loss: out.loss,
                        batch_size: out.batch_size,
                    })
                    .is_err()
                {
                    return;
                }
            }
            ToManager::GetModel { mut buf } => {
                replica.write_flat_buf(&mut buf);
                let norm_per_param = replica.l2_norm_per_param();
                if tx
                    .send(FromManager::Model {
                        gpu,
                        flat: buf,
                        norm_per_param,
                    })
                    .is_err()
                {
                    return;
                }
            }
            ToManager::SetModel(buf) => {
                replica.read_flat_buf(&buf);
                if tx.send(FromManager::Redistributed { gpu, buf }).is_err() {
                    return;
                }
            }
            ToManager::Blend { target, pull } => {
                replica.blend_from_flat_buf(&target, pull);
                if tx
                    .send(FromManager::Redistributed { gpu, buf: target })
                    .is_err()
                {
                    return;
                }
            }
            ToManager::Stop => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgd_data::{generate, DatasetSpec};
    use asgd_model::MlpConfig;
    use asgd_tensor::{FlatVec, Precision};
    use std::sync::mpsc::channel;

    fn setup() -> (XmlDataset, Mlp) {
        let ds = generate(&DatasetSpec::tiny("m"), 3);
        let config = MlpConfig {
            num_features: ds.num_features,
            hidden: 8,
            num_classes: ds.num_labels,
        };
        (ds, Mlp::init(&config, 1))
    }

    /// Runs a manager on a scoped thread, feeding it `cmds`, returning all
    /// replies.
    fn drive(ds: &XmlDataset, model: Mlp, cmds: Vec<ToManager>) -> Vec<FromManager> {
        let (to_tx, to_rx) = channel();
        let (from_tx, from_rx) = channel();
        let mut replies = Vec::new();
        std::thread::scope(|s| {
            s.spawn(|| run_manager(0, model, ds, to_rx, from_tx));
            for c in cmds {
                to_tx.send(c).unwrap();
            }
            to_tx.send(ToManager::Stop).unwrap();
            while let Ok(r) = from_rx.recv() {
                replies.push(r);
            }
        });
        replies
    }

    #[test]
    fn manager_trains_and_reports() {
        let (ds, model) = setup();
        let replies = drive(
            &ds,
            model,
            vec![
                ToManager::Train {
                    batch_ids: vec![0, 1, 2],
                    lr: 0.1,
                },
                ToManager::GetModel {
                    buf: FlatVec::empty(Precision::F32),
                },
            ],
        );
        assert_eq!(replies.len(), 2);
        match &replies[0] {
            FromManager::Trained {
                gpu,
                loss,
                batch_size,
            } => {
                assert_eq!(*gpu, 0);
                assert!(*loss > 0.0);
                assert_eq!(*batch_size, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &replies[1] {
            FromManager::Model {
                flat,
                norm_per_param,
                ..
            } => {
                assert!(!flat.is_empty());
                assert!(*norm_per_param > 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn set_model_roundtrips_through_get() {
        let (ds, model) = setup();
        let target = FlatVec::F32(Mlp::init(model.config(), 99).to_flat());
        let replies = drive(
            &ds,
            model,
            vec![
                ToManager::SetModel(target.clone()),
                ToManager::GetModel {
                    buf: FlatVec::empty(Precision::F32),
                },
            ],
        );
        match &replies[0] {
            FromManager::Redistributed { buf, .. } => assert_eq!(buf, &target),
            other => panic!("unexpected {other:?}"),
        }
        match &replies[1] {
            FromManager::Model { flat, .. } => assert_eq!(flat, &target),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// A bf16 gather/redistribute cycle keeps the replica at exactly one
    /// rounding of the model it was set to: `SetModel` widens bf16 exactly,
    /// so the next gather reproduces the same bits.
    #[test]
    fn bf16_set_model_roundtrips_bit_exactly() {
        let (ds, model) = setup();
        let source = Mlp::init(model.config(), 99);
        let mut target = FlatVec::empty(Precision::Bf16);
        source.write_flat_buf(&mut target);
        let replies = drive(
            &ds,
            model,
            vec![
                ToManager::SetModel(target.clone()),
                ToManager::GetModel {
                    buf: FlatVec::empty(Precision::Bf16),
                },
            ],
        );
        match &replies[1] {
            FromManager::Model { flat, .. } => assert_eq!(flat, &target),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn blend_moves_halfway() {
        let (ds, model) = setup();
        let start = model.to_flat();
        let target = FlatVec::F32(vec![0.0f32; start.len()]);
        let replies = drive(
            &ds,
            model,
            vec![
                ToManager::Blend { target, pull: 0.5 },
                ToManager::GetModel {
                    buf: FlatVec::empty(Precision::F32),
                },
            ],
        );
        match &replies[1] {
            FromManager::Model { flat, .. } => {
                for (i, want) in start.iter().enumerate() {
                    assert!((flat.get_f32(i) - want * 0.5).abs() < 1e-6);
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// The merge-protocol buffer cycle reuses one heap allocation: lend via
    /// `GetModel`, get it back via `Model`, lend via `SetModel`, get it back
    /// via `Redistributed` — pointer-stable after the first fill, and the
    /// contents stay bit-identical to a freshly allocated `to_flat`.
    #[test]
    fn merge_protocol_recycles_one_buffer_without_reallocating() {
        let (ds, model) = setup();
        let mut twin = model.clone();
        let mut tws = Workspace::new(twin.config());
        let (to_tx, to_rx) = channel();
        let (from_tx, from_rx) = channel();
        std::thread::scope(|s| {
            s.spawn(|| run_manager(0, model, &ds, to_rx, from_tx));

            // First round trip sizes the buffer (the one allowed allocation).
            to_tx
                .send(ToManager::GetModel {
                    buf: FlatVec::empty(Precision::F32),
                })
                .unwrap();
            let buf = match from_rx.recv().unwrap() {
                FromManager::Model { flat, .. } => flat,
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(buf, FlatVec::F32(twin.to_flat()));
            let ptr = buf.as_ptr_addr();

            // Redistribute and train, then gather again with the same buffer.
            to_tx.send(ToManager::SetModel(buf)).unwrap();
            let buf = match from_rx.recv().unwrap() {
                FromManager::Redistributed { buf, .. } => buf,
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(
                buf.as_ptr_addr(),
                ptr,
                "SetModel must return the same buffer"
            );
            let batch_ids = vec![0usize, 1, 2];
            to_tx
                .send(ToManager::Train {
                    batch_ids: batch_ids.clone(),
                    lr: 0.1,
                })
                .unwrap();
            let _ = from_rx.recv().unwrap();
            to_tx.send(ToManager::GetModel { buf }).unwrap();
            let buf = match from_rx.recv().unwrap() {
                FromManager::Model { flat, .. } => flat,
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(
                buf.as_ptr_addr(),
                ptr,
                "steady-state gather must not realloc"
            );

            // Replay the same step on the twin: the recycled buffer holds
            // exactly what a fresh allocation would.
            let x = ds.train.features.select_rows(&batch_ids);
            let labels: Vec<&[u32]> = batch_ids
                .iter()
                .map(|&i| ds.train.labels[i].as_slice())
                .collect();
            twin.train_batch_ws(&x, &labels, 0.1, &mut tws);
            assert_eq!(buf, FlatVec::F32(twin.to_flat()));

            to_tx.send(ToManager::Stop).unwrap();
        });
    }

    #[test]
    fn disconnected_channel_terminates_manager() {
        let (ds, model) = setup();
        let (to_tx, to_rx) = channel::<ToManager>();
        let (from_tx, _from_rx) = channel();
        std::thread::scope(|s| {
            s.spawn(|| run_manager(0, model, &ds, to_rx, from_tx));
            drop(to_tx);
        });
    }
}
